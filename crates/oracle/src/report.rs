//! The `astree-campaign/1` report schema: a JSON summary of one fuzzing
//! campaign, with optional alarm-census deltas against a baseline report.
//!
//! ```json
//! {
//!   "schema": "astree-campaign/1",
//!   "members": 24, "executions": 72, "states_checked": 1234567,
//!   "inconclusive": 0,
//!   "alarm_census": { "div_by_zero": 6 },
//!   "divergences": [ { "member": "ch1-seed4", "channels": 1, ... } ],
//!   "baseline_delta": { "div_by_zero": 1 }
//! }
//! ```

use crate::campaign::{Campaign, Divergence, DivergenceKind};
use astree_obs::Json;
use std::collections::BTreeMap;

/// Schema identifier emitted in every report.
pub const SCHEMA: &str = "astree-campaign/1";

fn divergence_json(d: &Divergence) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![
        ("member", Json::str(d.member.label())),
        ("channels", Json::UInt(d.member.channels as u64)),
        ("gen_seed", Json::UInt(d.member.gen_seed)),
        (
            "bug",
            match d.member.bug {
                Some(b) => Json::str(format!("{b:?}")),
                None => Json::Null,
            },
        ),
        ("exec_seed", Json::UInt(d.exec_seed)),
        ("stmt", Json::UInt(d.stmt as u64)),
        ("tick", Json::UInt(d.tick)),
        ("shrunk", Json::Bool(d.shrunk)),
    ];
    match &d.kind {
        DivergenceKind::Escape { cell, value, abs } => {
            pairs.push(("kind", Json::str("escape")));
            pairs.push(("cell", Json::str(cell.clone())));
            pairs.push(("value", Json::str(value.clone())));
            pairs.push(("abs", Json::str(abs.clone())));
        }
        DivergenceKind::Unreachable => {
            pairs.push(("kind", Json::str("unreachable")));
        }
        DivergenceKind::MissedError { kind } => {
            pairs.push(("kind", Json::str("missed_error")));
            pairs.push(("error", Json::str(*kind)));
        }
    }
    Json::obj(pairs)
}

/// Renders a campaign as an `astree-campaign/1` JSON tree. `baseline`
/// (a previously emitted report, parsed) contributes an `alarm_census`
/// delta: positive numbers are alarms gained since the baseline.
pub fn campaign_to_json(c: &Campaign, baseline: Option<&Json>) -> Json {
    let census =
        Json::obj(c.alarm_census.iter().map(|(k, n)| (*k, Json::UInt(*n))).collect::<Vec<_>>());
    let mut pairs: Vec<(&str, Json)> = vec![
        ("schema", Json::str(SCHEMA)),
        ("members", Json::UInt(c.members)),
        ("executions", Json::UInt(c.executions)),
        ("states_checked", Json::UInt(c.states_checked)),
        ("inconclusive", Json::UInt(c.inconclusive)),
        ("divergence_count", Json::UInt(c.divergences.len() as u64)),
        ("alarm_census", census),
        ("divergences", Json::Arr(c.divergences.iter().map(divergence_json).collect())),
    ];
    if let Some(base) = baseline {
        let mut delta: BTreeMap<String, i64> = BTreeMap::new();
        for (k, n) in &c.alarm_census {
            delta.insert((*k).to_string(), *n as i64);
        }
        if let Some(Json::Obj(base_census)) = base.get("alarm_census") {
            for (k, v) in base_census {
                let old = v.as_u64().unwrap_or(0) as i64;
                *delta.entry(k.clone()).or_insert(0) -= old;
            }
        }
        delta.retain(|_, d| *d != 0);
        pairs.push((
            "baseline_delta",
            Json::obj(delta.into_iter().map(|(k, d)| (k, Json::Int(d))).collect::<Vec<_>>()),
        ));
    }
    Json::obj(pairs)
}

/// The headline counters parsed back from an `astree-campaign/1` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Members analyzed.
    pub members: u64,
    /// Executions run.
    pub executions: u64,
    /// Concrete states checked.
    pub states_checked: u64,
    /// Inconclusive executions.
    pub inconclusive: u64,
    /// Divergences reported.
    pub divergences: u64,
    /// Alarm census by kind slug.
    pub alarm_census: BTreeMap<String, u64>,
}

/// Parses an `astree-campaign/1` report.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong schema identifier, or
/// missing counters.
pub fn parse_summary(text: &str) -> Result<CampaignSummary, String> {
    let json = Json::parse(text)?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != SCHEMA {
        return Err(format!("expected schema {SCHEMA}, got {schema:?}"));
    }
    let counter = |key: &str| -> Result<u64, String> {
        json.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing counter {key}"))
    };
    let mut alarm_census = BTreeMap::new();
    if let Some(Json::Obj(census)) = json.get("alarm_census") {
        for (k, v) in census {
            alarm_census.insert(k.clone(), v.as_u64().unwrap_or(0));
        }
    }
    Ok(CampaignSummary {
        members: counter("members")?,
        executions: counter("executions")?,
        states_checked: counter("states_checked")?,
        inconclusive: counter("inconclusive")?,
        divergences: counter("divergence_count")?,
        alarm_census,
    })
}
