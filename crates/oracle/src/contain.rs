//! The containment walker: maps concrete interpreter cells onto abstract
//! cells and decides whether a concrete store lies inside a rendered
//! abstract state.
//!
//! # Containment contract
//!
//! A concrete store `σ` is *inside* an abstract state `ρ#` at a program
//! point iff for every persistent concrete cell `(v, path)` with value `x`:
//!
//! - integer cells: `x ∈ γ(ρ#(cell))` via [`IntItv::contains`] (the clocked
//!   domain's value interval — the relational `x + clock` bound is an
//!   *additional* constraint and is not consulted here);
//! - float cells: `x ∈ [lo, hi]` via [`FloatItv::contains`] under the
//!   numeric order (so `-0.0 ∈ [0.0, 0.0]`; the *bitwise* total-order
//!   comparison of rendered invariants is a reproducibility device for
//!   comparing two abstract states, not part of the concretization);
//! - untracked cells concretize to top and contain everything;
//! - a statement with no recorded abstract state is claimed unreachable, so
//!   any concrete arrival there is a divergence.
//!
//! Only cells of whole-program lifetime ([`astree_ir::is_persistent`])
//! participate: locals and by-value parameters are zero-reinitialized on
//! every concrete call while the analyzer may keep stale frames, so they
//! would false-diverge without weakening the soundness statement the paper
//! makes (Sect. 5.4 quantifies over the persistent state machine).
//!
//! [`IntItv::contains`]: astree_domains::IntItv::contains
//! [`FloatItv::contains`]: astree_domains::FloatItv::contains

use astree_ir::{is_persistent, Program, Type, Value, VarId};
use astree_memory::{CellId, CellLayout, CellVal};
use std::collections::HashMap;

/// A per-variable mirror of the layout's private cell tree, rebuilt from the
/// program types and the shrink threshold by consuming the layout's cell ids
/// in build order (the public [`CellLayout::cells_of_var`] enumeration).
enum Node {
    Scalar(CellId),
    /// One cell for all elements of a shrunk array.
    Shrunk(CellId),
    Array(Vec<Node>),
    Record(Vec<Node>),
}

/// Maps concrete cells `(VarId, path)` to abstract [`CellId`]s for every
/// persistent variable of a program.
pub struct CellTable {
    roots: Vec<Option<Node>>,
}

impl CellTable {
    /// Builds the table. `shrink_threshold` must match the analysis
    /// configuration that produced `layout`.
    pub fn new(program: &Program, layout: &CellLayout, shrink_threshold: usize) -> CellTable {
        let mut roots = Vec::with_capacity(program.vars.len());
        for (i, v) in program.vars.iter().enumerate() {
            let var = VarId(i as u32);
            if !is_persistent(v.kind) {
                roots.push(None);
                continue;
            }
            let cells = layout.cells_of_var(var);
            let mut it = cells.iter().copied();
            let node = build_node(program, &v.ty, shrink_threshold, &mut it);
            debug_assert!(it.next().is_none(), "cell count mismatch for {}", v.name);
            roots.push(Some(node));
        }
        CellTable { roots }
    }

    /// The abstract cell a persistent concrete cell maps to; `None` for
    /// non-persistent variables.
    pub fn lookup(&self, var: VarId, path: &[u32]) -> Option<CellId> {
        let mut node = self.roots.get(var.0 as usize)?.as_ref()?;
        let mut rest = path;
        loop {
            match node {
                Node::Scalar(id) => return rest.is_empty().then_some(*id),
                // All elements (one trailing index) share the shrunk cell.
                Node::Shrunk(id) => return (rest.len() <= 1).then_some(*id),
                Node::Array(children) | Node::Record(children) => {
                    let (first, tail) = rest.split_first()?;
                    node = children.get(*first as usize)?;
                    rest = tail;
                }
            }
        }
    }
}

fn build_node(
    program: &Program,
    ty: &Type,
    threshold: usize,
    cells: &mut impl Iterator<Item = CellId>,
) -> Node {
    match ty {
        Type::Scalar(_) => Node::Scalar(cells.next().expect("layout cell for scalar")),
        Type::Array(elem, n) => match elem.as_scalar() {
            Some(_) if *n > threshold => {
                Node::Shrunk(cells.next().expect("layout cell for shrunk array"))
            }
            _ => {
                Node::Array((0..*n).map(|_| build_node(program, elem, threshold, cells)).collect())
            }
        },
        Type::Record(rid) => Node::Record(
            program.records[rid.0 as usize]
                .fields
                .iter()
                .map(|(_, fty)| build_node(program, fty, threshold, cells))
                .collect(),
        ),
    }
}

/// Whether a concrete value lies inside the concretization of an abstract
/// cell value (see the module docs for the per-domain meaning).
pub fn value_in(abs: &CellVal, v: &Value) -> bool {
    match (abs, v) {
        (CellVal::Int(c), Value::Int(x)) => c.val.contains(*x),
        (CellVal::Float(f), Value::Float(x)) => f.contains(*x),
        // A type mismatch between concrete and abstract cell is itself a
        // divergence (the layout and interpreter disagree on the cell kind).
        _ => false,
    }
}

/// Per-statement abstract states rendered into dense per-cell vectors for
/// fast per-observation checks. Statements absent from the map are claimed
/// unreachable.
pub struct PreparedInvariants {
    by_stmt: HashMap<u32, Vec<CellVal>>,
}

impl PreparedInvariants {
    /// Renders each statement's abstract environment into a vector indexed
    /// by `CellId`.
    pub fn new(
        stmt_invariants: &HashMap<astree_ir::StmtId, astree_core::AbsState>,
        layout: &CellLayout,
    ) -> PreparedInvariants {
        let n = layout.num_cells();
        let mut by_stmt = HashMap::with_capacity(stmt_invariants.len());
        for (id, st) in stmt_invariants {
            let cells: Vec<CellVal> =
                (0..n).map(|c| st.env.get(CellId(c as u32), layout)).collect();
            by_stmt.insert(id.0, cells);
        }
        PreparedInvariants { by_stmt }
    }

    /// The rendered cell vector for a statement, `None` when the analyzer
    /// claims the statement unreachable.
    pub fn at(&self, stmt: astree_ir::StmtId) -> Option<&[CellVal]> {
        self.by_stmt.get(&stmt.0).map(|v| v.as_slice())
    }

    /// Number of statements with a recorded state.
    pub fn len(&self) -> usize {
        self.by_stmt.len()
    }

    /// Whether no statement has a recorded state.
    pub fn is_empty(&self) -> bool {
        self.by_stmt.is_empty()
    }

    /// Fault injection for tests: replaces the named cell's rendered value
    /// with an empty interval at every statement, so any observation of the
    /// cell diverges. Returns how many statements were tightened.
    #[doc(hidden)]
    pub fn debug_empty_cell(&mut self, layout: &CellLayout, name: &str) -> usize {
        let Some(target) = layout.iter().find(|(_, info)| info.name == name).map(|(id, _)| id)
        else {
            return 0;
        };
        let mut touched = 0;
        for cells in self.by_stmt.values_mut() {
            cells[target.0 as usize] = CellVal::Float(astree_domains::FloatItv::BOTTOM);
            touched += 1;
        }
        touched
    }
}

/// Renders an abstract cell value for diagnostics.
pub fn render_abs(abs: &CellVal) -> String {
    match abs {
        CellVal::Int(c) => format!("[{}, {}]", c.val.lo, c.val.hi),
        CellVal::Float(f) => format!("[{}, {}]", f.lo, f.hi),
    }
}

/// Renders a concrete value for diagnostics.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Int(x) => x.to_string(),
        Value::Float(x) => format!("{x:?}"),
    }
}
