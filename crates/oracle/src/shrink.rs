//! Counterexample shrinking: reduce a divergence to the smallest member,
//! earliest execution seed and shortest input stream that still exhibits it.
//!
//! The procedure is deterministic, so a shrunk counterexample is a stable
//! regression-test fixture:
//!
//! 1. **Fewest channels** — retry the divergence with `1, 2, …` channels
//!    (same generator seed, knobs and fault), keeping the first channel
//!    count that still diverges.
//! 2. **Smallest execution seed** — retry seeds in ascending order.
//! 3. **Shortest input stream** — rerun with the tick budget cut to just
//!    past the recorded failing tick, keeping the earliest observed tick.
//!
//! Each trial re-analyzes the candidate member, so shrinking is only paid on
//! divergence (a healthy campaign never shrinks anything).

use crate::campaign::{analyze_member, run_execution, Divergence, MemberSpec, OracleConfig};

/// Upper bound on channel counts tried during step 1; members bigger than
/// this shrink toward it but no further (re-analysis cost grows with size).
const MAX_CHANNEL_TRIALS: usize = 8;

/// Upper bound on execution seeds tried per candidate member.
const MAX_SEED_TRIALS: u64 = 16;

/// Whether `spec` still diverges for `exec_seed` within `ticks`, returning
/// the observed divergence.
fn reproduces(
    spec: &MemberSpec,
    exec_seed: u64,
    ticks: u64,
    cfg: &OracleConfig,
) -> Option<(u32, u64, crate::campaign::DivergenceKind)> {
    let am = analyze_member(spec, cfg).ok()?;
    run_execution(&am, exec_seed, ticks, cfg.max_steps).divergence
}

/// Shrinks a divergence (see the module docs). The returned counterexample
/// is marked `shrunk` — it is the smallest witness the pass could confirm
/// (possibly the original, when nothing smaller reproduces).
pub fn shrink_divergence(div: Divergence, cfg: &OracleConfig) -> Divergence {
    let mut best = div.clone();
    let mut found_smaller = false;

    // 1. Fewest channels.
    let channel_cap = div.member.channels.min(MAX_CHANNEL_TRIALS);
    let seed_cap = cfg.seeds.clamp(1, MAX_SEED_TRIALS);
    'channels: for channels in 1..=channel_cap {
        if channels == div.member.channels {
            break;
        }
        let candidate = MemberSpec { channels, ..div.member.clone() };
        for exec_seed in 0..seed_cap {
            if let Some((stmt, tick, kind)) = reproduces(&candidate, exec_seed, cfg.ticks, cfg) {
                best = Divergence { member: candidate, exec_seed, stmt, tick, kind, shrunk: true };
                found_smaller = true;
                break 'channels;
            }
        }
    }

    // 2. Smallest execution seed on the (possibly reduced) member.
    if !found_smaller {
        for exec_seed in 0..best.exec_seed.min(seed_cap) {
            if let Some((stmt, tick, kind)) = reproduces(&best.member, exec_seed, cfg.ticks, cfg) {
                best = Divergence {
                    member: best.member.clone(),
                    exec_seed,
                    stmt,
                    tick,
                    kind,
                    shrunk: true,
                };
                break;
            }
        }
    }

    // 3. Shortest input stream: cut the horizon to just past the failing
    // tick and keep the earliest tick the divergence is still observed at.
    let horizon = best.tick + 1;
    if horizon < cfg.ticks {
        if let Some((stmt, tick, kind)) = reproduces(&best.member, best.exec_seed, horizon, cfg) {
            best = Divergence {
                member: best.member.clone(),
                exec_seed: best.exec_seed,
                stmt,
                tick,
                kind,
                shrunk: true,
            };
        }
    }

    best.shrunk = true;
    best
}
