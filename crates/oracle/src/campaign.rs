//! The campaign driver: generate a corpus of family members, analyze each
//! one with per-statement invariant collection, then fuzz the concrete
//! interpreter against the claimed invariants.

use crate::contain::{render_abs, render_value, value_in, CellTable, PreparedInvariants};
use crate::shrink::shrink_divergence;
use astree_core::{AlarmKind, AnalysisConfig, AnalysisSession};
use astree_frontend::Frontend;
use astree_gen::{generate_with, BugKind, GenConfig, StructKnobs};
use astree_ir::{
    ExecError, Interp, InterpConfig, Program, RuntimeEvent, SeededInputs, StmtId, StmtKind,
};
use astree_memory::{CellLayout, LayoutConfig};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

/// One member of the fuzzing corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberSpec {
    /// Number of processing channels.
    pub channels: usize,
    /// Generator seed.
    pub gen_seed: u64,
    /// Injected fault, if any.
    pub bug: Option<BugKind>,
    /// Structural knobs.
    pub knobs: StructKnobs,
}

impl MemberSpec {
    /// The member's C source.
    pub fn source(&self) -> String {
        generate_with(
            &GenConfig { channels: self.channels, seed: self.gen_seed, bug: self.bug },
            &self.knobs,
        )
    }

    /// A stable human-readable label (used in reports and shrinking logs).
    pub fn label(&self) -> String {
        let mut s = format!("ch{}-seed{}", self.channels, self.gen_seed);
        if let Some(bug) = self.bug {
            s.push_str(&format!("-bug{bug:?}"));
        }
        let d = StructKnobs::default();
        if self.knobs != d {
            s.push_str(&format!(
                "-h{}t{}p{}{}",
                self.knobs.hist_depth,
                self.knobs.tbl_size,
                self.knobs.phase_mod,
                if self.knobs.cross_couple { "x" } else { "" }
            ));
        }
        s
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Corpus size (members generated and analyzed).
    pub members: usize,
    /// Execution seeds fuzzed per member.
    pub seeds: u64,
    /// Clock ticks per execution (the bounded horizon).
    pub ticks: u64,
    /// Interpreter step budget per execution.
    pub max_steps: u64,
    /// The channel sweep cycles through `1..=channels_max`.
    pub channels_max: usize,
    /// Include injected-fault variants in the corpus.
    pub include_bugs: bool,
    /// Shrink counterexamples before reporting.
    pub shrink: bool,
    /// Base analysis configuration (the oracle forces
    /// `collect_stmt_invariants` on a copy).
    pub analysis: AnalysisConfig,
    /// Fault injection for tests: pretend the invariant for the named cell
    /// is empty, planting an `Escape` divergence the moment the cell is
    /// observed. Exercises detection, shrinking and reporting end to end.
    #[doc(hidden)]
    pub debug_tighten_cell: Option<String>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            members: 24,
            seeds: 3,
            ticks: 40,
            max_steps: 50_000_000,
            channels_max: 4,
            include_bugs: true,
            shrink: true,
            analysis: AnalysisConfig::default(),
            debug_tighten_cell: None,
        }
    }
}

/// Why an execution diverged from the analyzer's claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A concrete cell value escaped the abstract invariant.
    Escape {
        /// Cell name (layout naming, e.g. `integ0` or `tbl0[3]`).
        cell: String,
        /// Rendered concrete value.
        value: String,
        /// Rendered abstract cell value.
        abs: String,
    },
    /// Execution reached a statement the analyzer claims unreachable.
    Unreachable,
    /// A concrete run-time error (or recoverable event) has no covering
    /// alarm of the same kind at the same statement.
    MissedError {
        /// Alarm-kind slug of the uncovered error.
        kind: &'static str,
    },
}

/// A soundness counterexample: a member, an execution seed, and the earliest
/// statement/tick where the concrete run left the claimed invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The corpus member.
    pub member: MemberSpec,
    /// Execution seed of the witnessing run.
    pub exec_seed: u64,
    /// Statement where the divergence was observed.
    pub stmt: u32,
    /// Clock tick of the observation (0 = before the first `wait`).
    pub tick: u64,
    /// What diverged.
    pub kind: DivergenceKind,
    /// Whether the shrinker minimized this counterexample.
    pub shrunk: bool,
}

/// Outcome of one member's analysis + fuzzing.
#[derive(Debug, Clone)]
pub struct MemberOutcome {
    /// The member.
    pub spec: MemberSpec,
    /// Executions run against it.
    pub executions: u64,
    /// Concrete states checked for containment.
    pub states_checked: u64,
    /// Executions ending in `AssumeViolated`/`StepBudget` (neither confirm
    /// nor refute soundness).
    pub inconclusive: u64,
    /// Alarms the analyzer reported, by kind slug.
    pub alarms: BTreeMap<&'static str, u64>,
    /// Divergences found (first per execution).
    pub divergences: Vec<Divergence>,
}

/// Aggregate campaign result.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// Members analyzed.
    pub members: u64,
    /// Total executions.
    pub executions: u64,
    /// Total concrete states checked for containment.
    pub states_checked: u64,
    /// Total inconclusive executions.
    pub inconclusive: u64,
    /// Alarm census across the whole corpus, by kind slug.
    pub alarm_census: BTreeMap<&'static str, u64>,
    /// All divergences, ranked (shrunk first, then by member size, seed,
    /// tick).
    pub divergences: Vec<Divergence>,
}

impl Campaign {
    /// Folds one member's outcome into the aggregate.
    pub fn absorb(&mut self, outcome: &MemberOutcome) {
        self.members += 1;
        self.executions += outcome.executions;
        self.states_checked += outcome.states_checked;
        self.inconclusive += outcome.inconclusive;
        for (k, n) in &outcome.alarms {
            *self.alarm_census.entry(k).or_insert(0) += n;
        }
        self.divergences.extend(outcome.divergences.iter().cloned());
    }

    /// Folds a member that failed to compile or analyze into the aggregate.
    /// Such a member is itself a corpus bug; it surfaces as an escape-kind
    /// divergence at the entry so campaigns never silently drop members.
    pub fn absorb_failure(&mut self, spec: &MemberSpec, error: String) {
        self.divergences.push(Divergence {
            member: spec.clone(),
            exec_seed: 0,
            stmt: 0,
            tick: 0,
            kind: DivergenceKind::Escape {
                cell: "<member>".into(),
                value: error,
                abs: "<analysis failed>".into(),
            },
            shrunk: false,
        });
    }

    /// Ranks the divergences for reporting: minimized counterexamples
    /// first, then smallest member, earliest seed/tick — the order a
    /// developer should look at them. Call once after the last absorb.
    pub fn finish(&mut self) {
        self.divergences.sort_by(|a, b| {
            (!a.shrunk, a.member.channels, a.member.gen_seed, a.exec_seed, a.tick).cmp(&(
                !b.shrunk,
                b.member.channels,
                b.member.gen_seed,
                b.exec_seed,
                b.tick,
            ))
        });
    }
}

/// The deterministic corpus for a configuration: sweeps channel counts
/// `1..=channels_max`, advances the generator seed, cycles through
/// structural-knob variants, and (when `include_bugs` is set) injects each
/// fault kind periodically.
pub fn build_corpus(cfg: &OracleConfig) -> Vec<MemberSpec> {
    let knob_variants = [
        StructKnobs::default(),
        StructKnobs { hist_depth: 8, ..StructKnobs::default() },
        StructKnobs { tbl_size: 32, ..StructKnobs::default() },
        StructKnobs { phase_mod: 5, ..StructKnobs::default() },
        StructKnobs { cross_couple: true, ..StructKnobs::default() },
        StructKnobs { hist_depth: 2, tbl_size: 8, phase_mod: 3, cross_couple: true },
    ];
    let bugs = [BugKind::DivByZero, BugKind::OutOfBounds, BugKind::IntOverflow];
    let mut corpus = Vec::with_capacity(cfg.members);
    for i in 0..cfg.members {
        let channels = 1 + i % cfg.channels_max.max(1);
        let gen_seed = 1 + i as u64;
        // Every 4th member carries an injected fault (the oracle must not
        // flag real, alarmed bugs as divergences).
        let bug = (cfg.include_bugs && i % 4 == 3).then(|| bugs[(i / 4) % bugs.len()]);
        let knobs = knob_variants[i % knob_variants.len()].clone();
        corpus.push(MemberSpec { channels, gen_seed, bug, knobs });
    }
    corpus
}

/// Maps an unrecoverable interpreter error to the alarm kind that must
/// cover it; `None` means the error is an artifact of the harness
/// (budget/contract) and the execution is inconclusive.
pub fn error_alarm_kind(e: &ExecError) -> Option<(StmtId, AlarmKind)> {
    match e {
        ExecError::DivByZero(s) => Some((*s, AlarmKind::DivByZero)),
        ExecError::OutOfBounds(s) => Some((*s, AlarmKind::OutOfBounds)),
        ExecError::ShiftRange(s) => Some((*s, AlarmKind::ShiftRange)),
        ExecError::NanProduced(s) => Some((*s, AlarmKind::InvalidFloatOp)),
        ExecError::InvalidCast(s) => Some((*s, AlarmKind::InvalidCast)),
        ExecError::AssumeViolated(_) | ExecError::StepBudget => None,
    }
}

/// The alarm kind covering a recoverable runtime event.
pub fn event_alarm_kind(e: RuntimeEvent) -> AlarmKind {
    match e {
        RuntimeEvent::IntOverflow => AlarmKind::IntOverflow,
        RuntimeEvent::FloatOverflow => AlarmKind::FloatOverflow,
    }
}

/// Everything needed to fuzz one analyzed member.
pub struct AnalyzedMember {
    /// The compiled program.
    pub program: Program,
    /// Abstract cell layout (matching the analysis configuration).
    pub layout: CellLayout,
    /// Concrete-to-abstract cell mapping.
    pub table: CellTable,
    /// Per-statement rendered invariants.
    pub prepared: PreparedInvariants,
    /// Alarm coverage set `(stmt, kind)`.
    pub alarm_set: HashSet<(u32, AlarmKind)>,
    /// Alarm counts by kind slug.
    pub alarms: BTreeMap<&'static str, u64>,
    /// `Wait` statement ids, for tick attribution in the observer.
    pub wait_stmts: HashSet<u32>,
}

/// Compiles and analyzes one member with per-statement invariant collection.
///
/// # Errors
///
/// Returns a message when the source fails to compile or the analysis
/// produced no per-statement invariants.
pub fn analyze_member(spec: &MemberSpec, cfg: &OracleConfig) -> Result<AnalyzedMember, String> {
    let src = spec.source();
    let program =
        Frontend::new().compile_str(&src).map_err(|e| format!("{}: {e:?}", spec.label()))?;
    let mut analysis = cfg.analysis.clone();
    analysis.collect_stmt_invariants = true;
    let layout =
        CellLayout::new(&program, &LayoutConfig { shrink_threshold: analysis.shrink_threshold });
    let table = CellTable::new(&program, &layout, analysis.shrink_threshold);
    let result = AnalysisSession::builder(&program).config(analysis).build().run();
    let stmt_invariants = result
        .stmt_invariants
        .as_ref()
        .ok_or_else(|| format!("{}: no per-statement invariants collected", spec.label()))?;
    let mut prepared = PreparedInvariants::new(stmt_invariants, &layout);
    if let Some(name) = &cfg.debug_tighten_cell {
        prepared.debug_empty_cell(&layout, name);
    }
    let mut alarm_set = HashSet::new();
    let mut alarms: BTreeMap<&'static str, u64> = BTreeMap::new();
    for a in &result.alarms {
        alarm_set.insert((a.stmt.0, a.kind));
        *alarms.entry(a.kind.slug()).or_insert(0) += 1;
    }
    let mut wait_stmts = HashSet::new();
    for f in &program.funcs {
        astree_ir::stmt::for_each_stmt(&f.body, &mut |s| {
            if matches!(s.kind, StmtKind::Wait) {
                wait_stmts.insert(s.id.0);
            }
        });
    }
    Ok(AnalyzedMember { program, layout, table, prepared, alarm_set, alarms, wait_stmts })
}

/// Result of one fuzzed execution.
#[derive(Debug, Clone)]
pub struct ExecRecord {
    /// Concrete states (cells) checked for containment.
    pub states_checked: u64,
    /// First divergence of the run, if any.
    pub divergence: Option<(u32, u64, DivergenceKind)>,
    /// The run ended in a harness artifact (`AssumeViolated`/`StepBudget`).
    pub inconclusive: bool,
}

/// Runs one seeded execution of an analyzed member, checking every observed
/// concrete state against the claimed invariants.
pub fn run_execution(
    am: &AnalyzedMember,
    exec_seed: u64,
    ticks: u64,
    max_steps: u64,
) -> ExecRecord {
    struct Obs {
        states_checked: u64,
        first: Option<(u32, u64, DivergenceKind)>,
        tick: u64,
    }
    let obs = Rc::new(RefCell::new(Obs { states_checked: 0, first: None, tick: 0 }));
    let sink = Rc::clone(&obs);
    let mut inputs = SeededInputs::new(exec_seed);
    let mut interp =
        Interp::new(&am.program, InterpConfig { max_steps, max_ticks: ticks }, &mut inputs);
    let prepared = &am.prepared;
    let table = &am.table;
    let layout = &am.layout;
    let wait_stmts = &am.wait_stmts;
    interp.set_observer(move |stmt, store| {
        let mut o = sink.borrow_mut();
        let is_wait = wait_stmts.contains(&stmt.0);
        if o.first.is_none() {
            match prepared.at(stmt) {
                None => {
                    let tick = o.tick;
                    o.first = Some((stmt.0, tick, DivergenceKind::Unreachable));
                }
                Some(cells) => {
                    for ((var, path), value) in store {
                        let Some(cell) = table.lookup(*var, path) else { continue };
                        o.states_checked += 1;
                        let abs = &cells[cell.0 as usize];
                        if !value_in(abs, value) {
                            let tick = o.tick;
                            o.first = Some((
                                stmt.0,
                                tick,
                                DivergenceKind::Escape {
                                    cell: layout.info(cell).name.clone(),
                                    value: render_value(value),
                                    abs: render_abs(abs),
                                },
                            ));
                            break;
                        }
                    }
                }
            }
        }
        if is_wait {
            o.tick += 1;
        }
    });
    let run = interp.run();
    let events: Vec<(StmtId, RuntimeEvent)> = interp.events().to_vec();
    let final_tick = interp.ticks();
    drop(interp);
    let (states_checked, mut first) = {
        let o = obs.borrow();
        (o.states_checked, o.first.clone())
    };
    let mut inconclusive = false;
    match run {
        Ok(()) => {}
        Err(e) => match error_alarm_kind(&e) {
            Some((stmt, kind)) => {
                if first.is_none() && !am.alarm_set.contains(&(stmt.0, kind)) {
                    first = Some((
                        stmt.0,
                        final_tick,
                        DivergenceKind::MissedError { kind: kind.slug() },
                    ));
                }
            }
            None => inconclusive = true,
        },
    }
    if first.is_none() {
        for (stmt, ev) in events {
            let kind = event_alarm_kind(ev);
            if !am.alarm_set.contains(&(stmt.0, kind)) {
                first =
                    Some((stmt.0, final_tick, DivergenceKind::MissedError { kind: kind.slug() }));
                break;
            }
        }
    }
    ExecRecord { states_checked, divergence: first, inconclusive }
}

/// Analyzes and fuzzes one member across all execution seeds.
///
/// # Errors
///
/// Propagates [`analyze_member`] failures.
pub fn run_member(spec: &MemberSpec, cfg: &OracleConfig) -> Result<MemberOutcome, String> {
    let am = analyze_member(spec, cfg)?;
    let mut outcome = MemberOutcome {
        spec: spec.clone(),
        executions: 0,
        states_checked: 0,
        inconclusive: 0,
        alarms: am.alarms.clone(),
        divergences: Vec::new(),
    };
    for exec_seed in 0..cfg.seeds {
        let rec = run_execution(&am, exec_seed, cfg.ticks, cfg.max_steps);
        outcome.executions += 1;
        outcome.states_checked += rec.states_checked;
        if rec.inconclusive {
            outcome.inconclusive += 1;
        }
        if let Some((stmt, tick, kind)) = rec.divergence {
            let div =
                Divergence { member: spec.clone(), exec_seed, stmt, tick, kind, shrunk: false };
            let div = if cfg.shrink { shrink_divergence(div, cfg) } else { div };
            outcome.divergences.push(div);
            // One counterexample per member is enough; further seeds would
            // almost surely rediscover the same bug.
            break;
        }
    }
    Ok(outcome)
}

/// Runs the whole campaign: corpus generation, analysis, fuzzing,
/// shrinking, aggregation. `progress` is called after each member with its
/// outcome (use it for streaming logs; pass `|_| {}` otherwise).
pub fn run_campaign(cfg: &OracleConfig, mut progress: impl FnMut(&MemberOutcome)) -> Campaign {
    let corpus = build_corpus(cfg);
    let mut campaign = Campaign::default();
    for spec in &corpus {
        match run_member(spec, cfg) {
            Ok(outcome) => {
                campaign.absorb(&outcome);
                progress(&outcome);
            }
            Err(e) => campaign.absorb_failure(spec, e),
        }
    }
    campaign.finish();
    campaign
}
