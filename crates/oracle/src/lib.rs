//! Differential soundness oracle for the analyzer.
//!
//! The paper's core claim (Sect. 5.4) is that every concrete execution of
//! the subject program is contained in the computed invariants. This crate
//! tests that claim at corpus scale: it generates family members
//! ([`astree_gen`]), analyzes each one with per-statement invariant
//! collection ([`astree_core`]'s `collect_stmt_invariants`), then drives the
//! reference interpreter ([`astree_ir::Interp`]) on seeded random volatile
//! inputs with an observer asserting, at *every executed statement*, that
//! the concrete store lies inside the rendered abstract state — plus the
//! dual obligation that every concrete run-time error is covered by an
//! alarm of the same kind at the same statement.
//!
//! On divergence the counterexample is shrunk (fewest channels, smallest
//! execution seed, shortest input stream) and reported through the
//! `astree-campaign/1` JSON schema.
//!
//! # Example
//!
//! ```
//! use astree_oracle::{run_campaign, OracleConfig};
//!
//! let cfg = OracleConfig {
//!     members: 2,
//!     seeds: 1,
//!     ticks: 5,
//!     include_bugs: false,
//!     ..OracleConfig::default()
//! };
//! let campaign = run_campaign(&cfg, |_| {});
//! assert_eq!(campaign.members, 2);
//! assert!(campaign.divergences.is_empty());
//! ```

mod campaign;
mod contain;
mod report;
mod shrink;

pub use campaign::{
    analyze_member, build_corpus, error_alarm_kind, event_alarm_kind, run_campaign, run_execution,
    run_member, AnalyzedMember, Campaign, Divergence, DivergenceKind, ExecRecord, MemberOutcome,
    MemberSpec, OracleConfig,
};
pub use contain::{render_abs, render_value, value_in, CellTable, PreparedInvariants};
pub use report::{campaign_to_json, parse_summary, CampaignSummary, SCHEMA};
pub use shrink::shrink_divergence;

#[cfg(test)]
mod tests {
    use super::*;
    use astree_gen::StructKnobs;
    use astree_ir::{Value, VarId};
    use astree_obs::Json;

    fn tiny_cfg() -> OracleConfig {
        OracleConfig {
            members: 1,
            seeds: 2,
            ticks: 6,
            channels_max: 1,
            include_bugs: false,
            shrink: true,
            ..OracleConfig::default()
        }
    }

    fn tiny_member() -> MemberSpec {
        MemberSpec { channels: 1, gen_seed: 1, bug: None, knobs: StructKnobs::default() }
    }

    #[test]
    fn cell_table_maps_scalars_arrays_and_records() {
        let spec = tiny_member();
        let am = analyze_member(&spec, &tiny_cfg()).unwrap();
        let p = &am.program;
        // Scalar: the volatile input of channel 0.
        let in0 = p
            .vars
            .iter()
            .position(|v| v.name == "in0")
            .map(|i| VarId(i as u32))
            .expect("in0 exists");
        let cell = am.table.lookup(in0, &[]).expect("in0 maps");
        assert_eq!(am.layout.info(cell).name, "in0");
        // Expanded array: tbl0[3].
        let tbl0 = p
            .vars
            .iter()
            .position(|v| v.name == "tbl0")
            .map(|i| VarId(i as u32))
            .expect("tbl0 exists");
        let cell = am.table.lookup(tbl0, &[3]).expect("tbl0[3] maps");
        assert_eq!(am.layout.info(cell).name, "tbl0[3]");
        // Record: range0.lo is field 0.
        let range0 = p
            .vars
            .iter()
            .position(|v| v.name == "range0")
            .map(|i| VarId(i as u32))
            .expect("range0 exists");
        let cell = am.table.lookup(range0, &[0]).expect("range0.lo maps");
        assert_eq!(am.layout.info(cell).name, "range0.lo");
    }

    #[test]
    fn clean_member_has_no_divergences() {
        let outcome = run_member(&tiny_member(), &tiny_cfg()).unwrap();
        assert!(outcome.divergences.is_empty(), "{:?}", outcome.divergences);
        assert_eq!(outcome.executions, 2);
        assert!(outcome.states_checked > 0);
        assert_eq!(outcome.inconclusive, 0);
    }

    #[test]
    fn bug_member_alarms_cover_concrete_errors() {
        // An injected, alarmed fault must NOT read as a missed error.
        let spec = MemberSpec {
            channels: 1,
            gen_seed: 3,
            bug: Some(astree_gen::BugKind::DivByZero),
            knobs: StructKnobs::default(),
        };
        let mut cfg = tiny_cfg();
        cfg.seeds = 20; // enough seeds that the division by zero fires
        let outcome = run_member(&spec, &cfg).unwrap();
        assert!(
            outcome.divergences.is_empty(),
            "alarmed bug misread as divergence: {:?}",
            outcome.divergences
        );
        assert!(outcome.alarms.contains_key("div_by_zero"), "{:?}", outcome.alarms);
    }

    #[test]
    fn planted_divergence_is_detected_and_shrinks_stably() {
        let mut cfg = tiny_cfg();
        cfg.channels_max = 2;
        cfg.debug_tighten_cell = Some("count0".into());
        let spec =
            MemberSpec { channels: 2, gen_seed: 1, bug: None, knobs: StructKnobs::default() };
        let outcome = run_member(&spec, &cfg).unwrap();
        assert_eq!(outcome.divergences.len(), 1);
        let d = &outcome.divergences[0];
        assert!(d.shrunk);
        // Shrinks to the single-channel member (count0 exists there too),
        // the first execution seed, and the earliest tick.
        assert_eq!(d.member.channels, 1, "{d:?}");
        assert_eq!(d.exec_seed, 0, "{d:?}");
        assert_eq!(d.tick, 0, "{d:?}");
        assert!(
            matches!(&d.kind, DivergenceKind::Escape { cell, .. } if cell == "count0"),
            "{d:?}"
        );
        // Determinism: the same campaign shrinks to the same witness.
        let again = run_member(&spec, &cfg).unwrap();
        assert_eq!(outcome.divergences, again.divergences);
    }

    #[test]
    fn report_round_trips_through_json_parse() {
        let mut cfg = tiny_cfg();
        cfg.members = 2;
        let campaign = run_campaign(&cfg, |_| {});
        let json = campaign_to_json(&campaign, None);
        let text = json.to_compact();
        let summary = parse_summary(&text).expect("parses back");
        assert_eq!(summary.members, campaign.members);
        assert_eq!(summary.executions, campaign.executions);
        assert_eq!(summary.states_checked, campaign.states_checked);
        assert_eq!(summary.divergences, campaign.divergences.len() as u64);
    }

    #[test]
    fn baseline_delta_reports_alarm_drift() {
        let baseline = Json::parse(
            r#"{"schema":"astree-campaign/1","members":1,"executions":1,
                "states_checked":1,"inconclusive":0,"divergence_count":0,
                "alarm_census":{"div_by_zero":2,"int_overflow":1}}"#,
        )
        .unwrap();
        let mut c = Campaign::default();
        c.alarm_census.insert("div_by_zero", 3);
        let json = campaign_to_json(&c, Some(&baseline));
        let delta = json.get("baseline_delta").expect("delta present");
        assert_eq!(delta.get("div_by_zero"), Some(&Json::Int(1)));
        assert_eq!(delta.get("int_overflow"), Some(&Json::Int(-1)));
    }

    #[test]
    fn parse_summary_rejects_foreign_schemas() {
        assert!(parse_summary(r#"{"schema":"astree-metrics/1"}"#).is_err());
        assert!(parse_summary("not json").is_err());
        assert!(parse_summary(r#"{"schema":"astree-campaign/1"}"#).is_err());
    }

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let cfg = OracleConfig { members: 24, ..OracleConfig::default() };
        let a = build_corpus(&cfg);
        let b = build_corpus(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 24);
        assert!(a.iter().any(|m| m.bug.is_some()), "corpus should carry fault variants");
        assert!(
            a.iter().any(|m| m.knobs != StructKnobs::default()),
            "corpus should vary structural knobs"
        );
    }

    #[test]
    fn value_in_matches_domain_semantics() {
        use astree_domains::{Clocked, FloatItv, IntItv};
        use astree_memory::CellVal;
        let int_cell = CellVal::Int(Clocked::of_val(IntItv::new(-5, 5), IntItv::new(0, 100)));
        assert!(value_in(&int_cell, &Value::Int(0)));
        assert!(!value_in(&int_cell, &Value::Int(6)));
        // Type mismatch is a divergence, not a pass.
        assert!(!value_in(&int_cell, &Value::Float(0.0)));
        let float_cell = CellVal::Float(FloatItv::new(0.0, 1.0));
        assert!(value_in(&float_cell, &Value::Float(0.5)));
        // −0.0 is numerically inside [0.0, 1.0] (numeric order, not bitwise).
        assert!(value_in(&float_cell, &Value::Float(-0.0)));
        assert!(!value_in(&float_cell, &Value::Float(1.5)));
    }
}
