//! Bounded-worker batch execution with panic and timeout isolation.
//!
//! Analyzing a fleet of programs (a generated family, a regression corpus)
//! is embarrassingly parallel at the job level: each job is independent, so
//! the only scheduling concerns are bounding concurrency, keeping one
//! misbehaving job from taking down the batch, and reporting results in a
//! deterministic (submission) order regardless of completion order.
//!
//! Workers pull job indices from a shared counter. Each job runs under
//! `catch_unwind`, so a panicking analysis fails that job only. With a
//! timeout configured, the job body runs on a dedicated thread and the
//! worker waits with `recv_timeout`; on expiry the job is marked
//! [`JobStatus::TimedOut`] and the runaway thread is detached (it cannot be
//! killed, but it no longer occupies a worker slot).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Batch executor configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Maximum number of jobs in flight at once (minimum 1).
    pub workers: usize,
    /// Per-job wall-clock limit; `None` runs jobs on the worker thread
    /// itself with no limit.
    pub timeout: Option<Duration>,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { workers: 1, timeout: None }
    }
}

/// A unit of batch work: a name for reporting plus the closure to run.
pub struct Job<R> {
    /// Display name (e.g. the program's identifier).
    pub name: String,
    /// The work itself.
    pub run: Box<dyn FnOnce() -> R + Send + 'static>,
}

impl<R> Job<R> {
    /// A named job.
    pub fn new(name: impl Into<String>, run: impl FnOnce() -> R + Send + 'static) -> Job<R> {
        Job { name: name.into(), run: Box::new(run) }
    }
}

/// How a job ended.
#[derive(Debug)]
pub enum JobStatus<R> {
    /// The job returned a value.
    Done(R),
    /// The job panicked; the payload's message, when it was a string.
    Panicked(String),
    /// The job exceeded the configured timeout.
    TimedOut,
}

/// Outcome of one job.
#[derive(Debug)]
pub struct JobResult<R> {
    /// Job name as submitted.
    pub name: String,
    /// Completion status.
    pub status: JobStatus<R>,
    /// Wall-clock time the job occupied a worker.
    pub wall: Duration,
    /// Index of the worker that ran the job (informational; depends on
    /// scheduling, not deterministic).
    pub worker: usize,
}

impl<R> JobResult<R> {
    /// `true` when the job produced a value.
    pub fn is_done(&self) -> bool {
        matches!(self.status, JobStatus::Done(_))
    }
}

/// Aggregated outcome of a batch run.
#[derive(Debug)]
pub struct BatchReport<R> {
    /// Per-job results in **submission order**.
    pub results: Vec<JobResult<R>>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Busy time per worker (time spent executing jobs, including waiting
    /// out timeouts).
    pub worker_busy: Vec<Duration>,
    /// Number of workers actually spawned.
    pub workers: usize,
}

impl<R> BatchReport<R> {
    /// Sum of per-job wall times — the sequential cost of the batch.
    pub fn total_job_time(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// Observed speedup: sequential cost over batch wall time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.total_job_time().as_secs_f64() / wall
    }

    /// Number of jobs that produced a value.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_done()).count()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a job inline on the worker, catching panics.
fn run_inline<R>(job: Box<dyn FnOnce() -> R + Send>) -> JobStatus<R> {
    match catch_unwind(AssertUnwindSafe(job)) {
        Ok(v) => JobStatus::Done(v),
        Err(e) => JobStatus::Panicked(panic_message(e)),
    }
}

/// Runs a job on a dedicated thread with a wall-clock limit.
fn run_with_timeout<R: Send + 'static>(
    job: Box<dyn FnOnce() -> R + Send + 'static>,
    timeout: Duration,
) -> JobStatus<R> {
    let (tx, rx) = mpsc::channel();
    // The thread is detached on timeout: a stuck analysis cannot be killed,
    // but it stops occupying a worker slot and its eventual send fails
    // harmlessly into a dropped receiver.
    thread::spawn(move || {
        let status = run_inline(job);
        let _ = tx.send(status);
    });
    match rx.recv_timeout(timeout) {
        Ok(status) => status,
        Err(mpsc::RecvTimeoutError::Timeout) => JobStatus::TimedOut,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The sender dropped without sending: only possible if the
            // channel send itself failed, which it cannot.
            JobStatus::Panicked("worker channel disconnected".to_string())
        }
    }
}

/// Executes `jobs` with at most `config.workers` in flight; results are
/// reported in submission order.
pub fn run_batch<R: Send + 'static>(config: &BatchConfig, jobs: Vec<Job<R>>) -> BatchReport<R> {
    let n = jobs.len();
    let workers = config.workers.max(1).min(n.max(1));
    let started = Instant::now();

    // Slots for results, indexed by submission order; the queue is a shared
    // atomic cursor over the job list.
    let slots: Vec<Mutex<Option<JobResult<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queue: Vec<Mutex<Option<Job<R>>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let timeout = config.timeout;

    let mut worker_busy = vec![Duration::ZERO; workers];
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let slots = &slots;
                let queue = &queue;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return busy;
                        }
                        let job = queue[i].lock().unwrap().take().expect("job taken twice");
                        let t0 = Instant::now();
                        let status = match timeout {
                            Some(limit) => run_with_timeout(job.run, limit),
                            None => run_inline(job.run),
                        };
                        let wall = t0.elapsed();
                        busy += wall;
                        *slots[i].lock().unwrap() =
                            Some(JobResult { name: job.name, status, wall, worker: w });
                    }
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            worker_busy[w] = h.join().expect("batch worker itself panicked");
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("job slot unfilled"))
        .collect();
    BatchReport { results, wall: started.elapsed(), worker_busy, workers }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("job{i}")).collect()
    }

    #[test]
    fn results_in_submission_order() {
        let jobs: Vec<Job<usize>> = (0..8)
            .map(|i| {
                Job::new(format!("job{i}"), move || {
                    thread::sleep(Duration::from_millis(8 - i as u64));
                    i
                })
            })
            .collect();
        let report = run_batch(&BatchConfig { workers: 4, timeout: None }, jobs);
        assert_eq!(report.results.len(), 8);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"));
            match &r.status {
                JobStatus::Done(v) => assert_eq!(*v, i),
                other => panic!("job{i} not done: {other:?}"),
            }
        }
        assert_eq!(report.completed(), 8);
        assert_eq!(report.worker_busy.len(), 4);
    }

    #[test]
    fn panic_fails_job_not_batch() {
        let jobs: Vec<Job<u32>> = names(5)
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                Job::new(name, move || {
                    if i == 2 {
                        panic!("injected failure in job 2");
                    }
                    i as u32 * 10
                })
            })
            .collect();
        let report = run_batch(&BatchConfig { workers: 2, timeout: None }, jobs);
        assert_eq!(report.completed(), 4);
        match &report.results[2].status {
            JobStatus::Panicked(msg) => assert!(msg.contains("injected failure")),
            other => panic!("expected panic status, got {other:?}"),
        }
        for i in [0usize, 1, 3, 4] {
            assert!(report.results[i].is_done(), "job {i} should have completed");
        }
    }

    #[test]
    fn timeout_fails_slow_job_only() {
        let jobs: Vec<Job<&'static str>> = vec![
            Job::new("fast", || "ok"),
            Job::new("stuck", || {
                thread::sleep(Duration::from_secs(30));
                "too late"
            }),
            Job::new("fast2", || "ok"),
        ];
        let config = BatchConfig { workers: 2, timeout: Some(Duration::from_millis(50)) };
        let t0 = Instant::now();
        let report = run_batch(&config, jobs);
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(report.results[0].is_done());
        assert!(matches!(report.results[1].status, JobStatus::TimedOut));
        assert!(report.results[2].is_done());
    }

    #[test]
    fn single_worker_is_sequential() {
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Job<()>> = (0..4)
            .map(|i| {
                let order = std::sync::Arc::clone(&order);
                Job::new(format!("j{i}"), move || order.lock().unwrap().push(i))
            })
            .collect();
        let report = run_batch(&BatchConfig { workers: 1, timeout: None }, jobs);
        assert_eq!(report.workers, 1);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn speedup_and_busy_accounting() {
        let jobs: Vec<Job<()>> = (0..4)
            .map(|i| {
                Job::new(format!("j{i}"), move || thread::sleep(Duration::from_millis(20 + i)))
            })
            .collect();
        let report = run_batch(&BatchConfig { workers: 2, timeout: None }, jobs);
        assert!(report.total_job_time() >= Duration::from_millis(80));
        assert!(report.speedup() > 0.5);
        let busy: Duration = report.worker_busy.iter().sum();
        // Busy time accounts for every job's wall time.
        assert!(busy >= report.total_job_time().mul_f64(0.9));
    }
}
