//! Scheduling substrate for parallel and batch analysis.
//!
//! Monniaux's parallel implementation of ASTRÉE splits the synchronous
//! control loop's top-level dispatch into slices analyzed on independent
//! processors and joins the resulting abstract states at the merge point in
//! a *fixed* order, so the parallel analyzer reports bit-identical alarms
//! and invariants to the sequential one. This crate provides the generic,
//! domain-agnostic machinery for that scheme using only `std::thread`:
//!
//! - [`pool`]: a persistent work-stealing worker pool with per-worker
//!   deques (LIFO-local, FIFO-steal) and indexed result slots, so results
//!   come back in input order regardless of steal interleaving;
//! - [`scatter`]: a deterministic fork-join over an ephemeral pool —
//!   results come back in input order, never completion order;
//! - [`plan`]: partitions a statement sequence into contiguous *stages*
//!   whose members are pairwise independent, given a conflict oracle, and
//!   chunks stages into near-equal (or cost-balanced) ranges;
//! - [`batch`]: a bounded-worker job queue for analyzing fleets of programs
//!   with per-job panic isolation and timeouts.
//!
//! The semantic side (which statements conflict, how abstract states merge)
//! stays in `astree-core`; nothing here depends on the analysis domains.

pub mod batch;
pub mod plan;
pub mod pool;
pub mod scatter;

pub use batch::{run_batch, BatchConfig, BatchReport, Job, JobResult, JobStatus};
pub use plan::{chunk_ranges, cost_chunk_ranges, plan_stages, Stage};
pub use pool::{PoolStats, WorkerPool};
pub use scatter::scatter;
