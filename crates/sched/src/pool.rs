//! Persistent work-stealing worker pool.
//!
//! [`WorkerPool`] replaces the one-thread-per-slice fork-join in
//! [`crate::scatter`] for long-lived sessions: the pool is created once
//! (sized by `--jobs`) and every parallel stage is scattered onto it, so
//! slice execution pays queue pushes instead of thread spawns, and uneven
//! slice costs are load-balanced by stealing.
//!
//! Scheduling is the classic work-stealing shape:
//!
//! - one deque per worker; tasks are placed round-robin (or by a seeded
//!   LCG under `debug_force_steal`, to exercise adversarial placements);
//! - a worker pops its **own** deque from the back (LIFO — cache-warm,
//!   most recently pushed sub-slice first) and steals from **other**
//!   deques at the front (FIFO — the oldest, typically fattest task);
//! - results are written into **indexed slots**, so
//!   [`WorkerPool::scatter`] returns them in input order no matter which
//!   worker ran what. Determinism of the downstream merge therefore does
//!   not depend on worker count or steal interleaving.
//!
//! The caller participates as logical worker 0 while a scatter is in
//! flight (it runs tasks instead of blocking), which keeps `--jobs N`
//! meaning "N CPUs busy", not "N extra threads".

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Erased unit of work. The `usize` argument is the id of the worker that
/// executes the task (0 = the scattering caller).
type Task = Box<dyn FnOnce(usize) + Send + 'static>;

/// Lock helper: a poisoned mutex only means some task panicked while
/// holding it; the protected data (queues, counters) stays coherent
/// because every critical section is a few plain writes.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Gate {
    /// Tasks pushed but not yet claimed by any worker. Claims decrement
    /// this *before* scanning the deques, so `sum(queue lengths)` is
    /// always `>= queued + in-flight claims` and every claim holder
    /// eventually finds a task.
    queued: usize,
    shutdown: bool,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Task>>>,
    gate: Mutex<Gate>,
    ready: Condvar,
    steals: AtomicU64,
    tasks: AtomicU64,
    max_queue_depth: AtomicU64,
    busy_nanos: Vec<AtomicU64>,
}

impl Shared {
    fn push(&self, qi: usize, task: Task) {
        let depth = {
            let mut q = lock(&self.queues[qi]);
            q.push_back(task);
            q.len() as u64
        };
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        let mut g = lock(&self.gate);
        g.queued += 1;
        drop(g);
        self.ready.notify_one();
    }

    /// Removes one task, preferring the back of `wid`'s own deque (LIFO)
    /// and falling back to the front of the others (FIFO steal). Only
    /// called with a claim from [`Gate::queued`] held, so a task is
    /// guaranteed to surface; the rescan loop covers the window where a
    /// concurrent claim holder momentarily emptied the deque we scanned.
    fn take(&self, wid: usize) -> Task {
        loop {
            if let Some(t) = lock(&self.queues[wid]).pop_back() {
                return t;
            }
            for off in 1..self.queues.len() {
                let qi = (wid + off) % self.queues.len();
                if let Some(t) = lock(&self.queues[qi]).pop_front() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return t;
                }
            }
            thread::yield_now();
        }
    }

    /// Blocking claim for pool threads; returns `None` on shutdown.
    fn fetch_blocking(&self, wid: usize) -> Option<Task> {
        let mut g = lock(&self.gate);
        loop {
            if g.queued > 0 {
                g.queued -= 1;
                drop(g);
                return Some(self.take(wid));
            }
            if g.shutdown {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking claim for the scattering caller.
    fn try_fetch(&self, wid: usize) -> Option<Task> {
        let mut g = lock(&self.gate);
        if g.queued == 0 {
            return None;
        }
        g.queued -= 1;
        drop(g);
        Some(self.take(wid))
    }

    fn run(&self, wid: usize, task: Task) {
        let start = Instant::now();
        task(wid);
        self.busy_nanos[wid].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Point-in-time scheduling counters, reported in the
/// `astree-metrics/1` scheduler section as `scheduler.pool`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Logical workers (pool threads + the participating caller).
    pub workers: usize,
    /// Tasks pushed over the pool's lifetime.
    pub tasks: u64,
    /// Tasks taken from a deque other than the claiming worker's own.
    pub steals: u64,
    /// Deepest any single deque ever got.
    pub max_queue_depth: u64,
    /// Per-worker nanoseconds spent executing tasks (index 0 = caller).
    pub busy_nanos: Vec<u64>,
}

impl PoolStats {
    /// Counters accumulated since an `earlier` snapshot of the same pool.
    ///
    /// A pool can outlive one analysis (the `serve` daemon keeps a warm pool
    /// across requests), so per-run reporting subtracts the snapshot taken
    /// at session start. `max_queue_depth` is a high-water mark, not a sum,
    /// and is carried over as-is.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            workers: self.workers,
            tasks: self.tasks.saturating_sub(earlier.tasks),
            steals: self.steals.saturating_sub(earlier.steals),
            max_queue_depth: self.max_queue_depth,
            busy_nanos: self
                .busy_nanos
                .iter()
                .enumerate()
                .map(|(i, &n)| n.saturating_sub(earlier.busy_nanos.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// A persistent pool of `workers - 1` OS threads plus the caller.
///
/// `new(1)` spawns nothing and [`WorkerPool::scatter`] runs inline, so a
/// `--jobs 1` session is the exact sequential code path.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate { queued: 0, shutdown: false }),
            ready: Condvar::new(),
            steals: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            busy_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (1..workers)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("astree-pool-{wid}"))
                    .spawn(move || {
                        while let Some(task) = shared.fetch_blocking(wid) {
                            shared.run(wid, task);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles, workers }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over `items` on the pool and returns the results in input
    /// order. Panics in a task are captured per-task and the first one (in
    /// input order) is re-raised after every task has finished — same
    /// contract as [`crate::scatter::scatter`].
    pub fn scatter<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.scatter_seeded(None, items, f)
    }

    /// [`WorkerPool::scatter`] with explicit task placement: `None` places
    /// task `i` on deque `i % workers` (round-robin); `Some(seed)` places
    /// by a seeded LCG, which concentrates tasks on arbitrary deques and
    /// forces adversarial steal orders (the `debug_force_steal` knob).
    /// Output is bit-identical either way — that is the point of the knob.
    pub fn scatter_seeded<T, R, F>(&self, seed: Option<u64>, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 || self.workers <= 1 {
            return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let slots: Vec<Mutex<Option<thread::Result<R>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let remaining = Mutex::new(n);
        let done = Condvar::new();
        {
            let (f, slots, remaining, done) = (&f, &slots, &remaining, &done);
            let mut lcg = seed.map(Lcg::new);
            for (i, item) in items.into_iter().enumerate() {
                let task: Box<dyn FnOnce(usize) + Send + '_> = Box::new(move |_wid| {
                    let out = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                    *lock(&slots[i]) = Some(out);
                    let mut rem = lock(remaining);
                    *rem -= 1;
                    if *rem == 0 {
                        done.notify_all();
                    }
                });
                // SAFETY: the task borrows `f`, `slots`, `remaining` and
                // `done`, all of which live on this stack frame. The loop
                // below does not return until `remaining` reaches 0, and
                // every task decrements `remaining` exactly once after its
                // last use of the borrows (panics included, via
                // catch_unwind) — so no task outlives the frame.
                let task: Task = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce(usize) + Send + '_>, Task>(task)
                };
                let qi = match &mut lcg {
                    Some(l) => l.next_index(self.workers),
                    None => i % self.workers,
                };
                self.shared.push(qi, task);
            }
            // Participate as worker 0 until every task (ours or a
            // concurrent scatter's) has drained; then wait for stragglers
            // still running on pool threads.
            loop {
                if *lock(remaining) == 0 {
                    break;
                }
                if let Some(task) = self.shared.try_fetch(0) {
                    self.shared.run(0, task);
                } else {
                    let rem = lock(remaining);
                    if *rem > 0 {
                        drop(done.wait(rem).unwrap_or_else(|e| e.into_inner()));
                    }
                }
            }
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        let out: Vec<R> = slots
            .into_iter()
            .filter_map(|slot| match lock(&slot).take().expect("scatter task completed") {
                Ok(r) => Some(r),
                Err(e) => {
                    if panic.is_none() {
                        panic = Some(e);
                    }
                    None
                }
            })
            .collect();
        if let Some(e) = panic {
            resume_unwind(e);
        }
        out
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers,
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            busy_nanos: self.shared.busy_nanos.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.shared.gate).shutdown = true;
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Minimal 64-bit LCG (Knuth's MMIX constants) for deterministic
/// adversarial task placement; the high bits are the usable ones.
struct Lcg {
    state: u64,
}

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    fn next_index(&mut self, bound: usize) -> usize {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((self.state >> 33) as usize) % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_in_input_order_with_stealing() {
        let pool = WorkerPool::new(4);
        // Earlier items sleep longer, so later items finish first and
        // idle workers must steal to stay busy.
        let out = pool.scatter((0..16u64).collect(), |i, x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            i as u64 * 100 + x
        });
        assert_eq!(out, (0..16).map(|x| x * 101).collect::<Vec<_>>());
        assert_eq!(pool.stats().tasks, 16);
    }

    #[test]
    fn pool_is_reusable_across_scatters() {
        let pool = WorkerPool::new(3);
        for round in 0..8u64 {
            let out = pool.scatter((0..6u64).collect(), |_, x| x + round);
            assert_eq!(out, (0..6).map(|x| x + round).collect::<Vec<_>>());
        }
        assert_eq!(pool.stats().tasks, 48);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        let main_thread = std::thread::current().id();
        let out = pool.scatter(vec![1, 2, 3], |i, x| {
            assert_eq!(std::thread::current().id(), main_thread);
            i + x
        });
        assert_eq!(out, vec![1, 3, 5]);
        assert_eq!(pool.stats().tasks, 0, "inline path bypasses the deques");
    }

    #[test]
    fn seeded_placement_is_deterministic_and_bit_identical() {
        let pool = WorkerPool::new(4);
        let base = pool.scatter((0..32u64).collect(), |i, x| (i as u64) ^ (x << 3));
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let forced =
                pool.scatter_seeded(Some(seed), (0..32u64).collect(), |i, x| (i as u64) ^ (x << 3));
            assert_eq!(forced, base, "seed {seed} changed results");
        }
    }

    #[test]
    fn steals_are_recorded_under_skewed_placement() {
        let pool = WorkerPool::new(4);
        // All tasks land on one deque; three workers plus the caller can
        // only make progress by stealing.
        let _ = pool.scatter_seeded(Some(42), (0..64u64).collect(), |_, x| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            x
        });
        let stats = pool.stats();
        assert!(stats.steals > 0, "expected steals, got {stats:?}");
        assert!(stats.max_queue_depth > 1, "expected queueing, got {stats:?}");
    }

    #[test]
    fn busy_nanos_cover_all_workers_vec() {
        let pool = WorkerPool::new(3);
        let _ = pool.scatter((0..12u64).collect(), |_, x| {
            std::thread::sleep(std::time::Duration::from_micros(500));
            x
        });
        let stats = pool.stats();
        assert_eq!(stats.busy_nanos.len(), 3);
        assert!(stats.busy_nanos.iter().sum::<u64>() > 0);
    }

    #[test]
    #[should_panic(expected = "pool boom")]
    fn task_panic_propagates_after_drain() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        let _ = pool.scatter((0..8).collect::<Vec<i32>>(), |_, x| {
            RAN.fetch_add(1, Ordering::SeqCst);
            if x == 3 {
                panic!("pool boom");
            }
            x
        });
    }

    #[test]
    fn panic_does_not_poison_the_pool() {
        let pool = WorkerPool::new(2);
        let hurt = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.scatter(vec![0, 1, 2], |_, x| {
                if x == 1 {
                    panic!("transient");
                }
                x
            });
        }));
        assert!(hurt.is_err());
        let out = pool.scatter(vec![10, 20], |_, x| x * 2);
        assert_eq!(out, vec![20, 40]);
    }
}
