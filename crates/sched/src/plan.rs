//! Stage planning: grouping a statement sequence into parallelizable runs.
//!
//! The parallel executor may only run statements concurrently when doing so
//! is observationally identical to the sequential interpretation. Given a
//! *conflict oracle* (computed by the semantic layer from read/write
//! footprints), this module groups a sequence into maximal **contiguous
//! stages**: within a stage every earlier/later pair is independent, so the
//! stage's members can be sliced across workers and their state deltas
//! overlaid in slice order.
//!
//! Contiguity matters for determinism: slices are contiguous chunks of the
//! original order, so "later chunk wins" during the overlay coincides with
//! "later statement wins" in the sequential run, for any worker count.

use std::ops::Range;

/// A contiguous run of statements executed together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Index of the first statement of the stage.
    pub start: usize,
    /// Number of statements in the stage.
    pub len: usize,
    /// Whether the members are pairwise independent (a one-statement stage
    /// is trivially so but is still executed inline).
    pub parallel: bool,
}

impl Stage {
    /// The statement index range covered by this stage.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }
}

/// Plans `n` statements into contiguous stages.
///
/// `barrier(i)` marks statements that must run alone in program order
/// (clock ticks, returns, anything with global effect). `conflicts(i, j)`
/// with `i < j` answers whether statement `j` must observe `i`'s effects —
/// if so they cannot share a stage. The oracle is only consulted for pairs
/// within a candidate stage.
pub fn plan_stages(
    n: usize,
    barrier: impl Fn(usize) -> bool,
    conflicts: impl Fn(usize, usize) -> bool,
) -> Vec<Stage> {
    let mut stages = Vec::new();
    let mut start = 0;
    while start < n {
        if barrier(start) {
            stages.push(Stage { start, len: 1, parallel: false });
            start += 1;
            continue;
        }
        // Grow the stage while the next statement is independent of every
        // member so far.
        let mut end = start + 1;
        while end < n && !barrier(end) && (start..end).all(|i| !conflicts(i, end)) {
            end += 1;
        }
        stages.push(Stage { start, len: end - start, parallel: end - start > 1 });
        start = end;
    }
    stages
}

/// Splits `0..n` into at most `jobs` contiguous, near-equal, non-empty
/// chunks, earlier chunks taking the remainder.
pub fn chunk_ranges(n: usize, jobs: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = jobs.max(1).min(n);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut at = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(at..at + len);
        at += len;
    }
    debug_assert_eq!(at, n);
    out
}

/// Cost-guided variant of [`chunk_ranges`]: splits `0..n` into contiguous
/// chunks balanced by `costs` (per-statement nanos from a previous
/// iteration), then keeps splitting any chunk whose cost share exceeds
/// `split_fraction` of the total so one fat slice cannot serialize a stage
/// — the extra chunks become stealable tasks on the worker pool.
///
/// Falls back to the near-equal [`chunk_ranges`] when `costs` is absent,
/// mismatched, or all-zero (first iteration, cold cache). The output is a
/// pure function of the inputs, and since every chunking of a parallel
/// stage merges identically (stage members are pairwise independent),
/// cost data may differ run-to-run without affecting results.
pub fn cost_chunk_ranges(
    n: usize,
    jobs: usize,
    costs: Option<&[u64]>,
    split_fraction: f64,
) -> Vec<Range<usize>> {
    let costs = match costs {
        Some(c) if c.len() == n && c.iter().any(|&x| x > 0) => c,
        _ => return chunk_ranges(n, jobs),
    };
    if n == 0 {
        return Vec::new();
    }
    let k = jobs.max(1).min(n);
    let total: u64 = costs.iter().sum();

    // Greedy contiguous fill toward an equal cost share per chunk.
    let mut out: Vec<Range<usize>> = Vec::with_capacity(k);
    let mut start = 0;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        if out.len() + 1 < k && acc * k as u64 >= total {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }

    // Split pass: any chunk costing more than `split_fraction` of the
    // total is halved at its cost midpoint, up to a 4×jobs task cap.
    let threshold = (total as f64 * split_fraction.clamp(0.0, 1.0)).max(1.0);
    let cap = k * 4;
    let mut changed = true;
    while changed {
        changed = false;
        let mut next: Vec<Range<usize>> = Vec::with_capacity(out.len());
        for (idx, r) in out.iter().enumerate() {
            let chunk_cost: u64 = costs[r.clone()].iter().sum();
            let unprocessed = out.len() - idx - 1;
            if r.len() >= 2 && chunk_cost as f64 > threshold && next.len() + 2 + unprocessed <= cap
            {
                let mut run = 0u64;
                let mut cut = r.start + 1;
                for i in r.clone() {
                    run += costs[i];
                    if run * 2 >= chunk_cost {
                        cut = (i + 1).clamp(r.start + 1, r.end - 1);
                        break;
                    }
                }
                next.push(r.start..cut);
                next.push(cut..r.end);
                changed = true;
            } else {
                next.push(r.clone());
            }
        }
        out = next;
    }
    debug_assert_eq!(out.iter().map(|r| r.len()).sum::<usize>(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_sequence_is_one_stage() {
        let stages = plan_stages(5, |_| false, |_, _| false);
        assert_eq!(stages, vec![Stage { start: 0, len: 5, parallel: true }]);
    }

    #[test]
    fn barriers_split_and_run_alone() {
        // Statement 2 is a barrier (e.g. `wait`).
        let stages = plan_stages(5, |i| i == 2, |_, _| false);
        assert_eq!(
            stages,
            vec![
                Stage { start: 0, len: 2, parallel: true },
                Stage { start: 2, len: 1, parallel: false },
                Stage { start: 3, len: 2, parallel: true },
            ]
        );
    }

    #[test]
    fn conflicts_close_stages() {
        // 1 depends on 0; 3 depends on 2.
        let stages = plan_stages(4, |_| false, |i, j| (i, j) == (0, 1) || (i, j) == (2, 3));
        assert_eq!(
            stages,
            vec![
                Stage { start: 0, len: 1, parallel: false },
                Stage { start: 1, len: 2, parallel: true },
                Stage { start: 3, len: 1, parallel: false },
            ]
        );
    }

    #[test]
    fn fully_dependent_chain_degenerates() {
        let stages = plan_stages(4, |_| false, |_, _| true);
        assert_eq!(stages.len(), 4);
        assert!(stages.iter().all(|s| s.len == 1 && !s.parallel));
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in 0..20 {
            for jobs in 1..6 {
                let chunks = chunk_ranges(n, jobs);
                let total: usize = chunks.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                assert!(chunks.iter().all(|r| !r.is_empty()));
                assert!(chunks.len() <= jobs.max(1));
                // Contiguous and ordered.
                let mut at = 0;
                for r in &chunks {
                    assert_eq!(r.start, at);
                    at = r.end;
                }
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) =
                    (chunks.iter().map(|r| r.len()).min(), chunks.iter().map(|r| r.len()).max())
                {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    fn assert_partition(chunks: &[Range<usize>], n: usize) {
        assert_eq!(chunks.iter().map(|r| r.len()).sum::<usize>(), n);
        assert!(chunks.iter().all(|r| !r.is_empty()));
        let mut at = 0;
        for r in chunks {
            assert_eq!(r.start, at);
            at = r.end;
        }
    }

    #[test]
    fn cost_chunks_fall_back_without_costs() {
        assert_eq!(cost_chunk_ranges(10, 4, None, 0.25), chunk_ranges(10, 4));
        assert_eq!(
            cost_chunk_ranges(10, 4, Some(&[0; 10]), 0.25),
            chunk_ranges(10, 4),
            "all-zero costs carry no signal"
        );
        assert_eq!(
            cost_chunk_ranges(10, 4, Some(&[1, 2, 3]), 0.25),
            chunk_ranges(10, 4),
            "stale cost vector of the wrong length is ignored"
        );
    }

    #[test]
    fn cost_chunks_balance_by_cost_not_count() {
        // One fat statement at the front: equal-count chunking would give
        // chunk 0 nearly all the work.
        let costs = [1000u64, 10, 10, 10, 10, 10, 10, 10];
        let chunks = cost_chunk_ranges(8, 4, Some(&costs), 1.0);
        assert_partition(&chunks, 8);
        assert_eq!(chunks[0], 0..1, "the fat statement gets its own chunk");
    }

    #[test]
    fn fat_chunk_above_fraction_is_split() {
        // Uniform costs but jobs=1 would give one huge chunk; a 25%
        // threshold must carve it into stealable pieces.
        let costs = [10u64; 16];
        let chunks = cost_chunk_ranges(16, 2, Some(&costs), 0.25);
        assert_partition(&chunks, 16);
        assert!(chunks.len() >= 4, "expected splits, got {chunks:?}");
        let total: u64 = costs.iter().sum();
        for r in &chunks {
            let c: u64 = costs[r.clone()].iter().sum();
            assert!(
                r.len() == 1 || (c as f64) <= total as f64 * 0.25 + 10.0,
                "chunk {r:?} still too fat"
            );
        }
    }

    #[test]
    fn split_pass_respects_task_cap() {
        let costs = [10u64; 64];
        let chunks = cost_chunk_ranges(64, 2, Some(&costs), 0.0);
        assert_partition(&chunks, 64);
        assert!(chunks.len() <= 8, "cap is 4×jobs: {}", chunks.len());
    }

    #[test]
    fn cost_chunks_cover_for_many_shapes() {
        for n in 1..24 {
            for jobs in 1..6 {
                let costs: Vec<u64> = (0..n).map(|i| (i as u64 * 37 + 11) % 97).collect();
                for frac in [0.0, 0.25, 0.5, 1.0] {
                    let chunks = cost_chunk_ranges(n, jobs, Some(&costs), frac);
                    assert_partition(&chunks, n);
                    assert!(chunks.len() <= jobs.max(1) * 4);
                }
            }
        }
    }
}
