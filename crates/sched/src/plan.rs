//! Stage planning: grouping a statement sequence into parallelizable runs.
//!
//! The parallel executor may only run statements concurrently when doing so
//! is observationally identical to the sequential interpretation. Given a
//! *conflict oracle* (computed by the semantic layer from read/write
//! footprints), this module groups a sequence into maximal **contiguous
//! stages**: within a stage every earlier/later pair is independent, so the
//! stage's members can be sliced across workers and their state deltas
//! overlaid in slice order.
//!
//! Contiguity matters for determinism: slices are contiguous chunks of the
//! original order, so "later chunk wins" during the overlay coincides with
//! "later statement wins" in the sequential run, for any worker count.

use std::ops::Range;

/// A contiguous run of statements executed together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Index of the first statement of the stage.
    pub start: usize,
    /// Number of statements in the stage.
    pub len: usize,
    /// Whether the members are pairwise independent (a one-statement stage
    /// is trivially so but is still executed inline).
    pub parallel: bool,
}

impl Stage {
    /// The statement index range covered by this stage.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }
}

/// Plans `n` statements into contiguous stages.
///
/// `barrier(i)` marks statements that must run alone in program order
/// (clock ticks, returns, anything with global effect). `conflicts(i, j)`
/// with `i < j` answers whether statement `j` must observe `i`'s effects —
/// if so they cannot share a stage. The oracle is only consulted for pairs
/// within a candidate stage.
pub fn plan_stages(
    n: usize,
    barrier: impl Fn(usize) -> bool,
    conflicts: impl Fn(usize, usize) -> bool,
) -> Vec<Stage> {
    let mut stages = Vec::new();
    let mut start = 0;
    while start < n {
        if barrier(start) {
            stages.push(Stage { start, len: 1, parallel: false });
            start += 1;
            continue;
        }
        // Grow the stage while the next statement is independent of every
        // member so far.
        let mut end = start + 1;
        while end < n && !barrier(end) && (start..end).all(|i| !conflicts(i, end)) {
            end += 1;
        }
        stages.push(Stage { start, len: end - start, parallel: end - start > 1 });
        start = end;
    }
    stages
}

/// Splits `0..n` into at most `jobs` contiguous, near-equal, non-empty
/// chunks, earlier chunks taking the remainder.
pub fn chunk_ranges(n: usize, jobs: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = jobs.max(1).min(n);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut at = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(at..at + len);
        at += len;
    }
    debug_assert_eq!(at, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_sequence_is_one_stage() {
        let stages = plan_stages(5, |_| false, |_, _| false);
        assert_eq!(stages, vec![Stage { start: 0, len: 5, parallel: true }]);
    }

    #[test]
    fn barriers_split_and_run_alone() {
        // Statement 2 is a barrier (e.g. `wait`).
        let stages = plan_stages(5, |i| i == 2, |_, _| false);
        assert_eq!(
            stages,
            vec![
                Stage { start: 0, len: 2, parallel: true },
                Stage { start: 2, len: 1, parallel: false },
                Stage { start: 3, len: 2, parallel: true },
            ]
        );
    }

    #[test]
    fn conflicts_close_stages() {
        // 1 depends on 0; 3 depends on 2.
        let stages = plan_stages(4, |_| false, |i, j| (i, j) == (0, 1) || (i, j) == (2, 3));
        assert_eq!(
            stages,
            vec![
                Stage { start: 0, len: 1, parallel: false },
                Stage { start: 1, len: 2, parallel: true },
                Stage { start: 3, len: 1, parallel: false },
            ]
        );
    }

    #[test]
    fn fully_dependent_chain_degenerates() {
        let stages = plan_stages(4, |_| false, |_, _| true);
        assert_eq!(stages.len(), 4);
        assert!(stages.iter().all(|s| s.len == 1 && !s.parallel));
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in 0..20 {
            for jobs in 1..6 {
                let chunks = chunk_ranges(n, jobs);
                let total: usize = chunks.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                assert!(chunks.iter().all(|r| !r.is_empty()));
                assert!(chunks.len() <= jobs.max(1));
                // Contiguous and ordered.
                let mut at = 0;
                for r in &chunks {
                    assert_eq!(r.start, at);
                    at = r.end;
                }
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) =
                    (chunks.iter().map(|r| r.len()).min(), chunks.iter().map(|r| r.len()).max())
                {
                    assert!(max - min <= 1);
                }
            }
        }
    }
}
