//! Deterministic fork-join over a small set of work items.
//!
//! The caller has already partitioned its work (see [`crate::plan`]); this
//! module only runs the pieces and hands the results back **in input
//! order**, which is what makes the downstream merge deterministic: slice
//! `i`'s result is always at position `i` regardless of which worker
//! finished first.

use crate::pool::WorkerPool;

/// Runs `f` over `items` on an ephemeral [`WorkerPool`] sized to the item
/// count and returns the results in input order.
///
/// With zero or one item the closure runs inline on the caller's thread,
/// so the sequential path is the exact same code. A panic in any worker
/// propagates to the caller after all workers have finished. Callers with
/// a long-lived session should hold a [`WorkerPool`] instead and scatter
/// onto it, amortizing thread spawns across stages.
pub fn scatter<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    WorkerPool::new(items.len()).scatter(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_input_order() {
        // Make later items finish first: earlier items sleep longer.
        let items: Vec<u64> = (0..8).collect();
        let out = scatter(items, |i, x| {
            std::thread::sleep(std::time::Duration::from_millis(8 - x));
            i as u64 * 10 + x
        });
        assert_eq!(out, (0..8).map(|x| x * 11).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_runs_inline() {
        let main_thread = std::thread::current().id();
        let out = scatter(vec![42], |i, x| {
            assert_eq!(std::thread::current().id(), main_thread);
            (i, x)
        });
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn empty_is_empty() {
        let out: Vec<i32> = scatter(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn all_items_run() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let _ = scatter((0..16).collect::<Vec<_>>(), |_, _| {
            RAN.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(RAN.load(Ordering::SeqCst), 16);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = scatter(vec![0, 1, 2], |_, x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }
}
