//! Widening thresholds (paper Sect. 7.1.2).
//!
//! Instead of jumping straight to ±∞, the widening of an unstable bound goes
//! through a finite ramp of thresholds. The paper chooses the geometric ramp
//! `±α·λᵏ` for `0 ≤ k ≤ N`; as long as the ramp contains *some* value above
//! the (unknown) stabilization bound `M`, the interval analysis proves the
//! variable bounded.

/// A finite, sorted set of widening thresholds, always containing ±∞.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Strictly increasing positive thresholds; the negative ramp is the
    /// mirror image. ±∞ are implicit.
    ramp: Vec<f64>,
}

impl Thresholds {
    /// The default ramp used by the analyzer: `α·λᵏ` with `α = 1`,
    /// `λ = 10`, `N = 12` (up to `10¹²`).
    pub fn geometric_default() -> Thresholds {
        Thresholds::geometric(1.0, 10.0, 12)
    }

    /// Builds the ramp `α·λᵏ` for `0 ≤ k ≤ n`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `lambda <= 1`.
    pub fn geometric(alpha: f64, lambda: f64, n: u32) -> Thresholds {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(lambda > 1.0, "lambda must exceed 1");
        let mut ramp = Vec::with_capacity(n as usize + 1);
        let mut v = alpha;
        for _ in 0..=n {
            ramp.push(v);
            v *= lambda;
        }
        Thresholds { ramp }
    }

    /// An empty ramp: widening jumps straight to ±∞ (the classic interval
    /// widening, used as the ablation baseline).
    pub fn none() -> Thresholds {
        Thresholds { ramp: Vec::new() }
    }

    /// Builds a ramp from explicit positive values (sorted, deduplicated).
    pub fn from_values(mut values: Vec<f64>) -> Thresholds {
        values.retain(|v| *v > 0.0 && v.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        values.dedup();
        Thresholds { ramp: values }
    }

    /// The positive ramp values.
    pub fn ramp(&self) -> &[f64] {
        &self.ramp
    }

    /// Smallest threshold `≥ x` for an escaping upper bound, or `+∞`.
    pub fn above(&self, x: f64) -> f64 {
        for &t in &self.ramp {
            if t >= x {
                return t;
            }
        }
        f64::INFINITY
    }

    /// Largest threshold `≤ x` for an escaping lower bound, or `−∞`.
    /// The negative ramp mirrors the positive one, with 0 included between.
    pub fn below(&self, x: f64) -> f64 {
        if x >= 0.0 {
            // Climb down through 0 first: the mirrored ramp is
            // …, -α, 0 is NOT a threshold in the paper's ±αλᵏ set, but a
            // non-negative escaping lower bound is rare; fall to 0 if any
            // positive threshold fits, else -∞.
            let mut best = f64::NEG_INFINITY;
            for &t in &self.ramp {
                if t <= x && t > best {
                    best = t;
                }
            }
            if best.is_finite() {
                return best;
            }
            if x >= 0.0 && !self.ramp.is_empty() {
                return 0.0;
            }
            return f64::NEG_INFINITY;
        }
        for &t in &self.ramp {
            if -t <= x {
                return -t;
            }
        }
        f64::NEG_INFINITY
    }

    /// Integer variant of [`Thresholds::above`], saturating to `i64::MAX`.
    pub fn above_int(&self, x: i64) -> i64 {
        let t = self.above(x as f64);
        if t >= i64::MAX as f64 {
            i64::MAX
        } else {
            t.ceil() as i64
        }
    }

    /// Integer variant of [`Thresholds::below`], saturating to `i64::MIN`.
    pub fn below_int(&self, x: i64) -> i64 {
        let t = self.below(x as f64);
        if t <= i64::MIN as f64 {
            i64::MIN
        } else {
            t.floor() as i64
        }
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::geometric_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_ramp() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        assert_eq!(t.ramp(), &[1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn above_climbs_the_ramp() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        assert_eq!(t.above(0.5), 1.0);
        assert_eq!(t.above(1.0), 1.0);
        assert_eq!(t.above(42.0), 100.0);
        assert_eq!(t.above(5000.0), f64::INFINITY);
    }

    #[test]
    fn below_mirrors() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        assert_eq!(t.below(-0.5), -1.0);
        assert_eq!(t.below(-42.0), -100.0);
        assert_eq!(t.below(-5000.0), f64::NEG_INFINITY);
        // Non-negative escaping lower bounds settle at 0.
        assert_eq!(t.below(0.5), 0.0);
        assert_eq!(t.below(7.0), 1.0);
    }

    #[test]
    fn none_jumps_to_infinity() {
        let t = Thresholds::none();
        assert_eq!(t.above(1.0), f64::INFINITY);
        assert_eq!(t.below(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn int_variants_saturate() {
        let t = Thresholds::geometric(1.0, 10.0, 2);
        assert_eq!(t.above_int(7), 10);
        assert_eq!(t.above_int(1000), i64::MAX);
        assert_eq!(t.below_int(-7), -10);
        assert_eq!(t.below_int(-1000), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_bad_lambda() {
        let _ = Thresholds::geometric(1.0, 1.0, 3);
    }
}
