//! Widening thresholds (paper Sect. 7.1.2).
//!
//! Instead of jumping straight to ±∞, the widening of an unstable bound goes
//! through a finite ramp of thresholds. The paper chooses the geometric ramp
//! `±α·λᵏ` for `0 ≤ k ≤ N`; as long as the ramp contains *some* value above
//! the (unknown) stabilization bound `M`, the interval analysis proves the
//! variable bounded.

/// A finite, sorted set of widening thresholds, always containing ±∞.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Strictly increasing positive thresholds; the negative ramp is the
    /// mirror image. ±∞ are implicit.
    ramp: Vec<f64>,
}

impl Thresholds {
    /// The default ramp used by the analyzer: `α·λᵏ` with `α = 1`,
    /// `λ = 10`, `N = 12` (up to `10¹²`).
    pub fn geometric_default() -> Thresholds {
        Thresholds::geometric(1.0, 10.0, 12)
    }

    /// Builds the ramp `α·λᵏ` for `0 ≤ k ≤ n`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `lambda <= 1`.
    pub fn geometric(alpha: f64, lambda: f64, n: u32) -> Thresholds {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(lambda > 1.0, "lambda must exceed 1");
        let mut ramp = Vec::with_capacity(n as usize + 1);
        let mut v = alpha;
        for _ in 0..=n {
            ramp.push(v);
            v *= lambda;
        }
        Thresholds { ramp }
    }

    /// An empty ramp: widening jumps straight to ±∞ (the classic interval
    /// widening, used as the ablation baseline).
    pub fn none() -> Thresholds {
        Thresholds { ramp: Vec::new() }
    }

    /// Builds a ramp from explicit positive values (sorted, deduplicated).
    pub fn from_values(mut values: Vec<f64>) -> Thresholds {
        values.retain(|v| *v > 0.0 && v.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        values.dedup();
        Thresholds { ramp: values }
    }

    /// The positive ramp values.
    pub fn ramp(&self) -> &[f64] {
        &self.ramp
    }

    /// Smallest threshold `≥ x` for an escaping upper bound, or `+∞`.
    pub fn above(&self, x: f64) -> f64 {
        for &t in &self.ramp {
            if t >= x {
                return t;
            }
        }
        f64::INFINITY
    }

    /// Largest threshold `≤ x` for an escaping lower bound, or `−∞`.
    /// The negative ramp mirrors the positive one, with 0 included between.
    pub fn below(&self, x: f64) -> f64 {
        if x >= 0.0 {
            // Climb down through 0 first: the mirrored ramp is
            // …, -α, 0 is NOT a threshold in the paper's ±αλᵏ set, but a
            // non-negative escaping lower bound is rare; fall to 0 if any
            // positive threshold fits, else -∞.
            let mut best = f64::NEG_INFINITY;
            for &t in &self.ramp {
                if t <= x && t > best {
                    best = t;
                }
            }
            if best.is_finite() {
                return best;
            }
            if x >= 0.0 && !self.ramp.is_empty() {
                return 0.0;
            }
            return f64::NEG_INFINITY;
        }
        for &t in &self.ramp {
            if -t <= x {
                return -t;
            }
        }
        f64::NEG_INFINITY
    }

    /// Integer variant of [`Thresholds::above`], saturating to `i64::MAX`.
    ///
    /// The query is rounded toward `+∞` before the ramp lookup and the
    /// selected threshold is rounded toward `+∞` on the way back, so the
    /// result is always `≥ x` even within one ulp of `i64::MAX`, where
    /// `x as f64` rounds down by up to 1023.
    pub fn above_int(&self, x: i64) -> i64 {
        let t = self.above(f64_at_least(x));
        // `i64::MAX as f64` is 2⁶³ exactly, one past `i64::MAX`; any finite
        // threshold below it has an integral ceil representable in `i64`.
        if t >= i64::MAX as f64 {
            i64::MAX
        } else {
            (t.ceil() as i64).max(x)
        }
    }

    /// Integer variant of [`Thresholds::below`], saturating to `i64::MIN`.
    ///
    /// Mirror of [`Thresholds::above_int`]: the query rounds toward `−∞`
    /// so the returned threshold is always `≤ x`.
    ///
    /// Soundness at the negative extreme differs from the positive one in a
    /// way that happens to be benign. `i64::MAX as f64` rounds *up* to 2⁶³
    /// (one past the type), so `above_int` needs the explicit `>=`
    /// saturation test; `i64::MIN as f64` is `−2⁶³` *exactly*, so here
    /// every step is exact at the boundary: `f64_at_most(i64::MIN)` returns
    /// `−2⁶³` unchanged, any ramp mirror `−t ≥ −2⁶³` keeps
    /// `t.floor() as i64` in range (the cast saturates rather than wraps
    /// for the `−2⁶³` threshold itself, which the `<=` test already maps to
    /// `i64::MIN`), and queries within one ulp of `i64::MIN` (spacing 1024
    /// there) round toward `−∞` to `−2⁶³`, which only *loosens* the bound.
    /// The boundary tests below pin each of these cases.
    pub fn below_int(&self, x: i64) -> i64 {
        let t = self.below(f64_at_most(x));
        if t <= i64::MIN as f64 {
            i64::MIN
        } else {
            (t.floor() as i64).min(x)
        }
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::geometric_default()
    }
}

/// Smallest `f64` that is `≥ x` exactly. `x as f64` rounds to nearest, so
/// above 2⁵³ it can land *below* `x` (by up to 1023 near `i64::MAX`); the
/// `i128` comparison is exact for every `f64` in range.
fn f64_at_least(x: i64) -> f64 {
    let f = x as f64;
    if (f as i128) < x as i128 {
        astree_float::round::next_up(f)
    } else {
        f
    }
}

/// Largest `f64` that is `≤ x` exactly; mirror of [`f64_at_least`].
fn f64_at_most(x: i64) -> f64 {
    let f = x as f64;
    if (f as i128) > x as i128 {
        astree_float::round::next_down(f)
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_ramp() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        assert_eq!(t.ramp(), &[1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn above_climbs_the_ramp() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        assert_eq!(t.above(0.5), 1.0);
        assert_eq!(t.above(1.0), 1.0);
        assert_eq!(t.above(42.0), 100.0);
        assert_eq!(t.above(5000.0), f64::INFINITY);
    }

    #[test]
    fn below_mirrors() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        assert_eq!(t.below(-0.5), -1.0);
        assert_eq!(t.below(-42.0), -100.0);
        assert_eq!(t.below(-5000.0), f64::NEG_INFINITY);
        // Non-negative escaping lower bounds settle at 0.
        assert_eq!(t.below(0.5), 0.0);
        assert_eq!(t.below(7.0), 1.0);
    }

    #[test]
    fn none_jumps_to_infinity() {
        let t = Thresholds::none();
        assert_eq!(t.above(1.0), f64::INFINITY);
        assert_eq!(t.below(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn int_variants_saturate() {
        let t = Thresholds::geometric(1.0, 10.0, 2);
        assert_eq!(t.above_int(7), 10);
        assert_eq!(t.above_int(1000), i64::MAX);
        assert_eq!(t.below_int(-7), -10);
        assert_eq!(t.below_int(-1000), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_bad_lambda() {
        let _ = Thresholds::geometric(1.0, 1.0, 3);
    }

    /// `x as f64` rounds `2⁶² + 1` down to `2⁶²`; the naive lookup then
    /// returns the `2⁶²` threshold, which is *below* `x` — an unsound
    /// widening bound. The query must round toward `+∞` instead.
    #[test]
    fn above_int_never_returns_below_query() {
        let big = 1i64 << 62;
        let t = Thresholds::from_values(vec![big as f64]);
        let x = big + 1;
        let r = t.above_int(x);
        assert!(r >= x, "above_int({x}) = {r} is below the query");
        assert_eq!(r, i64::MAX, "no ramp value fits, must saturate");
        // The threshold itself is still found when it genuinely fits.
        assert_eq!(t.above_int(big), big);
        assert_eq!(t.above_int(big - 1), big);
    }

    /// Within 1024 of `i64::MAX` the rounding error of `x as f64` exceeds
    /// the gap to the nearest threshold: `i64::MAX − 512` used to come back
    /// as the *smaller* threshold `i64::MAX − 1023`.
    #[test]
    fn above_int_sound_near_i64_max() {
        let ramp = i64::MAX - 1023; // == 2⁶³ − 1024, exactly representable
        let t = Thresholds::from_values(vec![ramp as f64]);
        let x = i64::MAX - 512;
        let r = t.above_int(x);
        assert!(r >= x, "above_int({x}) = {r} is below the query");
        assert_eq!(t.above_int(ramp), ramp);
    }

    /// Mirror of the `above_int` extremes for the negative ramp.
    #[test]
    fn below_int_never_returns_above_query() {
        let big = 1i64 << 62;
        let t = Thresholds::from_values(vec![big as f64]);
        let x = -big - 1;
        let r = t.below_int(x);
        assert!(r <= x, "below_int({x}) = {r} is above the query");
        assert_eq!(r, i64::MIN, "no ramp value fits, must saturate");
        assert_eq!(t.below_int(-big), -big);
        let near_min = -(i64::MAX - 512);
        let t2 = Thresholds::from_values(vec![(i64::MAX - 1023) as f64]);
        let r2 = t2.below_int(near_min);
        assert!(r2 <= near_min, "below_int({near_min}) = {r2} is above the query");
    }

    /// Boundary audit at `i64::MIN` itself (see the `below_int` docs):
    /// unlike `i64::MAX`, the minimum converts to `f64` exactly, so every
    /// path through the lookup is exact — but only these tests keep that
    /// guarantee from silently eroding if the conversion helpers change.
    #[test]
    fn below_int_sound_at_i64_min() {
        // Exact conversion: no rounding adjustment at the boundary.
        assert_eq!(f64_at_most(i64::MIN), i64::MIN as f64);
        assert_eq!(f64_at_least(i64::MIN), i64::MIN as f64);

        // A ramp value of exactly 2⁶³ mirrors to −2⁶³ = i64::MIN; the
        // saturation test must map it to i64::MIN, not wrap in the cast.
        let t = Thresholds::from_values(vec![(1u64 << 63) as f64]);
        assert_eq!(t.below_int(i64::MIN), i64::MIN);
        assert_eq!(t.below_int(-1), i64::MIN);

        // No ramp value fits below the query: saturate.
        let t = Thresholds::geometric_default();
        assert_eq!(t.below_int(i64::MIN), i64::MIN);
        assert_eq!(t.below_int(i64::MIN + 1), i64::MIN);

        // Within one ulp of i64::MIN (f64 spacing is 1024 there) the query
        // rounds toward −∞; the result must stay ≤ x for every offset.
        let ramp = -(i64::MIN + 1024) as u64; // 2⁶³ − 1024, representable
        let t = Thresholds::from_values(vec![ramp as f64]);
        for off in [0i64, 1, 511, 512, 1023, 1024, 1025] {
            let x = i64::MIN + off;
            let r = t.below_int(x);
            assert!(r <= x, "below_int({x}) = {r} is above the query");
        }
        // The mirrored threshold is found exactly when it fits.
        assert_eq!(t.below_int(i64::MIN + 1024), i64::MIN + 1024);
    }
}
