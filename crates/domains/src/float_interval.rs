//! Floating-point intervals with outward rounding (paper Sect. 6.2.1).
//!
//! Every operation rounds the lower bound toward −∞ and the upper bound
//! toward +∞ via [`astree_float::round`], then re-rounds outward onto the
//! `f32` grid when the operation type is single-precision — so the interval
//! contains every value IEEE-754 hardware can produce. Overflow to ±∞ and
//! invalid operations are reported through [`ErrFlags`] and the result is
//! clipped to the finite range, matching the analyzer's "continue with the
//! non-erroneous results" convention (Sect. 5.3).

use crate::flags::ErrFlags;
use crate::thresholds::Thresholds;
use astree_float::round;
use astree_ir::FloatKind;
use std::fmt;

/// A float interval `[lo, hi]` (empty when `lo > hi`; bounds may be ±∞ only
/// transiently, results handed to the analyzer are always finite).
///
/// # Examples
///
/// ```
/// use astree_domains::FloatItv;
/// use astree_ir::FloatKind;
/// let a = FloatItv::new(0.0, 1.0);
/// let b = FloatItv::new(0.1, 0.2);
/// let (sum, err) = a.add(b, FloatKind::F64);
/// assert!(err.is_empty());
/// assert!(sum.lo <= 0.1 && sum.hi >= 1.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatItv {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl FloatItv {
    /// The empty interval ⊥.
    pub const BOTTOM: FloatItv = FloatItv { lo: 1.0, hi: 0.0 };

    /// `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> FloatItv {
        FloatItv { lo, hi }
    }

    /// `[v, v]`.
    pub fn singleton(v: f64) -> FloatItv {
        FloatItv { lo: v, hi: v }
    }

    /// The full finite range of a format.
    pub fn top_of(kind: FloatKind) -> FloatItv {
        let m = kind.max_finite();
        FloatItv { lo: -m, hi: m }
    }

    /// `true` for the empty interval. Written as a negated comparison on
    /// purpose: NaN bounds must read as bottom.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn is_bottom(self) -> bool {
        !(self.lo <= self.hi)
    }

    /// `true` if `v` lies in the interval.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `Some(v)` when the interval is one value.
    pub fn as_singleton(self) -> Option<f64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Inclusion `self ⊑ other`.
    pub fn leq(self, other: FloatItv) -> bool {
        self.is_bottom() || (other.lo <= self.lo && self.hi <= other.hi)
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: FloatItv) -> FloatItv {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        FloatItv {
            lo: astree_float::min_total(self.lo, other.lo),
            hi: astree_float::max_total(self.hi, other.hi),
        }
    }

    /// Greatest lower bound.
    #[must_use]
    pub fn meet(self, other: FloatItv) -> FloatItv {
        if self.is_bottom() || other.is_bottom() {
            return FloatItv::BOTTOM;
        }
        FloatItv {
            lo: astree_float::max_total(self.lo, other.lo),
            hi: astree_float::min_total(self.hi, other.hi),
        }
    }

    /// Widening with thresholds (paper Sect. 7.1.2).
    #[must_use]
    pub fn widen(self, other: FloatItv, thresholds: &Thresholds) -> FloatItv {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        FloatItv {
            lo: if other.lo < self.lo { thresholds.below(other.lo) } else { self.lo },
            hi: if other.hi > self.hi { thresholds.above(other.hi) } else { self.hi },
        }
    }

    /// Narrowing: refine infinite bounds.
    #[must_use]
    pub fn narrow(self, other: FloatItv) -> FloatItv {
        if self.is_bottom() || other.is_bottom() {
            return FloatItv::BOTTOM;
        }
        FloatItv {
            lo: if self.lo == f64::NEG_INFINITY { other.lo } else { self.lo },
            hi: if self.hi == f64::INFINITY { other.hi } else { self.hi },
        }
    }

    /// Outward re-rounding onto the format grid (`f32` widens the bounds to
    /// representable singles; `f64` is the identity).
    #[must_use]
    pub fn on_grid(self, kind: FloatKind) -> FloatItv {
        if self.is_bottom() {
            return self;
        }
        match kind {
            FloatKind::F64 => self,
            FloatKind::F32 => FloatItv { lo: round::f32_down(self.lo), hi: round::f32_up(self.hi) },
        }
    }

    /// Clips to the finite range of `kind`; flags overflow when clipping cut
    /// anything off.
    fn finish(self, kind: FloatKind) -> (FloatItv, ErrFlags) {
        if self.is_bottom() {
            return (self, ErrFlags::NONE);
        }
        let g = self.on_grid(kind);
        let m = kind.max_finite();
        let mut flags = ErrFlags::NONE;
        let mut lo = g.lo;
        let mut hi = g.hi;
        if lo < -m {
            flags |= ErrFlags::FLOAT_OVERFLOW;
            lo = -m;
        }
        if hi > m {
            flags |= ErrFlags::FLOAT_OVERFLOW;
            hi = m;
        }
        if lo > hi {
            // Both bounds escaped the same way: no non-erroneous result.
            return (FloatItv::BOTTOM, flags);
        }
        (FloatItv { lo, hi }, flags)
    }

    /// `-self` (exact).
    #[must_use]
    pub fn neg(self) -> FloatItv {
        if self.is_bottom() {
            return self;
        }
        FloatItv { lo: -self.hi, hi: -self.lo }
    }

    /// `self + other` at format `kind`.
    pub fn add(self, other: FloatItv, kind: FloatKind) -> (FloatItv, ErrFlags) {
        if self.is_bottom() || other.is_bottom() {
            return (FloatItv::BOTTOM, ErrFlags::NONE);
        }
        FloatItv { lo: round::add_down(self.lo, other.lo), hi: round::add_up(self.hi, other.hi) }
            .finish(kind)
    }

    /// `self - other` at format `kind`.
    pub fn sub(self, other: FloatItv, kind: FloatKind) -> (FloatItv, ErrFlags) {
        self.add(other.neg(), kind)
    }

    /// `self * other` at format `kind`.
    pub fn mul(self, other: FloatItv, kind: FloatKind) -> (FloatItv, ErrFlags) {
        if self.is_bottom() || other.is_bottom() {
            return (FloatItv::BOTTOM, ErrFlags::NONE);
        }
        let c = [
            round::mul_down(self.lo, other.lo),
            round::mul_down(self.lo, other.hi),
            round::mul_down(self.hi, other.lo),
            round::mul_down(self.hi, other.hi),
        ];
        let d = [
            round::mul_up(self.lo, other.lo),
            round::mul_up(self.lo, other.hi),
            round::mul_up(self.hi, other.lo),
            round::mul_up(self.hi, other.hi),
        ];
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        FloatItv { lo, hi }.finish(kind)
    }

    /// `self / other` at format `kind`. A divisor interval containing zero
    /// raises [`ErrFlags::DIV_BY_ZERO`] and the result is computed over the
    /// zero-free parts of the divisor.
    pub fn div(self, other: FloatItv, kind: FloatKind) -> (FloatItv, ErrFlags) {
        if self.is_bottom() || other.is_bottom() {
            return (FloatItv::BOTTOM, ErrFlags::NONE);
        }
        let mut flags = ErrFlags::NONE;
        let mut result = FloatItv::BOTTOM;
        let touches_zero = other.lo <= 0.0 && other.hi >= 0.0;
        if touches_zero {
            flags |= ErrFlags::DIV_BY_ZERO;
        }
        // Positive part (0, hi].
        if other.hi > 0.0 {
            let dlo = if other.lo > 0.0 { other.lo } else { 0.0 };
            result = result.join(self.div_part(dlo, other.hi));
        }
        // Negative part [lo, 0).
        if other.lo < 0.0 {
            let dhi = if other.hi < 0.0 { other.hi } else { -0.0 };
            result = result.join(self.div_part(other.lo, dhi));
        }
        if result.is_bottom() {
            // Divisor was exactly {0}: no non-erroneous result.
            return (FloatItv::BOTTOM, flags);
        }
        let (r, f2) = result.finish(kind);
        (r, flags | f2)
    }

    /// Division by a zero-free, same-sign divisor range (an endpoint may be
    /// ±0.0, yielding infinite candidates that `finish` clips and flags).
    fn div_part(self, dlo: f64, dhi: f64) -> FloatItv {
        let c = [
            round::div_down(self.lo, dlo),
            round::div_down(self.lo, dhi),
            round::div_down(self.hi, dlo),
            round::div_down(self.hi, dhi),
        ];
        let d = [
            round::div_up(self.lo, dlo),
            round::div_up(self.lo, dhi),
            round::div_up(self.hi, dlo),
            round::div_up(self.hi, dhi),
        ];
        let lo = c.iter().copied().filter(|v| !v.is_nan()).fold(f64::INFINITY, f64::min);
        let hi = d.iter().copied().filter(|v| !v.is_nan()).fold(f64::NEG_INFINITY, f64::max);
        if lo.is_infinite() && hi.is_infinite() && lo > hi {
            return FloatItv::BOTTOM;
        }
        FloatItv { lo, hi }
    }

    /// Conversion of an integer interval image into a float interval (exact
    /// for |v| < 2⁵³, outward otherwise).
    pub fn from_int_range(lo: i64, hi: i64, kind: FloatKind) -> FloatItv {
        let flo = if lo == i64::MIN { f64::NEG_INFINITY } else { lo as f64 };
        let fhi = if hi == i64::MAX { f64::INFINITY } else { hi as f64 };
        // i64→f64 rounds to nearest; nudge outward to stay sound, then clip
        // onto the target grid.
        FloatItv { lo: round::next_down(flo), hi: round::next_up(fhi) }
            .on_grid(kind)
            .meet(FloatItv::top_of(kind))
    }

    /// Conversion to a (possibly narrower) float format.
    pub fn convert_to(self, kind: FloatKind) -> (FloatItv, ErrFlags) {
        self.finish(kind)
    }

    /// Image under float→int truncation; flags invalid conversions. Returns
    /// the integer range (saturated onto `i64` sentinels).
    pub fn trunc_to_int(self, min: i64, max: i64) -> (i64, i64, ErrFlags) {
        if self.is_bottom() {
            return (1, 0, ErrFlags::NONE);
        }
        let mut flags = ErrFlags::NONE;
        // Range-check and clamp in `i128`: comparing against `max as f64`
        // is off by one ulp near 2⁶³ (`i64::MAX as f64` is 2⁶³, one *past*
        // the largest value), so a bound of exactly 2⁶³ slipped through
        // unflagged. A truncated finite f64 converts to `i128` exactly and
        // the `as` cast saturates ±∞ to the `i128` extremes.
        let ilo = self.lo.trunc() as i128;
        let ihi = self.hi.trunc() as i128;
        if ilo < min as i128 || ihi > max as i128 {
            flags |= ErrFlags::INVALID_CAST;
        }
        let lo = ilo.max(min as i128);
        let hi = ihi.min(max as i128);
        if lo > hi {
            // Entirely out of range: every concrete cast traps, so the
            // non-erroneous result set is empty.
            return (1, 0, flags);
        }
        (lo as i64, hi as i64, flags)
    }
}

impl fmt::Display for FloatItv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            write!(f, "⊥")
        } else {
            write!(f, "[{:.6e}, {:.6e}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F64: FloatKind = FloatKind::F64;
    const F32: FloatKind = FloatKind::F32;

    #[test]
    fn lattice_laws() {
        let a = FloatItv::new(0.0, 1.0);
        let b = FloatItv::new(0.5, 2.0);
        assert!(a.leq(a.join(b)));
        assert!(a.meet(b).leq(b));
        assert!(FloatItv::BOTTOM.leq(a));
        assert_eq!(a.join(FloatItv::BOTTOM), a);
    }

    #[test]
    fn add_brackets_concrete() {
        let a = FloatItv::new(0.1, 0.2);
        let b = FloatItv::new(0.3, 0.4);
        let (s, e) = a.add(b, F64);
        assert!(e.is_empty());
        assert!(s.contains(0.1 + 0.3) && s.contains(0.2 + 0.4) && s.contains(0.15 + 0.35));
    }

    #[test]
    fn f32_ops_widen_to_grid() {
        let a = FloatItv::singleton(0.1f32 as f64);
        let b = FloatItv::singleton(0.2f32 as f64);
        let (s, _) = a.add(b, F32);
        let concrete = (0.1f32 + 0.2f32) as f64;
        assert!(s.contains(concrete), "{s} misses {concrete}");
        assert_eq!(s.lo as f32 as f64, s.lo);
        assert_eq!(s.hi as f32 as f64, s.hi);
    }

    #[test]
    fn mul_signs() {
        let a = FloatItv::new(-2.0, 3.0);
        let b = FloatItv::new(-1.0, 4.0);
        let (p, e) = a.mul(b, F64);
        assert!(e.is_empty());
        assert!(p.contains(-8.0) && p.contains(12.0) && p.contains(2.0));
    }

    #[test]
    fn overflow_flags_and_clips() {
        let a = FloatItv::singleton(1e308);
        let (s, e) = a.add(a, F64);
        assert!(e.contains(ErrFlags::FLOAT_OVERFLOW));
        assert_eq!(s.hi, f64::MAX);
        // Both bounds overflow the same direction: bottom (pure error).
        assert!(s.lo <= s.hi);
        let (s2, e2) = FloatItv::singleton(f64::MAX).mul(FloatItv::singleton(2.0), F64);
        assert!(e2.contains(ErrFlags::FLOAT_OVERFLOW));
        assert!(s2.is_bottom() || s2.hi == f64::MAX);
    }

    #[test]
    fn f32_overflow_at_its_own_max() {
        let a = FloatItv::singleton(3e38);
        let (s, e) = a.add(a, F32);
        assert!(e.contains(ErrFlags::FLOAT_OVERFLOW));
        assert!(s.is_bottom() || s.hi <= f32::MAX as f64);
    }

    #[test]
    fn division_by_safe_interval() {
        let a = FloatItv::new(1.0, 2.0);
        let b = FloatItv::new(4.0, 8.0);
        let (q, e) = a.div(b, F64);
        assert!(e.is_empty());
        assert!(q.contains(0.125) && q.contains(0.5));
        assert!(q.lo > 0.12 && q.hi < 0.51);
    }

    #[test]
    fn division_straddling_zero_flags() {
        let a = FloatItv::singleton(1.0);
        let b = FloatItv::new(-1.0, 1.0);
        let (q, e) = a.div(b, F64);
        assert!(e.contains(ErrFlags::DIV_BY_ZERO));
        assert!(e.contains(ErrFlags::FLOAT_OVERFLOW));
        assert!(q.contains(1.0) && q.contains(-1.0));
        // Exactly-zero divisor: bottom.
        let (q0, e0) = a.div(FloatItv::singleton(0.0), F64);
        assert!(q0.is_bottom());
        assert!(e0.contains(ErrFlags::DIV_BY_ZERO));
    }

    #[test]
    fn widen_and_narrow() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        let a = FloatItv::new(0.0, 0.5);
        let b = FloatItv::new(0.0, 1.5);
        assert_eq!(a.widen(b, &t), FloatItv::new(0.0, 10.0));
        let w = FloatItv::new(0.0, f64::INFINITY);
        assert_eq!(w.narrow(FloatItv::new(0.0, 3.0)), FloatItv::new(0.0, 3.0));
    }

    #[test]
    fn int_range_conversion() {
        let f = FloatItv::from_int_range(-5, 10, F64);
        assert!(f.contains(-5.0) && f.contains(10.0));
        let g = FloatItv::from_int_range(0, 1 << 60, F32);
        assert!(g.hi >= (1u64 << 60) as f64);
    }

    #[test]
    fn trunc_to_int_flags_out_of_range() {
        let f = FloatItv::new(-1.5, 300.7);
        let (lo, hi, e) = f.trunc_to_int(0, 255);
        assert_eq!((lo, hi), (0, 255));
        assert!(e.contains(ErrFlags::INVALID_CAST));
        let (lo, hi, e) = FloatItv::new(1.9, 2.1).trunc_to_int(-128, 127);
        assert_eq!((lo, hi), (1, 2));
        assert!(e.is_empty());
    }

    /// A bound of exactly 2⁶³ is out of `i64` range, but comparing against
    /// `i64::MAX as f64` (== 2⁶³) used to let it pass unflagged — a missed
    /// alarm. The range check must be exact at the `i64` extremes.
    #[test]
    fn trunc_to_int_exact_at_i64_extremes() {
        let two63 = 9_223_372_036_854_775_808.0; // 2⁶³ == i64::MAX + 1
        let (lo, hi, e) = FloatItv::singleton(two63).trunc_to_int(i64::MIN, i64::MAX);
        assert!(e.contains(ErrFlags::INVALID_CAST), "2⁶³ must flag INVALID_CAST");
        assert!(lo > hi, "entirely out of range: result must be empty");
        // Straddling the boundary keeps the in-range part and still flags.
        let (lo, hi, e) = FloatItv::new(0.0, two63).trunc_to_int(i64::MIN, i64::MAX);
        assert!(e.contains(ErrFlags::INVALID_CAST));
        assert_eq!((lo, hi), (0, i64::MAX));
        // The largest double *below* 2⁶³ is in range: no flag.
        let in_range = 9_223_372_036_854_774_784.0; // 2⁶³ − 1024
        let (lo, hi, e) = FloatItv::singleton(in_range).trunc_to_int(i64::MIN, i64::MAX);
        assert!(e.is_empty(), "2⁶³ − 1024 is a valid i64");
        assert_eq!((lo, hi), (in_range as i64, in_range as i64));
        // Infinite bounds saturate and flag.
        let (lo, hi, e) =
            FloatItv::new(f64::NEG_INFINITY, f64::INFINITY).trunc_to_int(i64::MIN, i64::MAX);
        assert!(e.contains(ErrFlags::INVALID_CAST));
        assert_eq!((lo, hi), (i64::MIN, i64::MAX));
    }

    #[test]
    fn double_to_float_conversion_flags() {
        let d = FloatItv::singleton(1e39);
        let (f, e) = d.convert_to(F32);
        assert!(e.contains(ErrFlags::FLOAT_OVERFLOW));
        assert!(f.is_bottom() || f.hi <= f32::MAX as f64);
        let (f, e) = FloatItv::new(0.0, 1.0).convert_to(F32);
        assert!(e.is_empty());
        assert_eq!(f, FloatItv::new(0.0, 1.0));
    }
}
