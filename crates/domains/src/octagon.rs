//! The octagon abstract domain (paper Sect. 6.2.2).
//!
//! Represents conjunctions of constraints `±x ± y ≤ c` over a small pack of
//! variables, using the difference-bound-matrix encoding of Miné \[29\]: each
//! variable `xₖ` contributes two nodes `V₂ₖ = xₖ` and `V₂ₖ₊₁ = −xₖ`, and the
//! matrix entry `m[i][j]` bounds `Vⱼ − Vᵢ`. Strong closure (a Floyd–Warshall
//! sweep plus the octagon strengthening step) is cubic in the number of
//! variables — affordable because packs stay small (Sect. 7.2.1).
//!
//! Soundness with floats: the abstract element denotes a subset of `ℝⁿ`
//! (invariants are interpreted in the real field, per the paper's two-step
//! design), and every bound addition rounds *up*, so closure and transfer
//! functions only ever relax true constraints. Floating-point expressions
//! must be linearized first (Sect. 6.3) before reaching the octagon.

use crate::float_interval::FloatItv;
use crate::thresholds::Thresholds;
use astree_float::round;
use std::fmt;

const INF: f64 = f64::INFINITY;

/// An octagon over `n` variables.
///
/// # Examples
///
/// ```
/// use astree_domains::Octagon;
/// // x0 - x1 <= 3  and  x1 <= 2  imply  x0 <= 5.
/// let mut o = Octagon::top(2);
/// o.add_diff_le(0, 1, 3.0);
/// o.add_upper(1, 2.0);
/// o.close();
/// assert!(o.bounds(0).hi <= 5.0 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Octagon {
    n: usize,
    /// Row-major `(2n)×(2n)` bound matrix.
    m: Vec<f64>,
    closed: bool,
}

impl Octagon {
    /// The unconstrained octagon over `n` variables.
    pub fn top(n: usize) -> Octagon {
        let dim = 2 * n;
        let mut m = vec![INF; dim * dim];
        for i in 0..dim {
            m[i * dim + i] = 0.0;
        }
        Octagon { n, m, closed: true }
    }

    /// Number of variables in the pack.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The raw representation `(n, bound matrix, closed)`, for serialization.
    ///
    /// The matrix is the row-major `(2n)×(2n)` difference-bound matrix; the
    /// `closed` flag records whether strong closure has been applied. Feeding
    /// these three values back through [`Octagon::from_raw`] reconstructs a
    /// physically identical element.
    pub fn to_raw(&self) -> (usize, &[f64], bool) {
        (self.n, &self.m, self.closed)
    }

    /// Rebuilds an octagon from its raw representation (see
    /// [`Octagon::to_raw`]). Returns `None` if the matrix length is not
    /// `(2n)²`.
    pub fn from_raw(n: usize, m: Vec<f64>, closed: bool) -> Option<Octagon> {
        if m.len() != 4 * n * n {
            return None;
        }
        Some(Octagon { n, m, closed })
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.m[i * 2 * self.n + j]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: f64) {
        let dim = 2 * self.n;
        self.m[i * dim + j] = v;
    }

    #[inline]
    fn tighten(&mut self, i: usize, j: usize, v: f64) {
        if v < self.at(i, j) {
            self.set(i, j, v);
            self.closed = false;
        }
    }

    /// Adds `x_i ≤ c`.
    pub fn add_upper(&mut self, i: usize, c: f64) {
        self.tighten(2 * i + 1, 2 * i, 2.0 * c);
    }

    /// Adds `x_i ≥ c`.
    pub fn add_lower(&mut self, i: usize, c: f64) {
        self.tighten(2 * i, 2 * i + 1, -2.0 * c);
    }

    /// Adds `x_i − x_j ≤ c` (requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn add_diff_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "difference constraint needs two distinct variables");
        // x_i − x_j ≤ c  ⇔  V_{2i} − V_{2j} ≤ c.
        self.tighten(2 * j, 2 * i, c);
        self.tighten(2 * i + 1, 2 * j + 1, c);
    }

    /// Adds `x_i + x_j ≤ c` (requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (use [`Octagon::add_upper`] with `c/2`).
    pub fn add_sum_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "sum constraint needs two distinct variables");
        // x_i + x_j ≤ c ⇔ V_{2i} − V_{2j+1} ≤ c.
        self.tighten(2 * j + 1, 2 * i, c);
        self.tighten(2 * i + 1, 2 * j, c);
    }

    /// Adds `−x_i − x_j ≤ c` (i.e. `x_i + x_j ≥ −c`; requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn add_neg_sum_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "sum constraint needs two distinct variables");
        // −x_i − x_j ≤ c ⇔ V_{2i+1} − V_{2j} ≤ c.
        self.tighten(2 * j, 2 * i + 1, c);
        self.tighten(2 * i, 2 * j + 1, c);
    }

    /// The interval derivable for `x_i` (after closure).
    pub fn bounds(&self, i: usize) -> FloatItv {
        let hi = self.at(2 * i + 1, 2 * i) / 2.0;
        let lo = -self.at(2 * i, 2 * i + 1) / 2.0;
        FloatItv { lo, hi }
    }

    /// The best derivable upper bound on `x_i − x_j`.
    pub fn diff_bound(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.at(2 * j, 2 * i)
    }

    /// The best derivable upper bound on `x_i + x_j`.
    pub fn sum_bound(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.at(2 * i + 1, 2 * i);
        }
        self.at(2 * j + 1, 2 * i)
    }

    /// Strong closure: propagates all constraints (cubic). Idempotent.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        let dim = 2 * self.n;
        // Floyd–Warshall over all 2n nodes.
        for k in 0..dim {
            for i in 0..dim {
                let mik = self.at(i, k);
                if mik == INF {
                    continue;
                }
                for j in 0..dim {
                    let v = round::add_up(mik, self.at(k, j));
                    if v < self.at(i, j) {
                        self.set(i, j, v);
                    }
                }
            }
        }
        // Octagon strengthening: combine the two unary chains.
        for i in 0..dim {
            for j in 0..dim {
                let v = round::add_up(self.at(i, i ^ 1), self.at(j ^ 1, j)) / 2.0;
                if v < self.at(i, j) {
                    self.set(i, j, v);
                }
            }
        }
        self.closed = true;
    }

    /// `true` when the constraints are unsatisfiable.
    pub fn is_bottom(&mut self) -> bool {
        self.close();
        let dim = 2 * self.n;
        (0..dim).any(|i| self.at(i, i) < 0.0)
    }

    /// Drops every constraint involving `x_i` (other constraints are
    /// preserved through prior closure).
    pub fn forget(&mut self, i: usize) {
        self.close();
        let dim = 2 * self.n;
        for r in [2 * i, 2 * i + 1] {
            for j in 0..dim {
                self.set(r, j, INF);
                self.set(j, r, INF);
            }
        }
        self.set(2 * i, 2 * i, 0.0);
        self.set(2 * i + 1, 2 * i + 1, 0.0);
    }

    /// `x_i := [lo, hi]` (non-relational assignment).
    pub fn assign_interval(&mut self, i: usize, itv: FloatItv) {
        self.forget(i);
        if itv.hi.is_finite() {
            self.add_upper(i, itv.hi);
        }
        if itv.lo.is_finite() {
            self.add_lower(i, itv.lo);
        }
    }

    /// `x_i := x_j + [clo, chi]` — the exact relational assignment the
    /// paper's transfer function uses to synthesize `c ≤ L − Z ≤ d`.
    pub fn assign_var_plus_const(&mut self, i: usize, j: usize, clo: f64, chi: f64) {
        if i == j {
            self.shift(i, clo, chi);
            return;
        }
        self.forget(i);
        self.add_diff_le(i, j, chi);
        self.add_diff_le(j, i, -clo);
        self.closed = false;
    }

    /// `x_i := −x_j + [clo, chi]`.
    pub fn assign_neg_var_plus_const(&mut self, i: usize, j: usize, clo: f64, chi: f64) {
        if i == j {
            self.negate_var(i);
            self.shift(i, clo, chi);
            return;
        }
        self.forget(i);
        self.add_sum_le(i, j, chi);
        self.add_neg_sum_le(i, j, -clo);
        self.closed = false;
    }

    /// In-place `x_i := x_i + [clo, chi]`.
    fn shift(&mut self, i: usize, clo: f64, chi: f64) {
        let dim = 2 * self.n;
        let (p, q) = (2 * i, 2 * i + 1);
        for j in 0..dim {
            if j != p && j != q {
                // Row p: bounds on V_j − x_i → loosen by −clo.
                let v = self.at(p, j);
                if v != INF {
                    self.set(p, j, round::add_up(v, -clo));
                }
                // Column p: bounds on x_i − V_j → loosen by +chi.
                let v = self.at(j, p);
                if v != INF {
                    self.set(j, p, round::add_up(v, chi));
                }
                // Row q: bounds on V_j + x_i → loosen by +chi.
                let v = self.at(q, j);
                if v != INF {
                    self.set(q, j, round::add_up(v, chi));
                }
                // Column q: bounds on −x_i − V_j → loosen by −clo.
                let v = self.at(j, q);
                if v != INF {
                    self.set(j, q, round::add_up(v, -clo));
                }
            }
        }
        // The two unary entries move by twice the shift.
        let v = self.at(p, q); // −2x_i ≤ v
        if v != INF {
            self.set(p, q, round::add_up(v, -2.0 * clo));
        }
        let v = self.at(q, p); // 2x_i ≤ v
        if v != INF {
            self.set(q, p, round::add_up(v, 2.0 * chi));
        }
        self.closed = false;
    }

    /// In-place `x_i := −x_i`: swaps the positive and negative nodes.
    fn negate_var(&mut self, i: usize) {
        let dim = 2 * self.n;
        let (p, q) = (2 * i, 2 * i + 1);
        for j in 0..dim {
            if j != p && j != q {
                let a = self.at(p, j);
                let b = self.at(q, j);
                self.set(p, j, b);
                self.set(q, j, a);
                let a = self.at(j, p);
                let b = self.at(j, q);
                self.set(j, p, b);
                self.set(j, q, a);
            }
        }
        let a = self.at(p, q);
        let b = self.at(q, p);
        self.set(p, q, b);
        self.set(q, p, a);
        self.closed = false;
    }

    /// Least upper bound of immutable operands (clones internally for the
    /// closures; used by sharing-aware containers whose combinators only see
    /// `&self`).
    #[must_use]
    pub fn join_ref(&self, other: &Octagon) -> Octagon {
        let mut a = self.clone();
        let mut b = other.clone();
        a.join(&mut b)
    }

    /// Widening of immutable operands (see [`Octagon::widen`] for the
    /// termination contract).
    #[must_use]
    pub fn widen_ref(&self, other: &Octagon, thresholds: &Thresholds) -> Octagon {
        let mut b = other.clone();
        self.widen(&mut b, thresholds)
    }

    /// Inclusion test of immutable operands.
    pub fn leq_ref(&self, other: &Octagon) -> bool {
        let mut a = self.clone();
        a.leq(other)
    }

    /// Least upper bound (entrywise max of closed forms).
    #[must_use]
    pub fn join(&mut self, other: &mut Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        self.close();
        other.close();
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        let m = self.m.iter().zip(&other.m).map(|(a, b)| a.max(*b)).collect();
        Octagon { n: self.n, m, closed: true }
    }

    /// Greatest lower bound (entrywise min).
    #[must_use]
    pub fn meet(&self, other: &Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        let m = self.m.iter().zip(&other.m).map(|(a, b)| a.min(*b)).collect();
        Octagon { n: self.n, m, closed: false }
    }

    /// Widening: entries that grew jump to the next threshold (then +∞).
    ///
    /// The left operand must be the previous loop-head element *as returned
    /// by the previous widening* (not re-closed), the standard requirement
    /// for termination of DBM widenings.
    #[must_use]
    pub fn widen(&self, other: &mut Octagon, thresholds: &Thresholds) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        other.close();
        let m = self
            .m
            .iter()
            .zip(&other.m)
            .map(|(a, b)| if b > a { thresholds.above(*b) } else { *a })
            .collect();
        Octagon { n: self.n, m, closed: false }
    }

    /// Inclusion test `γ(self) ⊆ γ(other)`.
    pub fn leq(&mut self, other: &Octagon) -> bool {
        assert_eq!(self.n, other.n, "pack size mismatch");
        self.close();
        self.m.iter().zip(&other.m).all(|(a, b)| a <= b)
    }

    /// Intersects interval information into the octagon (reduction from the
    /// interval component of the reduced product).
    pub fn refine_with_interval(&mut self, i: usize, itv: FloatItv) {
        if itv.hi.is_finite() {
            self.tighten(2 * i + 1, 2 * i, 2.0 * itv.hi);
        }
        if itv.lo.is_finite() {
            self.tighten(2 * i, 2 * i + 1, -2.0 * itv.lo);
        }
    }
}

impl fmt::Display for Octagon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "octagon over {} vars:", self.n)?;
        for i in 0..self.n {
            let b = self.bounds(i);
            writeln!(f, "  x{i} ∈ [{}, {}]", b.lo, b.hi)?;
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let d = self.diff_bound(i, j);
                    if d != INF {
                        writeln!(f, "  x{i} - x{j} ≤ {d}")?;
                    }
                    let s = self.sum_bound(i, j);
                    if i < j && s != INF {
                        writeln!(f, "  x{i} + x{j} ≤ {s}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_difference() {
        let mut o = Octagon::top(3);
        o.add_diff_le(0, 1, 2.0); // x0 - x1 <= 2
        o.add_diff_le(1, 2, 3.0); // x1 - x2 <= 3
        o.close();
        assert!(o.diff_bound(0, 2) <= 5.0 + 1e-9); // x0 - x2 <= 5
    }

    #[test]
    fn unary_propagation() {
        let mut o = Octagon::top(2);
        o.add_diff_le(0, 1, 3.0);
        o.add_upper(1, 2.0);
        o.add_lower(1, -1.0);
        o.close();
        let b0 = o.bounds(0);
        assert!(b0.hi <= 5.0 + 1e-9);
        // Lower bound of x0 is unconstrained.
        assert_eq!(b0.lo, f64::NEG_INFINITY);
    }

    #[test]
    fn sum_constraints() {
        let mut o = Octagon::top(2);
        o.add_sum_le(0, 1, 10.0); // x0 + x1 <= 10
        o.add_lower(1, 4.0); // x1 >= 4
        o.close();
        assert!(o.bounds(0).hi <= 6.0 + 1e-9);
    }

    #[test]
    fn bottom_detection() {
        let mut o = Octagon::top(1);
        o.add_upper(0, 1.0);
        o.add_lower(0, 2.0);
        assert!(o.is_bottom());
        let mut ok = Octagon::top(1);
        ok.add_upper(0, 2.0);
        ok.add_lower(0, 1.0);
        assert!(!ok.is_bottom());
    }

    #[test]
    fn forget_keeps_unrelated() {
        let mut o = Octagon::top(3);
        o.add_diff_le(0, 1, 2.0);
        o.add_diff_le(1, 2, 3.0);
        o.forget(1);
        o.close();
        // x0 - x2 <= 5 was implied and must survive the forget.
        assert!(o.diff_bound(0, 2) <= 5.0 + 1e-9);
        // But x0 - x1 is gone.
        assert_eq!(o.diff_bound(0, 1), INF);
    }

    #[test]
    fn paper_fragment_l_le_x() {
        // R := X − Z; L := X; if (R > V) L := Z + V  ⇒  L ≤ X.
        // Variables: 0=X, 1=Z, 2=V, 3=R, 4=L.
        let mut o = Octagon::top(5);
        // Initial ranges: X,Z,V ∈ [-100, 100].
        for v in 0..3 {
            o.assign_interval(v, FloatItv::new(-100.0, 100.0));
        }
        // R := X − Z is not an octagon shape; approximate by its interval
        // [-200, 200] (the paper's analyzer would use the linear form too).
        o.assign_interval(3, FloatItv::new(-200.0, 200.0));
        // Branch: R > V. Then L := Z + V: the smart assignment extracts
        // V ∈ [c, d] and synthesizes c ≤ L − Z ≤ d.
        let mut then_branch = o.clone();
        let v_bounds = then_branch.bounds(2);
        then_branch.assign_var_plus_const(4, 1, v_bounds.lo, v_bounds.hi);
        then_branch.close();
        // L − Z ≤ 100 must hold.
        assert!(then_branch.diff_bound(4, 1) <= 100.0 + 1e-9);
        // And L is bounded: L ≤ Z + 100 ≤ 200.
        assert!(then_branch.bounds(4).hi <= 200.0 + 1e-9);
    }

    #[test]
    fn assign_shift_in_place() {
        let mut o = Octagon::top(2);
        o.assign_interval(0, FloatItv::new(0.0, 1.0));
        o.assign_interval(1, FloatItv::new(5.0, 6.0));
        o.add_diff_le(0, 1, -4.0); // x0 - x1 <= -4
        o.close();
        // x0 := x0 + [10, 10]
        o.assign_var_plus_const(0, 0, 10.0, 10.0);
        o.close();
        let b = o.bounds(0);
        assert!(b.lo >= 10.0 - 1e-9 && b.hi <= 11.0 + 1e-9, "{b}");
        assert!(o.diff_bound(0, 1) <= 6.0 + 1e-9);
    }

    #[test]
    fn assign_negation() {
        let mut o = Octagon::top(2);
        o.assign_interval(1, FloatItv::new(2.0, 3.0));
        // x0 := -x1 + [0, 0]
        o.assign_neg_var_plus_const(0, 1, 0.0, 0.0);
        o.close();
        let b = o.bounds(0);
        assert!(b.lo >= -3.0 - 1e-9 && b.hi <= -2.0 + 1e-9, "{b}");
        // In-place negation: x1 := -x1.
        o.assign_neg_var_plus_const(1, 1, 0.0, 0.0);
        o.close();
        let b1 = o.bounds(1);
        assert!(b1.lo >= -3.0 - 1e-9 && b1.hi <= -2.0 + 1e-9, "{b1}");
    }

    #[test]
    fn join_is_upper_bound() {
        let mut a = Octagon::top(2);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        let mut b = Octagon::top(2);
        b.assign_interval(0, FloatItv::new(3.0, 4.0));
        let j = a.join(&mut b);
        assert!(a.leq(&j) && b.leq(&j));
        let bounds = j.bounds(0);
        assert!(bounds.lo <= 0.0 && bounds.hi >= 4.0);
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(1.0, 2.0));
        let mut bot = Octagon::top(1);
        bot.add_upper(0, 0.0);
        bot.add_lower(0, 1.0);
        let j = a.join(&mut bot);
        let b = j.bounds(0);
        assert!(b.lo >= 1.0 - 1e-9 && b.hi <= 2.0 + 1e-9);
    }

    #[test]
    fn widen_stabilizes() {
        let t = Thresholds::geometric(1.0, 10.0, 2);
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        a.close();
        let mut b = Octagon::top(1);
        b.assign_interval(0, FloatItv::new(0.0, 2.0));
        let w = a.widen(&mut b, &t);
        // Upper bound escaped: 2·hi jumps to a threshold ≥ 4 on the 2c scale.
        let mut wc = w.clone();
        wc.close();
        assert!(wc.bounds(0).hi >= 2.0);
        // Widening again with included element is stable.
        let mut same = wc.clone();
        let w2 = w.widen(&mut same, &t);
        assert_eq!(w.m, w2.m);
    }

    #[test]
    fn meet_refines() {
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(0.0, 10.0));
        let mut b = Octagon::top(1);
        b.assign_interval(0, FloatItv::new(5.0, 20.0));
        let mut m = a.meet(&b);
        m.close();
        let r = m.bounds(0);
        assert!(r.lo >= 5.0 - 1e-9 && r.hi <= 10.0 + 1e-9);
    }

    #[test]
    fn rounding_is_upward() {
        let mut o = Octagon::top(2);
        o.add_diff_le(0, 1, 0.1);
        o.add_diff_le(1, 0, 0.2);
        o.close();
        // Closure adds 0.1 + 0.2 on the cycle; the diagonal must not go
        // negative through rounding (0.1+0.2 > 0.3 exactly in f64 rounding).
        assert!(!o.is_bottom());
    }
}
