//! The octagon abstract domain (paper Sect. 6.2.2).
//!
//! Represents conjunctions of constraints `±x ± y ≤ c` over a small pack of
//! variables, using the difference-bound-matrix encoding of Miné \[29\]: each
//! variable `xₖ` contributes two nodes `V₂ₖ = xₖ` and `V₂ₖ₊₁ = −xₖ`, and the
//! matrix entry `m[i][j]` bounds `Vⱼ − Vᵢ`. Strong closure (a Floyd–Warshall
//! sweep plus the octagon strengthening step) is cubic in the number of
//! variables — affordable because packs stay small (Sect. 7.2.1).
//!
//! # Half-matrix storage
//!
//! Every DBM this module produces is *coherent*: `m[i][j] = m[ȷ̄][ī]` with
//! `k̄ = k^1` (swapping a constraint's two node views yields the same
//! constraint). Rather than storing both copies in a `(2n)×(2n)` matrix, only
//! the coherent lower triangle is kept — the canonical slots `(i, j)` with
//! `j ≤ (i|1)`, laid out row-contiguously at `j + (i+1)²/2`, which is
//! `2n(n+1)` entries instead of `4n²`. Packs of ≤ 3 variables (the common
//! case from pack discovery) fit the 24-slot inline buffer and never touch
//! the heap. The closure loops iterate canonical rows contiguously and read
//! mirrors through the coherence map, so the inner loops stay branch-light
//! and vectorizable.
//!
//! # Small-pack kernels
//!
//! `close_full`, `join`, `widen` and `leq` dispatch on the pack size to
//! monomorphized kernels for n = 2 and n = 3 (fully unrolled, no runtime
//! index arithmetic). The kernels are const-generic instantiations of the
//! *same* `#[inline(always)]` body as the generic path, so they perform the
//! identical float operations in the identical order — results are bitwise
//! equal by construction. [`set_generic_kernels`] disables the dispatch on
//! the current thread (the `--debug-generic-kernels` differential), and a
//! property test asserts the bitwise agreement on random constraint streams.
//!
//! Soundness with floats: the abstract element denotes a subset of `ℝⁿ`
//! (invariants are interpreted in the real field, per the paper's two-step
//! design), and every bound addition rounds *up*, so closure and transfer
//! functions only ever relax true constraints. Floating-point expressions
//! must be linearized first (Sect. 6.3) before reaching the octagon.

use crate::float_interval::FloatItv;
use crate::thresholds::Thresholds;
use astree_float::round;
use std::cell::Cell;
use std::fmt;

const INF: f64 = f64::INFINITY;

thread_local! {
    /// Clone-then-close operations avoided by the `*_ref` fast paths on
    /// already-closed operands. Thread-local so parallel slice workers
    /// count without synchronization; drained per-slice by the iterator
    /// and reported through `domain_op_n("octagon", "closure_saved", …)`.
    static SAVED_CLOSURES: Cell<u64> = const { Cell::new(0) };

    /// When set, the small-pack specialized kernels are bypassed and every
    /// operation runs the generic body (the `--debug-generic-kernels`
    /// differential). Thread-local for the same reason as the pmap
    /// `ptr_shortcuts` flag: parallel slice workers arm it per slice
    /// without synchronization.
    static GENERIC_KERNELS: Cell<bool> = const { Cell::new(false) };
}

/// Drains this thread's saved-closure counter (see [`Octagon::leq_ref`]).
pub fn take_saved_closures() -> u64 {
    SAVED_CLOSURES.with(|c| c.replace(0))
}

fn note_saved_closure() {
    SAVED_CLOSURES.with(|c| c.set(c.get() + 1));
}

/// Disables (`true`) or re-enables (`false`) the small-pack specialized
/// kernels on the current thread, returning the previous setting. The
/// specialized and generic paths are bitwise identical by construction
/// (same inlined body), so this is a validation knob, not a semantics
/// switch — `--debug-generic-kernels` arms it to prove exactly that.
pub fn set_generic_kernels(generic: bool) -> bool {
    GENERIC_KERNELS.with(|c| c.replace(generic))
}

#[inline]
fn specialized_enabled() -> bool {
    GENERIC_KERNELS.with(|c| !c.get())
}

// ---------------------------------------------------------------------------
// Half-matrix layout
// ---------------------------------------------------------------------------

/// Number of canonical (stored) slots for an `n`-variable octagon.
#[inline(always)]
const fn hm_len(n: usize) -> usize {
    2 * n * (n + 1)
}

/// Flat index of the canonical slot `(i, j)`; requires `j ≤ (i|1)`.
/// Row `i`'s slots are contiguous starting at `(i+1)²/2`.
#[inline(always)]
fn hm_idx(i: usize, j: usize) -> usize {
    debug_assert!(j <= (i | 1));
    j + ((i + 1) * (i + 1)) / 2
}

/// Flat index of the slot holding the full-matrix entry `(i, j)`: the
/// canonical slot itself, or its coherent mirror `(ȷ̄, ī)`.
#[inline(always)]
fn hm_slot(i: usize, j: usize) -> usize {
    if j <= (i | 1) {
        hm_idx(i, j)
    } else {
        hm_idx(j ^ 1, i ^ 1)
    }
}

/// Reads the full-matrix entry `(i, j)` from the half matrix.
#[inline(always)]
fn g(m: &[f64], i: usize, j: usize) -> f64 {
    m[hm_slot(i, j)]
}

/// Largest pack (2·3 nodes → 24 slots) stored inline without heap
/// allocation. Pack discovery shows 2–3 variables is the dominant case.
const INLINE_SLOTS: usize = 24;

/// The bound storage: a fixed inline buffer for small packs, a boxed slice
/// above. Only the first [`hm_len`]`(n)` slots are meaningful; inline tail
/// slots are never read or compared.
#[derive(Debug, Clone)]
enum Buf {
    Inline([f64; INLINE_SLOTS]),
    Heap(Box<[f64]>),
}

impl Buf {
    /// An uninitialized-content buffer of the right class for `n` variables
    /// (callers overwrite every live slot).
    fn raw(n: usize) -> Buf {
        let len = hm_len(n);
        if len <= INLINE_SLOTS {
            Buf::Inline([INF; INLINE_SLOTS])
        } else {
            Buf::Heap(vec![INF; len].into_boxed_slice())
        }
    }
}

/// Runs `f` on a zeroed scratch row of `dim` entries — stack-allocated for
/// every realistic pack, heap fallback above (packs are capped well below
/// 32 variables in practice, but nothing here should depend on that).
#[inline(always)]
fn with_scratch<R>(dim: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    if dim <= 64 {
        let mut stack = [0.0f64; 64];
        f(&mut stack[..dim])
    } else {
        let mut heap = vec![0.0f64; dim];
        f(&mut heap)
    }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------
//
// Each kernel is written once as an `#[inline(always)]` body over a runtime
// dimension and instantiated twice: through a generic wrapper (dimension
// stays a runtime value) and through const-generic wrappers for the n = 2
// and n = 3 pack sizes (the dimension becomes a compile-time constant, so
// the loops fully unroll and the coherence-map branches const-fold away).
// Both instantiations execute the identical float operations in the
// identical order, so their results are bitwise equal by construction —
// the property test below and the `--debug-generic-kernels` differential
// in CI both enforce it end to end.

/// Relaxes every canonical slot through the node pair `{2t, 2t+1}` whose
/// rows are snapshotted in `rowk`/`rowk1` (snapshots taken before the pass,
/// i.e. the post-previous-pair state — the textbook read-old-values
/// formulation, which keeps the inner loop on contiguous scratch rows).
///
/// On the half matrix a canonical slot stands for a full entry *and* its
/// coherent mirror, and the mirror's path through node `k` is the slot's
/// path through `k̄ = k^1` — so single-node Floyd–Warshall steps would
/// relax mirrors through `2t+1` one step early. Processing the pair as one
/// combined step (Miné's strong-closure formulation: reach `k` either
/// directly or via `k̄`, then leave through either row) covers all four
/// path shapes at once and restores the Floyd–Warshall invariant at pair
/// granularity for both the entry and its mirror.
#[inline(always)]
fn relax_through_pair(
    m: &mut [f64],
    dim: usize,
    k: usize,
    rowk: &[f64],
    rowk1: &[f64],
    mut keep: impl FnMut(usize, usize) -> bool,
) {
    let k1 = k + 1;
    let mkk1 = rowk[k1]; // m[2t][2t+1]
    let mk1k = rowk1[k]; // m[2t+1][2t]
    for i in 0..dim {
        let ik = g(m, i, k);
        let ik1 = g(m, i, k1);
        // Best way to reach node k (directly, or via k+1) and node k+1.
        let mut bk = ik;
        let via = round::add_up(ik1, mk1k);
        if via < bk {
            bk = via;
        }
        let mut bk1 = ik1;
        let via = round::add_up(ik, mkk1);
        if via < bk1 {
            bk1 = via;
        }
        if bk == INF && bk1 == INF {
            continue;
        }
        let base = ((i + 1) * (i + 1)) / 2;
        for j in 0..=(i | 1) {
            if !keep(i, j) {
                continue;
            }
            let v = round::add_up(bk, rowk[j]);
            if v < m[base + j] {
                m[base + j] = v;
            }
            let v = round::add_up(bk1, rowk1[j]);
            if v < m[base + j] {
                m[base + j] = v;
            }
        }
    }
}

/// Floyd–Warshall over the half matrix (pair-combined steps, see
/// [`relax_through_pair`]) plus one strengthening pass.
#[inline(always)]
fn close_full_body(m: &mut [f64], dim: usize) {
    with_scratch(2 * dim, |rows| {
        let (rowk, rowk1) = rows.split_at_mut(dim);
        for t in 0..dim / 2 {
            let k = 2 * t;
            for j in 0..dim {
                rowk[j] = g(m, k, j);
                rowk1[j] = g(m, k + 1, j);
            }
            relax_through_pair(m, dim, k, rowk, rowk1, |_, _| true);
        }
    });
    strengthen_body(m, dim);
}

/// Octagon strengthening: combine the two unary chains
/// (`m[i][j] ← min(m[i][j], (m[i][ī] + m[ȷ̄][j])/2)`).
///
/// The unary slots read here are only ever self-relaxed by the writes this
/// pass performs (`(x + x)/2 = x` exactly), so snapshotting them first is
/// bitwise equal to the in-place formulation.
#[inline(always)]
fn strengthen_body(m: &mut [f64], dim: usize) {
    with_scratch(dim, |udiag| {
        for (j, u) in udiag.iter_mut().enumerate() {
            *u = m[hm_idx(j ^ 1, j)];
        }
        for i in 0..dim {
            let ui = m[hm_idx(i, i ^ 1)];
            if ui == INF {
                continue;
            }
            let base = ((i + 1) * (i + 1)) / 2;
            for j in 0..=(i | 1) {
                let v = round::add_up(ui, udiag[j]) / 2.0;
                if v < m[base + j] {
                    m[base + j] = v;
                }
            }
        }
    });
}

/// Generic (runtime-dimension) instantiation of the closure body.
fn close_full_generic(m: &mut [f64], dim: usize) {
    close_full_body(m, dim);
}

/// Monomorphized closure for a compile-time pack size: the body inlines
/// with `DIM` constant, unrolling every loop and const-folding the slot
/// arithmetic and coherence branches.
fn close_full_kernel<const DIM: usize>(m: &mut [f64]) {
    close_full_body(m, DIM);
}

/// Entrywise combine over the live half slices.
#[inline(always)]
fn zip_body(out: &mut [f64], a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64 + Copy) {
    for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = f(*x, *y);
    }
}

/// Monomorphized entrywise combine for a compile-time slot count.
fn zip_kernel<const LEN: usize>(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    f: impl Fn(f64, f64) -> f64 + Copy,
) {
    let out: &mut [f64; LEN] = (&mut out[..LEN]).try_into().unwrap();
    let a: &[f64; LEN] = (&a[..LEN]).try_into().unwrap();
    let b: &[f64; LEN] = (&b[..LEN]).try_into().unwrap();
    zip_body(out, a, b, f);
}

/// Entrywise combine with small-pack dispatch (n = 2 → 12 slots,
/// n = 3 → 24 slots).
fn zip_dispatch(out: &mut [f64], a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64 + Copy) {
    if specialized_enabled() {
        match out.len() {
            12 => return zip_kernel::<12>(out, a, b, f),
            24 => return zip_kernel::<24>(out, a, b, f),
            _ => {}
        }
    }
    zip_body(out, a, b, f);
}

/// Entrywise `≤` over the live half slices.
#[inline(always)]
fn leq_body(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn leq_kernel<const LEN: usize>(a: &[f64], b: &[f64]) -> bool {
    let a: &[f64; LEN] = (&a[..LEN]).try_into().unwrap();
    let b: &[f64; LEN] = (&b[..LEN]).try_into().unwrap();
    leq_body(a, b)
}

fn leq_dispatch(a: &[f64], b: &[f64]) -> bool {
    if specialized_enabled() {
        match a.len() {
            12 => return leq_kernel::<12>(a, b),
            24 => return leq_kernel::<24>(a, b),
            _ => {}
        }
    }
    leq_body(a, b)
}

// ---------------------------------------------------------------------------
// Closure bookkeeping
// ---------------------------------------------------------------------------

/// Closure bookkeeping: which part of the matrix may violate strong
/// closure. `DirtyVars` is the incremental-closure fast path — the matrix
/// was strongly closed and only entries in the rows/columns of the masked
/// variables changed since, so re-closing is `O(|V̂|·n²)` instead of the
/// full `O(n³)` Floyd–Warshall (Miné's incremental strong closure).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Closure {
    /// Strongly closed.
    Closed,
    /// Strongly closed except for constraints touching the masked
    /// variables (bit `v` = variable `v`; packs are capped well under 32).
    DirtyVars(u32),
    /// No closure information (whole-matrix edits: meet, widen, decode).
    Dirty,
}

/// An octagon over `n` variables.
///
/// # Examples
///
/// ```
/// use astree_domains::Octagon;
/// // x0 - x1 <= 3  and  x1 <= 2  imply  x0 <= 5.
/// let mut o = Octagon::top(2);
/// o.add_diff_le(0, 1, 3.0);
/// o.add_upper(1, 2.0);
/// o.close();
/// assert!(o.bounds(0).hi <= 5.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Octagon {
    n: usize,
    /// Canonical lower triangle of the coherent `(2n)×(2n)` bound matrix
    /// (see the module docs for the layout).
    buf: Buf,
    closure: Closure,
}

/// Equality compares the bound matrix *numerically* and whether strong
/// closure holds — the same observable distinction the former boolean
/// `closed` flag made (the two dirty flavors are interchangeable: both just
/// mean "must re-close").
///
/// Numeric equality is deliberate and correct **only because nothing
/// identity-sensitive uses it**: `PartialEq` serves tests and assertions,
/// where `-0.0 == 0.0` is the right notion of "same constraints". Every
/// sharing/identity decision in the analyzer (pmap `insert_if_changed`,
/// aligned-roots merges) goes through the bitwise [`Octagon::same`]
/// instead — substituting a `PartialEq`-equal octagon with different
/// `-0.0` bit patterns (or treating two NaN-shaped bounds as unequal)
/// would silently change downstream bit patterns. The
/// `partial_eq_is_numeric_same_is_bitwise` regression test pins both
/// behaviors.
impl PartialEq for Octagon {
    fn eq(&self, other: &Octagon) -> bool {
        self.n == other.n
            && self.hm() == other.hm()
            && (self.closure == Closure::Closed) == (other.closure == Closure::Closed)
    }
}

impl Octagon {
    /// The unconstrained octagon over `n` variables.
    pub fn top(n: usize) -> Octagon {
        let mut buf = Buf::raw(n);
        let m = match &mut buf {
            Buf::Inline(a) => &mut a[..],
            Buf::Heap(b) => b,
        };
        for i in 0..2 * n {
            m[hm_idx(i, i)] = 0.0;
        }
        Octagon { n, buf, closure: Closure::Closed }
    }

    /// Number of variables in the pack.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The live canonical slots.
    #[inline(always)]
    fn hm(&self) -> &[f64] {
        match &self.buf {
            Buf::Inline(a) => &a[..hm_len(self.n)],
            Buf::Heap(b) => b,
        }
    }

    /// The live canonical slots, mutably.
    #[inline(always)]
    fn hm_mut(&mut self) -> &mut [f64] {
        match &mut self.buf {
            Buf::Inline(a) => &mut a[..hm_len(self.n)],
            Buf::Heap(b) => b,
        }
    }

    /// Whether the bounds live in the no-heap inline buffer (small packs).
    #[cfg(test)]
    fn is_inline(&self) -> bool {
        matches!(self.buf, Buf::Inline(_))
    }

    /// The raw representation `(n, bound matrix, closed)`, for serialization.
    ///
    /// The matrix is the row-major `(2n)×(2n)` difference-bound matrix
    /// (expanded from the stored half matrix through coherence — the
    /// on-disk `astree-cache/1` codec predates the half-matrix storage and
    /// stays format-compatible); the `closed` flag records whether strong
    /// closure has been applied. Feeding these three values back through
    /// [`Octagon::from_raw`] reconstructs a physically identical element.
    pub fn to_raw(&self) -> (usize, Vec<f64>, bool) {
        let dim = 2 * self.n;
        let m = self.hm();
        let mut full = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                full[i * dim + j] = g(m, i, j);
            }
        }
        (self.n, full, self.closure == Closure::Closed)
    }

    /// Rebuilds an octagon from its raw representation (see
    /// [`Octagon::to_raw`]). Returns `None` if the matrix length is not
    /// `(2n)²`.
    ///
    /// Only the canonical lower triangle of `m` is read: every matrix the
    /// analyzer (of any version) ever serialized is coherent, so this loses
    /// nothing — old warm stores replay byte-for-byte.
    pub fn from_raw(n: usize, m: Vec<f64>, closed: bool) -> Option<Octagon> {
        if m.len() != 4 * n * n {
            return None;
        }
        let dim = 2 * n;
        let mut buf = Buf::raw(n);
        let half = match &mut buf {
            Buf::Inline(a) => &mut a[..],
            Buf::Heap(b) => b,
        };
        for i in 0..dim {
            let base = ((i + 1) * (i + 1)) / 2;
            for j in 0..=(i | 1) {
                half[base + j] = m[i * dim + j];
            }
        }
        Some(Octagon { n, buf, closure: if closed { Closure::Closed } else { Closure::Dirty } })
    }

    /// Marks variable `v`'s rows/columns as modified since the last strong
    /// closure. Falls back to whole-matrix dirtiness for oversized packs.
    #[inline]
    fn taint_var(&mut self, v: usize) {
        if v >= 32 {
            self.closure = Closure::Dirty;
            return;
        }
        self.closure = match self.closure {
            Closure::Closed => Closure::DirtyVars(1 << v),
            Closure::DirtyVars(mask) => Closure::DirtyVars(mask | (1 << v)),
            Closure::Dirty => Closure::Dirty,
        };
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.hm()[hm_slot(i, j)]
    }

    #[inline]
    fn tighten(&mut self, i: usize, j: usize, v: f64) {
        let s = hm_slot(i, j);
        if v < self.hm()[s] {
            self.hm_mut()[s] = v;
            self.taint_var(i / 2);
            self.taint_var(j / 2);
        }
    }

    /// Adds `x_i ≤ c`.
    pub fn add_upper(&mut self, i: usize, c: f64) {
        self.tighten(2 * i + 1, 2 * i, 2.0 * c);
    }

    /// Adds `x_i ≥ c`.
    pub fn add_lower(&mut self, i: usize, c: f64) {
        self.tighten(2 * i, 2 * i + 1, -2.0 * c);
    }

    /// Adds `x_i − x_j ≤ c` (requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn add_diff_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "difference constraint needs two distinct variables");
        // x_i − x_j ≤ c  ⇔  V_{2i} − V_{2j} ≤ c (and its coherent mirror,
        // which is the same stored slot).
        self.tighten(2 * j, 2 * i, c);
        self.tighten(2 * i + 1, 2 * j + 1, c);
    }

    /// Adds `x_i + x_j ≤ c` (requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (use [`Octagon::add_upper`] with `c/2`).
    pub fn add_sum_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "sum constraint needs two distinct variables");
        // x_i + x_j ≤ c ⇔ V_{2i} − V_{2j+1} ≤ c.
        self.tighten(2 * j + 1, 2 * i, c);
        self.tighten(2 * i + 1, 2 * j, c);
    }

    /// Adds `−x_i − x_j ≤ c` (i.e. `x_i + x_j ≥ −c`; requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn add_neg_sum_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "sum constraint needs two distinct variables");
        // −x_i − x_j ≤ c ⇔ V_{2i+1} − V_{2j} ≤ c.
        self.tighten(2 * j, 2 * i + 1, c);
        self.tighten(2 * i, 2 * j + 1, c);
    }

    /// The interval derivable for `x_i` (after closure).
    pub fn bounds(&self, i: usize) -> FloatItv {
        let hi = self.at(2 * i + 1, 2 * i) / 2.0;
        let lo = -self.at(2 * i, 2 * i + 1) / 2.0;
        FloatItv { lo, hi }
    }

    /// The best derivable upper bound on `x_i − x_j`.
    pub fn diff_bound(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.at(2 * j, 2 * i)
    }

    /// The best derivable upper bound on `x_i + x_j`.
    pub fn sum_bound(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.at(2 * i + 1, 2 * i);
        }
        self.at(2 * j + 1, 2 * i)
    }

    /// Strong closure: propagates all constraints. Idempotent.
    ///
    /// Dispatches on the closure bookkeeping: a matrix that was strongly
    /// closed and has since been modified only on a few variables' rows
    /// and columns pays Miné's `O(|V̂|·n²)` incremental closure instead of
    /// the full cubic Floyd–Warshall.
    pub fn close(&mut self) {
        match self.closure {
            Closure::Closed => {}
            Closure::DirtyVars(mask) if (mask.count_ones() as usize) < self.n => {
                self.close_incremental(mask);
            }
            _ => self.close_full(),
        }
    }

    /// Full strong closure (cubic Floyd–Warshall + strengthening), with
    /// small-pack kernel dispatch.
    fn close_full(&mut self) {
        let dim = 2 * self.n;
        let m = self.hm_mut();
        if specialized_enabled() {
            match dim {
                4 => close_full_kernel::<4>(m),
                6 => close_full_kernel::<6>(m),
                _ => close_full_generic(m, dim),
            }
        } else {
            close_full_generic(m, dim);
        }
        self.closure = Closure::Closed;
    }

    /// Incremental strong closure for a matrix that was strongly closed
    /// before entries touching the variables of `mask` were modified.
    ///
    /// Correctness follows the standard Floyd–Warshall invariant with the
    /// node order "interior nodes first, then modified nodes": pairs of
    /// untouched nodes are already shortest paths through interior
    /// intermediates (the old closure; loosened V̂ entries only lengthen
    /// paths, so they stay valid), phase 1 brings every pair touching V̂
    /// up to date through all intermediates, and phase 2 routes every pair
    /// through the modified nodes. One strengthening pass then restores
    /// strong closure exactly as in the full algorithm. On the half matrix
    /// a canonical slot stands for a full entry *and* its mirror; the
    /// touched-node set is closed under the bar map, so "slot touches V̂"
    /// is exactly the full-matrix "row or column touches V̂".
    fn close_incremental(&mut self, mask: u32) {
        let n = self.n;
        let dim = 2 * n;
        let m = self.hm_mut();
        let touched = |node: usize| mask & (1 << (node / 2)) != 0;
        with_scratch(2 * dim, |rows| {
            let (rowk, rowk1) = rows.split_at_mut(dim);
            // Phase 1: relax every canonical slot with a touched endpoint
            // through every intermediate pair.
            for t in 0..n {
                let k = 2 * t;
                for j in 0..dim {
                    rowk[j] = g(m, k, j);
                    rowk1[j] = g(m, k + 1, j);
                }
                relax_through_pair(m, dim, k, rowk, rowk1, |i, j| touched(i) || touched(j));
            }
            // Phase 2: route every canonical slot through the touched pairs.
            for t in 0..n.min(32) {
                if mask & (1 << t) == 0 {
                    continue;
                }
                let k = 2 * t;
                for j in 0..dim {
                    rowk[j] = g(m, k, j);
                    rowk1[j] = g(m, k + 1, j);
                }
                relax_through_pair(m, dim, k, rowk, rowk1, |_, _| true);
            }
        });
        strengthen_body(m, dim);
        self.closure = Closure::Closed;
    }

    /// Test-only bypass of the incremental dispatch: always runs the full
    /// cubic closure, the reference the equivalence regression compares
    /// the incremental algorithm against.
    #[cfg(test)]
    fn force_full_close(&mut self) {
        if self.closure != Closure::Closed {
            self.close_full();
        }
    }

    /// `true` when the constraints are unsatisfiable.
    pub fn is_bottom(&mut self) -> bool {
        self.close();
        let dim = 2 * self.n;
        let m = self.hm();
        (0..dim).any(|i| m[hm_idx(i, i)] < 0.0)
    }

    /// Drops every constraint involving `x_i` (other constraints are
    /// preserved through prior closure). Each canonical slot on `x_i`'s
    /// rows/columns is visited exactly once: rows `2i`/`2i+1` hold the
    /// slots with `x_i` as the first endpoint, later rows' `2i`/`2i+1`
    /// columns the rest (earlier rows' entries are mirrors of the former).
    pub fn forget(&mut self, i: usize) {
        self.close();
        let dim = 2 * self.n;
        let (p, q) = (2 * i, 2 * i + 1);
        let m = self.hm_mut();
        for r in [p, q] {
            let base = ((r + 1) * (r + 1)) / 2;
            for j in 0..=(r | 1) {
                m[base + j] = INF;
            }
        }
        for r in (q + 1)..dim {
            let base = ((r + 1) * (r + 1)) / 2;
            m[base + p] = INF;
            m[base + q] = INF;
        }
        m[hm_idx(p, p)] = 0.0;
        m[hm_idx(q, q)] = 0.0;
    }

    /// `x_i := [lo, hi]` (non-relational assignment).
    pub fn assign_interval(&mut self, i: usize, itv: FloatItv) {
        self.forget(i);
        if itv.hi.is_finite() {
            self.add_upper(i, itv.hi);
        }
        if itv.lo.is_finite() {
            self.add_lower(i, itv.lo);
        }
    }

    /// `x_i := x_j + [clo, chi]` — the exact relational assignment the
    /// paper's transfer function uses to synthesize `c ≤ L − Z ≤ d`.
    pub fn assign_var_plus_const(&mut self, i: usize, j: usize, clo: f64, chi: f64) {
        if i == j {
            self.shift(i, clo, chi);
            return;
        }
        self.forget(i);
        self.add_diff_le(i, j, chi);
        self.add_diff_le(j, i, -clo);
    }

    /// `x_i := −x_j + [clo, chi]`.
    pub fn assign_neg_var_plus_const(&mut self, i: usize, j: usize, clo: f64, chi: f64) {
        if i == j {
            self.negate_var(i);
            self.shift(i, clo, chi);
            return;
        }
        self.forget(i);
        self.add_sum_le(i, j, chi);
        self.add_neg_sum_le(i, j, -clo);
    }

    /// In-place `x_i := x_i + [clo, chi]`.
    ///
    /// Under coherence a slot with exactly one endpoint on `x_i` stands
    /// for a row entry *and* the mirror column entry, which the full-matrix
    /// formulation adjusted by the same amount — so each canonical slot is
    /// adjusted exactly once: row `2i` slots and later rows' `2i+1` column
    /// (bounds mentioning `−x_i`) loosen by `−clo`; row `2i+1` slots and
    /// later rows' `2i` column (bounds mentioning `+x_i`) loosen by `+chi`.
    fn shift(&mut self, i: usize, clo: f64, chi: f64) {
        let dim = 2 * self.n;
        let (p, q) = (2 * i, 2 * i + 1);
        let m = self.hm_mut();
        let bp = ((p + 1) * (p + 1)) / 2;
        let bq = ((q + 1) * (q + 1)) / 2;
        for j in 0..p {
            let v = m[bp + j]; // V_j − x_i ≤ v
            if v != INF {
                m[bp + j] = round::add_up(v, -clo);
            }
            let v = m[bq + j]; // V_j + x_i ≤ v
            if v != INF {
                m[bq + j] = round::add_up(v, chi);
            }
        }
        for r in (q + 1)..dim {
            let base = ((r + 1) * (r + 1)) / 2;
            let v = m[base + p]; // x_i − V_r ≤ v
            if v != INF {
                m[base + p] = round::add_up(v, chi);
            }
            let v = m[base + q]; // −x_i − V_r ≤ v
            if v != INF {
                m[base + q] = round::add_up(v, -clo);
            }
        }
        // The two unary entries move by twice the shift.
        let v = m[bp + q]; // −2x_i ≤ v
        if v != INF {
            m[bp + q] = round::add_up(v, -2.0 * clo);
        }
        let v = m[bq + p]; // 2x_i ≤ v
        if v != INF {
            m[bq + p] = round::add_up(v, 2.0 * chi);
        }
        self.taint_var(i);
    }

    /// In-place `x_i := −x_i`: swaps the positive and negative nodes.
    /// Swapping rows `2i`/`2i+1` slot-for-slot also realizes the mirror
    /// column swaps for earlier columns; later rows swap their two `x_i`
    /// columns explicitly.
    fn negate_var(&mut self, i: usize) {
        let dim = 2 * self.n;
        let (p, q) = (2 * i, 2 * i + 1);
        let m = self.hm_mut();
        let bp = ((p + 1) * (p + 1)) / 2;
        let bq = ((q + 1) * (q + 1)) / 2;
        for j in 0..p {
            m.swap(bp + j, bq + j);
        }
        // The unary pair swaps; the diagonal entries stay put (matching
        // the historical full-matrix formulation, which left them alone).
        m.swap(bp + q, bq + p);
        for r in (q + 1)..dim {
            let base = ((r + 1) * (r + 1)) / 2;
            m.swap(base + p, base + q);
        }
        self.taint_var(i);
    }

    /// Bottom test on an already-closed matrix (no closure, no clone).
    fn is_bottom_closed(&self) -> bool {
        debug_assert_eq!(self.closure, Closure::Closed);
        let dim = 2 * self.n;
        let m = self.hm();
        (0..dim).any(|i| m[hm_idx(i, i)] < 0.0)
    }

    /// Bitwise identity: same pack size, same closure bookkeeping, and
    /// every stored entry bit-identical (`to_bits`, which distinguishes
    /// `-0.0` from `0.0` and is reflexive on infinities and NaNs). The
    /// sharing-preserving state merges use this to decide "keep the
    /// original octagon" — it must be bitwise, because substituting a
    /// `PartialEq`-equal octagon with a different `-0.0`/closure state
    /// could change downstream bit patterns.
    pub fn same(&self, other: &Octagon) -> bool {
        self.n == other.n
            && self.closure == other.closure
            && self.hm().iter().zip(other.hm()).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Builds a result octagon by combining the operands' live slots.
    fn zip_with(
        &self,
        other: &Octagon,
        closure: Closure,
        f: impl Fn(f64, f64) -> f64 + Copy,
    ) -> Octagon {
        let mut buf = Buf::raw(self.n);
        let out = match &mut buf {
            Buf::Inline(a) => &mut a[..hm_len(self.n)],
            Buf::Heap(b) => &mut b[..],
        };
        zip_dispatch(out, self.hm(), other.hm(), f);
        Octagon { n: self.n, buf, closure }
    }

    /// Least upper bound of immutable operands. Operands that are already
    /// strongly closed skip the defensive clone-then-close entirely (the
    /// avoided work is counted by [`take_saved_closures`]); the result is
    /// bit-identical to the clone path because closing a closed matrix is
    /// a no-op.
    #[must_use]
    pub fn join_ref(&self, other: &Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        if self.closure == Closure::Closed && other.closure == Closure::Closed {
            note_saved_closure();
            if self.is_bottom_closed() {
                return other.clone();
            }
            if other.is_bottom_closed() {
                return self.clone();
            }
            return self.zip_with(other, Closure::Closed, astree_float::max_total);
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.join(&mut b)
    }

    /// Widening of immutable operands (see [`Octagon::widen`] for the
    /// termination contract). A right operand that is already strongly
    /// closed skips the defensive clone-then-close.
    #[must_use]
    pub fn widen_ref(&self, other: &Octagon, thresholds: &Thresholds) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        if other.closure == Closure::Closed {
            note_saved_closure();
            return self.zip_with(other, Closure::Dirty, |a, b| {
                if b > a {
                    thresholds.above(b)
                } else {
                    a
                }
            });
        }
        let mut b = other.clone();
        self.widen(&mut b, thresholds)
    }

    /// Inclusion test of immutable operands. A left operand that is
    /// already strongly closed is compared entrywise without the
    /// defensive clone-then-close.
    pub fn leq_ref(&self, other: &Octagon) -> bool {
        assert_eq!(self.n, other.n, "pack size mismatch");
        if self.closure == Closure::Closed {
            note_saved_closure();
            return leq_dispatch(self.hm(), other.hm());
        }
        let mut a = self.clone();
        a.leq(other)
    }

    /// Least upper bound (entrywise max of closed forms).
    #[must_use]
    pub fn join(&mut self, other: &mut Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        self.close();
        other.close();
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        self.zip_with(other, Closure::Closed, astree_float::max_total)
    }

    /// Greatest lower bound (entrywise min).
    #[must_use]
    pub fn meet(&self, other: &Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        self.zip_with(other, Closure::Dirty, astree_float::min_total)
    }

    /// Widening: entries that grew jump to the next threshold (then +∞).
    ///
    /// The left operand must be the previous loop-head element *as returned
    /// by the previous widening* (not re-closed), the standard requirement
    /// for termination of DBM widenings.
    #[must_use]
    pub fn widen(&self, other: &mut Octagon, thresholds: &Thresholds) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        other.close();
        self.zip_with(other, Closure::Dirty, |a, b| if b > a { thresholds.above(b) } else { a })
    }

    /// Inclusion test `γ(self) ⊆ γ(other)`.
    pub fn leq(&mut self, other: &Octagon) -> bool {
        assert_eq!(self.n, other.n, "pack size mismatch");
        self.close();
        leq_dispatch(self.hm(), other.hm())
    }

    /// Intersects interval information into the octagon (reduction from the
    /// interval component of the reduced product).
    pub fn refine_with_interval(&mut self, i: usize, itv: FloatItv) {
        if itv.hi.is_finite() {
            self.tighten(2 * i + 1, 2 * i, 2.0 * itv.hi);
        }
        if itv.lo.is_finite() {
            self.tighten(2 * i, 2 * i + 1, -2.0 * itv.lo);
        }
    }
}

impl fmt::Display for Octagon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "octagon over {} vars:", self.n)?;
        for i in 0..self.n {
            let b = self.bounds(i);
            writeln!(f, "  x{i} ∈ [{}, {}]", b.lo, b.hi)?;
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let d = self.diff_bound(i, j);
                    if d != INF {
                        writeln!(f, "  x{i} - x{j} ≤ {d}")?;
                    }
                    let s = self.sum_bound(i, j);
                    if i < j && s != INF {
                        writeln!(f, "  x{i} + x{j} ≤ {s}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_difference() {
        let mut o = Octagon::top(3);
        o.add_diff_le(0, 1, 2.0); // x0 - x1 <= 2
        o.add_diff_le(1, 2, 3.0); // x1 - x2 <= 3
        o.close();
        assert!(o.diff_bound(0, 2) <= 5.0 + 1e-9); // x0 - x2 <= 5
    }

    #[test]
    fn unary_propagation() {
        let mut o = Octagon::top(2);
        o.add_diff_le(0, 1, 3.0);
        o.add_upper(1, 2.0);
        o.add_lower(1, -1.0);
        o.close();
        let b0 = o.bounds(0);
        assert!(b0.hi <= 5.0 + 1e-9);
        // Lower bound of x0 is unconstrained.
        assert_eq!(b0.lo, f64::NEG_INFINITY);
    }

    #[test]
    fn sum_constraints() {
        let mut o = Octagon::top(2);
        o.add_sum_le(0, 1, 10.0); // x0 + x1 <= 10
        o.add_lower(1, 4.0); // x1 >= 4
        o.close();
        assert!(o.bounds(0).hi <= 6.0 + 1e-9);
    }

    #[test]
    fn bottom_detection() {
        let mut o = Octagon::top(1);
        o.add_upper(0, 1.0);
        o.add_lower(0, 2.0);
        assert!(o.is_bottom());
        let mut ok = Octagon::top(1);
        ok.add_upper(0, 2.0);
        ok.add_lower(0, 1.0);
        assert!(!ok.is_bottom());
    }

    #[test]
    fn forget_keeps_unrelated() {
        let mut o = Octagon::top(3);
        o.add_diff_le(0, 1, 2.0);
        o.add_diff_le(1, 2, 3.0);
        o.forget(1);
        o.close();
        // x0 - x2 <= 5 was implied and must survive the forget.
        assert!(o.diff_bound(0, 2) <= 5.0 + 1e-9);
        // But x0 - x1 is gone.
        assert_eq!(o.diff_bound(0, 1), INF);
    }

    #[test]
    fn paper_fragment_l_le_x() {
        // R := X − Z; L := X; if (R > V) L := Z + V  ⇒  L ≤ X.
        // Variables: 0=X, 1=Z, 2=V, 3=R, 4=L.
        let mut o = Octagon::top(5);
        // Initial ranges: X,Z,V ∈ [-100, 100].
        for v in 0..3 {
            o.assign_interval(v, FloatItv::new(-100.0, 100.0));
        }
        // R := X − Z is not an octagon shape; approximate by its interval
        // [-200, 200] (the paper's analyzer would use the linear form too).
        o.assign_interval(3, FloatItv::new(-200.0, 200.0));
        // Branch: R > V. Then L := Z + V: the smart assignment extracts
        // V ∈ [c, d] and synthesizes c ≤ L − Z ≤ d.
        let mut then_branch = o.clone();
        let v_bounds = then_branch.bounds(2);
        then_branch.assign_var_plus_const(4, 1, v_bounds.lo, v_bounds.hi);
        then_branch.close();
        // L − Z ≤ 100 must hold.
        assert!(then_branch.diff_bound(4, 1) <= 100.0 + 1e-9);
        // And L is bounded: L ≤ Z + 100 ≤ 200.
        assert!(then_branch.bounds(4).hi <= 200.0 + 1e-9);
    }

    #[test]
    fn assign_shift_in_place() {
        let mut o = Octagon::top(2);
        o.assign_interval(0, FloatItv::new(0.0, 1.0));
        o.assign_interval(1, FloatItv::new(5.0, 6.0));
        o.add_diff_le(0, 1, -4.0); // x0 - x1 <= -4
        o.close();
        // x0 := x0 + [10, 10]
        o.assign_var_plus_const(0, 0, 10.0, 10.0);
        o.close();
        let b = o.bounds(0);
        assert!(b.lo >= 10.0 - 1e-9 && b.hi <= 11.0 + 1e-9, "{b}");
        assert!(o.diff_bound(0, 1) <= 6.0 + 1e-9);
    }

    #[test]
    fn assign_negation() {
        let mut o = Octagon::top(2);
        o.assign_interval(1, FloatItv::new(2.0, 3.0));
        // x0 := -x1 + [0, 0]
        o.assign_neg_var_plus_const(0, 1, 0.0, 0.0);
        o.close();
        let b = o.bounds(0);
        assert!(b.lo >= -3.0 - 1e-9 && b.hi <= -2.0 + 1e-9, "{b}");
        // In-place negation: x1 := -x1.
        o.assign_neg_var_plus_const(1, 1, 0.0, 0.0);
        o.close();
        let b1 = o.bounds(1);
        assert!(b1.lo >= -3.0 - 1e-9 && b1.hi <= -2.0 + 1e-9, "{b1}");
    }

    #[test]
    fn join_is_upper_bound() {
        let mut a = Octagon::top(2);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        let mut b = Octagon::top(2);
        b.assign_interval(0, FloatItv::new(3.0, 4.0));
        let j = a.join(&mut b);
        assert!(a.leq(&j) && b.leq(&j));
        let bounds = j.bounds(0);
        assert!(bounds.lo <= 0.0 && bounds.hi >= 4.0);
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(1.0, 2.0));
        let mut bot = Octagon::top(1);
        bot.add_upper(0, 0.0);
        bot.add_lower(0, 1.0);
        let j = a.join(&mut bot);
        let b = j.bounds(0);
        assert!(b.lo >= 1.0 - 1e-9 && b.hi <= 2.0 + 1e-9);
    }

    #[test]
    fn widen_stabilizes() {
        let t = Thresholds::geometric(1.0, 10.0, 2);
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        a.close();
        let mut b = Octagon::top(1);
        b.assign_interval(0, FloatItv::new(0.0, 2.0));
        let w = a.widen(&mut b, &t);
        // Upper bound escaped: 2·hi jumps to a threshold ≥ 4 on the 2c scale.
        let mut wc = w.clone();
        wc.close();
        assert!(wc.bounds(0).hi >= 2.0);
        // Widening again with included element is stable.
        let mut same = wc.clone();
        let w2 = w.widen(&mut same, &t);
        assert!(w.same(&w2), "widening an included element must be a fixpoint");
    }

    #[test]
    fn meet_refines() {
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(0.0, 10.0));
        let mut b = Octagon::top(1);
        b.assign_interval(0, FloatItv::new(5.0, 20.0));
        let mut m = a.meet(&b);
        m.close();
        let r = m.bounds(0);
        assert!(r.lo >= 5.0 - 1e-9 && r.hi <= 10.0 + 1e-9);
    }

    #[test]
    fn rounding_is_upward() {
        let mut o = Octagon::top(2);
        o.add_diff_le(0, 1, 0.1);
        o.add_diff_le(1, 0, 0.2);
        o.close();
        // Closure adds 0.1 + 0.2 on the cycle; the diagonal must not go
        // negative through rounding (0.1+0.2 > 0.3 exactly in f64 rounding).
        assert!(!o.is_bottom());
    }

    #[test]
    fn small_packs_are_heap_free_and_roundtrip() {
        // n ≤ 3 fits the inline buffer; n = 4 spills to the heap.
        assert!(Octagon::top(1).is_inline());
        assert!(Octagon::top(2).is_inline());
        assert!(Octagon::top(3).is_inline());
        assert!(!Octagon::top(4).is_inline());
        // Join/meet/widen results inherit the storage class.
        let a = Octagon::top(3);
        let b = Octagon::top(3);
        assert!(a.join_ref(&b).is_inline());
        assert!(a.meet(&b).is_inline());
        // to_raw expands to the full coherent matrix; from_raw compresses
        // back to a physically identical element.
        for n in [1usize, 2, 3, 4, 6] {
            let mut o = Octagon::top(n);
            o.assign_interval(0, FloatItv::new(-1.5, 2.5));
            if n > 1 {
                o.add_diff_le(0, 1, 3.25);
            }
            o.close();
            let (rn, full, closed) = o.to_raw();
            assert_eq!(full.len(), 4 * n * n);
            // The expansion is coherent: m[i][j] == m[j^1][i^1] bitwise.
            let dim = 2 * n;
            for i in 0..dim {
                for j in 0..dim {
                    assert_eq!(
                        full[i * dim + j].to_bits(),
                        full[(j ^ 1) * dim + (i ^ 1)].to_bits(),
                        "expansion must be coherent at ({i},{j})"
                    );
                }
            }
            let back = Octagon::from_raw(rn, full, closed).unwrap();
            assert!(o.same(&back), "to_raw/from_raw must roundtrip bitwise (n={n})");
        }
    }

    /// `PartialEq` is numeric (observational: `-0.0 == 0.0`, NaN-shaped
    /// bounds never equal), `same` is bitwise (identity: `-0.0 ≠ 0.0`,
    /// reflexive on NaNs). Sharing decisions must use `same`; this pins
    /// both behaviors so identity-preservation can never silently start
    /// depending on `PartialEq`.
    #[test]
    fn partial_eq_is_numeric_same_is_bitwise() {
        let mut plus = Octagon::top(1);
        plus.add_upper(0, 0.0);
        let mut minus = Octagon::top(1);
        minus.add_upper(0, -0.0); // 2·-0.0 = -0.0: same constraint, different bits
        assert_eq!(plus, minus, "-0.0 and 0.0 bounds are numerically equal");
        assert!(!plus.same(&minus), "same() must distinguish -0.0 from 0.0");

        // NaN-shaped bounds (never produced by the analyzer, but the
        // discipline must hold even for them): PartialEq is irreflexive,
        // same() still recognizes the identical element.
        let nan = Octagon::from_raw(1, vec![f64::NAN; 4], false).unwrap();
        let nan2 = nan.clone();
        assert_ne!(nan, nan2, "NaN bounds are numerically unequal even to themselves");
        assert!(nan.same(&nan2), "same() must be reflexive on NaN bounds");

        // Closure bookkeeping: PartialEq only observes closed-vs-dirty;
        // same() distinguishes the exact bookkeeping.
        let mut a = Octagon::top(2);
        a.add_upper(0, 1.0);
        let dirty_vars = a.clone(); // DirtyVars(0b01)
        let mut dirty = a.clone();
        dirty.closure = Closure::Dirty;
        assert_eq!(dirty_vars, dirty, "both are observably 'must re-close'");
        assert!(!dirty_vars.same(&dirty), "same() distinguishes the dirty flavors");
    }

    /// Deterministic 64-bit LCG (no external randomness in tests).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            self.0 >> 33
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    /// One seeded random mutation, drawn once and applicable to any number
    /// of octagons (see [`apply_mutation`]). `int_consts` keeps every
    /// constant an exact small integer, so closure algorithms that are
    /// order-sensitive only through rounding must agree *bitwise*.
    #[derive(Clone, Copy)]
    struct Mutation {
        op: u64,
        i: usize,
        j: usize,
        c: f64,
    }

    fn draw_mutation(rng: &mut Lcg, n: usize, int_consts: bool) -> Mutation {
        let op = rng.below(11);
        let i = rng.below(n as u64) as usize;
        let mut j = rng.below(n as u64) as usize;
        if j == i {
            j = (i + 1) % n;
        }
        let c = if int_consts {
            rng.below(41) as f64 - 20.0
        } else {
            (rng.below(4001) as f64 - 2000.0) / 64.0 + 0.1
        };
        Mutation { op, i, j, c }
    }

    fn apply_mutation(o: &mut Octagon, m: Mutation) {
        let Mutation { op, i, j, c } = m;
        match op {
            0 => o.add_upper(i, c),
            1 => o.add_lower(i, c),
            2 => o.add_diff_le(i, j, c),
            3 => o.add_sum_le(i, j, c),
            4 => o.add_neg_sum_le(i, j, c),
            5 => o.assign_interval(i, FloatItv::new(c - 4.0, c + 4.0)),
            6 => o.assign_var_plus_const(i, j, c - 1.0, c + 1.0),
            7 => o.assign_neg_var_plus_const(i, j, c - 1.0, c + 1.0),
            // In-place shift: x_i := x_i + [c-1, c+1].
            8 => o.assign_var_plus_const(i, i, c - 1.0, c + 1.0),
            // In-place negation + shift: x_i := −x_i + [c-1, c+1].
            9 => o.assign_neg_var_plus_const(i, i, c - 1.0, c + 1.0),
            _ => o.refine_with_interval(i, FloatItv::new(c - 8.0, c + 8.0)),
        }
    }

    /// Applies one seeded random mutation to both octagons identically.
    fn random_mutation(
        rng: &mut Lcg,
        a: &mut Octagon,
        b: &mut Octagon,
        n: usize,
        int_consts: bool,
    ) {
        let m = draw_mutation(rng, n, int_consts);
        apply_mutation(a, m);
        apply_mutation(b, m);
    }

    /// Bottom test on raw entries (no mutation): a closed inconsistent
    /// matrix has a negative diagonal entry.
    fn raw_bottom(o: &Octagon) -> bool {
        let (n, m, _) = o.to_raw();
        let dim = 2 * n;
        (0..dim).any(|i| m[i * dim + i] < 0.0)
    }

    #[test]
    fn incremental_closure_is_bitwise_equal_to_full_on_integer_constraints() {
        for seed in 0..64u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 7);
            let n = 2 + (seed as usize % 5); // packs of 2..=6 variables
            let mut inc = Octagon::top(n);
            let mut full = Octagon::top(n);
            for step in 0..48 {
                random_mutation(&mut rng, &mut inc, &mut full, n, true);
                if rng.below(3) == 0 {
                    inc.close();
                    full.force_full_close();
                    // The canonical (strong) closure is only unique for
                    // satisfiable systems; with a negative cycle the FW
                    // values depend on relaxation order, so the contract
                    // on bottom matrices is bottom-agreement only.
                    assert_eq!(
                        raw_bottom(&inc),
                        raw_bottom(&full),
                        "seed {seed} step {step}: bottom status diverged"
                    );
                    if raw_bottom(&full) {
                        break;
                    }
                    let (_, mi, ci) = inc.to_raw();
                    let (_, mf, cf) = full.to_raw();
                    assert_eq!(ci, cf);
                    assert_eq!(
                        mi.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        mf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "seed {seed} step {step}: incremental diverged from full closure"
                    );
                }
            }
            inc.close();
            full.force_full_close();
            assert_eq!(inc.is_bottom(), full.is_bottom(), "seed {seed}: bottom status diverged");
        }
    }

    #[test]
    fn incremental_closure_detects_contradictions_like_full() {
        // Force contradictions: x0 ≤ c then x0 ≥ c + 1, with relational
        // noise on other variables in between.
        for seed in 0..16u64 {
            let mut rng = Lcg(seed + 1000);
            let mut inc = Octagon::top(4);
            let mut full = Octagon::top(4);
            for _ in 0..8 {
                random_mutation(&mut rng, &mut inc, &mut full, 4, true);
            }
            inc.close();
            full.force_full_close();
            let c = rng.below(10) as f64;
            inc.add_upper(0, c);
            inc.add_lower(0, c + 1.0);
            full.add_upper(0, c);
            full.add_lower(0, c + 1.0);
            assert!(inc.is_bottom(), "seed {seed}");
            assert!(full.is_bottom(), "seed {seed}");
        }
    }

    #[test]
    fn incremental_closure_stays_near_full_on_float_constraints() {
        // With non-integer constants the two relaxation orders may round
        // differently by ulps; the results must still agree to a tight
        // relative tolerance and closure must stay idempotent.
        for seed in 0..32u64 {
            let mut rng = Lcg(seed.wrapping_mul(31) + 3);
            let n = 3 + (seed as usize % 3);
            let mut inc = Octagon::top(n);
            let mut full = Octagon::top(n);
            for _ in 0..32 {
                random_mutation(&mut rng, &mut inc, &mut full, n, false);
                if rng.below(4) == 0 {
                    inc.close();
                    full.force_full_close();
                    assert_eq!(
                        raw_bottom(&inc),
                        raw_bottom(&full),
                        "seed {seed}: bottom status diverged"
                    );
                    if raw_bottom(&full) {
                        break;
                    }
                    let (_, mi, _) = inc.to_raw();
                    let (_, mf, _) = full.to_raw();
                    for (a, b) in mi.iter().zip(&mf) {
                        if a.is_finite() || b.is_finite() {
                            let scale = 1.0 + a.abs().max(b.abs());
                            assert!(
                                (a - b).abs() <= 1e-9 * scale,
                                "seed {seed}: {a} vs {b} diverged beyond rounding noise"
                            );
                        }
                    }
                }
            }
            // Idempotence: closing a closed matrix changes nothing.
            inc.close();
            let before = inc.to_raw().1;
            inc.close();
            assert_eq!(before, inc.to_raw().1);
        }
    }

    /// The `--debug-generic-kernels` contract at the domain level: the
    /// monomorphized n=2/n=3 kernels produce bitwise-identical elements to
    /// the generic path on random constraint streams — including float
    /// constants, because both paths execute the same inlined body.
    #[test]
    fn specialized_kernels_are_bitwise_identical_to_generic() {
        let prev = set_generic_kernels(false);
        for n in [2usize, 3] {
            for seed in 0..48u64 {
                let mut rng = Lcg(seed.wrapping_mul(0x517c_c1b7_2722_0a95) + 11);
                let mut spec = Octagon::top(n);
                let mut generic = Octagon::top(n);
                for step in 0..40 {
                    let m = draw_mutation(&mut rng, n, false);
                    // Mutations themselves may close (forget → close), so
                    // the flag wraps every operation, not just close().
                    set_generic_kernels(false);
                    apply_mutation(&mut spec, m);
                    set_generic_kernels(true);
                    apply_mutation(&mut generic, m);
                    if rng.below(3) == 0 {
                        set_generic_kernels(false);
                        spec.close();
                        set_generic_kernels(true);
                        generic.close();
                    }
                    assert!(
                        spec.same(&generic),
                        "n={n} seed {seed} step {step}: specialized kernels diverged"
                    );
                    // Exercise the entrywise kernel dispatch too.
                    if rng.below(5) == 0 {
                        let t = Thresholds::geometric(1.0, 100.0, 4);
                        set_generic_kernels(false);
                        let js = spec.join_ref(&spec.clone());
                        let ws = spec.widen_ref(&spec.clone(), &t);
                        let ls = spec.leq_ref(&js);
                        set_generic_kernels(true);
                        let jg = generic.join_ref(&generic.clone());
                        let wg = generic.widen_ref(&generic.clone(), &t);
                        let lg = generic.leq_ref(&jg);
                        assert!(js.same(&jg), "n={n} seed {seed}: join diverged");
                        assert!(ws.same(&wg), "n={n} seed {seed}: widen diverged");
                        assert_eq!(ls, lg, "n={n} seed {seed}: leq diverged");
                    }
                }
            }
        }
        set_generic_kernels(prev);
        let _ = take_saved_closures();
    }

    #[test]
    fn closure_state_transitions() {
        let mut o = Octagon::top(3);
        assert_eq!(o.closure, Closure::Closed);
        o.add_upper(0, 5.0);
        assert_eq!(o.closure, Closure::DirtyVars(0b001));
        o.add_diff_le(1, 2, 3.0);
        assert_eq!(o.closure, Closure::DirtyVars(0b111));
        o.close();
        assert_eq!(o.closure, Closure::Closed);
        o.forget(1);
        assert_eq!(o.closure, Closure::Closed, "forget preserves strong closure");
        o.assign_var_plus_const(0, 1, -1.0, 1.0);
        assert!(matches!(o.closure, Closure::DirtyVars(_)));
        let m = o.meet(&Octagon::top(3));
        assert_eq!(m.closure, Closure::Dirty);
    }

    #[test]
    fn ref_fast_paths_match_clone_paths_and_count_savings() {
        let _ = take_saved_closures();
        let mut a = Octagon::top(2);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        a.add_diff_le(0, 1, 2.0);
        a.close();
        let mut b = Octagon::top(2);
        b.assign_interval(0, FloatItv::new(0.5, 3.0));
        b.close();
        assert_eq!(take_saved_closures(), 0, "close() itself never counts as saved");

        let j_fast = a.join_ref(&b);
        assert_eq!(take_saved_closures(), 1);
        let j_slow = a.clone().join(&mut b.clone());
        assert_eq!(j_fast, j_slow);

        let t = Thresholds::geometric(1.0, 100.0, 4);
        let w_fast = a.widen_ref(&b, &t);
        assert_eq!(take_saved_closures(), 1);
        let w_slow = a.widen(&mut b.clone(), &t);
        assert_eq!(w_fast, w_slow);

        assert_eq!(a.leq_ref(&j_fast), a.clone().leq(&j_fast));
        assert_eq!(take_saved_closures(), 1);

        // A dirty operand falls back to the clone path: nothing saved.
        let mut dirty = b.clone();
        dirty.add_upper(1, 7.0);
        let _ = dirty.leq_ref(&j_fast);
        assert_eq!(take_saved_closures(), 0);
    }
}
