//! The octagon abstract domain (paper Sect. 6.2.2).
//!
//! Represents conjunctions of constraints `±x ± y ≤ c` over a small pack of
//! variables, using the difference-bound-matrix encoding of Miné \[29\]: each
//! variable `xₖ` contributes two nodes `V₂ₖ = xₖ` and `V₂ₖ₊₁ = −xₖ`, and the
//! matrix entry `m[i][j]` bounds `Vⱼ − Vᵢ`. Strong closure (a Floyd–Warshall
//! sweep plus the octagon strengthening step) is cubic in the number of
//! variables — affordable because packs stay small (Sect. 7.2.1).
//!
//! Soundness with floats: the abstract element denotes a subset of `ℝⁿ`
//! (invariants are interpreted in the real field, per the paper's two-step
//! design), and every bound addition rounds *up*, so closure and transfer
//! functions only ever relax true constraints. Floating-point expressions
//! must be linearized first (Sect. 6.3) before reaching the octagon.

use crate::float_interval::FloatItv;
use crate::thresholds::Thresholds;
use astree_float::round;
use std::cell::Cell;
use std::fmt;

const INF: f64 = f64::INFINITY;

thread_local! {
    /// Clone-then-close operations avoided by the `*_ref` fast paths on
    /// already-closed operands. Thread-local so parallel slice workers
    /// count without synchronization; drained per-slice by the iterator
    /// and reported through `domain_op_n("octagon", "closure_saved", …)`.
    static SAVED_CLOSURES: Cell<u64> = const { Cell::new(0) };
}

/// Drains this thread's saved-closure counter (see [`Octagon::leq_ref`]).
pub fn take_saved_closures() -> u64 {
    SAVED_CLOSURES.with(|c| c.replace(0))
}

fn note_saved_closure() {
    SAVED_CLOSURES.with(|c| c.set(c.get() + 1));
}

/// Closure bookkeeping: which part of the matrix may violate strong
/// closure. `DirtyVars` is the incremental-closure fast path — the matrix
/// was strongly closed and only entries in the rows/columns of the masked
/// variables changed since, so re-closing is `O(|V̂|·n²)` instead of the
/// full `O(n³)` Floyd–Warshall (Miné's incremental strong closure).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Closure {
    /// Strongly closed.
    Closed,
    /// Strongly closed except for constraints touching the masked
    /// variables (bit `v` = variable `v`; packs are capped well under 32).
    DirtyVars(u32),
    /// No closure information (whole-matrix edits: meet, widen, decode).
    Dirty,
}

/// An octagon over `n` variables.
///
/// # Examples
///
/// ```
/// use astree_domains::Octagon;
/// // x0 - x1 <= 3  and  x1 <= 2  imply  x0 <= 5.
/// let mut o = Octagon::top(2);
/// o.add_diff_le(0, 1, 3.0);
/// o.add_upper(1, 2.0);
/// o.close();
/// assert!(o.bounds(0).hi <= 5.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Octagon {
    n: usize,
    /// Row-major `(2n)×(2n)` bound matrix.
    m: Vec<f64>,
    closure: Closure,
}

/// Equality compares the matrix and whether strong closure holds — the
/// same observable distinction the former boolean `closed` flag made (the
/// two dirty flavors are interchangeable: both just mean "must re-close").
impl PartialEq for Octagon {
    fn eq(&self, other: &Octagon) -> bool {
        self.n == other.n
            && self.m == other.m
            && (self.closure == Closure::Closed) == (other.closure == Closure::Closed)
    }
}

impl Octagon {
    /// The unconstrained octagon over `n` variables.
    pub fn top(n: usize) -> Octagon {
        let dim = 2 * n;
        let mut m = vec![INF; dim * dim];
        for i in 0..dim {
            m[i * dim + i] = 0.0;
        }
        Octagon { n, m, closure: Closure::Closed }
    }

    /// Number of variables in the pack.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The raw representation `(n, bound matrix, closed)`, for serialization.
    ///
    /// The matrix is the row-major `(2n)×(2n)` difference-bound matrix; the
    /// `closed` flag records whether strong closure has been applied. Feeding
    /// these three values back through [`Octagon::from_raw`] reconstructs a
    /// physically identical element.
    pub fn to_raw(&self) -> (usize, &[f64], bool) {
        (self.n, &self.m, self.closure == Closure::Closed)
    }

    /// Rebuilds an octagon from its raw representation (see
    /// [`Octagon::to_raw`]). Returns `None` if the matrix length is not
    /// `(2n)²`.
    pub fn from_raw(n: usize, m: Vec<f64>, closed: bool) -> Option<Octagon> {
        if m.len() != 4 * n * n {
            return None;
        }
        Some(Octagon { n, m, closure: if closed { Closure::Closed } else { Closure::Dirty } })
    }

    /// Marks variable `v`'s rows/columns as modified since the last strong
    /// closure. Falls back to whole-matrix dirtiness for oversized packs.
    #[inline]
    fn taint_var(&mut self, v: usize) {
        if v >= 32 {
            self.closure = Closure::Dirty;
            return;
        }
        self.closure = match self.closure {
            Closure::Closed => Closure::DirtyVars(1 << v),
            Closure::DirtyVars(mask) => Closure::DirtyVars(mask | (1 << v)),
            Closure::Dirty => Closure::Dirty,
        };
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.m[i * 2 * self.n + j]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: f64) {
        let dim = 2 * self.n;
        self.m[i * dim + j] = v;
    }

    #[inline]
    fn tighten(&mut self, i: usize, j: usize, v: f64) {
        if v < self.at(i, j) {
            self.set(i, j, v);
            self.taint_var(i / 2);
            self.taint_var(j / 2);
        }
    }

    /// Adds `x_i ≤ c`.
    pub fn add_upper(&mut self, i: usize, c: f64) {
        self.tighten(2 * i + 1, 2 * i, 2.0 * c);
    }

    /// Adds `x_i ≥ c`.
    pub fn add_lower(&mut self, i: usize, c: f64) {
        self.tighten(2 * i, 2 * i + 1, -2.0 * c);
    }

    /// Adds `x_i − x_j ≤ c` (requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn add_diff_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "difference constraint needs two distinct variables");
        // x_i − x_j ≤ c  ⇔  V_{2i} − V_{2j} ≤ c.
        self.tighten(2 * j, 2 * i, c);
        self.tighten(2 * i + 1, 2 * j + 1, c);
    }

    /// Adds `x_i + x_j ≤ c` (requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (use [`Octagon::add_upper`] with `c/2`).
    pub fn add_sum_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "sum constraint needs two distinct variables");
        // x_i + x_j ≤ c ⇔ V_{2i} − V_{2j+1} ≤ c.
        self.tighten(2 * j + 1, 2 * i, c);
        self.tighten(2 * i + 1, 2 * j, c);
    }

    /// Adds `−x_i − x_j ≤ c` (i.e. `x_i + x_j ≥ −c`; requires `i ≠ j`).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn add_neg_sum_le(&mut self, i: usize, j: usize, c: f64) {
        assert_ne!(i, j, "sum constraint needs two distinct variables");
        // −x_i − x_j ≤ c ⇔ V_{2i+1} − V_{2j} ≤ c.
        self.tighten(2 * j, 2 * i + 1, c);
        self.tighten(2 * i, 2 * j + 1, c);
    }

    /// The interval derivable for `x_i` (after closure).
    pub fn bounds(&self, i: usize) -> FloatItv {
        let hi = self.at(2 * i + 1, 2 * i) / 2.0;
        let lo = -self.at(2 * i, 2 * i + 1) / 2.0;
        FloatItv { lo, hi }
    }

    /// The best derivable upper bound on `x_i − x_j`.
    pub fn diff_bound(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.at(2 * j, 2 * i)
    }

    /// The best derivable upper bound on `x_i + x_j`.
    pub fn sum_bound(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.at(2 * i + 1, 2 * i);
        }
        self.at(2 * j + 1, 2 * i)
    }

    /// Strong closure: propagates all constraints. Idempotent.
    ///
    /// Dispatches on the closure bookkeeping: a matrix that was strongly
    /// closed and has since been modified only on a few variables' rows
    /// and columns pays Miné's `O(|V̂|·n²)` incremental closure instead of
    /// the full cubic Floyd–Warshall.
    pub fn close(&mut self) {
        match self.closure {
            Closure::Closed => {}
            Closure::DirtyVars(mask) if (mask.count_ones() as usize) < self.n => {
                self.close_incremental(mask);
            }
            _ => self.close_full(),
        }
    }

    /// Full strong closure (cubic Floyd–Warshall + strengthening).
    fn close_full(&mut self) {
        let dim = 2 * self.n;
        // Floyd–Warshall over all 2n nodes.
        for k in 0..dim {
            for i in 0..dim {
                let mik = self.at(i, k);
                if mik == INF {
                    continue;
                }
                for j in 0..dim {
                    let v = round::add_up(mik, self.at(k, j));
                    if v < self.at(i, j) {
                        self.set(i, j, v);
                    }
                }
            }
        }
        self.strengthen();
        self.closure = Closure::Closed;
    }

    /// Incremental strong closure for a matrix that was strongly closed
    /// before entries touching the variables of `mask` were modified.
    ///
    /// Correctness follows the standard Floyd–Warshall invariant with the
    /// node order "interior nodes first, then modified nodes": pairs of
    /// untouched nodes are already shortest paths through interior
    /// intermediates (the old closure; loosened V̂ entries only lengthen
    /// paths, so they stay valid), phase 1 brings every pair touching V̂
    /// up to date through all intermediates, and phase 2 routes every pair
    /// through the modified nodes. One strengthening pass then restores
    /// strong closure exactly as in the full algorithm.
    fn close_incremental(&mut self, mask: u32) {
        let dim = 2 * self.n;
        let nodes: Vec<usize> = (0..self.n.min(32))
            .filter(|v| mask & (1 << v) != 0)
            .flat_map(|v| [2 * v, 2 * v + 1])
            .collect();
        let touched = |node: usize| mask & (1 << (node / 2)) != 0;
        // Phase 1: relax every pair with a modified row or column through
        // every intermediate node.
        for k in 0..dim {
            for &i in &nodes {
                let mik = self.at(i, k);
                if mik == INF {
                    continue;
                }
                for j in 0..dim {
                    let v = round::add_up(mik, self.at(k, j));
                    if v < self.at(i, j) {
                        self.set(i, j, v);
                    }
                }
            }
            for i in 0..dim {
                if touched(i) {
                    continue;
                }
                let mik = self.at(i, k);
                if mik == INF {
                    continue;
                }
                for &j in &nodes {
                    let v = round::add_up(mik, self.at(k, j));
                    if v < self.at(i, j) {
                        self.set(i, j, v);
                    }
                }
            }
        }
        // Phase 2: route every pair through the modified nodes.
        for &k in &nodes {
            for i in 0..dim {
                let mik = self.at(i, k);
                if mik == INF {
                    continue;
                }
                for j in 0..dim {
                    let v = round::add_up(mik, self.at(k, j));
                    if v < self.at(i, j) {
                        self.set(i, j, v);
                    }
                }
            }
        }
        self.strengthen();
        self.closure = Closure::Closed;
    }

    /// Test-only bypass of the incremental dispatch: always runs the full
    /// cubic closure, the reference the equivalence regression compares
    /// the incremental algorithm against.
    #[cfg(test)]
    fn force_full_close(&mut self) {
        if self.closure != Closure::Closed {
            self.close_full();
        }
    }

    /// Octagon strengthening: combine the two unary chains.
    fn strengthen(&mut self) {
        let dim = 2 * self.n;
        for i in 0..dim {
            for j in 0..dim {
                let v = round::add_up(self.at(i, i ^ 1), self.at(j ^ 1, j)) / 2.0;
                if v < self.at(i, j) {
                    self.set(i, j, v);
                }
            }
        }
    }

    /// `true` when the constraints are unsatisfiable.
    pub fn is_bottom(&mut self) -> bool {
        self.close();
        let dim = 2 * self.n;
        (0..dim).any(|i| self.at(i, i) < 0.0)
    }

    /// Drops every constraint involving `x_i` (other constraints are
    /// preserved through prior closure).
    pub fn forget(&mut self, i: usize) {
        self.close();
        let dim = 2 * self.n;
        for r in [2 * i, 2 * i + 1] {
            for j in 0..dim {
                self.set(r, j, INF);
                self.set(j, r, INF);
            }
        }
        self.set(2 * i, 2 * i, 0.0);
        self.set(2 * i + 1, 2 * i + 1, 0.0);
    }

    /// `x_i := [lo, hi]` (non-relational assignment).
    pub fn assign_interval(&mut self, i: usize, itv: FloatItv) {
        self.forget(i);
        if itv.hi.is_finite() {
            self.add_upper(i, itv.hi);
        }
        if itv.lo.is_finite() {
            self.add_lower(i, itv.lo);
        }
    }

    /// `x_i := x_j + [clo, chi]` — the exact relational assignment the
    /// paper's transfer function uses to synthesize `c ≤ L − Z ≤ d`.
    pub fn assign_var_plus_const(&mut self, i: usize, j: usize, clo: f64, chi: f64) {
        if i == j {
            self.shift(i, clo, chi);
            return;
        }
        self.forget(i);
        self.add_diff_le(i, j, chi);
        self.add_diff_le(j, i, -clo);
    }

    /// `x_i := −x_j + [clo, chi]`.
    pub fn assign_neg_var_plus_const(&mut self, i: usize, j: usize, clo: f64, chi: f64) {
        if i == j {
            self.negate_var(i);
            self.shift(i, clo, chi);
            return;
        }
        self.forget(i);
        self.add_sum_le(i, j, chi);
        self.add_neg_sum_le(i, j, -clo);
    }

    /// In-place `x_i := x_i + [clo, chi]`.
    fn shift(&mut self, i: usize, clo: f64, chi: f64) {
        let dim = 2 * self.n;
        let (p, q) = (2 * i, 2 * i + 1);
        for j in 0..dim {
            if j != p && j != q {
                // Row p: bounds on V_j − x_i → loosen by −clo.
                let v = self.at(p, j);
                if v != INF {
                    self.set(p, j, round::add_up(v, -clo));
                }
                // Column p: bounds on x_i − V_j → loosen by +chi.
                let v = self.at(j, p);
                if v != INF {
                    self.set(j, p, round::add_up(v, chi));
                }
                // Row q: bounds on V_j + x_i → loosen by +chi.
                let v = self.at(q, j);
                if v != INF {
                    self.set(q, j, round::add_up(v, chi));
                }
                // Column q: bounds on −x_i − V_j → loosen by −clo.
                let v = self.at(j, q);
                if v != INF {
                    self.set(j, q, round::add_up(v, -clo));
                }
            }
        }
        // The two unary entries move by twice the shift.
        let v = self.at(p, q); // −2x_i ≤ v
        if v != INF {
            self.set(p, q, round::add_up(v, -2.0 * clo));
        }
        let v = self.at(q, p); // 2x_i ≤ v
        if v != INF {
            self.set(q, p, round::add_up(v, 2.0 * chi));
        }
        self.taint_var(i);
    }

    /// In-place `x_i := −x_i`: swaps the positive and negative nodes.
    fn negate_var(&mut self, i: usize) {
        let dim = 2 * self.n;
        let (p, q) = (2 * i, 2 * i + 1);
        for j in 0..dim {
            if j != p && j != q {
                let a = self.at(p, j);
                let b = self.at(q, j);
                self.set(p, j, b);
                self.set(q, j, a);
                let a = self.at(j, p);
                let b = self.at(j, q);
                self.set(j, p, b);
                self.set(j, q, a);
            }
        }
        let a = self.at(p, q);
        let b = self.at(q, p);
        self.set(p, q, b);
        self.set(q, p, a);
        self.taint_var(i);
    }

    /// Bottom test on an already-closed matrix (no closure, no clone).
    fn is_bottom_closed(&self) -> bool {
        debug_assert_eq!(self.closure, Closure::Closed);
        let dim = 2 * self.n;
        (0..dim).any(|i| self.at(i, i) < 0.0)
    }

    /// Bitwise identity: same pack size, same closure bookkeeping, and
    /// every matrix entry bit-identical (`to_bits`, which distinguishes
    /// `-0.0` from `0.0` and is reflexive on infinities). The
    /// sharing-preserving state merges use this to decide "keep the
    /// original octagon" — it must be bitwise, because substituting a
    /// `PartialEq`-equal octagon with a different `-0.0`/closure state
    /// could change downstream bit patterns.
    pub fn same(&self, other: &Octagon) -> bool {
        self.n == other.n
            && self.closure == other.closure
            && self.m.len() == other.m.len()
            && self.m.iter().zip(&other.m).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Least upper bound of immutable operands. Operands that are already
    /// strongly closed skip the defensive clone-then-close entirely (the
    /// avoided work is counted by [`take_saved_closures`]); the result is
    /// bit-identical to the clone path because closing a closed matrix is
    /// a no-op.
    #[must_use]
    pub fn join_ref(&self, other: &Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        if self.closure == Closure::Closed && other.closure == Closure::Closed {
            note_saved_closure();
            if self.is_bottom_closed() {
                return other.clone();
            }
            if other.is_bottom_closed() {
                return self.clone();
            }
            let m =
                self.m.iter().zip(&other.m).map(|(a, b)| astree_float::max_total(*a, *b)).collect();
            return Octagon { n: self.n, m, closure: Closure::Closed };
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.join(&mut b)
    }

    /// Widening of immutable operands (see [`Octagon::widen`] for the
    /// termination contract). A right operand that is already strongly
    /// closed skips the defensive clone-then-close.
    #[must_use]
    pub fn widen_ref(&self, other: &Octagon, thresholds: &Thresholds) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        if other.closure == Closure::Closed {
            note_saved_closure();
            let m = self
                .m
                .iter()
                .zip(&other.m)
                .map(|(a, b)| if b > a { thresholds.above(*b) } else { *a })
                .collect();
            return Octagon { n: self.n, m, closure: Closure::Dirty };
        }
        let mut b = other.clone();
        self.widen(&mut b, thresholds)
    }

    /// Inclusion test of immutable operands. A left operand that is
    /// already strongly closed is compared entrywise without the
    /// defensive clone-then-close.
    pub fn leq_ref(&self, other: &Octagon) -> bool {
        assert_eq!(self.n, other.n, "pack size mismatch");
        if self.closure == Closure::Closed {
            note_saved_closure();
            return self.m.iter().zip(&other.m).all(|(a, b)| a <= b);
        }
        let mut a = self.clone();
        a.leq(other)
    }

    /// Least upper bound (entrywise max of closed forms).
    #[must_use]
    pub fn join(&mut self, other: &mut Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        self.close();
        other.close();
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        let m = self.m.iter().zip(&other.m).map(|(a, b)| astree_float::max_total(*a, *b)).collect();
        Octagon { n: self.n, m, closure: Closure::Closed }
    }

    /// Greatest lower bound (entrywise min).
    #[must_use]
    pub fn meet(&self, other: &Octagon) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        let m = self.m.iter().zip(&other.m).map(|(a, b)| astree_float::min_total(*a, *b)).collect();
        Octagon { n: self.n, m, closure: Closure::Dirty }
    }

    /// Widening: entries that grew jump to the next threshold (then +∞).
    ///
    /// The left operand must be the previous loop-head element *as returned
    /// by the previous widening* (not re-closed), the standard requirement
    /// for termination of DBM widenings.
    #[must_use]
    pub fn widen(&self, other: &mut Octagon, thresholds: &Thresholds) -> Octagon {
        assert_eq!(self.n, other.n, "pack size mismatch");
        other.close();
        let m = self
            .m
            .iter()
            .zip(&other.m)
            .map(|(a, b)| if b > a { thresholds.above(*b) } else { *a })
            .collect();
        Octagon { n: self.n, m, closure: Closure::Dirty }
    }

    /// Inclusion test `γ(self) ⊆ γ(other)`.
    pub fn leq(&mut self, other: &Octagon) -> bool {
        assert_eq!(self.n, other.n, "pack size mismatch");
        self.close();
        self.m.iter().zip(&other.m).all(|(a, b)| a <= b)
    }

    /// Intersects interval information into the octagon (reduction from the
    /// interval component of the reduced product).
    pub fn refine_with_interval(&mut self, i: usize, itv: FloatItv) {
        if itv.hi.is_finite() {
            self.tighten(2 * i + 1, 2 * i, 2.0 * itv.hi);
        }
        if itv.lo.is_finite() {
            self.tighten(2 * i, 2 * i + 1, -2.0 * itv.lo);
        }
    }
}

impl fmt::Display for Octagon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "octagon over {} vars:", self.n)?;
        for i in 0..self.n {
            let b = self.bounds(i);
            writeln!(f, "  x{i} ∈ [{}, {}]", b.lo, b.hi)?;
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let d = self.diff_bound(i, j);
                    if d != INF {
                        writeln!(f, "  x{i} - x{j} ≤ {d}")?;
                    }
                    let s = self.sum_bound(i, j);
                    if i < j && s != INF {
                        writeln!(f, "  x{i} + x{j} ≤ {s}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_difference() {
        let mut o = Octagon::top(3);
        o.add_diff_le(0, 1, 2.0); // x0 - x1 <= 2
        o.add_diff_le(1, 2, 3.0); // x1 - x2 <= 3
        o.close();
        assert!(o.diff_bound(0, 2) <= 5.0 + 1e-9); // x0 - x2 <= 5
    }

    #[test]
    fn unary_propagation() {
        let mut o = Octagon::top(2);
        o.add_diff_le(0, 1, 3.0);
        o.add_upper(1, 2.0);
        o.add_lower(1, -1.0);
        o.close();
        let b0 = o.bounds(0);
        assert!(b0.hi <= 5.0 + 1e-9);
        // Lower bound of x0 is unconstrained.
        assert_eq!(b0.lo, f64::NEG_INFINITY);
    }

    #[test]
    fn sum_constraints() {
        let mut o = Octagon::top(2);
        o.add_sum_le(0, 1, 10.0); // x0 + x1 <= 10
        o.add_lower(1, 4.0); // x1 >= 4
        o.close();
        assert!(o.bounds(0).hi <= 6.0 + 1e-9);
    }

    #[test]
    fn bottom_detection() {
        let mut o = Octagon::top(1);
        o.add_upper(0, 1.0);
        o.add_lower(0, 2.0);
        assert!(o.is_bottom());
        let mut ok = Octagon::top(1);
        ok.add_upper(0, 2.0);
        ok.add_lower(0, 1.0);
        assert!(!ok.is_bottom());
    }

    #[test]
    fn forget_keeps_unrelated() {
        let mut o = Octagon::top(3);
        o.add_diff_le(0, 1, 2.0);
        o.add_diff_le(1, 2, 3.0);
        o.forget(1);
        o.close();
        // x0 - x2 <= 5 was implied and must survive the forget.
        assert!(o.diff_bound(0, 2) <= 5.0 + 1e-9);
        // But x0 - x1 is gone.
        assert_eq!(o.diff_bound(0, 1), INF);
    }

    #[test]
    fn paper_fragment_l_le_x() {
        // R := X − Z; L := X; if (R > V) L := Z + V  ⇒  L ≤ X.
        // Variables: 0=X, 1=Z, 2=V, 3=R, 4=L.
        let mut o = Octagon::top(5);
        // Initial ranges: X,Z,V ∈ [-100, 100].
        for v in 0..3 {
            o.assign_interval(v, FloatItv::new(-100.0, 100.0));
        }
        // R := X − Z is not an octagon shape; approximate by its interval
        // [-200, 200] (the paper's analyzer would use the linear form too).
        o.assign_interval(3, FloatItv::new(-200.0, 200.0));
        // Branch: R > V. Then L := Z + V: the smart assignment extracts
        // V ∈ [c, d] and synthesizes c ≤ L − Z ≤ d.
        let mut then_branch = o.clone();
        let v_bounds = then_branch.bounds(2);
        then_branch.assign_var_plus_const(4, 1, v_bounds.lo, v_bounds.hi);
        then_branch.close();
        // L − Z ≤ 100 must hold.
        assert!(then_branch.diff_bound(4, 1) <= 100.0 + 1e-9);
        // And L is bounded: L ≤ Z + 100 ≤ 200.
        assert!(then_branch.bounds(4).hi <= 200.0 + 1e-9);
    }

    #[test]
    fn assign_shift_in_place() {
        let mut o = Octagon::top(2);
        o.assign_interval(0, FloatItv::new(0.0, 1.0));
        o.assign_interval(1, FloatItv::new(5.0, 6.0));
        o.add_diff_le(0, 1, -4.0); // x0 - x1 <= -4
        o.close();
        // x0 := x0 + [10, 10]
        o.assign_var_plus_const(0, 0, 10.0, 10.0);
        o.close();
        let b = o.bounds(0);
        assert!(b.lo >= 10.0 - 1e-9 && b.hi <= 11.0 + 1e-9, "{b}");
        assert!(o.diff_bound(0, 1) <= 6.0 + 1e-9);
    }

    #[test]
    fn assign_negation() {
        let mut o = Octagon::top(2);
        o.assign_interval(1, FloatItv::new(2.0, 3.0));
        // x0 := -x1 + [0, 0]
        o.assign_neg_var_plus_const(0, 1, 0.0, 0.0);
        o.close();
        let b = o.bounds(0);
        assert!(b.lo >= -3.0 - 1e-9 && b.hi <= -2.0 + 1e-9, "{b}");
        // In-place negation: x1 := -x1.
        o.assign_neg_var_plus_const(1, 1, 0.0, 0.0);
        o.close();
        let b1 = o.bounds(1);
        assert!(b1.lo >= -3.0 - 1e-9 && b1.hi <= -2.0 + 1e-9, "{b1}");
    }

    #[test]
    fn join_is_upper_bound() {
        let mut a = Octagon::top(2);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        let mut b = Octagon::top(2);
        b.assign_interval(0, FloatItv::new(3.0, 4.0));
        let j = a.join(&mut b);
        assert!(a.leq(&j) && b.leq(&j));
        let bounds = j.bounds(0);
        assert!(bounds.lo <= 0.0 && bounds.hi >= 4.0);
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(1.0, 2.0));
        let mut bot = Octagon::top(1);
        bot.add_upper(0, 0.0);
        bot.add_lower(0, 1.0);
        let j = a.join(&mut bot);
        let b = j.bounds(0);
        assert!(b.lo >= 1.0 - 1e-9 && b.hi <= 2.0 + 1e-9);
    }

    #[test]
    fn widen_stabilizes() {
        let t = Thresholds::geometric(1.0, 10.0, 2);
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        a.close();
        let mut b = Octagon::top(1);
        b.assign_interval(0, FloatItv::new(0.0, 2.0));
        let w = a.widen(&mut b, &t);
        // Upper bound escaped: 2·hi jumps to a threshold ≥ 4 on the 2c scale.
        let mut wc = w.clone();
        wc.close();
        assert!(wc.bounds(0).hi >= 2.0);
        // Widening again with included element is stable.
        let mut same = wc.clone();
        let w2 = w.widen(&mut same, &t);
        assert_eq!(w.m, w2.m);
    }

    #[test]
    fn meet_refines() {
        let mut a = Octagon::top(1);
        a.assign_interval(0, FloatItv::new(0.0, 10.0));
        let mut b = Octagon::top(1);
        b.assign_interval(0, FloatItv::new(5.0, 20.0));
        let mut m = a.meet(&b);
        m.close();
        let r = m.bounds(0);
        assert!(r.lo >= 5.0 - 1e-9 && r.hi <= 10.0 + 1e-9);
    }

    #[test]
    fn rounding_is_upward() {
        let mut o = Octagon::top(2);
        o.add_diff_le(0, 1, 0.1);
        o.add_diff_le(1, 0, 0.2);
        o.close();
        // Closure adds 0.1 + 0.2 on the cycle; the diagonal must not go
        // negative through rounding (0.1+0.2 > 0.3 exactly in f64 rounding).
        assert!(!o.is_bottom());
    }

    /// Deterministic 64-bit LCG (no external randomness in tests).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            self.0 >> 33
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    /// Applies one seeded random mutation to both octagons identically.
    /// `int_consts` keeps every constant an exact small integer, so the
    /// incremental and full closures must agree *bitwise* (all f64
    /// arithmetic on the derived bounds is exact).
    fn random_mutation(
        rng: &mut Lcg,
        a: &mut Octagon,
        b: &mut Octagon,
        n: usize,
        int_consts: bool,
    ) {
        let op = rng.below(11);
        let i = rng.below(n as u64) as usize;
        let mut j = rng.below(n as u64) as usize;
        if j == i {
            j = (i + 1) % n;
        }
        let c = if int_consts {
            rng.below(41) as f64 - 20.0
        } else {
            (rng.below(4001) as f64 - 2000.0) / 64.0 + 0.1
        };
        match op {
            0 => {
                a.add_upper(i, c);
                b.add_upper(i, c);
            }
            1 => {
                a.add_lower(i, c);
                b.add_lower(i, c);
            }
            2 => {
                a.add_diff_le(i, j, c);
                b.add_diff_le(i, j, c);
            }
            3 => {
                a.add_sum_le(i, j, c);
                b.add_sum_le(i, j, c);
            }
            4 => {
                a.add_neg_sum_le(i, j, c);
                b.add_neg_sum_le(i, j, c);
            }
            5 => {
                let itv = FloatItv::new(c - 4.0, c + 4.0);
                a.assign_interval(i, itv);
                b.assign_interval(i, itv);
            }
            6 => {
                a.assign_var_plus_const(i, j, c - 1.0, c + 1.0);
                b.assign_var_plus_const(i, j, c - 1.0, c + 1.0);
            }
            7 => {
                a.assign_neg_var_plus_const(i, j, c - 1.0, c + 1.0);
                b.assign_neg_var_plus_const(i, j, c - 1.0, c + 1.0);
            }
            8 => {
                // In-place shift: x_i := x_i + [c-1, c+1].
                a.assign_var_plus_const(i, i, c - 1.0, c + 1.0);
                b.assign_var_plus_const(i, i, c - 1.0, c + 1.0);
            }
            9 => {
                // In-place negation + shift: x_i := −x_i + [c-1, c+1].
                a.assign_neg_var_plus_const(i, i, c - 1.0, c + 1.0);
                b.assign_neg_var_plus_const(i, i, c - 1.0, c + 1.0);
            }
            _ => {
                let itv = FloatItv::new(c - 8.0, c + 8.0);
                a.refine_with_interval(i, itv);
                b.refine_with_interval(i, itv);
            }
        }
    }

    /// Bottom test on raw entries (no mutation): a closed inconsistent
    /// matrix has a negative diagonal entry.
    fn raw_bottom(o: &Octagon) -> bool {
        let (n, m, _) = o.to_raw();
        let dim = 2 * n;
        (0..dim).any(|i| m[i * dim + i] < 0.0)
    }

    #[test]
    fn incremental_closure_is_bitwise_equal_to_full_on_integer_constraints() {
        for seed in 0..64u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 7);
            let n = 2 + (seed as usize % 5); // packs of 2..=6 variables
            let mut inc = Octagon::top(n);
            let mut full = Octagon::top(n);
            for step in 0..48 {
                random_mutation(&mut rng, &mut inc, &mut full, n, true);
                if rng.below(3) == 0 {
                    inc.close();
                    full.force_full_close();
                    // The canonical (strong) closure is only unique for
                    // satisfiable systems; with a negative cycle the FW
                    // values depend on relaxation order, so the contract
                    // on bottom matrices is bottom-agreement only.
                    assert_eq!(
                        raw_bottom(&inc),
                        raw_bottom(&full),
                        "seed {seed} step {step}: bottom status diverged"
                    );
                    if raw_bottom(&full) {
                        break;
                    }
                    let (_, mi, ci) = inc.to_raw();
                    let (_, mf, cf) = full.to_raw();
                    assert_eq!(ci, cf);
                    assert_eq!(
                        mi.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        mf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "seed {seed} step {step}: incremental diverged from full closure"
                    );
                }
            }
            inc.close();
            full.force_full_close();
            assert_eq!(inc.is_bottom(), full.is_bottom(), "seed {seed}: bottom status diverged");
        }
    }

    #[test]
    fn incremental_closure_detects_contradictions_like_full() {
        // Force contradictions: x0 ≤ c then x0 ≥ c + 1, with relational
        // noise on other variables in between.
        for seed in 0..16u64 {
            let mut rng = Lcg(seed + 1000);
            let mut inc = Octagon::top(4);
            let mut full = Octagon::top(4);
            for _ in 0..8 {
                random_mutation(&mut rng, &mut inc, &mut full, 4, true);
            }
            inc.close();
            full.force_full_close();
            let c = rng.below(10) as f64;
            inc.add_upper(0, c);
            inc.add_lower(0, c + 1.0);
            full.add_upper(0, c);
            full.add_lower(0, c + 1.0);
            assert!(inc.is_bottom(), "seed {seed}");
            assert!(full.is_bottom(), "seed {seed}");
        }
    }

    #[test]
    fn incremental_closure_stays_near_full_on_float_constraints() {
        // With non-integer constants the two relaxation orders may round
        // differently by ulps; the results must still agree to a tight
        // relative tolerance and closure must stay idempotent.
        for seed in 0..32u64 {
            let mut rng = Lcg(seed.wrapping_mul(31) + 3);
            let n = 3 + (seed as usize % 3);
            let mut inc = Octagon::top(n);
            let mut full = Octagon::top(n);
            for _ in 0..32 {
                random_mutation(&mut rng, &mut inc, &mut full, n, false);
                if rng.below(4) == 0 {
                    inc.close();
                    full.force_full_close();
                    assert_eq!(
                        raw_bottom(&inc),
                        raw_bottom(&full),
                        "seed {seed}: bottom status diverged"
                    );
                    if raw_bottom(&full) {
                        break;
                    }
                    let (_, mi, _) = inc.to_raw();
                    let (_, mf, _) = full.to_raw();
                    for (a, b) in mi.iter().zip(mf) {
                        if a.is_finite() || b.is_finite() {
                            let scale = 1.0 + a.abs().max(b.abs());
                            assert!(
                                (a - b).abs() <= 1e-9 * scale,
                                "seed {seed}: {a} vs {b} diverged beyond rounding noise"
                            );
                        }
                    }
                }
            }
            // Idempotence: closing a closed matrix changes nothing.
            inc.close();
            let before = inc.to_raw().1.to_vec();
            inc.close();
            assert_eq!(before, inc.to_raw().1);
        }
    }

    #[test]
    fn closure_state_transitions() {
        let mut o = Octagon::top(3);
        assert_eq!(o.closure, Closure::Closed);
        o.add_upper(0, 5.0);
        assert_eq!(o.closure, Closure::DirtyVars(0b001));
        o.add_diff_le(1, 2, 3.0);
        assert_eq!(o.closure, Closure::DirtyVars(0b111));
        o.close();
        assert_eq!(o.closure, Closure::Closed);
        o.forget(1);
        assert_eq!(o.closure, Closure::Closed, "forget preserves strong closure");
        o.assign_var_plus_const(0, 1, -1.0, 1.0);
        assert!(matches!(o.closure, Closure::DirtyVars(_)));
        let m = o.meet(&Octagon::top(3));
        assert_eq!(m.closure, Closure::Dirty);
    }

    #[test]
    fn ref_fast_paths_match_clone_paths_and_count_savings() {
        let _ = take_saved_closures();
        let mut a = Octagon::top(2);
        a.assign_interval(0, FloatItv::new(0.0, 1.0));
        a.add_diff_le(0, 1, 2.0);
        a.close();
        let mut b = Octagon::top(2);
        b.assign_interval(0, FloatItv::new(0.5, 3.0));
        b.close();
        assert_eq!(take_saved_closures(), 0, "close() itself never counts as saved");

        let j_fast = a.join_ref(&b);
        assert_eq!(take_saved_closures(), 1);
        let j_slow = a.clone().join(&mut b.clone());
        assert_eq!(j_fast, j_slow);

        let t = Thresholds::geometric(1.0, 100.0, 4);
        let w_fast = a.widen_ref(&b, &t);
        assert_eq!(take_saved_closures(), 1);
        let w_slow = a.widen(&mut b.clone(), &t);
        assert_eq!(w_fast, w_slow);

        assert_eq!(a.leq_ref(&j_fast), a.clone().leq(&j_fast));
        assert_eq!(take_saved_closures(), 1);

        // A dirty operand falls back to the clone path: nothing saved.
        let mut dirty = b.clone();
        dirty.add_upper(1, 7.0);
        let _ = dirty.leq_ref(&j_fast);
        assert_eq!(take_saved_closures(), 0);
    }
}
