//! Potential run-time error flags produced by abstract transfer functions.
//!
//! When the iterator runs in checking mode (paper Sect. 5.3), each operator
//! application reports the classes of concrete errors it *may* exhibit; the
//! analysis then continues with the non-erroneous results only ("overflowing
//! integers are wiped out and not considered modulo").

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A set of potential run-time error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ErrFlags(u8);

impl ErrFlags {
    /// No potential error.
    pub const NONE: ErrFlags = ErrFlags(0);
    /// Integer or float division (or remainder) by zero.
    pub const DIV_BY_ZERO: ErrFlags = ErrFlags(1);
    /// Integer arithmetic may exceed the operation type's range.
    pub const INT_OVERFLOW: ErrFlags = ErrFlags(2);
    /// Float arithmetic may overflow to ±∞.
    pub const FLOAT_OVERFLOW: ErrFlags = ErrFlags(4);
    /// A float operation may produce NaN.
    pub const NAN: ErrFlags = ErrFlags(8);
    /// Shift amount may fall outside `[0, width)`.
    pub const SHIFT_RANGE: ErrFlags = ErrFlags(16);
    /// Array subscript may be out of bounds.
    pub const OUT_OF_BOUNDS: ErrFlags = ErrFlags(32);
    /// Float-to-integer conversion may be out of range.
    pub const INVALID_CAST: ErrFlags = ErrFlags(64);

    /// `true` if no error class is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if every class in `other` is present in `self`.
    pub fn contains(self, other: ErrFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Iterates over the individual flags present.
    pub fn iter(self) -> impl Iterator<Item = ErrFlags> {
        (0..7).map(|b| ErrFlags(1 << b)).filter(move |f| self.contains(*f))
    }
}

impl BitOr for ErrFlags {
    type Output = ErrFlags;
    fn bitor(self, rhs: ErrFlags) -> ErrFlags {
        ErrFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for ErrFlags {
    fn bitor_assign(&mut self, rhs: ErrFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for ErrFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        let names = [
            (ErrFlags::DIV_BY_ZERO, "division-by-zero"),
            (ErrFlags::INT_OVERFLOW, "integer-overflow"),
            (ErrFlags::FLOAT_OVERFLOW, "float-overflow"),
            (ErrFlags::NAN, "invalid-float-operation"),
            (ErrFlags::SHIFT_RANGE, "shift-out-of-range"),
            (ErrFlags::OUT_OF_BOUNDS, "out-of-bounds-access"),
            (ErrFlags::INVALID_CAST, "invalid-conversion"),
        ];
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let f = ErrFlags::DIV_BY_ZERO | ErrFlags::NAN;
        assert!(f.contains(ErrFlags::DIV_BY_ZERO));
        assert!(!f.contains(ErrFlags::INT_OVERFLOW));
        assert!(!f.is_empty());
        assert!(ErrFlags::NONE.is_empty());
        assert_eq!(f.iter().count(), 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(ErrFlags::NONE.to_string(), "none");
        assert_eq!(
            (ErrFlags::DIV_BY_ZERO | ErrFlags::FLOAT_OVERFLOW).to_string(),
            "division-by-zero|float-overflow"
        );
    }
}
