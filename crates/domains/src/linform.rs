//! Interval linear forms and the algebra of linearization (paper Sect. 6.3).
//!
//! A linear form `ℓ = Σᵢ [aᵢ, bᵢ]·vᵢ + [a, b]` abstracts an expression over
//! program variables with interval coefficients in the *real field*. The
//! linearization of `X − 0.2·X` is `0.8·X`, which evaluates to `[0, 0.8]`
//! in the environment `X ∈ [0, 1]` where naive bottom-up interval evaluation
//! would produce `[−0.2, 1]`. Floating-point rounding is absorbed into the
//! constant term as an absolute error interval.
//!
//! All coefficient arithmetic rounds outward, so a linear form's
//! concretization always contains the concrete real-field values.

use crate::float_interval::FloatItv;
use astree_float::{round, MIN_SUBNORMAL, UNIT_ROUNDOFF};
use astree_ir::FloatKind;
use std::collections::BTreeMap;
use std::fmt;

/// Outward-rounded interval addition in the reals (no overflow clipping).
fn iadd(a: FloatItv, b: FloatItv) -> FloatItv {
    FloatItv { lo: round::add_down(a.lo, b.lo), hi: round::add_up(a.hi, b.hi) }
}

/// Outward-rounded interval multiplication in the reals.
fn imul(a: FloatItv, b: FloatItv) -> FloatItv {
    let lo = [
        round::mul_down(a.lo, b.lo),
        round::mul_down(a.lo, b.hi),
        round::mul_down(a.hi, b.lo),
        round::mul_down(a.hi, b.hi),
    ]
    .into_iter()
    .filter(|v| !v.is_nan())
    .fold(f64::INFINITY, f64::min);
    let hi = [
        round::mul_up(a.lo, b.lo),
        round::mul_up(a.lo, b.hi),
        round::mul_up(a.hi, b.lo),
        round::mul_up(a.hi, b.hi),
    ]
    .into_iter()
    .filter(|v| !v.is_nan())
    .fold(f64::NEG_INFINITY, f64::max);
    FloatItv { lo, hi }
}

/// An interval linear form over variables identified by `K`.
///
/// # Examples
///
/// ```
/// use astree_domains::{FloatItv, LinForm};
/// // ℓ = X − 0.2·X = 0.8·X
/// let x: LinForm<&str> = LinForm::var("X");
/// let l = x.sub(&x.scale(FloatItv::singleton(0.2)));
/// let v = l.eval(|_| FloatItv::new(0.0, 1.0));
/// assert!(v.lo >= -1e-12 && v.hi <= 0.8 + 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinForm<K: Ord + Clone> {
    terms: BTreeMap<K, FloatItv>,
    cst: FloatItv,
}

impl<K: Ord + Clone> LinForm<K> {
    /// The constant form `[lo, hi]`.
    pub fn constant(c: FloatItv) -> Self {
        LinForm { terms: BTreeMap::new(), cst: c }
    }

    /// The form `1·v`.
    pub fn var(v: K) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, FloatItv::singleton(1.0));
        LinForm { terms, cst: FloatItv::singleton(0.0) }
    }

    /// The constant term.
    pub fn cst(&self) -> FloatItv {
        self.cst
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: &K) -> FloatItv {
        self.terms.get(v).copied().unwrap_or(FloatItv::singleton(0.0))
    }

    /// Iterates over (variable, coefficient) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &FloatItv)> {
        self.terms.iter()
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Some((v, c))` when the form is exactly `1·v + c` — the shape octagon
    /// assignments exploit (paper Sect. 6.2.2).
    pub fn as_unit_var_plus_const(&self) -> Option<(&K, FloatItv)> {
        if self.terms.len() != 1 {
            return None;
        }
        let (k, c) = self.terms.iter().next().expect("one term");
        (c.lo == 1.0 && c.hi == 1.0).then_some((k, self.cst))
    }

    /// `Some((v, c))` when the form is exactly `−1·v + c`.
    pub fn as_neg_var_plus_const(&self) -> Option<(&K, FloatItv)> {
        if self.terms.len() != 1 {
            return None;
        }
        let (k, c) = self.terms.iter().next().expect("one term");
        (c.lo == -1.0 && c.hi == -1.0).then_some((k, self.cst))
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let mut terms = self.terms.clone();
        for (k, c) in &other.terms {
            let merged = iadd(self.coeff(k), *c);
            if merged == FloatItv::singleton(0.0) {
                terms.remove(k);
            } else {
                terms.insert(k.clone(), merged);
            }
        }
        LinForm { terms, cst: iadd(self.cst, other.cst) }
    }

    /// `-self`.
    #[must_use]
    pub fn neg(&self) -> Self {
        let terms = self.terms.iter().map(|(k, c)| (k.clone(), c.neg())).collect();
        LinForm { terms, cst: self.cst.neg() }
    }

    /// `self − other`.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// `[a,b] · self`.
    #[must_use]
    pub fn scale(&self, factor: FloatItv) -> Self {
        let mut terms = BTreeMap::new();
        for (k, c) in &self.terms {
            let scaled = imul(*c, factor);
            if scaled != FloatItv::singleton(0.0) {
                terms.insert(k.clone(), scaled);
            }
        }
        LinForm { terms, cst: imul(self.cst, factor) }
    }

    /// Adds an absolute error `[−e, e]` to the constant term.
    #[must_use]
    pub fn add_error(&self, e: f64) -> Self {
        let mut out = self.clone();
        out.cst = iadd(out.cst, FloatItv::new(-e, e));
        out
    }

    /// Evaluates the form in an interval environment.
    pub fn eval(&self, lookup: impl Fn(&K) -> FloatItv) -> FloatItv {
        let mut acc = self.cst;
        for (k, c) in &self.terms {
            acc = iadd(acc, imul(*c, lookup(k)));
        }
        acc
    }

    /// Collapses the form to its interval value (used when a non-linear
    /// operator needs an interval argument).
    pub fn to_interval(&self, lookup: impl Fn(&K) -> FloatItv) -> FloatItv {
        self.eval(lookup)
    }

    /// Absorbs the floating-point rounding error of evaluating this form at
    /// format `kind` into the constant term (paper Sect. 6.3: "add the error
    /// contribution for each operator … an absolute error interval").
    ///
    /// The absolute error of one rounded operation with result magnitude `m`
    /// is at most `m·f + s` (`f` the unit roundoff, `s` the subnormal
    /// floor); a linear form with `n` terms costs at most `n + 1`
    /// operations, evaluated here against the environment to bound `m`.
    #[must_use]
    pub fn absorb_rounding(&self, kind: FloatKind, lookup: impl Fn(&K) -> FloatItv) -> Self {
        let v = self.eval(&lookup);
        if v.is_bottom() {
            return self.clone();
        }
        // Magnitude of intermediate results is bounded by the sum of term
        // magnitudes (no cancellation helps the worst case).
        let mut mag = self.cst.lo.abs().max(self.cst.hi.abs());
        for (k, c) in &self.terms {
            let t = imul(*c, lookup(k));
            if t.is_bottom() {
                continue;
            }
            mag = round::add_up(mag, t.lo.abs().max(t.hi.abs()));
        }
        let f = match kind {
            FloatKind::F64 => UNIT_ROUNDOFF,
            // binary32 unit roundoff 2⁻²⁴.
            FloatKind::F32 => 5.960464477539063e-08,
        };
        let ops = (self.terms.len() + 1) as f64;
        let e = round::add_up(round::mul_up(round::mul_up(mag, f), ops), MIN_SUBNORMAL * ops);
        self.add_error(e)
    }
}

impl<K: Ord + Clone + fmt::Display> fmt::Display for LinForm<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, c) in &self.terms {
            if let Some(v) = c.as_singleton() {
                write!(f, "{v}·{k} + ")?;
            } else {
                write!(f, "[{}, {}]·{k} + ", c.lo, c.hi)?;
            }
        }
        if let Some(v) = self.cst.as_singleton() {
            write!(f, "{v}")
        } else {
            write!(f, "[{}, {}]", self.cst.lo, self.cst.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(x: FloatItv) -> impl Fn(&&'static str) -> FloatItv {
        move |_| x
    }

    #[test]
    fn the_paper_example() {
        // X := X − 0.2·X in X ∈ [0, 1]: naive gives [−0.2, 1], linear form
        // gives [0, 0.8].
        let x: LinForm<&str> = LinForm::var("X");
        let l = x.sub(&x.scale(FloatItv::singleton(0.2)));
        let v = l.eval(env(FloatItv::new(0.0, 1.0)));
        assert!(v.lo >= -1e-12, "{v}");
        assert!(v.hi <= 0.8 + 1e-12, "{v}");
        // The coefficient is ~0.8 (one outward-rounded subtraction).
        let c = l.coeff(&"X");
        assert!(c.lo <= 0.8 && 0.8 <= c.hi);
    }

    #[test]
    fn shapes_for_octagon_assignments() {
        let y: LinForm<&str> = LinForm::var("Y");
        let form = y.add(&LinForm::constant(FloatItv::new(1.0, 2.0)));
        let (v, c) = form.as_unit_var_plus_const().expect("unit shape");
        assert_eq!(*v, "Y");
        assert_eq!(c, FloatItv::new(1.0, 2.0));
        let neg = y.neg().add(&LinForm::constant(FloatItv::singleton(0.0)));
        assert!(neg.as_neg_var_plus_const().is_some());
        assert!(neg.as_unit_var_plus_const().is_none());
    }

    #[test]
    fn add_merges_and_cancels() {
        let x: LinForm<&str> = LinForm::var("X");
        let sum = x.add(&x.neg());
        assert!(sum.is_constant());
        let two = x.add(&x);
        assert_eq!(two.coeff(&"X"), FloatItv::singleton(2.0));
    }

    #[test]
    fn eval_is_sound_for_scaling() {
        let x: LinForm<&str> = LinForm::var("X");
        let l = x.scale(FloatItv::singleton(0.1)); // 0.1·X
        let v = l.eval(env(FloatItv::new(-3.0, 7.0)));
        for sample in [-3.0, 0.0, 7.0, 2.5] {
            let concrete = 0.1 * sample;
            assert!(v.contains(concrete), "{v} misses {concrete}");
        }
    }

    #[test]
    fn rounding_absorption_grows_cst() {
        let x: LinForm<&str> = LinForm::var("X");
        let l = x.scale(FloatItv::singleton(0.25));
        let with_err = l.absorb_rounding(FloatKind::F32, env(FloatItv::new(0.0, 100.0)));
        assert!(with_err.cst().lo < 0.0 && with_err.cst().hi > 0.0);
        // The f32 error at magnitude 25 is around 25·2⁻²⁴ ≈ 1.5e-6.
        assert!(with_err.cst().hi < 1e-4);
        assert!(with_err.cst().hi > 1e-7);
    }

    #[test]
    fn display_is_readable() {
        let x: LinForm<&str> = LinForm::var("X");
        let l = x.scale(FloatItv::singleton(2.0)).add(&LinForm::constant(FloatItv::singleton(1.0)));
        assert_eq!(l.to_string(), "2·X + 1");
    }
}
