//! Arithmetic abstract domains (paper Sect. 6.2) and symbolic expression
//! manipulation (Sect. 6.3).
//!
//! The non-relational base is the interval domain — [`IntItv`] for integers
//! and [`FloatItv`] for floats, the latter with outward rounding through
//! [`astree_float`] so every transfer function over-approximates the concrete
//! IEEE-754 semantics. On top of it:
//!
//! - [`clocked`] — the clocked domain `(x, x−clock, x+clock)` bounding
//!   event counters by the system's maximal operating time (Sect. 6.2.1);
//! - [`octagon`] — constraints `±x ±y ≤ c` with cubic-time strong closure,
//!   applied to small variable packs (Sect. 6.2.2);
//! - [`ellipsoid`] — the domain `ε(a,b)` of invariants `X² − aXY + bY² ≤ k`
//!   preserved by second-order digital filters, with the rounding-aware `δ`
//!   update (Sect. 6.2.3);
//! - [`dtree`] — boolean decision trees with arithmetic leaves relating
//!   booleans to numeric variables (Sect. 6.2.4);
//! - [`linform`] — interval linear forms `Σ [aᵢ,bᵢ]·vᵢ + [a,b]` and the
//!   linearization of expressions with absolute rounding-error accounting
//!   (Sect. 6.3);
//! - [`thresholds`] — the widening-threshold sets `±α·λᵏ` (Sect. 7.1.2).

pub mod clocked;
pub mod dtree;
pub mod ellipsoid;
pub mod flags;
pub mod float_interval;
pub mod int_interval;
pub mod linform;
pub mod octagon;
pub mod thresholds;

pub use clocked::Clocked;
pub use dtree::DecisionTree;
pub use ellipsoid::Ellipsoid;
pub use flags::ErrFlags;
pub use float_interval::FloatItv;
pub use int_interval::IntItv;
pub use linform::LinForm;
pub use octagon::{set_generic_kernels, take_saved_closures, Octagon};
pub use thresholds::Thresholds;
