//! The ellipsoid abstract domain `ε(a,b)` (paper Sect. 6.2.3).
//!
//! Captures invariants `X² − aXY + bY² ≤ k` preserved by the second-order
//! digital filter update `X' := aX − bY + t`, `Y' := X` — the recurrent
//! pattern of the program family that intervals and octagons lose entirely.
//! Proposition 1: when `0 < b < 1` and `a² − 4b < 0`, the constraint is
//! preserved as soon as `k ≥ (t_M / (1 − √b))²` where `|t| ≤ t_M`. The
//! update function `δ` additionally accounts for floating-point rounding via
//! the unit roundoff `f`.

use crate::float_interval::FloatItv;
use crate::thresholds::Thresholds;
use astree_float::{round, UNIT_ROUNDOFF};
use std::fmt;

/// One ellipsoidal constraint `X² − aXY + bY² ≤ k` for a filter with fixed
/// coefficients `(a, b)`.
///
/// `k = +∞` is ⊤ (no constraint); `k < 0` is ⊥ (the form is positive
/// definite under the stability conditions).
///
/// # Examples
///
/// ```
/// use astree_domains::Ellipsoid;
/// assert!(Ellipsoid::stable(1.5, 0.7));
/// let e = Ellipsoid::new(1.5, 0.7, 100.0);
/// // One filter step with |t| ≤ 1 keeps k bounded.
/// let e2 = e.filter_update(1.0);
/// assert!(e2.k.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipsoid {
    /// Filter coefficient of `X` (the `a` of `X' := aX − bY + t`).
    pub a: f64,
    /// Filter coefficient of `Y`.
    pub b: f64,
    /// The constraint bound.
    pub k: f64,
}

impl Ellipsoid {
    /// Checks Proposition 1's stability conditions: `0 < b < 1` and
    /// `a² − 4b < 0`.
    pub fn stable(a: f64, b: f64) -> bool {
        0.0 < b && b < 1.0 && a * a - 4.0 * b < 0.0
    }

    /// A constraint with the given bound.
    ///
    /// # Panics
    ///
    /// Panics if the coefficients are not stable per Proposition 1.
    pub fn new(a: f64, b: f64, k: f64) -> Ellipsoid {
        assert!(Ellipsoid::stable(a, b), "unstable filter coefficients ({a}, {b})");
        Ellipsoid { a, b, k }
    }

    /// ⊤ for the given coefficients.
    pub fn top(a: f64, b: f64) -> Ellipsoid {
        Ellipsoid::new(a, b, f64::INFINITY)
    }

    /// `true` when the constraint is unsatisfiable.
    pub fn is_bottom(self) -> bool {
        self.k < 0.0
    }

    /// The smallest `k` that Proposition 1 guarantees invariant for inputs
    /// `|t| ≤ t_max` (rounded up, with margin for the float-aware `δ`).
    pub fn min_invariant_k(self, t_max: f64) -> f64 {
        let denom = round::sub_down(1.0, round::sqrt_up(self.b));
        let base = round::div_up(t_max, denom);
        round::mul_up(round::mul_up(base, base), 1.0 + 1e-9)
    }

    /// The paper's `δ` function: the new bound after one filter step
    /// `X' := aX − bY + t` with `|t| ≤ t_max`, accounting for rounding
    /// (`f` is the unit roundoff).
    ///
    /// `δ(k) = ((√b + 4f(|a|√b + b)/√(4b − a²))·√k + (1 + f)·t_max)²`,
    /// computed with upward rounding throughout.
    pub fn delta(self, t_max: f64) -> f64 {
        if self.k == f64::INFINITY {
            return f64::INFINITY;
        }
        if self.k < 0.0 {
            return self.k; // bottom propagates
        }
        let f = UNIT_ROUNDOFF;
        let sqrt_b = round::sqrt_up(self.b);
        let disc = round::sub_down(4.0 * self.b, round::mul_up(self.a, self.a));
        let sqrt_disc = round::sqrt_down(disc.max(f64::MIN_POSITIVE));
        let num =
            round::mul_up(4.0 * f, round::add_up(round::mul_up(self.a.abs(), sqrt_b), self.b));
        let coeff = round::add_up(sqrt_b, round::div_up(num, sqrt_disc));
        let term = round::mul_up(coeff, round::sqrt_up(self.k));
        let t_term = round::mul_up(round::add_up(1.0, f), t_max);
        let s = round::add_up(term, t_term);
        round::mul_up(s, s)
    }

    /// Transfer for the filter assignment: returns the constraint holding
    /// between `(X', X)` after `X' := aX − bY + t` given this constraint on
    /// `(X, Y)`.
    #[must_use]
    pub fn filter_update(self, t_max: f64) -> Ellipsoid {
        Ellipsoid { k: self.delta(t_max), ..self }
    }

    /// Reduction from the interval component: the supremum of the quadratic
    /// form over the box `x × y` refines `k` (the form is convex, so the
    /// supremum is attained at a corner).
    #[must_use]
    pub fn reduce_from_box(self, x: FloatItv, y: FloatItv) -> Ellipsoid {
        if x.is_bottom() || y.is_bottom() {
            return Ellipsoid { k: -1.0, ..self };
        }
        if !x.lo.is_finite() || !x.hi.is_finite() || !y.lo.is_finite() || !y.hi.is_finite() {
            return self;
        }
        let mut sup = f64::NEG_INFINITY;
        for &xv in &[x.lo, x.hi] {
            for &yv in &[y.lo, y.hi] {
                let q = self.eval_form_up(xv, yv);
                sup = sup.max(q);
            }
        }
        Ellipsoid { k: self.k.min(sup.max(0.0)), ..self }
    }

    /// Refinement when `X = Y` is known: `(1 − a + b)·X² ≤ k` (paper's
    /// special reinitialization case).
    #[must_use]
    pub fn reduce_equal_vars(self, x: FloatItv) -> Ellipsoid {
        if x.is_bottom() || !x.lo.is_finite() || !x.hi.is_finite() {
            return self;
        }
        let c = round::add_up(round::sub_up(1.0, self.a), self.b);
        let m = x.lo.abs().max(x.hi.abs());
        let k = round::mul_up(c.max(0.0), round::mul_up(m, m));
        Ellipsoid { k: self.k.min(k), ..self }
    }

    /// Upward-rounded evaluation of `x² − a·x·y + b·y²`.
    fn eval_form_up(self, x: f64, y: f64) -> f64 {
        let x2 = round::mul_up(x, x);
        let axy = round::mul_down(round::mul_down(self.a, x), y);
        let by2 = round::mul_up(round::mul_up(self.b, y), y);
        round::add_up(round::sub_up(x2, axy), by2)
    }

    /// The bound `|X| ≤ 2·√(b·k / (4b − a²))` the constraint implies
    /// (used to tighten `X`'s interval; paper end of Sect. 6.2.3).
    pub fn x_bound(self) -> f64 {
        if self.k == f64::INFINITY {
            return f64::INFINITY;
        }
        if self.k < 0.0 {
            return 0.0;
        }
        let disc = round::sub_down(4.0 * self.b, round::mul_up(self.a, self.a));
        let inner = round::div_up(round::mul_up(self.b, self.k), disc.max(f64::MIN_POSITIVE));
        round::mul_up(2.0, round::sqrt_up(inner))
    }

    /// The bound `|Y| ≤ 2·√(k / (4b − a²))`.
    pub fn y_bound(self) -> f64 {
        if self.k == f64::INFINITY {
            return f64::INFINITY;
        }
        if self.k < 0.0 {
            return 0.0;
        }
        let disc = round::sub_down(4.0 * self.b, round::mul_up(self.a, self.a));
        let inner = round::div_up(self.k, disc.max(f64::MIN_POSITIVE));
        round::mul_up(2.0, round::sqrt_up(inner))
    }

    /// Inclusion `self ⊑ other` (same coefficients assumed).
    pub fn leq(self, other: Ellipsoid) -> bool {
        self.is_bottom() || self.k <= other.k
    }

    /// Join: the weaker constraint.
    #[must_use]
    pub fn join(self, other: Ellipsoid) -> Ellipsoid {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        Ellipsoid { k: self.k.max(other.k), ..self }
    }

    /// Meet: the stronger constraint.
    #[must_use]
    pub fn meet(self, other: Ellipsoid) -> Ellipsoid {
        Ellipsoid { k: self.k.min(other.k), ..self }
    }

    /// Widening with thresholds on `k` (paper: "the widening uses thresholds
    /// as described in Sect. 7.1.2").
    #[must_use]
    pub fn widen(self, other: Ellipsoid, t: &Thresholds) -> Ellipsoid {
        if other.k > self.k {
            Ellipsoid { k: t.above(other.k), ..self }
        } else {
            self
        }
    }

    /// Narrowing: refine an infinite bound.
    #[must_use]
    pub fn narrow(self, other: Ellipsoid) -> Ellipsoid {
        if self.k == f64::INFINITY {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Ellipsoid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X² − {}·XY + {}·Y² ≤ {}", self.a, self.b, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: f64 = 1.5;
    const B: f64 = 0.7;

    #[test]
    fn stability_conditions() {
        assert!(Ellipsoid::stable(1.5, 0.7)); // 2.25 - 2.8 < 0
        assert!(!Ellipsoid::stable(2.0, 0.9)); // 4 - 3.6 > 0
        assert!(!Ellipsoid::stable(0.5, 1.1)); // b >= 1
        assert!(!Ellipsoid::stable(0.5, 0.0)); // b <= 0
    }

    #[test]
    fn proposition_1_invariance() {
        // For k ≥ (tM/(1−√b))², δ(k) ≤ k: the constraint is preserved.
        let t_max = 1.0;
        let e = Ellipsoid::top(A, B);
        let k_min = e.min_invariant_k(t_max);
        for mult in [1.0, 2.0, 10.0] {
            let k = k_min * mult;
            let next = Ellipsoid::new(A, B, k).delta(t_max);
            assert!(next <= k, "δ({k}) = {next} not ≤ k (mult {mult})");
        }
    }

    #[test]
    fn delta_grows_below_fixpoint() {
        // Far below the fixpoint, δ(k) > k (the ramp must climb).
        let e = Ellipsoid::new(A, B, 0.01);
        assert!(e.delta(1.0) > 0.01);
    }

    #[test]
    fn concrete_filter_stays_inside() {
        // Run the filter concretely; the abstract invariant must contain
        // every reachable state.
        let t_max = 1.0;
        let k = Ellipsoid::top(A, B).min_invariant_k(t_max);
        let inv = Ellipsoid::new(A, B, k);
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        let mut rng = 123u64;
        for _ in 0..10_000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = ((rng >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0; // [-1, 1]
            let nx = A * x - B * y + t;
            y = x;
            x = nx;
            let form = x * x - A * x * y + B * y * y;
            assert!(form <= inv.k * (1.0 + 1e-9), "escaped: {form} > {}", inv.k);
            assert!(x.abs() <= inv.x_bound() + 1e-9);
            assert!(y.abs() <= inv.y_bound() + 1e-9);
        }
    }

    #[test]
    fn box_reduction() {
        let e = Ellipsoid::top(A, B);
        let r = e.reduce_from_box(FloatItv::new(-1.0, 1.0), FloatItv::new(-1.0, 1.0));
        assert!(r.k.is_finite());
        // sup over the box of x²−1.5xy+0.7y² is at a corner: 1+1.5+0.7 = 3.2.
        assert!(r.k <= 3.2 + 1e-9 && r.k >= 3.2 - 1e-9, "{}", r.k);
    }

    #[test]
    fn equal_vars_reduction_is_tighter() {
        let e = Ellipsoid::top(A, B);
        let x = FloatItv::new(-2.0, 2.0);
        let eq = e.reduce_equal_vars(x);
        let gen = e.reduce_from_box(x, x);
        assert!(eq.k <= gen.k);
        // (1 − 1.5 + 0.7)·4 = 0.8.
        assert!(eq.k <= 0.8 + 1e-9);
    }

    #[test]
    fn lattice_ops() {
        let e1 = Ellipsoid::new(A, B, 1.0);
        let e2 = Ellipsoid::new(A, B, 2.0);
        assert!(e1.leq(e2));
        assert!(!e2.leq(e1));
        assert_eq!(e1.join(e2).k, 2.0);
        assert_eq!(e1.meet(e2).k, 1.0);
        let t = Thresholds::geometric(1.0, 10.0, 3);
        assert_eq!(e1.widen(e2, &t).k, 10.0);
        assert_eq!(e2.widen(e1, &t).k, 2.0);
        assert_eq!(Ellipsoid::top(A, B).narrow(e1).k, 1.0);
    }

    #[test]
    fn x_bound_shrinks_with_k() {
        let big = Ellipsoid::new(A, B, 100.0).x_bound();
        let small = Ellipsoid::new(A, B, 1.0).x_bound();
        assert!(small < big);
        assert!(Ellipsoid::top(A, B).x_bound().is_infinite());
    }
}
