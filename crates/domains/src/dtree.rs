//! The boolean decision-tree abstract domain (paper Sect. 6.2.4).
//!
//! A decision tree branches on boolean variables (ordered, as in BDDs \[6\])
//! and stores an arithmetic abstract element at each leaf, relating boolean
//! values to numeric variables — e.g. proving `B := (X == 0); if (!B)
//! Y := 1/X` free of division by zero. Subtrees equal on both branches are
//! merged opportunistically. Pack sizes are capped by the analyzer
//! (Sect. 7.2.3), keeping the exponential worst case at bay.

use crate::thresholds::Thresholds;
use std::fmt;

/// The lattice interface decision-tree leaves must implement.
pub trait Lattice: Clone + PartialEq {
    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;
    /// Widening (with thresholds).
    fn widen(&self, other: &Self, t: &Thresholds) -> Self;
    /// Inclusion.
    fn leq(&self, other: &Self) -> bool;
    /// The unreachable element.
    fn bottom() -> Self;
    /// `true` for the unreachable element.
    fn is_bottom(&self) -> bool;
}

impl Lattice for crate::int_interval::IntItv {
    fn join(&self, other: &Self) -> Self {
        crate::int_interval::IntItv::join(*self, *other)
    }
    fn widen(&self, other: &Self, t: &Thresholds) -> Self {
        crate::int_interval::IntItv::widen(*self, *other, t)
    }
    fn leq(&self, other: &Self) -> bool {
        crate::int_interval::IntItv::leq(*self, *other)
    }
    fn bottom() -> Self {
        crate::int_interval::IntItv::BOTTOM
    }
    fn is_bottom(&self) -> bool {
        crate::int_interval::IntItv::is_bottom(*self)
    }
}

/// A decision tree over boolean variables of type `K` with leaves `L`.
///
/// Variables appear in strictly increasing order along every path.
///
/// # Examples
///
/// ```
/// use astree_domains::{DecisionTree, IntItv};
/// // b=false → x ∈ [0,0];  b=true → x ∈ [5,5]
/// let t = DecisionTree::node(0u32, DecisionTree::leaf(IntItv::singleton(0)),
///                                  DecisionTree::leaf(IntItv::singleton(5)));
/// let under_true = t.guard(0, true);
/// assert_eq!(under_true.collapse(), IntItv::singleton(5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionTree<K: Ord + Copy, L: Lattice> {
    /// All boolean contexts share this leaf.
    Leaf(L),
    /// Branch on `var`.
    Node {
        /// The boolean variable tested.
        var: K,
        /// Subtree for `var = false`.
        f: Box<DecisionTree<K, L>>,
        /// Subtree for `var = true`.
        t: Box<DecisionTree<K, L>>,
    },
}

impl<K: Ord + Copy, L: Lattice> DecisionTree<K, L> {
    /// A single leaf.
    pub fn leaf(l: L) -> Self {
        DecisionTree::Leaf(l)
    }

    /// A branch, merging equal children (the opportunistic sharing of the
    /// paper).
    pub fn node(var: K, f: Self, t: Self) -> Self {
        if f == t {
            f
        } else {
            DecisionTree::Node { var, f: Box::new(f), t: Box::new(t) }
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            DecisionTree::Leaf(_) => 1,
            DecisionTree::Node { f, t, .. } => f.num_leaves() + t.num_leaves(),
        }
    }

    /// `true` when every leaf is ⊥.
    pub fn is_bottom(&self) -> bool {
        match self {
            DecisionTree::Leaf(l) => l.is_bottom(),
            DecisionTree::Node { f, t, .. } => f.is_bottom() && t.is_bottom(),
        }
    }

    /// Applies `g` to every leaf.
    #[must_use]
    pub fn map(&self, g: &impl Fn(&L) -> L) -> Self {
        match self {
            DecisionTree::Leaf(l) => DecisionTree::Leaf(g(l)),
            DecisionTree::Node { var, f, t } => Self::node(*var, f.map(g), t.map(g)),
        }
    }

    /// Applies `g` to every leaf along with the boolean path context.
    pub fn for_each_leaf(&self, g: &mut impl FnMut(&[(K, bool)], &L)) {
        fn go<K: Ord + Copy, L: Lattice>(
            tr: &DecisionTree<K, L>,
            path: &mut Vec<(K, bool)>,
            g: &mut impl FnMut(&[(K, bool)], &L),
        ) {
            match tr {
                DecisionTree::Leaf(l) => g(path, l),
                DecisionTree::Node { var, f, t } => {
                    path.push((*var, false));
                    go(f, path, g);
                    path.pop();
                    path.push((*var, true));
                    go(t, path, g);
                    path.pop();
                }
            }
        }
        go(self, &mut Vec::new(), g)
    }

    /// Pointwise binary combination, aligning the ordered variables.
    #[must_use]
    pub fn merge(&self, other: &Self, op: &impl Fn(&L, &L) -> L) -> Self {
        match (self, other) {
            (DecisionTree::Leaf(a), DecisionTree::Leaf(b)) => DecisionTree::Leaf(op(a, b)),
            (DecisionTree::Leaf(_), DecisionTree::Node { var, f, t }) => {
                Self::node(*var, self.merge(f, op), self.merge(t, op))
            }
            (DecisionTree::Node { var, f, t }, DecisionTree::Leaf(_)) => {
                Self::node(*var, f.merge(other, op), t.merge(other, op))
            }
            (
                DecisionTree::Node { var: va, f: fa, t: ta },
                DecisionTree::Node { var: vb, f: fb, t: tb },
            ) => {
                if va == vb {
                    Self::node(*va, fa.merge(fb, op), ta.merge(tb, op))
                } else if va < vb {
                    Self::node(*va, fa.merge(other, op), ta.merge(other, op))
                } else {
                    Self::node(*vb, self.merge(fb, op), self.merge(tb, op))
                }
            }
        }
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(&self, other: &Self) -> Self {
        self.merge(other, &|a, b| a.join(b))
    }

    /// Widening (pointwise on aligned leaves).
    #[must_use]
    pub fn widen(&self, other: &Self, th: &Thresholds) -> Self {
        self.merge(other, &|a, b| a.widen(b, th))
    }

    /// Inclusion test.
    pub fn leq(&self, other: &Self) -> bool {
        // Pointwise: self ⊑ other iff the check holds on all aligned leaves.
        // Reuse merge to align, collecting the verdict in a cell.
        let ok = std::cell::Cell::new(true);
        let _ = self.merge(other, &|a, b| {
            if !a.leq(b) {
                ok.set(false);
            }
            a.clone()
        });
        ok.get()
    }

    /// Keeps only the contexts where `var = value`; other contexts become ⊥.
    #[must_use]
    pub fn guard(&self, var: K, value: bool) -> Self {
        match self {
            DecisionTree::Leaf(_) => {
                let bot = DecisionTree::Leaf(L::bottom());
                if value {
                    Self::node(var, bot, self.clone())
                } else {
                    Self::node(var, self.clone(), bot)
                }
            }
            DecisionTree::Node { var: v, f, t } => {
                if *v == var {
                    let bot = leaf_bottom_like(f);
                    if value {
                        Self::node(*v, bot, (**t).clone())
                    } else {
                        Self::node(*v, (**f).clone(), bot)
                    }
                } else if *v < var {
                    Self::node(*v, f.guard(var, value), t.guard(var, value))
                } else {
                    // var sorts before this node: insert it above.
                    let bot = DecisionTree::Leaf(L::bottom());
                    if value {
                        Self::node(var, bot, self.clone())
                    } else {
                        Self::node(var, self.clone(), bot)
                    }
                }
            }
        }
    }

    /// Removes `var` from the tree, joining its branches (the variable's
    /// value becomes unknown — used before it is overwritten).
    #[must_use]
    pub fn forget(&self, var: K) -> Self {
        match self {
            DecisionTree::Leaf(_) => self.clone(),
            DecisionTree::Node { var: v, f, t } => {
                if *v == var {
                    f.join(t)
                } else if *v < var {
                    Self::node(*v, f.forget(var), t.forget(var))
                } else {
                    self.clone()
                }
            }
        }
    }

    /// Assignment `var := e`, where the truth of `e` in each numeric context
    /// is decided by `restrict_false` / `restrict_true` (each returns the
    /// leaf restricted to the contexts where `e` is false/true, ⊥ when
    /// impossible).
    #[must_use]
    pub fn assign_bool(
        &self,
        var: K,
        restrict_false: &impl Fn(&L) -> L,
        restrict_true: &impl Fn(&L) -> L,
    ) -> Self {
        let dropped = self.forget(var);
        dropped.split_on(var, restrict_false, restrict_true)
    }

    fn split_on(
        &self,
        var: K,
        restrict_false: &impl Fn(&L) -> L,
        restrict_true: &impl Fn(&L) -> L,
    ) -> Self {
        match self {
            DecisionTree::Leaf(l) => Self::node(
                var,
                DecisionTree::Leaf(restrict_false(l)),
                DecisionTree::Leaf(restrict_true(l)),
            ),
            DecisionTree::Node { var: v, f, t } => {
                debug_assert!(*v != var, "assign_bool forgot the variable first");
                if *v < var {
                    Self::node(
                        *v,
                        f.split_on(var, restrict_false, restrict_true),
                        t.split_on(var, restrict_false, restrict_true),
                    )
                } else {
                    Self::node(var, self.map(restrict_false), self.map(restrict_true))
                }
            }
        }
    }

    /// Joins all leaves into one element (projection to the plain numeric
    /// domain).
    pub fn collapse(&self) -> L {
        match self {
            DecisionTree::Leaf(l) => l.clone(),
            DecisionTree::Node { f, t, .. } => f.collapse().join(&t.collapse()),
        }
    }
}

fn leaf_bottom_like<K: Ord + Copy, L: Lattice>(t: &DecisionTree<K, L>) -> DecisionTree<K, L> {
    t.map(&|_| L::bottom())
}

impl<K: Ord + Copy + fmt::Display, L: Lattice + fmt::Display> fmt::Display for DecisionTree<K, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lines = Vec::new();
        self.for_each_leaf(&mut |path, leaf| {
            let ctx: Vec<String> = path
                .iter()
                .map(|(k, v)| if *v { format!("{k}") } else { format!("¬{k}") })
                .collect();
            lines.push(format!("  [{}] → {leaf}", ctx.join(" ∧ ")));
        });
        writeln!(f, "dtree:")?;
        for l in lines {
            writeln!(f, "{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int_interval::IntItv;

    type T = DecisionTree<u32, IntItv>;

    #[test]
    fn node_merges_equal_children() {
        let t = T::node(0, T::leaf(IntItv::new(0, 1)), T::leaf(IntItv::new(0, 1)));
        assert!(matches!(t, DecisionTree::Leaf(_)));
        assert_eq!(t.num_leaves(), 1);
    }

    #[test]
    fn guard_prunes() {
        let t = T::node(0, T::leaf(IntItv::singleton(0)), T::leaf(IntItv::singleton(5)));
        let g = t.guard(0, true);
        assert_eq!(g.collapse(), IntItv::singleton(5));
        let g = t.guard(0, false);
        assert_eq!(g.collapse(), IntItv::singleton(0));
    }

    #[test]
    fn guard_on_absent_var_inserts_node() {
        let t = T::leaf(IntItv::new(0, 9));
        let g = t.guard(3, true);
        assert_eq!(g.num_leaves(), 2);
        assert_eq!(g.collapse(), IntItv::new(0, 9));
        assert_eq!(g.guard(3, false).collapse(), IntItv::BOTTOM);
    }

    #[test]
    fn join_aligns_different_vars() {
        let a = T::node(0, T::leaf(IntItv::singleton(1)), T::leaf(IntItv::singleton(2)));
        let b = T::node(1, T::leaf(IntItv::singleton(10)), T::leaf(IntItv::singleton(20)));
        let j = a.join(&b);
        // Contexts multiply: leaves for each (b0, b1) combination.
        assert!(j.num_leaves() <= 4);
        assert_eq!(j.collapse(), IntItv::new(1, 20));
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn forget_joins_branches() {
        let t = T::node(0, T::leaf(IntItv::singleton(0)), T::leaf(IntItv::singleton(5)));
        let f = t.forget(0);
        assert!(matches!(f, DecisionTree::Leaf(_)));
        assert_eq!(f.collapse(), IntItv::new(0, 5));
    }

    #[test]
    fn assign_bool_correlates() {
        // Numeric context x ∈ [0, 10]; b := (x > 4).
        // restrict_true keeps [5,10], restrict_false keeps [0,4].
        let t = T::leaf(IntItv::new(0, 10));
        let assigned = t.assign_bool(0, &|l| l.meet(IntItv::new(i64::MIN, 4)), &|l| {
            l.meet(IntItv::new(5, i64::MAX))
        });
        assert_eq!(assigned.guard(0, true).collapse(), IntItv::new(5, 10));
        assert_eq!(assigned.guard(0, false).collapse(), IntItv::new(0, 4));
    }

    #[test]
    fn the_paper_division_example() {
        // B := (X == 0); if (!B) Y := 1/X.
        // X ∈ [-5, 5]; after the assignment the ¬B context excludes… well,
        // intervals cannot carve out {0} from the middle, but with
        // X ∈ [0, 5] they can.
        let t = T::leaf(IntItv::new(0, 5));
        let after_b = t.assign_bool(
            0,
            &|l| l.meet(IntItv::new(1, i64::MAX)), // B false → X ≠ 0 → X ≥ 1
            &|l| l.meet(IntItv::singleton(0)),     // B true → X = 0
        );
        // In the ¬B branch the divisor is at least 1: no division by zero.
        let not_b = after_b.guard(0, false);
        let x_range = not_b.collapse();
        assert!(!x_range.contains(0), "{x_range}");
    }

    #[test]
    fn widen_terminates_pointwise() {
        let th = Thresholds::none();
        let a = T::node(0, T::leaf(IntItv::new(0, 1)), T::leaf(IntItv::new(0, 2)));
        let b = T::node(0, T::leaf(IntItv::new(0, 5)), T::leaf(IntItv::new(0, 2)));
        let w = a.widen(&b, &th);
        assert_eq!(w.guard(0, false).collapse().hi, i64::MAX);
        assert_eq!(w.guard(0, true).collapse(), IntItv::new(0, 2));
    }

    #[test]
    fn leq_detects_non_inclusion() {
        let a = T::leaf(IntItv::new(0, 5));
        let b = T::leaf(IntItv::new(0, 3));
        assert!(b.leq(&a));
        assert!(!a.leq(&b));
    }

    #[test]
    fn ordering_invariant_along_paths() {
        let a = T::node(1, T::leaf(IntItv::singleton(1)), T::leaf(IntItv::singleton(2)));
        let g = a.guard(0, true); // inserts 0 above 1
        fn check_order(t: &DecisionTree<u32, IntItv>, min: Option<u32>) {
            if let DecisionTree::Node { var, f, t: tt } = t {
                if let Some(m) = min {
                    assert!(*var > m, "unordered: {var} after {m}");
                }
                check_order(f, Some(*var));
                check_order(tt, Some(*var));
            }
        }
        check_order(&g, None);
    }
}
