//! The clocked abstract domain (paper Sect. 6.2.1).
//!
//! A triple `(v, v⁻, v⁺)` abstracts the values `x` with `x ∈ γ(v)`,
//! `x − clock ∈ γ(v⁻)` and `x + clock ∈ γ(v⁺)`, where `clock` is the hidden
//! variable counting `wait` ticks. Event counters incremented at most once
//! per cycle have a stable `v⁻` (e.g. `x − clock ≤ 0`), so even when plain
//! interval widening loses the counter's upper bound, reduction against the
//! bounded clock (`clock ∈ [0, T]`, `T` the maximal continuous operating
//! time) recovers `x ≤ T`.

use crate::int_interval::IntItv;
use crate::thresholds::Thresholds;
use std::fmt;

/// A clocked integer value: interval plus clock-relative bounds.
///
/// # Examples
///
/// ```
/// use astree_domains::{Clocked, IntItv};
/// // A counter starting at 0 with clock 0.
/// let clock0 = IntItv::singleton(0);
/// let c = Clocked::of_val(IntItv::singleton(0), clock0);
/// // One increment per tick keeps x - clock <= 0 stable.
/// let bumped = c.add_const(1).tick();
/// assert!(bumped.minus.hi <= 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clocked {
    /// Bounds on `x`.
    pub val: IntItv,
    /// Bounds on `x − clock`.
    pub minus: IntItv,
    /// Bounds on `x + clock`.
    pub plus: IntItv,
}

impl Clocked {
    /// Bottom (unreachable).
    pub const BOTTOM: Clocked =
        Clocked { val: IntItv::BOTTOM, minus: IntItv::BOTTOM, plus: IntItv::BOTTOM };

    /// Top (no information).
    pub const TOP: Clocked = Clocked { val: IntItv::TOP, minus: IntItv::TOP, plus: IntItv::TOP };

    /// Builds the triple for a value known only as `val`, given the current
    /// clock bounds.
    pub fn of_val(val: IntItv, clock: IntItv) -> Clocked {
        Clocked { val, minus: val.sub(clock), plus: val.add(clock) }
    }

    /// `true` when any component is empty.
    pub fn is_bottom(self) -> bool {
        self.val.is_bottom()
    }

    /// Pointwise inclusion.
    pub fn leq(self, other: Clocked) -> bool {
        self.val.leq(other.val) && self.minus.leq(other.minus) && self.plus.leq(other.plus)
    }

    /// Pointwise join.
    #[must_use]
    pub fn join(self, other: Clocked) -> Clocked {
        Clocked {
            val: self.val.join(other.val),
            minus: self.minus.join(other.minus),
            plus: self.plus.join(other.plus),
        }
    }

    /// Pointwise meet.
    #[must_use]
    pub fn meet(self, other: Clocked) -> Clocked {
        Clocked {
            val: self.val.meet(other.val),
            minus: self.minus.meet(other.minus),
            plus: self.plus.meet(other.plus),
        }
    }

    /// Pointwise widening with thresholds.
    #[must_use]
    pub fn widen(self, other: Clocked, t: &Thresholds) -> Clocked {
        Clocked {
            val: self.val.widen(other.val, t),
            minus: self.minus.widen(other.minus, t),
            plus: self.plus.widen(other.plus, t),
        }
    }

    /// Pointwise narrowing.
    #[must_use]
    pub fn narrow(self, other: Clocked) -> Clocked {
        Clocked {
            val: self.val.narrow(other.val),
            minus: self.minus.narrow(other.minus),
            plus: self.plus.narrow(other.plus),
        }
    }

    /// Transfer for `x := x + c`: all three components shift.
    #[must_use]
    pub fn add_const(self, c: i64) -> Clocked {
        let k = IntItv::singleton(c);
        Clocked { val: self.val.add(k), minus: self.minus.add(k), plus: self.plus.add(k) }
    }

    /// Transfer for the clock tick (`wait`): `clock` grows by one, so
    /// `x − clock` shrinks by one and `x + clock` grows by one.
    #[must_use]
    pub fn tick(self) -> Clocked {
        let one = IntItv::singleton(1);
        Clocked { val: self.val, minus: self.minus.sub(one), plus: self.plus.add(one) }
    }

    /// Reduction: refine `val` using the clock bounds
    /// (`x = (x − clock) + clock = (x + clock) − clock`).
    #[must_use]
    pub fn reduce(self, clock: IntItv) -> Clocked {
        if self.is_bottom() {
            return Clocked::BOTTOM;
        }
        let from_minus = self.minus.add(clock);
        let from_plus = self.plus.sub(clock);
        let val = self.val.meet(from_minus).meet(from_plus);
        // And the reverse reductions keep the triple coherent.
        let minus = self.minus.meet(val.sub(clock));
        let plus = self.plus.meet(val.add(clock));
        Clocked { val, minus, plus }
    }
}

impl fmt::Display for Clocked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(v={}, v-clk={}, v+clk={})", self.val, self.minus, self.plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_stays_bounded_by_clock() {
        // Simulate: x := 0; loop { if (event) x := x + 1; wait }
        // with widening on val but a stable minus component.
        let clock_max = 1000;
        let mut x = Clocked::of_val(IntItv::singleton(0), IntItv::singleton(0));
        let t = Thresholds::none();
        // Abstract loop: join of (x) and (x+1), then tick, widened.
        for _ in 0..5 {
            let body = x.join(x.add_const(1)).tick();
            x = x.widen(body, &t);
        }
        // val has been widened away…
        assert_eq!(x.val.hi, i64::MAX);
        // …but reduction against clock ∈ [0, 1000] recovers the bound.
        let reduced = x.reduce(IntItv::new(0, clock_max));
        assert!(reduced.val.hi <= clock_max + 1, "{}", reduced.val);
        assert!(reduced.val.lo >= 0);
    }

    #[test]
    fn of_val_is_coherent() {
        let c = Clocked::of_val(IntItv::new(3, 5), IntItv::new(0, 10));
        assert_eq!(c.minus, IntItv::new(-7, 5));
        assert_eq!(c.plus, IntItv::new(3, 15));
        // Reduction of a coherent triple is the identity on val.
        assert_eq!(c.reduce(IntItv::new(0, 10)).val, c.val);
    }

    #[test]
    fn lattice_ops_pointwise() {
        let a = Clocked::of_val(IntItv::new(0, 1), IntItv::singleton(0));
        let b = Clocked::of_val(IntItv::new(2, 3), IntItv::singleton(0));
        let j = a.join(b);
        assert_eq!(j.val, IntItv::new(0, 3));
        assert!(a.leq(j) && b.leq(j));
        assert!(a.meet(b).is_bottom());
    }

    #[test]
    fn narrow_recovers_from_top() {
        let w = Clocked::TOP;
        let f = Clocked::of_val(IntItv::new(0, 7), IntItv::new(0, 3));
        let n = w.narrow(f);
        assert_eq!(n.val, f.val);
    }
}
