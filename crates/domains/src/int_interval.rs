//! Integer intervals with ±∞ bounds.
//!
//! Bounds use `i64` with `i64::MIN`/`i64::MAX` as −∞/+∞ sentinels; all
//! arithmetic goes through `i128` and saturates onto the sentinels, which is
//! sound because the caller (the memory domain's transfer function) clips
//! every result against the operation type's range and raises the overflow
//! flag when clipping was needed.

use crate::thresholds::Thresholds;
use astree_ir::IntType;
use std::fmt;

/// −∞ sentinel.
const NEG: i64 = i64::MIN;
/// +∞ sentinel.
const POS: i64 = i64::MAX;

/// An integer interval `[lo, hi]` (empty when `lo > hi`).
///
/// # Examples
///
/// ```
/// use astree_domains::IntItv;
/// let a = IntItv::new(0, 10);
/// let b = IntItv::new(5, 20);
/// assert_eq!(a.join(b), IntItv::new(0, 20));
/// assert_eq!(a.meet(b), IntItv::new(5, 10));
/// assert_eq!(a.add(b), IntItv::new(5, 30));
/// assert!(a.meet(IntItv::new(11, 12)).is_bottom());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntItv {
    /// Lower bound (`i64::MIN` = −∞).
    pub lo: i64,
    /// Upper bound (`i64::MAX` = +∞).
    pub hi: i64,
}

fn clamp128(v: i128) -> i64 {
    if v <= NEG as i128 {
        NEG
    } else if v >= POS as i128 {
        POS
    } else {
        v as i64
    }
}

impl IntItv {
    /// The empty interval ⊥.
    pub const BOTTOM: IntItv = IntItv { lo: 1, hi: 0 };
    /// The full interval ⊤ = [−∞, +∞].
    pub const TOP: IntItv = IntItv { lo: NEG, hi: POS };

    /// `[lo, hi]`; empty if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> IntItv {
        IntItv { lo, hi }
    }

    /// `[v, v]`.
    pub fn singleton(v: i64) -> IntItv {
        IntItv { lo: v, hi: v }
    }

    /// The representable range of an integer type.
    pub fn of_type(t: IntType) -> IntItv {
        IntItv { lo: t.min(), hi: t.max() }
    }

    /// `true` for the empty interval.
    pub fn is_bottom(self) -> bool {
        self.lo > self.hi
    }

    /// `true` for [−∞, +∞].
    pub fn is_top(self) -> bool {
        self.lo == NEG && self.hi == POS
    }

    /// `true` if `v` is in the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `Some(v)` if the interval is the single value `v`.
    pub fn as_singleton(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Inclusion test `self ⊑ other`.
    pub fn leq(self, other: IntItv) -> bool {
        self.is_bottom() || (other.lo <= self.lo && self.hi <= other.hi)
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: IntItv) -> IntItv {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        IntItv { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Greatest lower bound.
    #[must_use]
    pub fn meet(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        IntItv { lo: self.lo.max(other.lo), hi: self.hi.min(other.hi) }
    }

    /// Widening with thresholds (paper Sect. 7.1.2): an escaping bound jumps
    /// to the next threshold of the ramp instead of ±∞.
    #[must_use]
    pub fn widen(self, other: IntItv, thresholds: &Thresholds) -> IntItv {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        let lo = if other.lo < self.lo { thresholds.below_int(other.lo) } else { self.lo };
        let hi = if other.hi > self.hi { thresholds.above_int(other.hi) } else { self.hi };
        IntItv { lo, hi }
    }

    /// Narrowing: refine infinite bounds with the other side's.
    #[must_use]
    pub fn narrow(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        IntItv {
            lo: if self.lo == NEG { other.lo } else { self.lo },
            hi: if self.hi == POS { other.hi } else { self.hi },
        }
    }

    // ----- arithmetic (exact ranges; caller clips to the op type) --------

    /// `-self`.
    #[must_use]
    pub fn neg(self) -> IntItv {
        if self.is_bottom() {
            return self;
        }
        IntItv { lo: clamp128(-(self.hi as i128)), hi: clamp128(-(self.lo as i128)) }
    }

    /// `self + other` (exact).
    #[must_use]
    pub fn add(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        IntItv {
            lo: if self.lo == NEG || other.lo == NEG {
                NEG
            } else {
                clamp128(self.lo as i128 + other.lo as i128)
            },
            hi: if self.hi == POS || other.hi == POS {
                POS
            } else {
                clamp128(self.hi as i128 + other.hi as i128)
            },
        }
    }

    /// `self - other` (exact).
    #[must_use]
    pub fn sub(self, other: IntItv) -> IntItv {
        self.add(other.neg())
    }

    /// `self * other` (exact).
    #[must_use]
    pub fn mul(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        // Infinite bounds require sign reasoning; go through i128 products of
        // the four corners with ∞ handled as a huge-but-signed value, which
        // is correct because clamp128 saturates back onto the sentinels.
        let big = |v: i64| -> i128 {
            match v {
                NEG => -(1i128 << 100),
                POS => 1i128 << 100,
                v => v as i128,
            }
        };
        let cands = [
            big(self.lo) * big(other.lo),
            big(self.lo) * big(other.hi),
            big(self.hi) * big(other.lo),
            big(self.hi) * big(other.hi),
        ];
        IntItv {
            lo: clamp128(*cands.iter().min().expect("non-empty")),
            hi: clamp128(*cands.iter().max().expect("non-empty")),
        }
    }

    /// C truncating division `self / other`, with 0 excluded from the
    /// divisor. Returns ⊥ when the divisor is exactly {0} (no non-erroneous
    /// execution). The caller flags the potential division by zero.
    #[must_use]
    pub fn div(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        let mut out = IntItv::BOTTOM;
        // Negative part of the divisor.
        if other.lo <= -1 {
            out = out.join(self.div_part(other.lo, other.hi.min(-1)));
        }
        // Positive part of the divisor.
        if other.hi >= 1 {
            out = out.join(self.div_part(other.lo.max(1), other.hi));
        }
        out
    }

    /// Division by a same-sign, zero-free divisor range.
    fn div_part(self, dlo: i64, dhi: i64) -> IntItv {
        let divq = |a: i64, d: i64| -> i128 {
            match (a, d) {
                (NEG, d) if d > 0 => -(1i128 << 100),
                (NEG, _) => 1i128 << 100,
                (POS, d) if d > 0 => 1i128 << 100,
                (POS, _) => -(1i128 << 100),
                // d is finite and non-zero here; ∞ divisors cannot occur
                // because the parts are derived from finite comparisons.
                (a, d) => (a as i128) / (d as i128),
            }
        };
        let ds = [dlo, dhi];
        let asx = [self.lo, self.hi];
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for &a in &asx {
            for &d in &ds {
                let q = divq(a, d);
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        // Truncation is not monotone through zero crossings of the numerator;
        // include 0 when the numerator straddles it.
        if self.lo < 0 && self.hi > 0 {
            lo = lo.min(0);
            hi = hi.max(0);
        }
        IntItv { lo: clamp128(lo), hi: clamp128(hi) }
    }

    /// C remainder `self % other` (sign follows the dividend), divisor 0
    /// excluded.
    #[must_use]
    pub fn rem(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        // Largest |divisor| − 1 bounds |result|.
        let dmax = match (other.lo, other.hi) {
            (NEG, _) | (_, POS) => POS,
            (lo, hi) => lo.abs().max(hi.abs()).saturating_sub(1),
        };
        if other.lo > -1 && other.hi < 1 {
            return IntItv::BOTTOM; // divisor is exactly {0}
        }
        let lo = if self.lo >= 0 { 0 } else { (-dmax).max(self.lo) };
        let hi = if self.hi <= 0 { 0 } else { dmax.min(self.hi) };
        IntItv { lo, hi }
    }

    /// `self << other` for in-range shift amounts (callers validate range).
    #[must_use]
    pub fn shl(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        let amounts = IntItv { lo: other.lo.clamp(0, 63), hi: other.hi.clamp(0, 63) };
        let mut out = IntItv::BOTTOM;
        for d in [amounts.lo, amounts.hi] {
            let f = 1i128 << d;
            let m = IntItv {
                lo: if self.lo == NEG { NEG } else { clamp128(self.lo as i128 * f) },
                hi: if self.hi == POS { POS } else { clamp128(self.hi as i128 * f) },
            };
            out = out.join(m);
        }
        out
    }

    /// `self >> other` (arithmetic shift) for in-range amounts.
    #[must_use]
    pub fn shr(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        let mut out = IntItv::BOTTOM;
        for d in [other.lo.clamp(0, 63), other.hi.clamp(0, 63)] {
            let m = IntItv {
                lo: if self.lo == NEG { NEG } else { self.lo >> d },
                hi: if self.hi == POS { POS } else { self.hi >> d },
            };
            out = out.join(m);
        }
        out
    }

    /// Bitwise AND — precise for non-negative operands, conservative
    /// otherwise.
    #[must_use]
    pub fn bitand(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        if self.lo >= 0 && other.lo >= 0 {
            // 0 ≤ a & b ≤ min(max a, max b)
            IntItv { lo: 0, hi: self.hi.min(other.hi) }
        } else {
            IntItv::TOP
        }
    }

    /// Bitwise OR — precise-ish for non-negative operands.
    #[must_use]
    pub fn bitor(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        if self.lo >= 0 && other.lo >= 0 && self.hi != POS && other.hi != POS {
            // a | b < 2^ceil(log2(max+1)) for the wider operand
            let bound = next_pow2_minus1(self.hi.max(other.hi));
            IntItv { lo: self.lo.max(other.lo), hi: bound }
        } else {
            IntItv::TOP
        }
    }

    /// Bitwise XOR — bounded for non-negative operands.
    #[must_use]
    pub fn bitxor(self, other: IntItv) -> IntItv {
        if self.is_bottom() || other.is_bottom() {
            return IntItv::BOTTOM;
        }
        if self.lo >= 0 && other.lo >= 0 && self.hi != POS && other.hi != POS {
            IntItv { lo: 0, hi: next_pow2_minus1(self.hi.max(other.hi)) }
        } else {
            IntItv::TOP
        }
    }

    /// Bitwise complement `~x = −x − 1` (exact).
    #[must_use]
    pub fn bitnot(self) -> IntItv {
        self.neg().sub(IntItv::singleton(1))
    }

    /// Abstract conversion to integer type `t`: identity when the value fits,
    /// otherwise the full type range (C conversions wrap; the precise wrap
    /// image of a large interval is the whole type anyway).
    #[must_use]
    pub fn convert_to(self, t: IntType) -> IntItv {
        if self.is_bottom() {
            return self;
        }
        let r = IntItv::of_type(t);
        if self.leq(r) {
            self
        } else if t.is_bool() {
            // _Bool: 0 stays 0, anything else 1.
            let can_zero = self.contains(0);
            let can_nonzero = self.lo != 0 || self.hi != 0;
            match (can_zero, can_nonzero) {
                (true, true) => IntItv::new(0, 1),
                (true, false) => IntItv::singleton(0),
                (false, _) => IntItv::singleton(1),
            }
        } else if let Some(v) = self.as_singleton() {
            IntItv::singleton(t.wrap(v))
        } else {
            r
        }
    }
}

fn next_pow2_minus1(v: i64) -> i64 {
    let mut b = 1i64;
    while b - 1 < v && b < (1 << 62) {
        b <<= 1;
    }
    b - 1
}

impl fmt::Display for IntItv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            return write!(f, "⊥");
        }
        match (self.lo, self.hi) {
            (NEG, POS) => write!(f, "[-inf, +inf]"),
            (NEG, h) => write!(f, "[-inf, {h}]"),
            (l, POS) => write!(f, "[{l}, +inf]"),
            (l, h) => write!(f, "[{l}, {h}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_laws() {
        let a = IntItv::new(0, 5);
        let b = IntItv::new(3, 9);
        assert!(a.leq(a.join(b)));
        assert!(b.leq(a.join(b)));
        assert!(a.meet(b).leq(a));
        assert!(IntItv::BOTTOM.leq(a));
        assert!(a.leq(IntItv::TOP));
        assert_eq!(a.join(IntItv::BOTTOM), a);
        assert_eq!(a.meet(IntItv::TOP), a);
    }

    #[test]
    fn arithmetic_ranges() {
        let a = IntItv::new(-2, 3);
        let b = IntItv::new(4, 5);
        assert_eq!(a.add(b), IntItv::new(2, 8));
        assert_eq!(a.sub(b), IntItv::new(-7, -1));
        assert_eq!(a.mul(b), IntItv::new(-10, 15));
        assert_eq!(a.neg(), IntItv::new(-3, 2));
    }

    #[test]
    fn division_excludes_zero() {
        let a = IntItv::new(10, 20);
        assert_eq!(a.div(IntItv::new(2, 5)), IntItv::new(2, 10));
        // Divisor straddling zero: both signed parts contribute.
        let d = IntItv::new(-2, 2);
        let q = a.div(d);
        assert!(q.contains(10) && q.contains(-10) && q.contains(20) && q.contains(-20));
        // Divisor exactly zero: bottom.
        assert!(a.div(IntItv::singleton(0)).is_bottom());
    }

    #[test]
    fn division_trunc_toward_zero() {
        let a = IntItv::new(-7, 7);
        let q = a.div(IntItv::singleton(2));
        assert_eq!(q, IntItv::new(-3, 3));
        let q = IntItv::new(-7, -3).div(IntItv::singleton(2));
        assert_eq!(q, IntItv::new(-3, -1));
    }

    #[test]
    fn remainder_bounds() {
        let a = IntItv::new(0, 100);
        assert_eq!(a.rem(IntItv::singleton(7)), IntItv::new(0, 6));
        let b = IntItv::new(-100, 100);
        assert_eq!(b.rem(IntItv::singleton(10)), IntItv::new(-9, 9));
        let c = IntItv::new(-5, -1);
        assert_eq!(c.rem(IntItv::singleton(10)), IntItv::new(-5, 0));
    }

    #[test]
    fn shifts() {
        let a = IntItv::new(1, 4);
        assert_eq!(a.shl(IntItv::singleton(2)), IntItv::new(4, 16));
        assert_eq!(IntItv::new(8, 32).shr(IntItv::singleton(3)), IntItv::new(1, 4));
        assert_eq!(a.shl(IntItv::new(0, 2)), IntItv::new(1, 16));
    }

    #[test]
    fn bit_ops_nonnegative() {
        let a = IntItv::new(0, 12);
        let b = IntItv::new(0, 5);
        assert_eq!(a.bitand(b), IntItv::new(0, 5));
        assert!(a.bitor(b).hi >= 13); // 12|5 = 13, bound is 15
        assert!(a.bitor(b).hi <= 15);
        assert_eq!(a.bitxor(b).lo, 0);
        // Negative operands degrade to top.
        assert!(IntItv::new(-1, 1).bitand(b).is_top());
    }

    #[test]
    fn bitnot_is_exact() {
        assert_eq!(IntItv::new(0, 3).bitnot(), IntItv::new(-4, -1));
    }

    #[test]
    fn widen_uses_thresholds() {
        let t = Thresholds::geometric(1.0, 10.0, 3);
        let a = IntItv::new(0, 5);
        let b = IntItv::new(0, 12);
        assert_eq!(a.widen(b, &t), IntItv::new(0, 100));
        let c = IntItv::new(-3, 5);
        assert_eq!(a.widen(c, &t), IntItv::new(-10, 5));
        // Beyond the ramp: ±∞.
        let d = IntItv::new(0, 5000);
        assert_eq!(a.widen(d, &t).hi, POS);
        // Stable bounds stay put.
        assert_eq!(a.widen(IntItv::new(1, 4), &t), a);
    }

    #[test]
    fn narrow_refines_infinite_bounds() {
        let w = IntItv::new(0, POS);
        let f = IntItv::new(0, 17);
        assert_eq!(w.narrow(f), IntItv::new(0, 17));
        // Finite bounds are kept.
        assert_eq!(IntItv::new(0, 9).narrow(f), IntItv::new(0, 9));
    }

    #[test]
    fn conversions() {
        assert_eq!(IntItv::new(0, 100).convert_to(IntType::UCHAR), IntItv::new(0, 100));
        assert_eq!(IntItv::new(0, 300).convert_to(IntType::UCHAR), IntItv::new(0, 255));
        assert_eq!(IntItv::singleton(300).convert_to(IntType::UCHAR), IntItv::singleton(44));
        assert_eq!(IntItv::new(0, 5).convert_to(IntType::BOOL), IntItv::new(0, 1));
        assert_eq!(IntItv::new(1, 5).convert_to(IntType::BOOL), IntItv::singleton(1));
        assert_eq!(IntItv::singleton(0).convert_to(IntType::BOOL), IntItv::singleton(0));
    }

    #[test]
    fn saturation_at_sentinels() {
        let big = IntItv::new(i64::MAX / 2, i64::MAX - 1);
        let sum = big.add(big);
        assert_eq!(sum.hi, POS);
        let prod = big.mul(big);
        assert_eq!(prod.hi, POS);
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntItv::new(1, 2).to_string(), "[1, 2]");
        assert_eq!(IntItv::TOP.to_string(), "[-inf, +inf]");
        assert_eq!(IntItv::BOTTOM.to_string(), "⊥");
    }

    // Exhaustive soundness check on small ranges: the abstract op contains
    // every concrete result.
    fn check_sound(
        f_abs: impl Fn(IntItv, IntItv) -> IntItv,
        f_conc: impl Fn(i64, i64) -> Option<i64>,
    ) {
        let ranges = [(-3i64, 3i64), (0, 5), (-5, -1), (2, 2), (-1, 4)];
        for &(alo, ahi) in &ranges {
            for &(blo, bhi) in &ranges {
                let r = f_abs(IntItv::new(alo, ahi), IntItv::new(blo, bhi));
                for x in alo..=ahi {
                    for y in blo..=bhi {
                        if let Some(v) = f_conc(x, y) {
                            assert!(
                                r.contains(v),
                                "[{alo},{ahi}] op [{blo},{bhi}] = {r} misses {x} op {y} = {v}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_soundness() {
        check_sound(|a, b| a.add(b), |x, y| Some(x + y));
        check_sound(|a, b| a.sub(b), |x, y| Some(x - y));
        check_sound(|a, b| a.mul(b), |x, y| Some(x * y));
        check_sound(|a, b| a.div(b), |x, y| (y != 0).then(|| x / y));
        check_sound(|a, b| a.rem(b), |x, y| (y != 0).then(|| x % y));
        check_sound(|a, b| a.shl(b), |x, y| (0..8).contains(&y).then(|| x << y));
        check_sound(|a, b| a.bitand(b), |x, y| Some(x & y));
        check_sound(|a, b| a.bitor(b), |x, y| Some(x | y));
        check_sound(|a, b| a.bitxor(b), |x, y| Some(x ^ y));
    }
}
