//! Property tests for the relational domains: octagon transfer functions
//! against concrete point tracking, and decision trees against explicit
//! context enumeration.

use astree_domains::{DecisionTree, FloatItv, IntItv, Octagon, Thresholds};
use proptest::prelude::*;

// ----- octagons --------------------------------------------------------------

/// A concrete point and the abstract octagon tracking it.
#[derive(Debug, Clone)]
struct Tracked {
    point: Vec<f64>,
    oct: Octagon,
}

impl Tracked {
    fn new(values: Vec<f64>) -> Tracked {
        let mut oct = Octagon::top(values.len());
        for (i, v) in values.iter().enumerate() {
            oct.assign_interval(i, FloatItv::new(*v, *v));
        }
        Tracked { point: values, oct }
    }

    /// Checks the octagon still admits the point.
    fn check(&mut self) {
        let n = self.point.len();
        self.oct.close();
        assert!(!self.oct.is_bottom(), "point tracked into bottom");
        for i in 0..n {
            let b = self.oct.bounds(i);
            assert!(
                b.lo - 1e-6 <= self.point[i] && self.point[i] <= b.hi + 1e-6,
                "x{i} = {} escaped {b}",
                self.point[i]
            );
            for j in 0..n {
                if i != j {
                    let d = self.oct.diff_bound(i, j);
                    assert!(
                        self.point[i] - self.point[j] <= d + 1e-6,
                        "x{i} - x{j} = {} > {d}",
                        self.point[i] - self.point[j]
                    );
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
enum OctOp {
    /// x_i := x_j + c
    AssignVarPlus(usize, usize, f64),
    /// x_i := −x_j + c
    AssignNegVarPlus(usize, usize, f64),
    /// x_i := c
    AssignConst(usize, f64),
    /// forget x_i (concrete value unchanged)
    Forget(usize),
}

fn oct_ops(n: usize) -> impl Strategy<Value = Vec<OctOp>> {
    let op = prop_oneof![
        (0..n, 0..n, -10.0f64..10.0).prop_map(|(i, j, c)| OctOp::AssignVarPlus(i, j, c)),
        (0..n, 0..n, -10.0f64..10.0).prop_map(|(i, j, c)| OctOp::AssignNegVarPlus(i, j, c)),
        (0..n, -10.0f64..10.0).prop_map(|(i, c)| OctOp::AssignConst(i, c)),
        (0..n).prop_map(OctOp::Forget),
    ];
    prop::collection::vec(op, 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every sequence of affine assignments keeps the concrete point inside
    /// the octagon.
    #[test]
    fn octagon_transfers_track_concrete_points(
        init in prop::collection::vec(-10.0f64..10.0, 4),
        ops in oct_ops(4),
    ) {
        let mut t = Tracked::new(init);
        for op in ops {
            match op {
                OctOp::AssignVarPlus(i, j, c) => {
                    t.point[i] = t.point[j] + c;
                    t.oct.assign_var_plus_const(i, j, c, c);
                }
                OctOp::AssignNegVarPlus(i, j, c) => {
                    t.point[i] = -t.point[j] + c;
                    t.oct.assign_neg_var_plus_const(i, j, c, c);
                }
                OctOp::AssignConst(i, c) => {
                    t.point[i] = c;
                    t.oct.assign_interval(i, FloatItv::new(c, c));
                }
                OctOp::Forget(i) => t.oct.forget(i),
            }
            t.check();
        }
    }

    /// Join admits the points of both operands; widening admits the join.
    #[test]
    fn octagon_join_and_widen_admit_points(
        a in prop::collection::vec(-10.0f64..10.0, 3),
        b in prop::collection::vec(-10.0f64..10.0, 3),
    ) {
        let mut ta = Tracked::new(a.clone());
        let mut tb = Tracked::new(b.clone());
        let j = ta.oct.join(&mut tb.oct);
        let check_in = |oct: &Octagon, p: &[f64]| {
            let mut o = oct.clone();
            o.close();
            for (i, v) in p.iter().enumerate() {
                let bounds = o.bounds(i);
                prop_assert!(bounds.lo - 1e-6 <= *v && *v <= bounds.hi + 1e-6);
            }
            Ok(())
        };
        check_in(&j, &a)?;
        check_in(&j, &b)?;
        let t = Thresholds::geometric_default();
        let mut jb = j.clone();
        let w = ta.oct.widen(&mut jb, &t);
        check_in(&w, &a)?;
        check_in(&w, &b)?;
    }

    /// Inclusion is reflexive and antisymmetric w.r.t. derived bounds.
    #[test]
    fn octagon_leq_laws(vals in prop::collection::vec(-5.0f64..5.0, 3)) {
        let mut t = Tracked::new(vals);
        let copy = t.oct.clone();
        prop_assert!(t.oct.leq(&copy));
        let mut top = Octagon::top(3);
        prop_assert!(t.oct.leq(&top));
        // top ⋢ point (unless degenerate, impossible for singleton bounds)
        prop_assert!(!top.leq(&t.oct));
    }
}

// ----- decision trees --------------------------------------------------------

/// A model: explicit map from boolean contexts (bitmask over 2 vars) to an
/// interval.
#[derive(Debug, Clone, PartialEq)]
struct Model {
    by_ctx: Vec<IntItv>, // indexed by b0 + 2*b1
}

fn tree_of(model: &Model) -> DecisionTree<u32, IntItv> {
    DecisionTree::node(
        0,
        DecisionTree::node(
            1,
            DecisionTree::leaf(model.by_ctx[0]),
            DecisionTree::leaf(model.by_ctx[2]),
        ),
        DecisionTree::node(
            1,
            DecisionTree::leaf(model.by_ctx[1]),
            DecisionTree::leaf(model.by_ctx[3]),
        ),
    )
}

fn itv() -> impl Strategy<Value = IntItv> {
    (-20i64..20, -20i64..20).prop_map(|(a, b)| IntItv::new(a.min(b), a.max(b)))
}

fn model() -> impl Strategy<Value = Model> {
    prop::collection::vec(itv(), 4).prop_map(|by_ctx| Model { by_ctx })
}

proptest! {
    /// guard() keeps exactly the matching contexts.
    #[test]
    fn dtree_guard_matches_model(m in model(), var in 0u32..2, value in any::<bool>()) {
        let t = tree_of(&m);
        let g = t.guard(var, value);
        for ctx in 0..4usize {
            let bit = if var == 0 { ctx & 1 != 0 } else { ctx & 2 != 0 };
            let expected = if bit == value { m.by_ctx[ctx] } else { IntItv::BOTTOM };
            // Read the context back by guarding on both variables.
            let leaf = g
                .guard(0, ctx & 1 != 0)
                .guard(1, ctx & 2 != 0)
                .collapse();
            prop_assert_eq!(leaf, expected, "ctx {}", ctx);
        }
    }

    /// join is the pointwise join over contexts.
    #[test]
    fn dtree_join_matches_model(a in model(), b in model()) {
        let ta = tree_of(&a);
        let tb = tree_of(&b);
        let j = ta.join(&tb);
        for ctx in 0..4usize {
            let leaf = j.guard(0, ctx & 1 != 0).guard(1, ctx & 2 != 0).collapse();
            prop_assert_eq!(leaf, a.by_ctx[ctx].join(b.by_ctx[ctx]));
        }
    }

    /// forget joins the two branches of the variable.
    #[test]
    fn dtree_forget_matches_model(m in model(), var in 0u32..2) {
        let t = tree_of(&m);
        let f = t.forget(var);
        for ctx in 0..4usize {
            let other = if var == 0 { ctx ^ 1 } else { ctx ^ 2 };
            let expected = m.by_ctx[ctx].join(m.by_ctx[other]);
            let leaf = f.guard(0, ctx & 1 != 0).guard(1, ctx & 2 != 0).collapse();
            prop_assert_eq!(leaf, expected);
        }
    }

    /// leq agrees with pointwise inclusion over contexts.
    #[test]
    fn dtree_leq_matches_model(a in model(), b in model()) {
        let want = (0..4).all(|c| a.by_ctx[c].leq(b.by_ctx[c]));
        prop_assert_eq!(tree_of(&a).leq(&tree_of(&b)), want);
    }
}
