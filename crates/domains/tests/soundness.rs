//! Property tests: abstract operations over-approximate concrete sampling.

use astree_domains::{Ellipsoid, FloatItv, IntItv, LinForm, Octagon, Thresholds};
use astree_ir::FloatKind;
use proptest::prelude::*;

fn small_range() -> impl Strategy<Value = (i64, i64)> {
    (-50i64..50, -50i64..50).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

fn fl_range() -> impl Strategy<Value = (f64, f64)> {
    (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

proptest! {
    #[test]
    fn int_ops_sound_on_samples((alo, ahi) in small_range(), (blo, bhi) in small_range(),
                                xs in prop::collection::vec((any::<u8>(), any::<u8>()), 20)) {
        let a = IntItv::new(alo, ahi);
        let b = IntItv::new(blo, bhi);
        for (sx, sy) in xs {
            let x = alo + (sx as i64) % (ahi - alo + 1);
            let y = blo + (sy as i64) % (bhi - blo + 1);
            prop_assert!(a.add(b).contains(x + y));
            prop_assert!(a.sub(b).contains(x - y));
            prop_assert!(a.mul(b).contains(x * y));
            if y != 0 {
                prop_assert!(a.div(b).contains(x / y));
                prop_assert!(a.rem(b).contains(x % y));
            }
        }
    }

    #[test]
    fn int_join_meet_laws((alo, ahi) in small_range(), (blo, bhi) in small_range()) {
        let a = IntItv::new(alo, ahi);
        let b = IntItv::new(blo, bhi);
        prop_assert!(a.leq(a.join(b)));
        prop_assert!(b.leq(a.join(b)));
        prop_assert!(a.meet(b).leq(a));
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.meet(b), b.meet(a));
        // Widening covers the join.
        let t = Thresholds::geometric_default();
        prop_assert!(a.join(b).leq(a.widen(b, &t)));
    }

    #[test]
    fn float_ops_sound_on_samples((alo, ahi) in fl_range(), (blo, bhi) in fl_range(),
                                  fracs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10)) {
        let a = FloatItv::new(alo, ahi);
        let b = FloatItv::new(blo, bhi);
        for (fa, fb) in fracs {
            let x = alo + (ahi - alo) * fa;
            let y = blo + (bhi - blo) * fb;
            let (sum, _) = a.add(b, FloatKind::F64);
            prop_assert!(sum.contains(x + y), "{sum} misses {x}+{y}");
            let (prod, _) = a.mul(b, FloatKind::F64);
            prop_assert!(prod.contains(x * y));
            if y.abs() > 1e-6 {
                let (quot, _) = a.div(b, FloatKind::F64);
                prop_assert!(quot.contains(x / y), "{quot} misses {x}/{y}");
            }
            // f32 ops contain the f32-rounded results.
            let (sum32, _) = a.mul(b, FloatKind::F32);
            let conc = (x as f32 * y as f32) as f64;
            if conc.is_finite() {
                prop_assert!(sum32.contains(conc));
            }
        }
    }

    #[test]
    fn float_widen_covers_join((alo, ahi) in fl_range(), (blo, bhi) in fl_range()) {
        let a = FloatItv::new(alo, ahi);
        let b = FloatItv::new(blo, bhi);
        let t = Thresholds::geometric_default();
        prop_assert!(a.join(b).leq(a.widen(b, &t)));
        // Iterated widening reaches a fixpoint fast.
        let mut cur = a;
        for _ in 0..64 {
            let next = cur.widen(b, &t);
            if next == cur {
                break;
            }
            cur = next;
        }
        prop_assert_eq!(cur.widen(b, &t), cur);
    }

    #[test]
    fn octagon_closure_preserves_solutions(
        c01 in -10.0f64..10.0, c12 in -10.0f64..10.0, up1 in -5.0f64..10.0,
        xs in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0), 10),
    ) {
        let mut o = Octagon::top(3);
        o.add_diff_le(0, 1, c01);
        o.add_diff_le(1, 2, c12);
        o.add_upper(1, up1);
        let mut closed = o.clone();
        closed.close();
        for (x0, x1, x2) in xs {
            let satisfies = x0 - x1 <= c01 && x1 - x2 <= c12 && x1 <= up1;
            if satisfies {
                // The closure must still admit the point.
                prop_assert!(closed.diff_bound(0, 1) >= x0 - x1 - 1e-9);
                prop_assert!(closed.diff_bound(0, 2) >= x0 - x2 - 1e-9);
                prop_assert!(closed.bounds(1).hi >= x1 - 1e-9);
            }
        }
    }

    #[test]
    fn octagon_join_is_upper_bound(lo in -5.0f64..0.0, hi in 0.0f64..5.0) {
        let mut a = Octagon::top(2);
        a.assign_interval(0, FloatItv::new(lo, 0.0));
        let mut b = Octagon::top(2);
        b.assign_interval(0, FloatItv::new(0.0, hi));
        let j = a.join(&mut b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
    }

    #[test]
    fn linform_eval_sound(coef in -5.0f64..5.0, cst in -5.0f64..5.0,
                          (xlo, xhi) in fl_range(), fr in 0.0f64..1.0) {
        let x: LinForm<u32> = LinForm::var(0);
        let l = x.scale(FloatItv::singleton(coef)).add(&LinForm::constant(FloatItv::singleton(cst)));
        let env = FloatItv::new(xlo, xhi);
        let v = l.eval(|_| env);
        let sample = xlo + (xhi - xlo) * fr;
        let concrete = coef * sample + cst;
        prop_assert!(v.lo <= concrete + 1e-9 && concrete - 1e-9 <= v.hi,
                     "{v} misses {concrete}");
    }

    #[test]
    fn ellipsoid_delta_monotone(k1 in 0.0f64..1e6, k2 in 0.0f64..1e6, tm in 0.0f64..100.0) {
        let (ka, kb) = (k1.min(k2), k1.max(k2));
        let ea = Ellipsoid::new(0.5, 0.5, ka);
        let eb = Ellipsoid::new(0.5, 0.5, kb);
        prop_assert!(ea.delta(tm) <= eb.delta(tm));
    }

    #[test]
    fn ellipsoid_invariant_contains_concrete(tm in 0.1f64..10.0, seed in any::<u64>()) {
        let a = 1.2f64;
        let b = 0.6f64;
        prop_assume!(Ellipsoid::stable(a, b));
        let e = Ellipsoid::top(a, b);
        let k = e.min_invariant_k(tm);
        let inv = Ellipsoid::new(a, b, k);
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        let mut rng = seed | 1;
        for _ in 0..500 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (((rng >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0) * tm;
            let nx = a * x - b * y + t;
            y = x;
            x = nx;
            let form = x * x - a * x * y + b * y * y;
            prop_assert!(form <= inv.k * (1.0 + 1e-9), "{form} > {}", inv.k);
        }
    }
}
