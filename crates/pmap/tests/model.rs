//! Property tests checking `PMap` against a `BTreeMap` model.
//!
//! Two kinds of inputs: independently built maps (no physical sharing, so
//! every combiner call is observable) and *derived* maps (`ops_b` applied on
//! top of a common ancestor, so subtrees really are shared and the
//! identity/shortcut machinery is exercised). The structural invariant
//! checker runs after every single mutation.

use astree_pmap::{MergeOutcome, PMap, PSet};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, i32),
    Remove(u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<i32>()).prop_map(|(k, v)| Op::Insert(k % 256, v)),
            any::<u16>().prop_map(|k| Op::Remove(k % 256)),
        ],
        0..200,
    )
}

/// Applies `ops` to an existing map/model pair, checking the AVL balance,
/// cached-size, and ordering invariants after every mutation.
fn apply(
    mut p: PMap<u16, i32>,
    mut m: BTreeMap<u16, i32>,
    ops: &[Op],
) -> (PMap<u16, i32>, BTreeMap<u16, i32>) {
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                p = p.insert(*k, *v);
                m.insert(*k, *v);
            }
            Op::Remove(k) => {
                p = p.remove(k);
                m.remove(k);
            }
        }
        p.assert_invariants();
    }
    (p, m)
}

fn run(ops: &[Op]) -> (PMap<u16, i32>, BTreeMap<u16, i32>) {
    apply(PMap::new(), BTreeMap::new(), ops)
}

proptest! {
    #[test]
    fn matches_btreemap(ops in ops()) {
        let (p, m) = run(&ops);
        prop_assert_eq!(p.len(), m.len());
        let got: Vec<(u16, i32)> = p.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, i32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        for k in 0u16..256 {
            prop_assert_eq!(p.get(&k), m.get(&k));
        }
    }

    #[test]
    fn union_matches_model(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = run(&ops_b);
        let pu = pa.union_with(&pb, |_, a, b| a.wrapping_add(*b));
        pu.assert_invariants();
        let mut mu = ma.clone();
        for (k, v) in &mb {
            mu.entry(*k).and_modify(|x| *x = x.wrapping_add(*v)).or_insert(*v);
        }
        let got: Vec<(u16, i32)> = pu.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, i32)> = mu.iter().map(|(k, v)| (*k, *v)).collect();
        // union_with may skip f on physically shared subtrees; that only
        // happens when both sides are identical, in which case idempotent f
        // would diverge from wrapping_add. Restrict the check accordingly.
        if !pa.ptr_eq(&pb) {
            prop_assert_eq!(got, want);
        }
    }

    /// Keep-the-max merge over maps derived from a common ancestor: the
    /// combiner is idempotent, so the result must match the model *despite*
    /// shared subtrees being skipped, and the result must stay balanced.
    #[test]
    fn union_outcome_matches_model_on_derived_maps(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = apply(pa.clone(), ma.clone(), &ops_b);
        let pu = pa.union_outcome(&pb, |_, a, b| {
            if a >= b { MergeOutcome::Left } else { MergeOutcome::Right }
        });
        pu.assert_invariants();
        let mut mu = ma.clone();
        for (k, v) in &mb {
            mu.entry(*k).and_modify(|x| *x = (*x).max(*v)).or_insert(*v);
        }
        let got: Vec<(u16, i32)> = pu.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, i32)> = mu.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Identity preservation: merging a map with itself, keeping either
    /// side, or re-inserting a value already bound must return the input
    /// physically unchanged.
    #[test]
    fn identity_preserving_operations(ops_a in ops()) {
        let (pa, ma) = run(&ops_a);
        prop_assert!(pa.union_with(&pa.clone(), |_, a, _| *a).ptr_eq(&pa));
        prop_assert!(pa.union_outcome(&pa.clone(), |_, _, _| MergeOutcome::Left).ptr_eq(&pa));
        for (k, v) in ma.iter().take(16) {
            let p2 = pa.insert_if_changed(*k, *v, |a, b| a == b);
            prop_assert!(p2.ptr_eq(&pa), "no-op insert of ({}, {}) copied the path", k, v);
        }
        // Key 999 is outside the generated 0..256 range, so this insert is
        // never a no-op.
        let p3 = pa.insert_if_changed(999, 1, |a, b| a == b);
        p3.assert_invariants();
        prop_assert_eq!(p3.len(), ma.len() + 1);
    }

    #[test]
    fn all2_agrees_with_pointwise(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = run(&ops_b);
        let got = pa.all2(&pb, |_, _| false, |_, _| false, |_, x, y| x == y);
        let want = ma == mb;
        prop_assert_eq!(got, want);
    }

    /// `all2` as a pointwise `≤` over derived maps — the shape the
    /// analyzer's inclusion tests take, where interior sharing is real.
    #[test]
    fn all2_leq_on_derived_maps(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = apply(pa.clone(), ma.clone(), &ops_b);
        let got = pa.all2(&pb, |_, _| false, |_, _| true, |_, x, y| x <= y);
        let want = ma.iter().all(|(k, v)| mb.get(k).is_some_and(|w| v <= w));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn diff_visits_exactly_differences(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = run(&ops_b);
        let mut seen = BTreeSet::new();
        pa.for_each_diff(&pb, |k, va, vb| {
            if va != vb {
                seen.insert(*k);
            }
        });
        let keys: BTreeSet<u16> = ma.keys().chain(mb.keys()).copied().collect();
        let want: BTreeSet<u16> =
            keys.into_iter().filter(|k| ma.get(k) != mb.get(k)).collect();
        prop_assert_eq!(seen, want);
    }

    /// `diff2`/`fold2` over derived maps: shared regions are skipped, yet
    /// every differing binding must still be reported exactly once.
    #[test]
    fn diff2_exact_on_derived_maps(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = apply(pa.clone(), ma.clone(), &ops_b);
        let mut seen = BTreeSet::new();
        pa.diff2(&pb, |k, va, vb| {
            if va != vb {
                let fresh = seen.insert(*k);
                assert!(fresh, "binding {k} reported twice");
            }
        });
        let keys: BTreeSet<u16> = ma.keys().chain(mb.keys()).copied().collect();
        let want: BTreeSet<u16> =
            keys.into_iter().filter(|k| ma.get(k) != mb.get(k)).collect();
        prop_assert_eq!(&seen, &want);
        let n = pa.fold2(&pb, 0usize, |acc, _, va, vb| acc + usize::from(va != vb));
        prop_assert_eq!(n, want.len());
    }

    #[test]
    fn set_subset_matches_model(xs in prop::collection::btree_set(0u16..64, 0..32),
                                ys in prop::collection::btree_set(0u16..64, 0..32)) {
        let a: PSet<u16> = xs.iter().copied().collect();
        let b: PSet<u16> = ys.iter().copied().collect();
        prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
        let u = a.union(&b);
        let wu: BTreeSet<u16> = xs.union(&ys).copied().collect();
        let gu: BTreeSet<u16> = u.iter().copied().collect();
        prop_assert_eq!(gu, wu);
    }
}
