//! Property tests checking `PMap` against a `BTreeMap` model.

use astree_pmap::{PMap, PSet};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, i32),
    Remove(u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<i32>()).prop_map(|(k, v)| Op::Insert(k % 256, v)),
            any::<u16>().prop_map(|k| Op::Remove(k % 256)),
        ],
        0..200,
    )
}

fn run(ops: &[Op]) -> (PMap<u16, i32>, BTreeMap<u16, i32>) {
    let mut p = PMap::new();
    let mut m = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                p = p.insert(*k, *v);
                m.insert(*k, *v);
            }
            Op::Remove(k) => {
                p = p.remove(k);
                m.remove(k);
            }
        }
    }
    (p, m)
}

proptest! {
    #[test]
    fn matches_btreemap(ops in ops()) {
        let (p, m) = run(&ops);
        prop_assert_eq!(p.len(), m.len());
        let got: Vec<(u16, i32)> = p.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, i32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        for k in 0u16..256 {
            prop_assert_eq!(p.get(&k), m.get(&k));
        }
    }

    #[test]
    fn union_matches_model(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = run(&ops_b);
        let pu = pa.union_with(&pb, |_, a, b| a.wrapping_add(*b));
        let mut mu = ma.clone();
        for (k, v) in &mb {
            mu.entry(*k).and_modify(|x| *x = x.wrapping_add(*v)).or_insert(*v);
        }
        let got: Vec<(u16, i32)> = pu.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, i32)> = mu.iter().map(|(k, v)| (*k, *v)).collect();
        // union_with may skip f on physically shared subtrees; that only
        // happens when both sides are identical, in which case idempotent f
        // would diverge from wrapping_add. Restrict the check accordingly.
        if !pa.ptr_eq(&pb) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn all2_agrees_with_pointwise(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = run(&ops_b);
        let got = pa.all2(&pb, |_, _| false, |_, _| false, |_, x, y| x == y);
        let want = ma == mb;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn diff_visits_exactly_differences(ops_a in ops(), ops_b in ops()) {
        let (pa, ma) = run(&ops_a);
        let (pb, mb) = run(&ops_b);
        let mut seen = BTreeSet::new();
        pa.for_each_diff(&pb, |k, va, vb| {
            if va != vb {
                seen.insert(*k);
            }
        });
        let keys: BTreeSet<u16> = ma.keys().chain(mb.keys()).copied().collect();
        let want: BTreeSet<u16> =
            keys.into_iter().filter(|k| ma.get(k) != mb.get(k)).collect();
        prop_assert_eq!(seen, want);
    }

    #[test]
    fn set_subset_matches_model(xs in prop::collection::btree_set(0u16..64, 0..32),
                                ys in prop::collection::btree_set(0u16..64, 0..32)) {
        let a: PSet<u16> = xs.iter().copied().collect();
        let b: PSet<u16> = ys.iter().copied().collect();
        prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
        let u = a.union(&b);
        let wu: BTreeSet<u16> = xs.union(&ys).copied().collect();
        let gu: BTreeSet<u16> = u.iter().copied().collect();
        prop_assert_eq!(gu, wu);
    }
}
