//! A persistent set, a thin wrapper over [`PMap`].

use crate::PMap;
use std::fmt;

/// An immutable, reference-counted ordered set with structural sharing.
///
/// # Examples
///
/// ```
/// use astree_pmap::PSet;
/// let s: PSet<u32> = [3, 1, 2].into_iter().collect();
/// assert!(s.contains(&2));
/// assert_eq!(s.insert(4).len(), 4);
/// assert_eq!(s.len(), 3);
/// ```
pub struct PSet<T> {
    map: PMap<T, ()>,
}

impl<T> Clone for PSet<T> {
    fn clone(&self) -> Self {
        PSet { map: self.map.clone() }
    }
}

impl<T> Default for PSet<T> {
    fn default() -> Self {
        PSet { map: PMap::default() }
    }
}

impl<T> PSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }
}

impl<T: Ord> PSet<T> {
    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: &T) -> bool {
        self.map.contains_key(value)
    }
}

impl<T: Clone + Ord> PSet<T> {
    /// Returns a set containing `value` in addition to `self`'s elements.
    #[must_use]
    pub fn insert(&self, value: T) -> Self {
        PSet { map: self.map.insert(value, ()) }
    }

    /// Returns a set without `value`.
    #[must_use]
    pub fn remove(&self, value: &T) -> Self {
        PSet { map: self.map.remove(value) }
    }

    /// Returns the union of two sets, sharing subtrees where possible.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        PSet { map: self.map.union_with(&other.map, |_, _, _| ()) }
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.map.all2(&other.map, |_, _| false, |_, _| true, |_, _, _| true)
    }
}

impl<T: Clone + Ord> FromIterator<T> for PSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        PSet { map: iter.into_iter().map(|t| (t, ())).collect() }
    }
}

impl<T: Clone + Ord> Extend<T> for PSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for t in iter {
            *self = self.insert(t);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for PSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Ord + Eq> PartialEq for PSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<T: Ord + Eq> Eq for PSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let s: PSet<u32> = [1, 2, 3].into_iter().collect();
        assert!(s.contains(&2));
        assert!(!s.contains(&4));
        let s2 = s.insert(4).remove(&1);
        assert!(s2.contains(&4));
        assert!(!s2.contains(&1));
        assert!(s.contains(&1), "original unchanged");
    }

    #[test]
    fn union_and_subset() {
        let a: PSet<u32> = [1, 2].into_iter().collect();
        let b: PSet<u32> = [2, 3].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
    }

    #[test]
    fn empty_is_subset_of_everything() {
        let e: PSet<u32> = PSet::new();
        let a: PSet<u32> = [1].into_iter().collect();
        assert!(e.is_subset(&a));
        assert!(e.is_subset(&e));
        assert!(!a.is_subset(&e));
    }
}
