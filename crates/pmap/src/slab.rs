//! A size-classed slab allocator for persistent-map nodes.
//!
//! Every tree node used to be an individual global-allocator round trip;
//! at scale (Monniaux's parallel-ASTRÉE observation) the allocator traffic
//! and the resulting heap scatter dominate the abstract-state hot path.
//! This slab hands out fixed-size slots carved by bumping through 64 KiB
//! chunks, and recycles dropped slots through per-thread free lists:
//!
//! - **Thread-local fast path.** Each thread owns a [`LocalSlab`] (free
//!   list per size class + one active bump chunk), so allocation and
//!   deallocation are a few pointer moves with no synchronization — the
//!   same discipline as the sharing counters in [`crate::stats`].
//! - **Process-wide recycling, no frees.** Chunk memory is *never*
//!   returned to the global allocator. When a thread exits, its free lists
//!   and the unused tail of its bump chunk are absorbed into a global
//!   [`Mutex`]-protected pool that later threads drain. This is what makes
//!   cross-thread sharing sound: a node allocated on one thread may be
//!   dropped on another (persistent maps flow freely between the worker
//!   pool, the serve daemon, and the coordinator), so a slot's backing
//!   chunk must stay valid for the life of the process. Slots freed during
//!   thread teardown (after the local slab is gone) are simply leaked —
//!   still inside a live chunk, so still sound.
//! - **Size classes.** Slot sizes are multiples of [`GRANULE`] bytes up to
//!   [`MAX_CLASS_BYTES`]; anything larger (or over-aligned) falls back to
//!   the global allocator in [`crate::arc`]. A recycled slot only ever
//!   serves its own class, so a bump-carved slot can never be handed out
//!   twice.
//!
//! Telemetry: every classed allocation/free updates the thread-local
//! `slab_bytes_allocated`/`slab_bytes_freed` counters, and allocations
//! served from a free list count as `nodes_recycled` — surfaced through
//! [`crate::PmapStats`] so the recycling win is measurable next to
//! `nodes_allocated`.

use crate::stats;
use std::alloc::{alloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::ptr::{self, NonNull};
use std::sync::Mutex;

/// Size-class granularity in bytes (also a multiple of [`SLAB_ALIGN`], so
/// bump offsets stay aligned).
const GRANULE: usize = 32;
/// Largest slot the slab serves; bigger nodes use the global allocator.
const MAX_CLASS_BYTES: usize = 1024;
/// Number of size classes.
const NUM_CLASSES: usize = MAX_CLASS_BYTES / GRANULE;
/// Alignment guaranteed for every slot.
pub(crate) const SLAB_ALIGN: usize = 16;
/// Bump-chunk size.
const CHUNK_BYTES: usize = 64 * 1024;

/// The size class serving `layout`, or `None` when the layout must fall
/// back to the global allocator (oversized, over-aligned, or zero-sized).
pub(crate) fn class_of(layout: Layout) -> Option<usize> {
    if layout.align() > SLAB_ALIGN || layout.size() > MAX_CLASS_BYTES || layout.size() == 0 {
        return None;
    }
    Some(layout.size().div_ceil(GRANULE) - 1)
}

/// Slot size of a class in bytes.
pub(crate) fn class_bytes(class: usize) -> usize {
    (class + 1) * GRANULE
}

/// A freed slot doubles as its own free-list link.
struct FreeSlot {
    next: *mut FreeSlot,
}

/// Intrusive LIFO of freed slots with O(1) concatenation (`tail` is the
/// oldest slot; valid whenever `head` is non-null).
struct FreeList {
    head: *mut FreeSlot,
    tail: *mut FreeSlot,
    len: usize,
}

impl FreeList {
    const EMPTY: FreeList = FreeList { head: ptr::null_mut(), tail: ptr::null_mut(), len: 0 };

    #[inline]
    fn push(&mut self, slot: NonNull<u8>) {
        let slot = slot.cast::<FreeSlot>().as_ptr();
        unsafe { (*slot).next = self.head };
        if self.head.is_null() {
            self.tail = slot;
        }
        self.head = slot;
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<NonNull<u8>> {
        NonNull::new(self.head).map(|slot| {
            self.head = unsafe { (*slot.as_ptr()).next };
            if self.head.is_null() {
                self.tail = ptr::null_mut();
            }
            self.len -= 1;
            slot.cast()
        })
    }

    /// Prepends `other`'s slots (O(1)); `other` is left empty.
    fn absorb(&mut self, other: &mut FreeList) {
        if other.head.is_null() {
            return;
        }
        unsafe { (*other.tail).next = self.head };
        if self.head.is_null() {
            self.tail = other.tail;
        }
        self.head = other.head;
        self.len += other.len;
        *other = FreeList::EMPTY;
    }
}

/// A bump chunk: `off` bytes of the backing memory are carved (live in
/// slots or free lists), the tail is available. The backing allocation is
/// intentionally never deallocated; dropping a `Chunk` handle with a full
/// tail just forgets it (its memory lives on in free-listed slots).
struct Chunk {
    base: NonNull<u8>,
    off: usize,
}

impl Chunk {
    fn new() -> Chunk {
        let layout = Layout::from_size_align(CHUNK_BYTES, SLAB_ALIGN).expect("static layout");
        let p = unsafe { alloc(layout) };
        let base = NonNull::new(p).unwrap_or_else(|| handle_alloc_error(layout));
        Chunk { base, off: 0 }
    }

    #[inline]
    fn carve(&mut self, bytes: usize) -> Option<NonNull<u8>> {
        if self.off + bytes > CHUNK_BYTES {
            return None;
        }
        let p = unsafe { NonNull::new_unchecked(self.base.as_ptr().add(self.off)) };
        self.off += bytes;
        Some(p)
    }
}

/// Free lists and bump-chunk tails surrendered by exited threads, drained
/// by live ones. Holds raw pointers into never-deallocated chunks, so
/// moving them across threads is sound; the mutex provides the
/// happens-before edge between the releasing and the reusing thread.
struct GlobalPool {
    free: [FreeList; NUM_CLASSES],
    chunks: Vec<Chunk>,
}

unsafe impl Send for GlobalPool {}

static GLOBAL: Mutex<GlobalPool> =
    Mutex::new(GlobalPool { free: [FreeList::EMPTY; NUM_CLASSES], chunks: Vec::new() });

/// Per-thread slab state. On drop (thread exit) everything reusable is
/// absorbed into [`GLOBAL`].
struct LocalSlab {
    free: [FreeList; NUM_CLASSES],
    chunk: Option<Chunk>,
}

impl LocalSlab {
    const fn new() -> LocalSlab {
        LocalSlab { free: [FreeList::EMPTY; NUM_CLASSES], chunk: None }
    }

    fn alloc(&mut self, class: usize) -> NonNull<u8> {
        // 1. Local free list: the common steady-state path.
        if let Some(slot) = self.free[class].pop() {
            stats::note_node_recycled();
            return slot;
        }
        // 2. Steal an exited thread's entire free list for this class.
        {
            let mut pool = GLOBAL.lock().unwrap();
            if !pool.free[class].head.is_null() {
                self.free[class].absorb(&mut pool.free[class]);
                drop(pool);
                let slot = self.free[class].pop().expect("absorbed list is non-empty");
                stats::note_node_recycled();
                return slot;
            }
        }
        // 3. Bump from the active chunk, replacing it when exhausted.
        let bytes = class_bytes(class);
        if let Some(slot) = self.chunk.as_mut().and_then(|c| c.carve(bytes)) {
            return slot;
        }
        let old = self.chunk.take();
        let mut pool = GLOBAL.lock().unwrap();
        if let Some(old) = old {
            // Another class may still fit the tail; otherwise the handle is
            // forgotten (its memory is fully accounted for in slots).
            if old.off + GRANULE <= CHUNK_BYTES {
                pool.chunks.push(old);
            }
        }
        let reused = pool.chunks.iter().position(|c| c.off + bytes <= CHUNK_BYTES);
        let mut chunk = match reused {
            Some(i) => pool.chunks.swap_remove(i),
            None => {
                drop(pool);
                Chunk::new()
            }
        };
        let slot = chunk.carve(bytes).expect("fresh or selected chunk fits one slot");
        self.chunk = Some(chunk);
        slot
    }
}

impl Drop for LocalSlab {
    fn drop(&mut self) {
        // Thread exit: surrender recyclable state. A poisoned lock means
        // leaking, which is always sound here.
        let Ok(mut pool) = GLOBAL.lock() else { return };
        for (class, fl) in self.free.iter_mut().enumerate() {
            pool.free[class].absorb(fl);
        }
        if let Some(chunk) = self.chunk.take() {
            if chunk.off + GRANULE <= CHUNK_BYTES {
                pool.chunks.push(chunk);
            }
        }
    }
}

thread_local! {
    static SLAB: RefCell<LocalSlab> = const { RefCell::new(LocalSlab::new()) };
}

/// Allocates one slot of `class`. Usable at any point in the thread's
/// lifetime: during thread teardown (local slab already destroyed) it
/// falls back to a fresh global allocation, which later frees treat like
/// any other slot.
pub(crate) fn alloc_class(class: usize) -> NonNull<u8> {
    stats::note_slab_alloc(class_bytes(class) as u64);
    SLAB.try_with(|s| s.borrow_mut().alloc(class)).unwrap_or_else(|_| {
        let layout =
            Layout::from_size_align(class_bytes(class), SLAB_ALIGN).expect("static layout");
        let p = unsafe { alloc(layout) };
        NonNull::new(p).unwrap_or_else(|| handle_alloc_error(layout))
    })
}

/// Returns a slot to its class's free list. During thread teardown the
/// slot is leaked instead — it stays inside a never-deallocated chunk (or
/// a teardown fallback allocation), so this is sound, merely unthrifty in
/// a path that runs O(1) times per thread.
pub(crate) fn free_class(slot: NonNull<u8>, class: usize) {
    stats::note_slab_free(class_bytes(class) as u64);
    let _ = SLAB.try_with(|s| s.borrow_mut().free[class].push(slot));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_granules_and_reject_oversize() {
        let l = |s, a| Layout::from_size_align(s, a).unwrap();
        assert_eq!(class_of(l(1, 1)), Some(0));
        assert_eq!(class_of(l(32, 8)), Some(0));
        assert_eq!(class_of(l(33, 8)), Some(1));
        assert_eq!(class_of(l(1024, 16)), Some(NUM_CLASSES - 1));
        assert_eq!(class_of(l(1025, 8)), None, "oversized");
        assert_eq!(class_of(l(64, 32)), None, "over-aligned");
        for c in 0..NUM_CLASSES {
            assert!(class_bytes(c) <= MAX_CLASS_BYTES);
            assert_eq!(class_bytes(c) % GRANULE, 0);
        }
    }

    #[test]
    fn alloc_free_recycles_within_class() {
        let _ = crate::take_stats();
        // A size class no other test (or map node) touches, so the global
        // pool cannot interleave foreign slots.
        let class = class_of(Layout::from_size_align(950, 8).unwrap()).unwrap();
        let a = alloc_class(class);
        let b = alloc_class(class);
        assert_ne!(a, b, "live slots are distinct");
        free_class(a, class);
        let c = alloc_class(class);
        assert_eq!(a, c, "freed slot is recycled LIFO");
        let st = crate::take_stats();
        // Other tests' exited threads may donate slots to the global pool,
        // making even the first allocations count as recycled — so lower
        // bound only.
        assert!(st.nodes_recycled >= 1, "recycle of `a` counted");
        assert_eq!(st.slab_bytes_allocated, 3 * class_bytes(class) as u64);
        assert_eq!(st.slab_bytes_freed, class_bytes(class) as u64);
        free_class(b, class);
        free_class(c, class);
        let _ = crate::take_stats();
    }

    #[test]
    fn cross_thread_free_and_exit_absorption() {
        // Likewise a class private to this test, so the recycled slot is
        // deterministically ours.
        let class = class_of(Layout::from_size_align(1000, 8).unwrap()).unwrap();
        let slot = alloc_class(class);
        let addr = slot.as_ptr() as usize;
        // Free on another thread; its exit pushes the slot to the global
        // pool, and a third thread can recycle it.
        std::thread::spawn(move || {
            free_class(NonNull::new(addr as *mut u8).unwrap(), class);
        })
        .join()
        .unwrap();
        let recycled = std::thread::spawn(move || {
            let got = alloc_class(class);
            let hit = got.as_ptr() as usize == addr;
            free_class(got, class);
            hit
        })
        .join()
        .unwrap();
        assert!(recycled, "slot freed on an exited thread is drawn by a later thread");
    }
}
