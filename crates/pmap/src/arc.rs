//! [`PArc`]: an atomically reference-counted pointer whose allocations come
//! from the [`crate::slab`] arena instead of the global allocator.
//!
//! `astree-pmap` only ever uses three capabilities of `std::sync::Arc` —
//! `new`, `clone`, and `ptr_eq` (there is no `get_mut`/`make_mut`/weak
//! anywhere in the tree code) — so a minimal hand-rolled refcount over slab
//! slots is a drop-in replacement. The memory-ordering protocol is the
//! standard `Arc` one: `clone` bumps the count with `Relaxed` (creating a
//! new reference requires already holding one), `drop` decrements with
//! `Release` and the last owner issues an `Acquire` fence before dropping
//! the value, so every thread's writes to the pointee happen-before its
//! destruction.
//!
//! Oversized or over-aligned pointees (beyond what [`crate::slab`] serves)
//! transparently fall back to the global allocator; the choice is made from
//! `Layout::new::<Inner<T>>()` on both the alloc and dealloc side, so the
//! two can never disagree.

use crate::slab;
use std::alloc::Layout;
use std::fmt;
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

struct Inner<T> {
    refcount: AtomicUsize,
    value: T,
}

/// Slab-backed shared pointer; see the module docs.
pub(crate) struct PArc<T> {
    ptr: NonNull<Inner<T>>,
}

unsafe impl<T: Send + Sync> Send for PArc<T> {}
unsafe impl<T: Send + Sync> Sync for PArc<T> {}

impl<T> PArc<T> {
    pub(crate) fn new(value: T) -> PArc<T> {
        let layout = Layout::new::<Inner<T>>();
        let raw: NonNull<Inner<T>> = match slab::class_of(layout) {
            Some(class) => slab::alloc_class(class).cast(),
            None => {
                let p = unsafe { std::alloc::alloc(layout) };
                NonNull::new(p.cast()).unwrap_or_else(|| std::alloc::handle_alloc_error(layout))
            }
        };
        unsafe {
            raw.as_ptr().write(Inner { refcount: AtomicUsize::new(1), value });
        }
        PArc { ptr: raw }
    }

    /// Pointer identity — the backbone of every sharing shortcut.
    #[inline]
    pub(crate) fn ptr_eq(a: &PArc<T>, b: &PArc<T>) -> bool {
        a.ptr == b.ptr
    }

    #[inline]
    fn inner(&self) -> &Inner<T> {
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> Deref for PArc<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner().value
    }
}

impl<T> Clone for PArc<T> {
    #[inline]
    fn clone(&self) -> PArc<T> {
        let old = self.inner().refcount.fetch_add(1, Ordering::Relaxed);
        // Tree heights bound reference counts far below this in practice;
        // abort rather than risk an overflow-induced use-after-free.
        if old > isize::MAX as usize {
            std::process::abort();
        }
        PArc { ptr: self.ptr }
    }
}

impl<T> Drop for PArc<T> {
    fn drop(&mut self) {
        if self.inner().refcount.fetch_sub(1, Ordering::Release) != 1 {
            return;
        }
        fence(Ordering::Acquire);
        unsafe {
            std::ptr::drop_in_place(self.ptr.as_ptr());
            let layout = Layout::new::<Inner<T>>();
            match slab::class_of(layout) {
                Some(class) => slab::free_class(self.ptr.cast(), class),
                None => std::alloc::dealloc(self.ptr.as_ptr().cast(), layout),
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for PArc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        T::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn clone_shares_and_last_drop_frees() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Probe(u64);
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let a = PArc::new(Probe(7));
        let b = a.clone();
        assert!(PArc::ptr_eq(&a, &b));
        assert_eq!(b.0, 7);
        drop(a);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "value alive through clone");
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "last owner drops the value");
    }

    #[test]
    fn cross_thread_drop_is_sound() {
        let a = PArc::new(vec![1u64, 2, 3]);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = a.clone();
                std::thread::spawn(move || c.iter().sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6);
        }
        drop(a);
    }

    #[test]
    fn oversized_pointee_falls_back_to_global_alloc() {
        // 2 KiB pointee exceeds the slab's largest class; exercises the
        // std::alloc path on both sides.
        let big = PArc::new([0u8; 2048]);
        let c = big.clone();
        assert!(PArc::ptr_eq(&big, &c));
        drop(big);
        assert_eq!(c[2047], 0);
    }
}
