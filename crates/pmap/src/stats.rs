//! Thread-local sharing telemetry and the pointer-shortcut kill switch.
//!
//! Every counter is a plain thread-local `Cell` so the persistent-map hot
//! path (node allocation, merge recursion) counts without synchronization;
//! parallel slice workers each accumulate privately and the iterator drains
//! them per slice with [`take_stats`], exactly like the octagon crate's
//! saved-closure counter. The aggregate surfaces as the `pmap` section of
//! the `astree-metrics/1` document.
//!
//! The kill switch ([`set_ptr_shortcuts`]) disables every physical-equality
//! fast path (root and interior subtree skips, identity-preserving merge
//! returns, the no-op-insert return of `self`). Disabling is always
//! semantics-preserving — the combiners the analyzer passes are idempotent
//! (`f(k, v, v) == v`) and the predicates reflexive — so CI can diff
//! alarms/invariants bit-for-bit between the two modes while the allocation
//! counters expose how much work sharing actually saves. Thread-local (not
//! a process global) so concurrently running tests cannot perturb each
//! other; the analysis session propagates the flag into its worker pool.

use std::cell::Cell;

thread_local! {
    static NODES_ALLOCATED: Cell<u64> = const { Cell::new(0) };
    static MERGE_CALLS: Cell<u64> = const { Cell::new(0) };
    static ROOT_SHORTCUT_HITS: Cell<u64> = const { Cell::new(0) };
    static INTERIOR_SHORTCUT_HITS: Cell<u64> = const { Cell::new(0) };
    static IDENTITY_PRESERVED: Cell<u64> = const { Cell::new(0) };
    static NODES_RECYCLED: Cell<u64> = const { Cell::new(0) };
    static SLAB_BYTES_ALLOCATED: Cell<u64> = const { Cell::new(0) };
    static SLAB_BYTES_FREED: Cell<u64> = const { Cell::new(0) };
    static PTR_SHORTCUTS: Cell<bool> = const { Cell::new(true) };
}

/// A drained snapshot of this thread's persistent-map counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PmapStats {
    /// Tree nodes allocated (`Arc<Node>` constructions).
    pub nodes_allocated: u64,
    /// Binary merge entry points (`union_with` / `union_outcome`).
    pub merge_calls: u64,
    /// Merges/walks answered entirely by root physical equality.
    pub root_shortcut_hits: u64,
    /// Shared subtrees skipped inside a merge/walk recursion.
    pub interior_shortcut_hits: u64,
    /// Operations that returned an *input* tree unchanged without the root
    /// shortcut: identity-preserving merges and no-op inserts.
    pub identity_preserved: u64,
    /// Node allocations served from a slab free list instead of fresh
    /// chunk (or global-allocator) memory.
    pub nodes_recycled: u64,
    /// Bytes handed out by the slab (fresh and recycled alike).
    pub slab_bytes_allocated: u64,
    /// Bytes returned to the slab free lists.
    pub slab_bytes_freed: u64,
}

impl PmapStats {
    /// Accumulates `other` into `self` (merging per-thread drains).
    pub fn absorb(&mut self, other: &PmapStats) {
        self.nodes_allocated += other.nodes_allocated;
        self.merge_calls += other.merge_calls;
        self.root_shortcut_hits += other.root_shortcut_hits;
        self.interior_shortcut_hits += other.interior_shortcut_hits;
        self.identity_preserved += other.identity_preserved;
        self.nodes_recycled += other.nodes_recycled;
        self.slab_bytes_allocated += other.slab_bytes_allocated;
        self.slab_bytes_freed += other.slab_bytes_freed;
    }

    /// Approximate live slab bytes over the drained window: allocations
    /// minus frees, clamped at zero (a window can free nodes allocated
    /// before it started — e.g. warm-store state dropped mid-run).
    pub fn bytes_live(&self) -> u64 {
        self.slab_bytes_allocated.saturating_sub(self.slab_bytes_freed)
    }
}

/// Drains this thread's counters, resetting them to zero.
pub fn take_stats() -> PmapStats {
    PmapStats {
        nodes_allocated: NODES_ALLOCATED.with(|c| c.replace(0)),
        merge_calls: MERGE_CALLS.with(|c| c.replace(0)),
        root_shortcut_hits: ROOT_SHORTCUT_HITS.with(|c| c.replace(0)),
        interior_shortcut_hits: INTERIOR_SHORTCUT_HITS.with(|c| c.replace(0)),
        identity_preserved: IDENTITY_PRESERVED.with(|c| c.replace(0)),
        nodes_recycled: NODES_RECYCLED.with(|c| c.replace(0)),
        slab_bytes_allocated: SLAB_BYTES_ALLOCATED.with(|c| c.replace(0)),
        slab_bytes_freed: SLAB_BYTES_FREED.with(|c| c.replace(0)),
    }
}

/// `true` while physical-equality fast paths are enabled on this thread.
pub fn ptr_shortcuts_enabled() -> bool {
    PTR_SHORTCUTS.with(|c| c.get())
}

/// Enables or disables the pointer shortcuts on this thread; returns the
/// previous setting so callers can save/restore around a scope.
pub fn set_ptr_shortcuts(enabled: bool) -> bool {
    PTR_SHORTCUTS.with(|c| c.replace(enabled))
}

pub(crate) fn note_node_alloc() {
    NODES_ALLOCATED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_merge_call() {
    MERGE_CALLS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_root_shortcut() {
    ROOT_SHORTCUT_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_interior_shortcut() {
    INTERIOR_SHORTCUT_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_identity_preserved() {
    IDENTITY_PRESERVED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_node_recycled() {
    NODES_RECYCLED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_slab_alloc(bytes: u64) {
    SLAB_BYTES_ALLOCATED.with(|c| c.set(c.get() + bytes));
}

pub(crate) fn note_slab_free(bytes: u64) {
    SLAB_BYTES_FREED.with(|c| c.set(c.get() + bytes));
}
