//! The persistent AVL map.

use crate::arc::PArc;
use crate::stats;
use std::cmp::Ordering;
use std::fmt;

/// A shared AVL node. Balancing follows the classic OCaml `Map` invariant:
/// sibling heights differ by at most 2.
struct Node<K, V> {
    key: K,
    value: V,
    height: u8,
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<PArc<Node<K, V>>>;

fn height<K, V>(t: &Link<K, V>) -> u8 {
    t.as_ref().map_or(0, |n| n.height)
}

fn size<K, V>(t: &Link<K, V>) -> usize {
    t.as_ref().map_or(0, |n| n.size)
}

/// Builds a node assuming `left` and `right` are already balanced relative to
/// each other (height difference at most 2). The single allocation site for
/// tree nodes, so [`stats::take_stats`] counts every path copy.
fn create<K, V>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    stats::note_node_alloc();
    let height = height(&left).max(height(&right)) + 1;
    let size = size(&left) + size(&right) + 1;
    Some(PArc::new(Node { key, value, height, size, left, right }))
}

/// Rebalances after one insertion/removal: `left` and `right` may differ in
/// height by at most 3.
fn balance<K: Clone, V: Clone>(
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Link<K, V> {
    let hl = height(&left);
    let hr = height(&right);
    if hl > hr + 2 {
        let l = left.as_ref().expect("left higher than right + 2 implies non-empty");
        if height(&l.left) >= height(&l.right) {
            create(
                l.key.clone(),
                l.value.clone(),
                l.left.clone(),
                create(key, value, l.right.clone(), right),
            )
        } else {
            let lr = l.right.as_ref().expect("inner child must exist");
            create(
                lr.key.clone(),
                lr.value.clone(),
                create(l.key.clone(), l.value.clone(), l.left.clone(), lr.left.clone()),
                create(key, value, lr.right.clone(), right),
            )
        }
    } else if hr > hl + 2 {
        let r = right.as_ref().expect("right higher than left + 2 implies non-empty");
        if height(&r.right) >= height(&r.left) {
            create(
                r.key.clone(),
                r.value.clone(),
                create(key, value, left, r.left.clone()),
                r.right.clone(),
            )
        } else {
            let rl = r.left.as_ref().expect("inner child must exist");
            create(
                rl.key.clone(),
                rl.value.clone(),
                create(key, value, left, rl.left.clone()),
                create(r.key.clone(), r.value.clone(), rl.right.clone(), r.right.clone()),
            )
        }
    } else {
        create(key, value, left, right)
    }
}

/// Joins two trees of arbitrary relative height around a middle binding.
/// All keys in `left` must be smaller than `key`, all keys in `right` larger.
fn join<K: Clone, V: Clone>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    let hl = height(&left);
    let hr = height(&right);
    if hl > hr + 2 {
        let l = left.as_ref().expect("non-empty");
        balance(
            l.key.clone(),
            l.value.clone(),
            l.left.clone(),
            join(key, value, l.right.clone(), right),
        )
    } else if hr > hl + 2 {
        let r = right.as_ref().expect("non-empty");
        balance(
            r.key.clone(),
            r.value.clone(),
            join(key, value, left, r.left.clone()),
            r.right.clone(),
        )
    } else {
        create(key, value, left, right)
    }
}

fn min_binding<K, V>(t: &PArc<Node<K, V>>) -> (&K, &V) {
    match &t.left {
        None => (&t.key, &t.value),
        Some(l) => min_binding(l),
    }
}

fn remove_min<K: Clone, V: Clone>(t: &PArc<Node<K, V>>) -> Link<K, V> {
    match &t.left {
        None => t.right.clone(),
        Some(l) => balance(t.key.clone(), t.value.clone(), remove_min(l), t.right.clone()),
    }
}

/// Concatenates two trees of arbitrary relative height with no middle binding.
fn concat<K: Clone + Ord, V: Clone>(left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    match (&left, &right) {
        (None, _) => right,
        (_, None) => left,
        (Some(_), Some(r)) => {
            let (k, v) = min_binding(r);
            let (k, v) = (k.clone(), v.clone());
            join(k, v, left, remove_min(r))
        }
    }
}

// Path-copy audit: `insert_at` copies exactly the root-to-key path (one
// `create`/`balance` per level) and reuses both child `Arc`s at the found
// node, so a value replacement preserves the tree *shape*. That shape
// stability is what keeps environments over a fixed cell layout permanently
// root-aligned, which the merge operations below exploit. Replacing a value
// with an identical one still copies the path — callers that can check value
// identity cheaply should use [`PMap::insert_if_changed`], which returns
// `self` untouched instead.
fn insert_at<K: Clone + Ord, V: Clone>(t: &Link<K, V>, key: K, value: V) -> Link<K, V> {
    match t {
        None => create(key, value, None, None),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Equal => create(key, value, n.left.clone(), n.right.clone()),
            Ordering::Less => balance(
                n.key.clone(),
                n.value.clone(),
                insert_at(&n.left, key, value),
                n.right.clone(),
            ),
            Ordering::Greater => balance(
                n.key.clone(),
                n.value.clone(),
                n.left.clone(),
                insert_at(&n.right, key, value),
            ),
        },
    }
}

// Path-copy audit: removing an absent key allocates nothing — the `removed`
// flag propagates up and every level returns the original `Arc` unchanged.
fn remove_at<K: Clone + Ord, V: Clone>(t: &Link<K, V>, key: &K) -> (Link<K, V>, bool) {
    match t {
        None => (None, false),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Equal => (concat(n.left.clone(), n.right.clone()), true),
            Ordering::Less => {
                let (l, removed) = remove_at(&n.left, key);
                if removed {
                    (balance(n.key.clone(), n.value.clone(), l, n.right.clone()), true)
                } else {
                    (Some(n.clone()), false)
                }
            }
            Ordering::Greater => {
                let (r, removed) = remove_at(&n.right, key);
                if removed {
                    (balance(n.key.clone(), n.value.clone(), n.left.clone(), r), true)
                } else {
                    (Some(n.clone()), false)
                }
            }
        },
    }
}

/// Splits `t` into bindings below `key`, the binding at `key` (if any), and
/// bindings above `key`.
#[allow(clippy::type_complexity)]
fn split<K: Clone + Ord, V: Clone>(t: &Link<K, V>, key: &K) -> (Link<K, V>, Option<V>, Link<K, V>) {
    match t {
        None => (None, None, None),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Equal => (n.left.clone(), Some(n.value.clone()), n.right.clone()),
            Ordering::Less => {
                let (ll, m, lr) = split(&n.left, key);
                (ll, m, join(n.key.clone(), n.value.clone(), lr, n.right.clone()))
            }
            Ordering::Greater => {
                let (rl, m, rr) = split(&n.right, key);
                (join(n.key.clone(), n.value.clone(), n.left.clone(), rl), m, rr)
            }
        },
    }
}

fn links_eq<K, V>(a: &Link<K, V>, b: &Link<K, V>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => PArc::ptr_eq(x, y),
        _ => false,
    }
}

/// `links_eq` gated by the thread's shortcut switch, counting interior hits.
/// Every *semantic-shortcut* use of physical equality inside the bulk
/// operations goes through here, so `debug_no_ptr_shortcuts` turns all of
/// them off at once.
fn shared<K, V>(a: &Link<K, V>, b: &Link<K, V>) -> bool {
    if stats::ptr_shortcuts_enabled() && links_eq(a, b) {
        stats::note_interior_shortcut();
        true
    } else {
        false
    }
}

/// How a combiner wants a binding present on both sides resolved.
///
/// `Left`/`Right` keep the existing value *and its identity*: when every
/// child of a subtree also kept its identity, the merge returns the original
/// `Arc` instead of allocating, which is what lets a stabilized fixpoint
/// iterate stay physically equal to its predecessor. `New` supplies a
/// combined value and always rebuilds the spine node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome<V> {
    /// Keep the left value (and, transitively, the left subtree).
    Left,
    /// Keep the right value (and, transitively, the right subtree).
    Right,
    /// Bind this fresh value.
    New(V),
}

fn union_outcome<K: Clone + Ord, V: Clone>(
    a: &Link<K, V>,
    b: &Link<K, V>,
    f: &mut impl FnMut(&K, &V, &V) -> MergeOutcome<V>,
) -> Link<K, V> {
    if shared(a, b) {
        return a.clone();
    }
    match (a, b) {
        (None, _) => b.clone(),
        (_, None) => a.clone(),
        (Some(an), Some(bn)) => {
            if an.key == bn.key {
                // Aligned roots: both trees partition the key space at the
                // same pivot, so children merge pairwise with no `split`
                // allocations — and identity can be preserved from *either*
                // side. Environments over a fixed cell layout are aligned
                // all the way down (value replacement preserves shape), so
                // this is the analyzer's hot path.
                let left = union_outcome(&an.left, &bn.left, f);
                let right = union_outcome(&an.right, &bn.right, f);
                match f(&an.key, &an.value, &bn.value) {
                    MergeOutcome::Left => {
                        if stats::ptr_shortcuts_enabled()
                            && links_eq(&left, &an.left)
                            && links_eq(&right, &an.right)
                        {
                            return Some(an.clone());
                        }
                        join(an.key.clone(), an.value.clone(), left, right)
                    }
                    MergeOutcome::Right => {
                        if stats::ptr_shortcuts_enabled()
                            && links_eq(&left, &bn.left)
                            && links_eq(&right, &bn.right)
                        {
                            return Some(bn.clone());
                        }
                        join(bn.key.clone(), bn.value.clone(), left, right)
                    }
                    MergeOutcome::New(v) => join(an.key.clone(), v, left, right),
                }
            } else {
                // Misaligned roots: split the right tree around the left
                // pivot. Only left identity is recoverable here (the right
                // tree was taken apart), which is fine — misalignment only
                // arises for maps with differing key sets.
                let (bl, bm, br) = split(b, &an.key);
                let left = union_outcome(&an.left, &bl, f);
                let right = union_outcome(&an.right, &br, f);
                if let Some(bv) = &bm {
                    match f(&an.key, &an.value, bv) {
                        MergeOutcome::Left => {}
                        MergeOutcome::Right => {
                            return join(an.key.clone(), bv.clone(), left, right);
                        }
                        MergeOutcome::New(v) => {
                            return join(an.key.clone(), v, left, right);
                        }
                    }
                }
                // The left value survives (key absent on the right, or the
                // combiner kept it).
                if stats::ptr_shortcuts_enabled()
                    && links_eq(&left, &an.left)
                    && links_eq(&right, &an.right)
                {
                    return Some(an.clone());
                }
                join(an.key.clone(), an.value.clone(), left, right)
            }
        }
    }
}

fn all2_lockstep<K: Ord, V>(
    a: &Link<K, V>,
    b: &Link<K, V>,
    only_a: &mut impl FnMut(&K, &V) -> bool,
    only_b: &mut impl FnMut(&K, &V) -> bool,
    both: &mut impl FnMut(&K, &V, &V) -> bool,
) -> bool {
    // Iterate in lockstep over both trees' in-order sequences.
    let mut ia = Iter::from_link(a);
    let mut ib = Iter::from_link(b);
    let mut na = ia.next();
    let mut nb = ib.next();
    loop {
        match (na, nb) {
            (None, None) => return true,
            (Some((k, v)), None) => {
                if !only_a(k, v) {
                    return false;
                }
                na = ia.next();
                nb = None;
            }
            (None, Some((k, v))) => {
                if !only_b(k, v) {
                    return false;
                }
                na = None;
                nb = ib.next();
            }
            (Some((ka, va)), Some((kb, vb))) => match ka.cmp(kb) {
                Ordering::Less => {
                    if !only_a(ka, va) {
                        return false;
                    }
                    na = ia.next();
                    nb = Some((kb, vb));
                }
                Ordering::Greater => {
                    if !only_b(kb, vb) {
                        return false;
                    }
                    na = Some((ka, va));
                    nb = ib.next();
                }
                Ordering::Equal => {
                    if !both(ka, va, vb) {
                        return false;
                    }
                    na = ia.next();
                    nb = ib.next();
                }
            },
        }
    }
}

fn all2<K: Ord, V>(
    a: &Link<K, V>,
    b: &Link<K, V>,
    only_a: &mut impl FnMut(&K, &V) -> bool,
    only_b: &mut impl FnMut(&K, &V) -> bool,
    both: &mut impl FnMut(&K, &V, &V) -> bool,
) -> bool {
    if shared(a, b) {
        return true;
    }
    match (a, b) {
        (None, None) => true,
        (Some(_), None) => Iter::from_link(a).all(|(k, v)| only_a(k, v)),
        (None, Some(_)) => Iter::from_link(b).all(|(k, v)| only_b(k, v)),
        (Some(an), Some(bn)) => {
            if an.key == bn.key {
                // Aligned roots: recurse so shared subtrees are skipped at
                // *every* level, preserving ascending-key callback order.
                all2(&an.left, &bn.left, only_a, only_b, both)
                    && both(&an.key, &an.value, &bn.value)
                    && all2(&an.right, &bn.right, only_a, only_b, both)
            } else {
                all2_lockstep(a, b, only_a, only_b, both)
            }
        }
    }
}

fn diff2_lockstep<'a, K: Ord, V>(
    a: &'a Link<K, V>,
    b: &'a Link<K, V>,
    f: &mut impl FnMut(&'a K, Option<&'a V>, Option<&'a V>),
) {
    let mut ia = Iter::from_link(a);
    let mut ib = Iter::from_link(b);
    let mut na = ia.next();
    let mut nb = ib.next();
    loop {
        match (na, nb) {
            (None, None) => return,
            (Some((k, v)), None) => {
                f(k, Some(v), None);
                na = ia.next();
                nb = None;
            }
            (None, Some((k, v))) => {
                f(k, None, Some(v));
                na = None;
                nb = ib.next();
            }
            (Some((ka, va)), Some((kb, vb))) => match ka.cmp(kb) {
                Ordering::Less => {
                    f(ka, Some(va), None);
                    na = ia.next();
                    nb = Some((kb, vb));
                }
                Ordering::Greater => {
                    f(kb, None, Some(vb));
                    na = Some((ka, va));
                    nb = ib.next();
                }
                Ordering::Equal => {
                    f(ka, Some(va), Some(vb));
                    na = ia.next();
                    nb = ib.next();
                }
            },
        }
    }
}

fn diff2<'a, K: Ord, V>(
    a: &'a Link<K, V>,
    b: &'a Link<K, V>,
    f: &mut impl FnMut(&'a K, Option<&'a V>, Option<&'a V>),
) {
    if shared(a, b) {
        return;
    }
    match (a, b) {
        (None, None) => {}
        (Some(_), None) => {
            for (k, v) in Iter::from_link(a) {
                f(k, Some(v), None);
            }
        }
        (None, Some(_)) => {
            for (k, v) in Iter::from_link(b) {
                f(k, None, Some(v));
            }
        }
        (Some(an), Some(bn)) => {
            if an.key == bn.key {
                diff2(&an.left, &bn.left, f);
                f(&an.key, Some(&an.value), Some(&bn.value));
                diff2(&an.right, &bn.right, f);
            } else {
                diff2_lockstep(a, b, f);
            }
        }
    }
}

/// An immutable, reference-counted AVL map.
///
/// Cloning is O(1); all "mutating" operations return a new map sharing
/// unmodified subtrees with the original. Bulk binary operations take a
/// physical-equality shortcut on shared subtrees, which is what makes abstract
/// environment joins cheap in the analyzer (paper Sect. 6.1.2).
///
/// # Examples
///
/// ```
/// use astree_pmap::PMap;
/// let m = PMap::new().insert("x", 1).insert("y", 2);
/// assert_eq!(m.get(&"x"), Some(&1));
/// assert_eq!(m.remove(&"x").len(), 1);
/// assert_eq!(m.len(), 2); // the original is untouched
/// ```
pub struct PMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap { root: self.root.clone() }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None }
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of bindings.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Returns `true` if the map holds no binding.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Returns `true` if `self` and `other` are the same physical tree.
    ///
    /// This is a constant-time conservative equality: `true` implies the maps
    /// are equal, `false` implies nothing. Unlike the internal shortcuts this
    /// primitive is *not* disabled by `debug_no_ptr_shortcuts` — callers that
    /// use it as a semantic fast path must gate themselves.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        links_eq(&self.root, &other.root)
    }

    /// Iterates over bindings in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::from_link(&self.root)
    }

    /// Iterates over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Ord, V> PMap<K, V> {
    /// Returns the value bound to `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Equal => return Some(&n.value),
                Ordering::Less => cur = &n.left,
                Ordering::Greater => cur = &n.right,
            }
        }
        None
    }

    /// Returns `true` if `key` is bound.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Walks the whole tree and panics unless every structural invariant
    /// holds: AVL balance (sibling heights differ by at most 2), correct
    /// cached heights and sizes, and strict key ordering within bounds.
    ///
    /// O(n) test support — the property suite runs it after every mutation.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        fn go<K: Ord, V>(t: &Link<K, V>, lo: Option<&K>, hi: Option<&K>) -> u8 {
            match t {
                None => 0,
                Some(n) => {
                    if let Some(lo) = lo {
                        assert!(*lo < n.key, "key below subtree lower bound");
                    }
                    if let Some(hi) = hi {
                        assert!(n.key < *hi, "key above subtree upper bound");
                    }
                    let hl = go(&n.left, lo, Some(&n.key));
                    let hr = go(&n.right, Some(&n.key), hi);
                    assert!(hl.abs_diff(hr) <= 2, "unbalanced node");
                    assert_eq!(n.height, hl.max(hr) + 1, "wrong cached height");
                    assert_eq!(n.size, size(&n.left) + size(&n.right) + 1, "wrong cached size");
                    n.height
                }
            }
        }
        go(&self.root, None, None);
    }
}

impl<K: Clone + Ord, V: Clone> PMap<K, V> {
    /// Returns a map with `key` bound to `value` (replacing any previous
    /// binding).
    #[must_use]
    pub fn insert(&self, key: K, value: V) -> Self {
        PMap { root: insert_at(&self.root, key, value) }
    }

    /// Returns a map with `key` bound to `value`, or `self` physically
    /// unchanged when `key` is already bound to a value for which
    /// `same(old, &value)` holds — the no-op insert then costs one lookup
    /// and zero allocations.
    ///
    /// `same` may be any conservative identity check (`true` implies the
    /// values are interchangeable); bitwise comparisons are ideal. Under
    /// `debug_no_ptr_shortcuts` the fast path is disabled and this behaves
    /// exactly like [`PMap::insert`].
    #[must_use]
    pub fn insert_if_changed(&self, key: K, value: V, same: impl FnOnce(&V, &V) -> bool) -> Self {
        if stats::ptr_shortcuts_enabled() {
            if let Some(old) = self.get(&key) {
                if same(old, &value) {
                    stats::note_identity_preserved();
                    return self.clone();
                }
            }
        }
        self.insert(key, value)
    }

    /// Returns a map without `key`. Returns a clone of `self` if absent.
    #[must_use]
    pub fn remove(&self, key: &K) -> Self {
        PMap { root: remove_at(&self.root, key).0 }
    }

    /// Returns a map where the binding of `key` has been replaced by
    /// `f(current)`; inserts `f(None)` if absent and it returns `Some`.
    #[must_use]
    pub fn update(&self, key: K, f: impl FnOnce(Option<&V>) -> Option<V>) -> Self {
        match f(self.get(&key)) {
            Some(v) => self.insert(key, v),
            None => self.remove(&key),
        }
    }

    /// Merges two maps. For keys present on both sides the values are combined
    /// with `f`; keys present on a single side keep their value.
    ///
    /// Physically shared subtrees are returned unchanged without calling `f`,
    /// so `f` must satisfy `f(k, v, v) == v` for the result to be a correct
    /// pointwise merge — which holds for every lattice join/meet/widening the
    /// analyzer uses (they are idempotent). Because `f` returns a bare value,
    /// this merge cannot tell "combined to the same thing" from "changed" and
    /// always rebuilds spine nodes outside shared regions; combiners that can
    /// classify cheaply should use [`PMap::union_outcome`], which preserves
    /// input identity.
    #[must_use]
    pub fn union_with(&self, other: &Self, mut f: impl FnMut(&K, &V, &V) -> V) -> Self {
        self.union_outcome(other, |k, a, b| MergeOutcome::New(f(k, a, b)))
    }

    /// Merges two maps with an identity-aware combiner.
    ///
    /// Like [`PMap::union_with`], but `f` returns a [`MergeOutcome`] so it
    /// can say "keep the left/right value" without a value-equality bound.
    /// Whenever a subtree's merged children are physically equal to one
    /// input's children and the combiner kept that input's value, the
    /// original `Arc` subtree is returned — so a merge that changes nothing
    /// returns a map `ptr_eq` to its input, restoring sharing that later
    /// joins, inclusion tests, and diffs exploit.
    ///
    /// The same idempotence contract as `union_with` applies: on physically
    /// shared subtrees `f` is never called, so `f(k, v, v)` must keep `v`
    /// (either side) for the two modes of `debug_no_ptr_shortcuts` to agree.
    #[must_use]
    pub fn union_outcome(
        &self,
        other: &Self,
        mut f: impl FnMut(&K, &V, &V) -> MergeOutcome<V>,
    ) -> Self {
        stats::note_merge_call();
        if stats::ptr_shortcuts_enabled() && links_eq(&self.root, &other.root) {
            stats::note_root_shortcut();
            return self.clone();
        }
        let root = union_outcome(&self.root, &other.root, &mut f);
        if stats::ptr_shortcuts_enabled()
            && (links_eq(&root, &self.root) || links_eq(&root, &other.root))
        {
            stats::note_identity_preserved();
        }
        PMap { root }
    }

    /// Returns a map retaining only bindings for which `f` returns `Some`,
    /// with the returned value.
    #[must_use]
    pub fn filter_map(&self, mut f: impl FnMut(&K, &V) -> Option<V>) -> Self {
        let mut out = PMap::new();
        for (k, v) in self.iter() {
            if let Some(v2) = f(k, v) {
                out = out.insert(k.clone(), v2);
            }
        }
        out
    }

    /// Applies `f` to every value, producing a new map with the same keys.
    #[must_use]
    pub fn map_values(&self, mut f: impl FnMut(&K, &V) -> V) -> Self {
        fn go<K: Clone, V: Clone>(t: &Link<K, V>, f: &mut impl FnMut(&K, &V) -> V) -> Link<K, V> {
            t.as_ref().map(|n| {
                stats::note_node_alloc();
                PArc::new(Node {
                    key: n.key.clone(),
                    value: f(&n.key, &n.value),
                    height: n.height,
                    size: n.size,
                    left: go(&n.left, f),
                    right: go(&n.right, f),
                })
            })
        }
        PMap { root: go(&self.root, &mut f) }
    }
}

impl<K: Ord, V> PMap<K, V> {
    /// Checks a pointwise predicate across two maps, in ascending key order.
    ///
    /// `only_a` / `only_b` are applied to bindings present on a single side,
    /// `both` to bindings present on both. Physically shared subtrees are
    /// assumed to satisfy the predicate and skipped at every level of the
    /// walk (not just the root), so `both(k, v, v)` must be `true` — which
    /// holds for the reflexive orderings (`⊑`) the analyzer checks.
    pub fn all2(
        &self,
        other: &Self,
        mut only_a: impl FnMut(&K, &V) -> bool,
        mut only_b: impl FnMut(&K, &V) -> bool,
        mut both: impl FnMut(&K, &V, &V) -> bool,
    ) -> bool {
        if stats::ptr_shortcuts_enabled() && links_eq(&self.root, &other.root) {
            stats::note_root_shortcut();
            return true;
        }
        all2(&self.root, &other.root, &mut only_a, &mut only_b, &mut both)
    }

    /// Visits, in ascending key order, the bindings of the two maps that lie
    /// in non-shared subtrees — bindings differing or present on one side
    /// only, plus any equal-valued bindings whose surrounding spine was path
    /// copied (callers filter by value when they care). Physically shared
    /// regions are skipped wholesale at every level, so the cost is
    /// proportional to the *diff* between the maps, not their size.
    pub fn diff2(&self, other: &Self, mut f: impl FnMut(&K, Option<&V>, Option<&V>)) {
        if stats::ptr_shortcuts_enabled() && links_eq(&self.root, &other.root) {
            stats::note_root_shortcut();
            return;
        }
        diff2(&self.root, &other.root, &mut f)
    }

    /// [`PMap::diff2`] under its historical name.
    pub fn for_each_diff(&self, other: &Self, f: impl FnMut(&K, Option<&V>, Option<&V>)) {
        self.diff2(other, f)
    }

    /// Folds an accumulator over the [`PMap::diff2`] traversal.
    pub fn fold2<A>(
        &self,
        other: &Self,
        init: A,
        mut f: impl FnMut(A, &K, Option<&V>, Option<&V>) -> A,
    ) -> A {
        let mut acc = Some(init);
        self.diff2(other, |k, va, vb| {
            let a = acc.take().expect("fold2 accumulator always present");
            acc = Some(f(a, k, va, vb));
        });
        acc.expect("fold2 accumulator always present")
    }
}

impl<K: Clone + Ord, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = PMap::new();
        for (k, v) in iter {
            m = m.insert(k, v);
        }
        m
    }
}

impl<K: Clone + Ord, V: Clone> Extend<(K, V)> for PMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            *self = self.insert(k, v);
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord, V: PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.all2(other, |_, _| false, |_, _| false, |_, a, b| a == b)
    }
}

impl<K: Ord, V: Eq> Eq for PMap<K, V> {}

impl<'a, K, V> IntoIterator for &'a PMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// In-order iterator over a [`PMap`], produced by [`PMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn from_link(link: &'a Link<K, V>) -> Self {
        let mut it = Iter { stack: Vec::new() };
        it.push_left(link);
        it
    }

    fn push_left(&mut self, mut link: &'a Link<K, V>) {
        while let Some(n) = link {
            self.stack.push(n);
            link = &n.left;
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left(&n.right);
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_avl<K: Ord, V>(t: &Link<K, V>) -> u8 {
        match t {
            None => 0,
            Some(n) => {
                let hl = check_avl(&n.left);
                let hr = check_avl(&n.right);
                assert!(hl.abs_diff(hr) <= 2, "unbalanced node");
                assert_eq!(n.height, hl.max(hr) + 1, "wrong cached height");
                assert_eq!(n.size, size(&n.left) + size(&n.right) + 1, "wrong cached size");
                if let Some(l) = &n.left {
                    assert!(l.key < n.key, "left key out of order");
                }
                if let Some(r) = &n.right {
                    assert!(r.key > n.key, "right key out of order");
                }
                n.height
            }
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut m = PMap::new();
        for i in 0..100 {
            m = m.insert(i * 7 % 101, i);
        }
        check_avl(&m.root);
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&7), Some(&1), "key of i = 1 is 1 * 7 % 101");
        let m2 = m.remove(&7);
        check_avl(&m2.root);
        assert_eq!(m2.len(), 99);
        assert!(m.contains_key(&7), "original unchanged");
    }

    #[test]
    fn insert_replaces() {
        let m = PMap::new().insert(1, "a").insert(1, "b");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1), Some(&"b"));
    }

    #[test]
    fn remove_absent_is_noop() {
        let m = PMap::new().insert(1, 1);
        let m2 = m.remove(&42);
        assert_eq!(m, m2);
        assert!(m.ptr_eq(&m2), "absent-key removal must not copy the path");
    }

    #[test]
    fn insert_if_changed_preserves_identity() {
        let m: PMap<u32, u32> = (0..100).map(|i| (i, i)).collect();
        let same = m.insert_if_changed(7, 7, |a, b| a == b);
        assert!(m.ptr_eq(&same), "no-op insert must return self");
        let changed = m.insert_if_changed(7, 99, |a, b| a == b);
        assert!(!m.ptr_eq(&changed));
        assert_eq!(changed.get(&7), Some(&99));
        let fresh = m.insert_if_changed(1000, 1, |a, b| a == b);
        assert_eq!(fresh.len(), 101);
        check_avl(&fresh.root);
    }

    #[test]
    fn union_prefers_combined() {
        let a: PMap<u32, u32> = (0..50).map(|i| (i, i)).collect();
        let b: PMap<u32, u32> = (25..75).map(|i| (i, 100 + i)).collect();
        let u = a.union_with(&b, |_, x, y| x + y);
        assert_eq!(u.len(), 75);
        assert_eq!(u.get(&10), Some(&10));
        assert_eq!(u.get(&30), Some(&(30 + 130)));
        assert_eq!(u.get(&70), Some(&170));
        check_avl(&u.root);
    }

    #[test]
    fn union_shares_identical_subtrees() {
        use std::cell::Cell;
        let base: PMap<u32, u32> = (0..1000).map(|i| (i, 0)).collect();
        let a = base.insert(10, 1);
        let b = base.insert(990, 2);
        let calls = Cell::new(0u32);
        let u = a.union_with(&b, |_, x, y| {
            calls.set(calls.get() + 1);
            *x.max(y)
        });
        assert_eq!(u.len(), 1000);
        // The combine function must only run on the few bindings whose paths
        // were copied, not on all 1000.
        assert!(calls.get() < 64, "combine ran {} times", calls.get());
    }

    #[test]
    fn union_outcome_preserves_left_identity() {
        let a: PMap<u32, u32> = (0..500).map(|i| (i, i)).collect();
        let b = a.insert(250, 0);
        // A combiner that always keeps the left value: merging any map into
        // `a` this way is a no-op, so the result must be `a` itself.
        let u = a.union_outcome(&b, |_, _, _| MergeOutcome::Left);
        assert!(u.ptr_eq(&a), "identity-preserving merge must return the left input");
        // Symmetrically for the right side.
        let u = b.union_outcome(&a, |_, _, _| MergeOutcome::Right);
        assert!(u.ptr_eq(&a), "identity-preserving merge must return the right input");
    }

    #[test]
    fn union_outcome_rebuilds_only_changed_paths() {
        let a: PMap<u32, u32> = (0..1000).map(|i| (i, i)).collect();
        let b = a.insert(123, 9999);
        let _ = stats::take_stats();
        let u = a.union_outcome(
            &b,
            |_, x, y| {
                if x >= y {
                    MergeOutcome::Left
                } else {
                    MergeOutcome::Right
                }
            },
        );
        let after = stats::take_stats();
        assert_eq!(u.get(&123), Some(&9999));
        assert_eq!(u.len(), 1000);
        check_avl(&u.root);
        // Only the path to key 123 may be rebuilt: O(log n), not O(n).
        assert!(after.nodes_allocated < 32, "allocated {}", after.nodes_allocated);
        assert!(after.interior_shortcut_hits > 0);
    }

    #[test]
    fn union_outcome_misaligned_roots() {
        // Different key sets force the split fallback; results must still be
        // correct and balanced, and a no-op merge keeps left identity.
        let a: PMap<u32, u32> = (0..100).map(|i| (2 * i, i)).collect();
        let b: PMap<u32, u32> = (0..100).map(|i| (2 * i + 1, 1000 + i)).collect();
        let u = a.union_outcome(&b, |_, _, _| MergeOutcome::Left);
        assert_eq!(u.len(), 200);
        assert_eq!(u.get(&4), Some(&2));
        assert_eq!(u.get(&5), Some(&1002));
        check_avl(&u.root);
        let empty = PMap::new();
        let v = a.union_outcome(&empty, |_, _, _| MergeOutcome::Left);
        assert!(v.ptr_eq(&a));
    }

    #[test]
    fn disabled_shortcuts_same_logical_result() {
        let a: PMap<u32, u32> = (0..200).map(|i| (i, i)).collect();
        let b = a.insert(50, 500).insert(150, 1);
        let max = |_: &u32, x: &u32, y: &u32| {
            if x >= y {
                MergeOutcome::Left
            } else {
                MergeOutcome::Right
            }
        };
        let fast = a.union_outcome(&b, max);
        let was = stats::set_ptr_shortcuts(false);
        let slow = a.union_outcome(&b, max);
        let slow_ins = a.insert_if_changed(7, 7, |x, y| x == y);
        stats::set_ptr_shortcuts(was);
        assert_eq!(fast, slow, "shortcut and no-shortcut merges must agree");
        assert!(!slow.ptr_eq(&a) && !slow.ptr_eq(&b), "no identity without shortcuts");
        assert_eq!(slow_ins, a);
        assert!(!slow_ins.ptr_eq(&a), "no-op insert fast path must be off");
        check_avl(&slow.root);
    }

    #[test]
    fn all2_lockstep() {
        let a: PMap<u32, u32> = (0..10).map(|i| (i, i)).collect();
        let b = a.insert(5, 99);
        assert!(!a.all2(&b, |_, _| true, |_, _| true, |_, x, y| x == y));
        assert!(a.all2(&b, |_, _| true, |_, _| true, |k, x, y| *k == 5 || x == y));
        let c = a.remove(&9);
        assert!(!a.all2(&c, |_, _| false, |_, _| true, |_, _, _| true));
    }

    #[test]
    fn all2_skips_shared_interior() {
        use std::cell::Cell;
        let base: PMap<u32, u32> = (0..1000).map(|i| (i, i)).collect();
        let b = base.insert(700, 0);
        let visited = Cell::new(0u32);
        assert!(base.all2(
            &b,
            |_, _| false,
            |_, _| false,
            |_, x, y| {
                visited.set(visited.get() + 1);
                x >= y
            }
        ));
        assert!(visited.get() < 32, "visited {} bindings", visited.get());
    }

    #[test]
    fn diff2_reports_changes_only() {
        let base: PMap<u32, u32> = (0..100).map(|i| (i, 0)).collect();
        let a = base.insert(3, 1);
        let b = base.insert(3, 2).remove(&50);
        let mut diffs = Vec::new();
        a.diff2(&b, |k, va, vb| {
            if va != vb {
                diffs.push((*k, va.copied(), vb.copied()));
            }
        });
        assert!(diffs.contains(&(3, Some(1), Some(2))));
        assert!(diffs.contains(&(50, Some(0), None)));
        assert_eq!(diffs.len(), 2);
    }

    #[test]
    fn diff2_visits_diff_not_size() {
        use std::cell::Cell;
        let base: PMap<u32, u32> = (0..2000).map(|i| (i, 0)).collect();
        let b = base.insert(1234, 7);
        let visited = Cell::new(0u32);
        base.diff2(&b, |_, _, _| visited.set(visited.get() + 1));
        assert!(visited.get() < 48, "visited {} bindings", visited.get());
        // Identical maps: nothing visited at all.
        visited.set(0);
        base.diff2(&base.clone(), |_, _, _| visited.set(visited.get() + 1));
        assert_eq!(visited.get(), 0);
    }

    #[test]
    fn fold2_accumulates() {
        let base: PMap<u32, u32> = (0..100).map(|i| (i, 0)).collect();
        let b = base.insert(10, 1).insert(90, 2);
        let changed = base.fold2(&b, 0u32, |acc, _, va, vb| acc + u32::from(va != vb));
        assert_eq!(changed, 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let m: PMap<i32, i32> = [(5, 0), (1, 0), (9, 0), (3, 0)].into_iter().collect();
        let keys: Vec<i32> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn update_inserts_and_removes() {
        let m: PMap<u32, u32> = PMap::new();
        let m = m.update(1, |v| {
            assert!(v.is_none());
            Some(10)
        });
        assert_eq!(m.get(&1), Some(&10));
        let m = m.update(1, |v| {
            assert_eq!(v, Some(&10));
            None
        });
        assert!(m.is_empty());
    }

    #[test]
    fn map_values_preserves_shape() {
        let m: PMap<u32, u32> = (0..100).map(|i| (i, i)).collect();
        let d = m.map_values(|_, v| v * 2);
        check_avl(&d.root);
        assert_eq!(d.get(&21), Some(&42));
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn stats_count_allocations_and_shortcuts() {
        let _ = stats::take_stats();
        let m: PMap<u32, u32> = (0..10).map(|i| (i, i)).collect();
        let s = stats::take_stats();
        assert!(s.nodes_allocated >= 10, "10 inserts allocate at least 10 nodes");
        let u = m.union_outcome(&m.clone(), |_, _, _| MergeOutcome::Left);
        assert!(u.ptr_eq(&m));
        let s = stats::take_stats();
        assert_eq!(s.merge_calls, 1);
        assert_eq!(s.root_shortcut_hits, 1);
        assert_eq!(s.nodes_allocated, 0);
    }

    #[test]
    fn debug_nonempty() {
        let m: PMap<u32, u32> = PMap::new();
        assert_eq!(format!("{m:?}"), "{}");
        let m = m.insert(1, 2);
        assert_eq!(format!("{m:?}"), "{1: 2}");
    }
}
