//! The persistent AVL map.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A shared AVL node. Balancing follows the classic OCaml `Map` invariant:
/// sibling heights differ by at most 2.
struct Node<K, V> {
    key: K,
    value: V,
    height: u8,
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

fn height<K, V>(t: &Link<K, V>) -> u8 {
    t.as_ref().map_or(0, |n| n.height)
}

fn size<K, V>(t: &Link<K, V>) -> usize {
    t.as_ref().map_or(0, |n| n.size)
}

/// Builds a node assuming `left` and `right` are already balanced relative to
/// each other (height difference at most 2).
fn create<K, V>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    let height = height(&left).max(height(&right)) + 1;
    let size = size(&left) + size(&right) + 1;
    Some(Arc::new(Node { key, value, height, size, left, right }))
}

/// Rebalances after one insertion/removal: `left` and `right` may differ in
/// height by at most 3.
fn balance<K: Clone, V: Clone>(
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Link<K, V> {
    let hl = height(&left);
    let hr = height(&right);
    if hl > hr + 2 {
        let l = left.as_ref().expect("left higher than right + 2 implies non-empty");
        if height(&l.left) >= height(&l.right) {
            create(
                l.key.clone(),
                l.value.clone(),
                l.left.clone(),
                create(key, value, l.right.clone(), right),
            )
        } else {
            let lr = l.right.as_ref().expect("inner child must exist");
            create(
                lr.key.clone(),
                lr.value.clone(),
                create(l.key.clone(), l.value.clone(), l.left.clone(), lr.left.clone()),
                create(key, value, lr.right.clone(), right),
            )
        }
    } else if hr > hl + 2 {
        let r = right.as_ref().expect("right higher than left + 2 implies non-empty");
        if height(&r.right) >= height(&r.left) {
            create(
                r.key.clone(),
                r.value.clone(),
                create(key, value, left, r.left.clone()),
                r.right.clone(),
            )
        } else {
            let rl = r.left.as_ref().expect("inner child must exist");
            create(
                rl.key.clone(),
                rl.value.clone(),
                create(key, value, left, rl.left.clone()),
                create(r.key.clone(), r.value.clone(), rl.right.clone(), r.right.clone()),
            )
        }
    } else {
        create(key, value, left, right)
    }
}

/// Joins two trees of arbitrary relative height around a middle binding.
/// All keys in `left` must be smaller than `key`, all keys in `right` larger.
fn join<K: Clone, V: Clone>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    let hl = height(&left);
    let hr = height(&right);
    if hl > hr + 2 {
        let l = left.as_ref().expect("non-empty");
        balance(
            l.key.clone(),
            l.value.clone(),
            l.left.clone(),
            join(key, value, l.right.clone(), right),
        )
    } else if hr > hl + 2 {
        let r = right.as_ref().expect("non-empty");
        balance(
            r.key.clone(),
            r.value.clone(),
            join(key, value, left, r.left.clone()),
            r.right.clone(),
        )
    } else {
        create(key, value, left, right)
    }
}

fn min_binding<K, V>(t: &Arc<Node<K, V>>) -> (&K, &V) {
    match &t.left {
        None => (&t.key, &t.value),
        Some(l) => min_binding(l),
    }
}

fn remove_min<K: Clone, V: Clone>(t: &Arc<Node<K, V>>) -> Link<K, V> {
    match &t.left {
        None => t.right.clone(),
        Some(l) => {
            balance(t.key.clone(), t.value.clone(), remove_min(l).map(strip), t.right.clone())
        }
    }
}

// `remove_min` may return `None` directly; this identity helper only exists to
// keep the call above readable.
fn strip<K, V>(n: Arc<Node<K, V>>) -> Arc<Node<K, V>> {
    n
}

/// Concatenates two trees of arbitrary relative height with no middle binding.
fn concat<K: Clone + Ord, V: Clone>(left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    match (&left, &right) {
        (None, _) => right,
        (_, None) => left,
        (Some(_), Some(r)) => {
            let (k, v) = min_binding(r);
            let (k, v) = (k.clone(), v.clone());
            join(k, v, left, remove_min(r))
        }
    }
}

fn insert_at<K: Clone + Ord, V: Clone>(t: &Link<K, V>, key: K, value: V) -> Link<K, V> {
    match t {
        None => create(key, value, None, None),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Equal => create(key, value, n.left.clone(), n.right.clone()),
            Ordering::Less => balance(
                n.key.clone(),
                n.value.clone(),
                insert_at(&n.left, key, value),
                n.right.clone(),
            ),
            Ordering::Greater => balance(
                n.key.clone(),
                n.value.clone(),
                n.left.clone(),
                insert_at(&n.right, key, value),
            ),
        },
    }
}

fn remove_at<K: Clone + Ord, V: Clone>(t: &Link<K, V>, key: &K) -> (Link<K, V>, bool) {
    match t {
        None => (None, false),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Equal => (concat(n.left.clone(), n.right.clone()), true),
            Ordering::Less => {
                let (l, removed) = remove_at(&n.left, key);
                if removed {
                    (balance(n.key.clone(), n.value.clone(), l, n.right.clone()), true)
                } else {
                    (Some(n.clone()), false)
                }
            }
            Ordering::Greater => {
                let (r, removed) = remove_at(&n.right, key);
                if removed {
                    (balance(n.key.clone(), n.value.clone(), n.left.clone(), r), true)
                } else {
                    (Some(n.clone()), false)
                }
            }
        },
    }
}

/// Splits `t` into bindings below `key`, the binding at `key` (if any), and
/// bindings above `key`.
#[allow(clippy::type_complexity)]
fn split<K: Clone + Ord, V: Clone>(t: &Link<K, V>, key: &K) -> (Link<K, V>, Option<V>, Link<K, V>) {
    match t {
        None => (None, None, None),
        Some(n) => match key.cmp(&n.key) {
            Ordering::Equal => (n.left.clone(), Some(n.value.clone()), n.right.clone()),
            Ordering::Less => {
                let (ll, m, lr) = split(&n.left, key);
                (ll, m, join(n.key.clone(), n.value.clone(), lr, n.right.clone()))
            }
            Ordering::Greater => {
                let (rl, m, rr) = split(&n.right, key);
                (join(n.key.clone(), n.value.clone(), n.left.clone(), rl), m, rr)
            }
        },
    }
}

fn links_eq<K, V>(a: &Link<K, V>, b: &Link<K, V>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => Arc::ptr_eq(x, y),
        _ => false,
    }
}

fn union_with<K: Clone + Ord, V: Clone>(
    a: &Link<K, V>,
    b: &Link<K, V>,
    f: &mut impl FnMut(&K, &V, &V) -> V,
) -> Link<K, V> {
    if links_eq(a, b) {
        return a.clone();
    }
    match (a, b) {
        (None, _) => b.clone(),
        (_, None) => a.clone(),
        (Some(an), Some(_)) => {
            let (bl, bm, br) = split(b, &an.key);
            let left = union_with(&an.left, &bl, f);
            let right = union_with(&an.right, &br, f);
            let value = match &bm {
                Some(bv) => f(&an.key, &an.value, bv),
                None => an.value.clone(),
            };
            join(an.key.clone(), value, left, right)
        }
    }
}

fn all2<K: Ord, V>(
    a: &Link<K, V>,
    b: &Link<K, V>,
    only_a: &mut impl FnMut(&K, &V) -> bool,
    only_b: &mut impl FnMut(&K, &V) -> bool,
    both: &mut impl FnMut(&K, &V, &V) -> bool,
) -> bool {
    if links_eq(a, b) {
        return true;
    }
    // Iterate in lockstep over both trees' in-order sequences.
    let mut ia = Iter::from_link(a);
    let mut ib = Iter::from_link(b);
    let mut na = ia.next();
    let mut nb = ib.next();
    loop {
        match (na, nb) {
            (None, None) => return true,
            (Some((k, v)), None) => {
                if !only_a(k, v) {
                    return false;
                }
                na = ia.next();
                nb = None;
            }
            (None, Some((k, v))) => {
                if !only_b(k, v) {
                    return false;
                }
                na = None;
                nb = ib.next();
            }
            (Some((ka, va)), Some((kb, vb))) => match ka.cmp(kb) {
                Ordering::Less => {
                    if !only_a(ka, va) {
                        return false;
                    }
                    na = ia.next();
                    nb = Some((kb, vb));
                }
                Ordering::Greater => {
                    if !only_b(kb, vb) {
                        return false;
                    }
                    na = Some((ka, va));
                    nb = ib.next();
                }
                Ordering::Equal => {
                    if !both(ka, va, vb) {
                        return false;
                    }
                    na = ia.next();
                    nb = ib.next();
                }
            },
        }
    }
}

/// An immutable, reference-counted AVL map.
///
/// Cloning is O(1); all "mutating" operations return a new map sharing
/// unmodified subtrees with the original. Bulk binary operations take a
/// physical-equality shortcut on shared subtrees, which is what makes abstract
/// environment joins cheap in the analyzer (paper Sect. 6.1.2).
///
/// # Examples
///
/// ```
/// use astree_pmap::PMap;
/// let m = PMap::new().insert("x", 1).insert("y", 2);
/// assert_eq!(m.get(&"x"), Some(&1));
/// assert_eq!(m.remove(&"x").len(), 1);
/// assert_eq!(m.len(), 2); // the original is untouched
/// ```
pub struct PMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap { root: self.root.clone() }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None }
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of bindings.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Returns `true` if the map holds no binding.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Returns `true` if `self` and `other` are the same physical tree.
    ///
    /// This is a constant-time conservative equality: `true` implies the maps
    /// are equal, `false` implies nothing.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        links_eq(&self.root, &other.root)
    }

    /// Iterates over bindings in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::from_link(&self.root)
    }

    /// Iterates over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Ord, V> PMap<K, V> {
    /// Returns the value bound to `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Equal => return Some(&n.value),
                Ordering::Less => cur = &n.left,
                Ordering::Greater => cur = &n.right,
            }
        }
        None
    }

    /// Returns `true` if `key` is bound.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }
}

impl<K: Clone + Ord, V: Clone> PMap<K, V> {
    /// Returns a map with `key` bound to `value` (replacing any previous
    /// binding).
    #[must_use]
    pub fn insert(&self, key: K, value: V) -> Self {
        PMap { root: insert_at(&self.root, key, value) }
    }

    /// Returns a map without `key`. Returns a clone of `self` if absent.
    #[must_use]
    pub fn remove(&self, key: &K) -> Self {
        PMap { root: remove_at(&self.root, key).0 }
    }

    /// Returns a map where the binding of `key` has been replaced by
    /// `f(current)`; inserts `f(None)` if absent and it returns `Some`.
    #[must_use]
    pub fn update(&self, key: K, f: impl FnOnce(Option<&V>) -> Option<V>) -> Self {
        match f(self.get(&key)) {
            Some(v) => self.insert(key, v),
            None => self.remove(&key),
        }
    }

    /// Merges two maps. For keys present on both sides the values are combined
    /// with `f`; keys present on a single side keep their value.
    ///
    /// Physically shared subtrees are returned unchanged without calling `f`,
    /// so `f` must satisfy `f(k, v, v) == v` for the result to be a correct
    /// pointwise merge — which holds for every lattice join/meet/widening the
    /// analyzer uses (they are idempotent).
    #[must_use]
    pub fn union_with(&self, other: &Self, mut f: impl FnMut(&K, &V, &V) -> V) -> Self {
        PMap { root: union_with(&self.root, &other.root, &mut f) }
    }

    /// Returns a map retaining only bindings for which `f` returns `Some`,
    /// with the returned value.
    #[must_use]
    pub fn filter_map(&self, mut f: impl FnMut(&K, &V) -> Option<V>) -> Self {
        let mut out = PMap::new();
        for (k, v) in self.iter() {
            if let Some(v2) = f(k, v) {
                out = out.insert(k.clone(), v2);
            }
        }
        out
    }

    /// Applies `f` to every value, producing a new map with the same keys.
    #[must_use]
    pub fn map_values(&self, mut f: impl FnMut(&K, &V) -> V) -> Self {
        fn go<K: Clone, V: Clone>(t: &Link<K, V>, f: &mut impl FnMut(&K, &V) -> V) -> Link<K, V> {
            t.as_ref().map(|n| {
                Arc::new(Node {
                    key: n.key.clone(),
                    value: f(&n.key, &n.value),
                    height: n.height,
                    size: n.size,
                    left: go(&n.left, f),
                    right: go(&n.right, f),
                })
            })
        }
        PMap { root: go(&self.root, &mut f) }
    }
}

impl<K: Ord, V> PMap<K, V> {
    /// Checks a pointwise predicate across two maps, in ascending key order.
    ///
    /// `only_a` / `only_b` are applied to bindings present on a single side,
    /// `both` to bindings present on both. Physically shared trees are assumed
    /// to satisfy the predicate (shortcut), so `both(k, v, v)` must be `true`
    /// — which holds for the reflexive orderings (`⊑`) the analyzer checks.
    pub fn all2(
        &self,
        other: &Self,
        mut only_a: impl FnMut(&K, &V) -> bool,
        mut only_b: impl FnMut(&K, &V) -> bool,
        mut both: impl FnMut(&K, &V, &V) -> bool,
    ) -> bool {
        all2(&self.root, &other.root, &mut only_a, &mut only_b, &mut both)
    }

    /// Visits the bindings where the two maps differ (or exist on one side
    /// only), skipping physically shared subtrees.
    pub fn for_each_diff(&self, other: &Self, mut f: impl FnMut(&K, Option<&V>, Option<&V>)) {
        fn go<'a, K: Ord, V>(
            a: &'a Link<K, V>,
            b: &'a Link<K, V>,
            f: &mut impl FnMut(&'a K, Option<&'a V>, Option<&'a V>),
        ) {
            if links_eq(a, b) {
                return;
            }
            let mut ia = Iter::from_link(a);
            let mut ib = Iter::from_link(b);
            let mut na = ia.next();
            let mut nb = ib.next();
            loop {
                match (na, nb) {
                    (None, None) => return,
                    (Some((k, v)), None) => {
                        f(k, Some(v), None);
                        na = ia.next();
                        nb = None;
                    }
                    (None, Some((k, v))) => {
                        f(k, None, Some(v));
                        na = None;
                        nb = ib.next();
                    }
                    (Some((ka, va)), Some((kb, vb))) => match ka.cmp(kb) {
                        Ordering::Less => {
                            f(ka, Some(va), None);
                            na = ia.next();
                            nb = Some((kb, vb));
                        }
                        Ordering::Greater => {
                            f(kb, None, Some(vb));
                            na = Some((ka, va));
                            nb = ib.next();
                        }
                        Ordering::Equal => {
                            f(ka, Some(va), Some(vb));
                            na = ia.next();
                            nb = ib.next();
                        }
                    },
                }
            }
        }
        go(&self.root, &other.root, &mut f)
    }
}

impl<K: Clone + Ord, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = PMap::new();
        for (k, v) in iter {
            m = m.insert(k, v);
        }
        m
    }
}

impl<K: Clone + Ord, V: Clone> Extend<(K, V)> for PMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            *self = self.insert(k, v);
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord, V: PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.all2(other, |_, _| false, |_, _| false, |_, a, b| a == b)
    }
}

impl<K: Ord, V: Eq> Eq for PMap<K, V> {}

impl<'a, K, V> IntoIterator for &'a PMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// In-order iterator over a [`PMap`], produced by [`PMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn from_link(link: &'a Link<K, V>) -> Self {
        let mut it = Iter { stack: Vec::new() };
        it.push_left(link);
        it
    }

    fn push_left(&mut self, mut link: &'a Link<K, V>) {
        while let Some(n) = link {
            self.stack.push(n);
            link = &n.left;
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left(&n.right);
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_avl<K: Ord, V>(t: &Link<K, V>) -> u8 {
        match t {
            None => 0,
            Some(n) => {
                let hl = check_avl(&n.left);
                let hr = check_avl(&n.right);
                assert!(hl.abs_diff(hr) <= 2, "unbalanced node");
                assert_eq!(n.height, hl.max(hr) + 1, "wrong cached height");
                assert_eq!(n.size, size(&n.left) + size(&n.right) + 1, "wrong cached size");
                if let Some(l) = &n.left {
                    assert!(l.key < n.key, "left key out of order");
                }
                if let Some(r) = &n.right {
                    assert!(r.key > n.key, "right key out of order");
                }
                n.height
            }
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut m = PMap::new();
        for i in 0..100 {
            m = m.insert(i * 7 % 101, i);
        }
        check_avl(&m.root);
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&7), Some(&1), "key of i = 1 is 1 * 7 % 101");
        let m2 = m.remove(&7);
        check_avl(&m2.root);
        assert_eq!(m2.len(), 99);
        assert!(m.contains_key(&7), "original unchanged");
    }

    #[test]
    fn insert_replaces() {
        let m = PMap::new().insert(1, "a").insert(1, "b");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1), Some(&"b"));
    }

    #[test]
    fn remove_absent_is_noop() {
        let m = PMap::new().insert(1, 1);
        let m2 = m.remove(&42);
        assert_eq!(m, m2);
    }

    #[test]
    fn union_prefers_combined() {
        let a: PMap<u32, u32> = (0..50).map(|i| (i, i)).collect();
        let b: PMap<u32, u32> = (25..75).map(|i| (i, 100 + i)).collect();
        let u = a.union_with(&b, |_, x, y| x + y);
        assert_eq!(u.len(), 75);
        assert_eq!(u.get(&10), Some(&10));
        assert_eq!(u.get(&30), Some(&(30 + 130)));
        assert_eq!(u.get(&70), Some(&170));
        check_avl(&u.root);
    }

    #[test]
    fn union_shares_identical_subtrees() {
        use std::cell::Cell;
        let base: PMap<u32, u32> = (0..1000).map(|i| (i, 0)).collect();
        let a = base.insert(10, 1);
        let b = base.insert(990, 2);
        let calls = Cell::new(0u32);
        let u = a.union_with(&b, |_, x, y| {
            calls.set(calls.get() + 1);
            *x.max(y)
        });
        assert_eq!(u.len(), 1000);
        // The combine function must only run on the few bindings whose paths
        // were copied, not on all 1000.
        assert!(calls.get() < 64, "combine ran {} times", calls.get());
    }

    #[test]
    fn all2_lockstep() {
        let a: PMap<u32, u32> = (0..10).map(|i| (i, i)).collect();
        let b = a.insert(5, 99);
        assert!(!a.all2(&b, |_, _| true, |_, _| true, |_, x, y| x == y));
        assert!(a.all2(&b, |_, _| true, |_, _| true, |k, x, y| *k == 5 || x == y));
        let c = a.remove(&9);
        assert!(!a.all2(&c, |_, _| false, |_, _| true, |_, _, _| true));
    }

    #[test]
    fn for_each_diff_reports_changes_only() {
        let base: PMap<u32, u32> = (0..100).map(|i| (i, 0)).collect();
        let a = base.insert(3, 1);
        let b = base.insert(3, 2).remove(&50);
        let mut diffs = Vec::new();
        a.for_each_diff(&b, |k, va, vb| {
            if va != vb {
                diffs.push((*k, va.copied(), vb.copied()));
            }
        });
        assert!(diffs.contains(&(3, Some(1), Some(2))));
        assert!(diffs.contains(&(50, Some(0), None)));
        assert_eq!(diffs.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let m: PMap<i32, i32> = [(5, 0), (1, 0), (9, 0), (3, 0)].into_iter().collect();
        let keys: Vec<i32> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn update_inserts_and_removes() {
        let m: PMap<u32, u32> = PMap::new();
        let m = m.update(1, |v| {
            assert!(v.is_none());
            Some(10)
        });
        assert_eq!(m.get(&1), Some(&10));
        let m = m.update(1, |v| {
            assert_eq!(v, Some(&10));
            None
        });
        assert!(m.is_empty());
    }

    #[test]
    fn map_values_preserves_shape() {
        let m: PMap<u32, u32> = (0..100).map(|i| (i, i)).collect();
        let d = m.map_values(|_, v| v * 2);
        check_avl(&d.root);
        assert_eq!(d.get(&21), Some(&42));
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn debug_nonempty() {
        let m: PMap<u32, u32> = PMap::new();
        assert_eq!(format!("{m:?}"), "{}");
        let m = m.insert(1, 2);
        assert_eq!(format!("{m:?}"), "{1: 2}");
    }
}
