//! Persistent balanced maps and sets with structural sharing.
//!
//! The PLDI 2003 analyzer (Sect. 6.1.2) stores abstract environments in
//! functional maps implemented as sharable balanced binary trees, with
//! short-cut evaluation when joining physically identical subtrees. This crate
//! provides that substrate: an immutable AVL map ([`PMap`]) whose nodes are
//! reference-counted and whose bulk operations ([`PMap::union_with`],
//! [`PMap::all2`], …) skip shared subtrees in constant time, so the cost of a
//! join between two environments derived from a common ancestor is
//! proportional to the number of *differing* bindings rather than to the total
//! environment size. Nodes live in a size-classed slab arena ([`mod@slab`])
//! behind a minimal refcounted pointer, with dropped nodes recycled through
//! free lists — [`PmapStats::nodes_recycled`] and the `slab_bytes_*` counters
//! quantify the allocator traffic this removes from the hot path.
//!
//! # Examples
//!
//! ```
//! use astree_pmap::PMap;
//!
//! let base: PMap<u32, i64> = (0..1000).map(|k| (k, 0)).collect();
//! let left = base.insert(3, 1);
//! let right = base.insert(997, 2);
//! // The union visits only the two modified paths, not all 1000 bindings.
//! let joined = left.union_with(&right, |_, a, b| *a.max(b));
//! assert_eq!(joined.get(&3), Some(&1));
//! assert_eq!(joined.get(&997), Some(&2));
//! assert_eq!(joined.len(), 1000);
//! ```

mod arc;
mod map;
mod set;
mod slab;
mod stats;

pub use map::{Iter, MergeOutcome, PMap};
pub use set::PSet;
pub use stats::{ptr_shortcuts_enabled, set_ptr_shortcuts, take_stats, PmapStats};
