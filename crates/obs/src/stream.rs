//! Streaming JSONL event sink.
//!
//! The in-memory [`Collector`](crate::Collector) aggregates everything and
//! renders one document at the end — fine for a single analysis, but a long
//! `batch` fleet run wants telemetry on disk *while it runs* and without
//! unbounded memory. [`StreamSink`] writes one JSON object per line
//! (`astree-events/1`) as events arrive; [`Fanout`] tees events to several
//! recorders so a run can stream to disk *and* keep the aggregate document.
//!
//! Volume note: the per-operation [`Recorder::domain_op`] hook can fire
//! millions of times per analysis, so the stream deliberately skips it and
//! carries the batched [`Recorder::domain_op_n`] reports instead; exact
//! per-op aggregates stay available in the in-memory document.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::{
    events, AlarmEvent, BatchJobEvent, CacheCounters, FleetCounters, LoopDoneEvent, LoopIterEvent,
    PoolCounters, Recorder, SliceEvent,
};

/// The schema identifier on the first line of every event stream.
pub const EVENT_SCHEMA: &str = "astree-events/1";

/// A recorder that appends one JSON line per event to a file.
pub struct StreamSink {
    out: Mutex<BufWriter<File>>,
}

impl StreamSink {
    /// Creates (truncating) `path` and writes the schema header line.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<StreamSink> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "{}", Json::obj([("schema", Json::str(EVENT_SCHEMA))]).to_compact())?;
        Ok(StreamSink { out: Mutex::new(out) })
    }

    fn write(&self, record: &Json) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{}", record.to_compact());
    }

    /// Flushes buffered lines to the file.
    pub fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Recorder for StreamSink {
    fn enabled(&self) -> bool {
        true
    }

    fn loop_iter(&self, e: &LoopIterEvent) {
        self.write(&events::loop_iter(e));
    }

    fn loop_done(&self, e: &LoopDoneEvent) {
        self.write(&events::loop_done(e));
    }

    fn unroll(&self, func: &str, loop_id: u32, factor: u32) {
        self.write(&events::unroll(func, loop_id, factor));
    }

    fn partitions(&self, func: &str, live: u64) {
        self.write(&events::partitions(func, live));
    }

    fn domain_op_n(&self, domain: &'static str, op: &'static str, count: u64, nanos: u64) {
        if count == 0 {
            return;
        }
        self.write(&events::domain_op_n(domain, op, count, nanos));
    }

    fn phase_time(&self, phase: &'static str, nanos: u64) {
        self.write(&events::phase_time(phase, nanos));
    }

    fn alarm(&self, e: &AlarmEvent) {
        self.write(&events::alarm(e));
    }

    fn slice(&self, e: &SliceEvent) {
        self.write(&events::slice(e));
    }

    fn merge(&self, stage: u64, slices: usize, nanos: u64) {
        self.write(&events::merge(stage, slices, nanos));
    }

    fn fallback(&self, reason: &'static str) {
        self.write(&events::fallback(reason));
    }

    fn pool(&self, p: &PoolCounters) {
        self.write(&events::pool(p));
        self.flush();
    }

    fn batch_job(&self, e: &BatchJobEvent) {
        self.write(&events::batch_job(e));
        // A finished job is a durability point for fleet runs.
        self.flush();
    }

    fn cache(&self, c: &CacheCounters) {
        self.write(&events::cache(c));
        self.flush();
    }

    fn fleet(&self, c: &FleetCounters) {
        self.write(&events::fleet(c));
        self.flush();
    }
}

/// Tees every event to a list of recorders, so one run can stream JSONL to
/// disk while the in-memory collector keeps the aggregate document.
pub struct Fanout {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Fanout {
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Fanout {
        Fanout { sinks }
    }
}

macro_rules! fan {
    ($self:ident, $($call:tt)+) => {
        for s in &$self.sinks {
            s.$($call)+;
        }
    };
}

impl Recorder for Fanout {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn tracing(&self) -> bool {
        self.sinks.iter().any(|s| s.tracing())
    }

    fn loop_iter(&self, e: &LoopIterEvent) {
        fan!(self, loop_iter(e));
    }

    fn loop_done(&self, e: &LoopDoneEvent) {
        fan!(self, loop_done(e));
    }

    fn unroll(&self, func: &str, loop_id: u32, factor: u32) {
        fan!(self, unroll(func, loop_id, factor));
    }

    fn partitions(&self, func: &str, live: u64) {
        fan!(self, partitions(func, live));
    }

    fn domain_op(&self, domain: &'static str, op: &'static str, nanos: u64) {
        fan!(self, domain_op(domain, op, nanos));
    }

    fn domain_op_n(&self, domain: &'static str, op: &'static str, count: u64, nanos: u64) {
        fan!(self, domain_op_n(domain, op, count, nanos));
    }

    fn phase_time(&self, phase: &'static str, nanos: u64) {
        fan!(self, phase_time(phase, nanos));
    }

    fn alarm(&self, e: &AlarmEvent) {
        fan!(self, alarm(e));
    }

    fn slice(&self, e: &SliceEvent) {
        fan!(self, slice(e));
    }

    fn merge(&self, stage: u64, slices: usize, nanos: u64) {
        fan!(self, merge(stage, slices, nanos));
    }

    fn fallback(&self, reason: &'static str) {
        fan!(self, fallback(reason));
    }

    fn pool(&self, p: &PoolCounters) {
        fan!(self, pool(p));
    }

    fn batch_job(&self, e: &BatchJobEvent) {
        fan!(self, batch_job(e));
    }

    fn cache(&self, c: &CacheCounters) {
        fan!(self, cache(c));
    }

    fn fleet(&self, c: &FleetCounters) {
        fan!(self, fleet(c));
    }

    fn trace(&self, line: &str) {
        fan!(self, trace(line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Phase};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("astree-obs-stream-{}-{name}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn stream_writes_header_and_events() {
        let path = tmp("basic");
        {
            let sink = StreamSink::create(&path).unwrap();
            sink.loop_iter(&LoopIterEvent {
                func: "main",
                loop_id: 1,
                iteration: 1,
                phase: Phase::Widen,
                unstable_cells: 3,
                threshold_hits: 1,
                infinity_escapes: 0,
            });
            sink.slice(&SliceEvent { stage: 1, index: 0, stmts: 4, nanos: 10 });
            sink.fallback("slice_shape");
            sink.pool(&PoolCounters {
                workers: 4,
                tasks: 9,
                steals: 2,
                max_queue_depth: 3,
                busy_nanos: vec![1, 2, 3, 4],
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains(EVENT_SCHEMA));
        assert!(
            lines[1].contains("\"ev\": \"loop_iter\"") || lines[1].contains("\"ev\":\"loop_iter\"")
        );
        assert!(lines[3].contains("slice_shape"));
        assert!(lines[4].contains("\"steals\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn high_volume_domain_op_is_not_streamed() {
        let path = tmp("volume");
        {
            let sink = StreamSink::create(&path).unwrap();
            for _ in 0..1000 {
                sink.domain_op("octagon", "closure", 5);
            }
            sink.domain_op_n("octagon", "closure_saved", 1000, 0);
            sink.domain_op_n("octagon", "closure_saved", 0, 0);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "header + one batched report");
        assert!(text.contains("closure_saved"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fanout_feeds_every_sink() {
        let path = tmp("fanout");
        let collector = Arc::new(Collector::new());
        let sink = Arc::new(StreamSink::create(&path).unwrap());
        let tee = Fanout::new(vec![collector.clone() as Arc<dyn Recorder>, sink.clone()]);
        assert!(tee.enabled());
        tee.merge(1, 3, 42);
        tee.fallback("worker_panic");
        sink.flush();
        let m = collector.snapshot();
        assert_eq!(m.scheduler.stages, 1);
        assert_eq!(m.scheduler.fallbacks["worker_panic"], 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"merge\""));
        assert!(text.contains("worker_panic"));
        std::fs::remove_file(&path).ok();
    }
}
