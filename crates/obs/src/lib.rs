//! `astree-obs` — structured analysis telemetry.
//!
//! The analyzer's iterator is heavily parametrized (widening thresholds,
//! delayed widening, unrolling, trace partitioning, parallel slicing); this
//! crate makes its behavior observable without perturbing it. The design
//! follows the tuning workflow of Monniaux's parallel-Astrée report: record
//! *where* iterations are spent, *which* strategy fired, and *why* the
//! scheduler fell back, then read it all from one JSON document.
//!
//! Two implementations of [`Recorder`] exist:
//!
//! - [`NullRecorder`]: every hook is an empty default method and
//!   [`Recorder::enabled`] is `false`, so instrumented call sites guard with
//!   one cached boolean and the hot path stays untouched;
//! - [`Collector`]: aggregates events into a [`Metrics`] document behind a
//!   mutex and optionally keeps a human-readable per-iteration trace.
//!
//! The JSON schema (`astree-metrics/1`) is documented field by field in the
//! repository's `DESIGN.md`.

pub mod events;
pub mod json;
pub mod stream;

pub use json::Json;
pub use stream::{Fanout, StreamSink, EVENT_SCHEMA};

use std::collections::BTreeMap;
use std::sync::Mutex;

/// The schema identifier emitted at the top of every metrics document.
pub const SCHEMA: &str = "astree-metrics/1";

/// Fixpoint phase of one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Plain-union iteration (delayed widening / stabilization grace).
    Union,
    /// Widening with thresholds.
    Widen,
    /// Threshold-free widening after the hard iteration cap.
    WidenTop,
    /// Decreasing (narrowing) iteration.
    Narrow,
}

impl Phase {
    /// Stable lower-case name used in traces and the JSON document.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Union => "union",
            Phase::Widen => "widen",
            Phase::WidenTop => "widen-top",
            Phase::Narrow => "narrow",
        }
    }
}

/// One fixpoint iteration on one loop.
#[derive(Debug, Clone)]
pub struct LoopIterEvent<'a> {
    /// Enclosing function name.
    pub func: &'a str,
    /// Loop id (stable across runs).
    pub loop_id: u32,
    /// 1-based iteration number within this loop's fixpoint computation.
    pub iteration: u64,
    /// What the iteration did.
    pub phase: Phase,
    /// Environment cells still unstable at this iteration.
    pub unstable_cells: u64,
    /// Bounds that were widened onto a finite threshold this iteration.
    pub threshold_hits: u64,
    /// Bounds that escaped past every threshold to ±∞ this iteration.
    pub infinity_escapes: u64,
}

/// Emitted once per loop when its fixpoint computation finishes.
#[derive(Debug, Clone)]
pub struct LoopDoneEvent<'a> {
    /// Enclosing function name.
    pub func: &'a str,
    /// Loop id.
    pub loop_id: u32,
    /// Total iterations spent (unions + widenings + narrowings).
    pub iterations: u64,
    /// Iteration at which the invariant stabilized (before narrowing).
    pub stabilized_at: u64,
}

/// One alarm, with provenance: where it fired, which domain's check failed,
/// and in which loop context it stabilized.
#[derive(Debug, Clone)]
pub struct AlarmEvent<'a> {
    /// Enclosing function name.
    pub func: &'a str,
    /// Statement id.
    pub stmt: u32,
    /// Source line.
    pub line: u32,
    /// Alarm kind slug (e.g. `div_by_zero`).
    pub kind: &'a str,
    /// The base domain whose check could not prove the operation safe.
    pub domain: &'static str,
    /// Statement context (pretty-printed expression).
    pub context: &'a str,
    /// Innermost loop the alarm was found under, if any.
    pub loop_id: Option<u32>,
    /// Checking-phase iteration at which the alarm surfaced (unroll passes
    /// count from 1; the post-fixpoint invariant replay comes after them).
    pub iteration: Option<u64>,
}

/// One parallel slice of a sliced stage.
#[derive(Debug, Clone)]
pub struct SliceEvent {
    /// Stage sequence number (per analysis, 1-based).
    pub stage: u64,
    /// Slice index within the stage.
    pub index: usize,
    /// Statements in the slice.
    pub stmts: usize,
    /// Wall time of the slice.
    pub nanos: u64,
}

/// One finished batch job.
#[derive(Debug, Clone)]
pub struct BatchJobEvent<'a> {
    /// Job name.
    pub name: &'a str,
    /// `done`, `failed`, `panicked` or `timed-out`.
    pub status: &'a str,
    /// Failure detail, when any.
    pub reason: Option<&'a str>,
    /// Wall time the job occupied a worker.
    pub wall_nanos: u64,
    /// Worker index that ran the job.
    pub worker: usize,
    /// Alarm count, when the job completed.
    pub alarms: Option<u64>,
}

/// Invariant-cache counters for one analysis run.
///
/// Emitted once per run by the analysis session when a cache store is
/// attached; the [`Collector`] sums runs field-wise, so a batch over a shared
/// store reports fleet-wide totals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Whole-program entries replayed verbatim (warm runs).
    pub full_hits: u64,
    /// Runs that found no whole-program entry.
    pub misses: u64,
    /// Functions whose stored loop invariants were installed as seeds.
    pub seeded_functions: u64,
    /// Functions with no usable stored invariants (stale or never seen).
    pub invalidated_functions: u64,
    /// Loop invariants reused after a one-pass soundness check.
    pub loops_replayed: u64,
    /// Loop invariants recomputed by fixpoint iteration.
    pub loops_solved: u64,
    /// Loops warm-started from a per-loop or cross-member seed (the
    /// function's closure fingerprint missed, but a finer-grained stored
    /// invariant verified as a post-fixpoint).
    pub loops_seeded: u64,
    /// Loops warm-started specifically from a *cross-member* (portable,
    /// channel-canonicalized) seed; a subset of `loops_seeded`.
    pub seed_hits: u64,
    /// Cache files evicted to keep the store under its size bound.
    pub evictions: u64,
    /// Cache files rejected as corrupt or truncated (clean cold fallback).
    pub corrupt_files: u64,
    /// Bytes read from cache files.
    pub bytes_read: u64,
    /// Bytes written to cache files.
    pub bytes_written: u64,
    /// Wall time spent decoding and replaying stored results.
    pub replay_nanos: u64,
    /// Estimated analysis time avoided (stored cold time minus replay time).
    pub saved_nanos: u64,
}

impl CacheCounters {
    /// Field-wise sum.
    pub fn add(&mut self, o: &CacheCounters) {
        self.full_hits += o.full_hits;
        self.misses += o.misses;
        self.seeded_functions += o.seeded_functions;
        self.invalidated_functions += o.invalidated_functions;
        self.loops_replayed += o.loops_replayed;
        self.loops_solved += o.loops_solved;
        self.loops_seeded += o.loops_seeded;
        self.seed_hits += o.seed_hits;
        self.evictions += o.evictions;
        self.corrupt_files += o.corrupt_files;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.replay_nanos += o.replay_nanos;
        self.saved_nanos += o.saved_nanos;
    }

    /// Field-wise saturating difference (`self` at a later time minus an
    /// earlier snapshot of the same cumulative counters).
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            full_hits: self.full_hits.saturating_sub(earlier.full_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            seeded_functions: self.seeded_functions.saturating_sub(earlier.seeded_functions),
            invalidated_functions: self
                .invalidated_functions
                .saturating_sub(earlier.invalidated_functions),
            loops_replayed: self.loops_replayed.saturating_sub(earlier.loops_replayed),
            loops_solved: self.loops_solved.saturating_sub(earlier.loops_solved),
            loops_seeded: self.loops_seeded.saturating_sub(earlier.loops_seeded),
            seed_hits: self.seed_hits.saturating_sub(earlier.seed_hits),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            corrupt_files: self.corrupt_files.saturating_sub(earlier.corrupt_files),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            replay_nanos: self.replay_nanos.saturating_sub(earlier.replay_nanos),
            saved_nanos: self.saved_nanos.saturating_sub(earlier.saved_nanos),
        }
    }
}

/// Persistent-map sharing counters for one analysis run.
///
/// Emitted once per run by the analysis session; the totals cover the main
/// thread and every worker slice (per-thread counters are drained once per
/// slice and summed at the merge). The [`Collector`] sums runs field-wise.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PmapCounters {
    /// Tree nodes allocated (every path copy and rebalance).
    pub nodes_allocated: u64,
    /// Binary merge operations started (`union_with` / `union_outcome`).
    pub merge_calls: u64,
    /// Merges answered entirely at the root by pointer equality.
    pub root_shortcut_hits: u64,
    /// Shared subtrees skipped inside merges and diff traversals.
    pub interior_shortcut_hits: u64,
    /// Public operations that returned an input physically unchanged
    /// (no-op inserts, merges whose result is one of the operands).
    pub identity_preserved: u64,
    /// Node allocations served from the slab allocator's free lists
    /// instead of fresh chunk memory.
    pub nodes_recycled: u64,
    /// Bytes handed out by the node slab (fresh and recycled alike).
    pub slab_bytes_allocated: u64,
    /// Bytes returned to the node slab's free lists.
    pub slab_bytes_freed: u64,
}

impl PmapCounters {
    /// Field-wise sum.
    pub fn add(&mut self, o: &PmapCounters) {
        self.nodes_allocated += o.nodes_allocated;
        self.merge_calls += o.merge_calls;
        self.root_shortcut_hits += o.root_shortcut_hits;
        self.interior_shortcut_hits += o.interior_shortcut_hits;
        self.identity_preserved += o.identity_preserved;
        self.nodes_recycled += o.nodes_recycled;
        self.slab_bytes_allocated += o.slab_bytes_allocated;
        self.slab_bytes_freed += o.slab_bytes_freed;
    }

    /// Approximate live slab bytes over the recorded window (allocations
    /// minus frees, clamped at zero).
    pub fn bytes_live(&self) -> u64 {
        self.slab_bytes_allocated.saturating_sub(self.slab_bytes_freed)
    }
}

/// Work-stealing pool counters for one analysis run.
///
/// Emitted once per run by the analysis session when a worker pool was
/// active; the [`Collector`] keeps the last report (the pool's counters
/// are cumulative over the session).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolCounters {
    /// Logical workers (pool threads + the participating caller).
    pub workers: u64,
    /// Tasks pushed onto the deques over the session.
    pub tasks: u64,
    /// Tasks taken from a deque other than the claiming worker's own.
    pub steals: u64,
    /// Deepest any single deque ever got.
    pub max_queue_depth: u64,
    /// Per-worker nanoseconds spent executing tasks (index 0 = caller).
    pub busy_nanos: Vec<u64>,
}

/// Per-worker counters of one fleet run (one entry per coordinator lane).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FleetWorkerCounters {
    /// Jobs this worker completed.
    pub jobs: u64,
    /// Jobs this worker took from another worker's queue.
    pub steals: u64,
    /// Wall time the worker spent executing jobs.
    pub busy_nanos: u64,
    /// Exponentially-weighted moving average of this lane's job service
    /// time, in nanoseconds (0 until the lane completes its first job).
    /// Drives the latency-aware scatter.
    pub ewma_nanos: u64,
}

/// Process-fleet coordinator counters for one fleet run.
///
/// Emitted once per run by the fleet session; the [`Collector`] keeps the
/// last report (the counters are cumulative over the run).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FleetCounters {
    /// Worker lanes (processes, or in-process threads when `processes` is
    /// `false`).
    pub workers: u64,
    /// `true` when jobs were scattered to worker *processes*; `false` for
    /// the in-process executor.
    pub processes: bool,
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs taken from a queue other than the executing worker's own.
    pub steals: u64,
    /// Jobs re-scattered after their worker died mid-job.
    pub resent: u64,
    /// Worker processes that died mid-job (crash or lost connection).
    pub crashes: u64,
    /// Jobs killed for exceeding the per-job timeout.
    pub timeouts: u64,
    /// Dead local worker processes replaced with a fresh child.
    pub respawns: u64,
    /// Jobs answered verbatim by the shared invariant store.
    pub store_full_hits: u64,
    /// `store_get` requests served to remote workers syncing cache files
    /// over the wire.
    pub store_gets: u64,
    /// `store_put` uploads accepted from remote workers.
    pub store_puts: u64,
    /// Cross-member (portable) seed verifications across all jobs.
    pub seed_hits: u64,
    /// Per-loop and cross-member warm starts across all jobs.
    pub loops_seeded: u64,
    /// Per-worker breakdown, indexed by lane.
    pub per_worker: Vec<FleetWorkerCounters>,
}

/// Daemon-lifetime counters for the resident `astree serve` service.
///
/// Unlike the per-run counters above these describe the *service*, not an
/// analysis: they are cumulative from daemon start and are reported through
/// `status` responses rather than the [`Recorder`] hooks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests received (admitted or rejected).
    pub requests: u64,
    /// Requests that ran to completion and returned a `result` frame.
    pub completed: u64,
    /// Requests rejected with `overloaded` by the admission gate.
    pub rejected_overloaded: u64,
    /// Requests that failed with `bad_request` (malformed frame or program).
    pub bad_requests: u64,
    /// Requests whose analysis panicked (isolated; daemon kept serving).
    pub panicked: u64,
    /// Event frames streamed to clients.
    pub events_streamed: u64,
    /// High-water mark of concurrently admitted requests.
    pub max_inflight_seen: u64,
}

impl ServeCounters {
    /// Field-wise sum.
    pub fn add(&mut self, o: &ServeCounters) {
        self.requests += o.requests;
        self.completed += o.completed;
        self.rejected_overloaded += o.rejected_overloaded;
        self.bad_requests += o.bad_requests;
        self.panicked += o.panicked;
        self.events_streamed += o.events_streamed;
        self.max_inflight_seen = self.max_inflight_seen.max(o.max_inflight_seen);
    }

    /// Renders the counters as a JSON object (used in `status` responses).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::UInt(self.requests)),
            ("completed", Json::UInt(self.completed)),
            ("rejected_overloaded", Json::UInt(self.rejected_overloaded)),
            ("bad_requests", Json::UInt(self.bad_requests)),
            ("panicked", Json::UInt(self.panicked)),
            ("events_streamed", Json::UInt(self.events_streamed)),
            ("max_inflight_seen", Json::UInt(self.max_inflight_seen)),
        ])
    }
}

/// The telemetry sink threaded through the analysis pipeline.
///
/// Every hook has an empty default body, so implementations opt into the
/// events they care about and the no-op recorder costs one virtual call at
/// most — and instrumented sites are expected to cache [`Recorder::enabled`]
/// and skip event construction entirely when it is `false`.
pub trait Recorder: Send + Sync {
    /// `true` when events should be recorded at all.
    fn enabled(&self) -> bool {
        false
    }

    /// `true` when per-iteration human-readable tracing is on.
    fn tracing(&self) -> bool {
        false
    }

    /// One fixpoint iteration on a loop.
    fn loop_iter(&self, _e: &LoopIterEvent) {}

    /// A loop's fixpoint computation finished.
    fn loop_done(&self, _e: &LoopDoneEvent) {}

    /// Semantic unrolling applied to a loop.
    fn unroll(&self, _func: &str, _loop_id: u32, _factor: u32) {}

    /// Trace-partition fan-out observed in a function.
    fn partitions(&self, _func: &str, _live: u64) {}

    /// One timed domain operation.
    fn domain_op(&self, _domain: &'static str, _op: &'static str, _nanos: u64) {}

    /// A batched domain-operation report: `count` applications of `op`
    /// totalling `nanos`, accumulated off the hot path (e.g. per-thread
    /// saved-closure counters drained once per slice).
    fn domain_op_n(&self, _domain: &'static str, _op: &'static str, _count: u64, _nanos: u64) {}

    /// Wall time of a whole analysis phase (`iterate` / `check`).
    fn phase_time(&self, _phase: &'static str, _nanos: u64) {}

    /// An alarm was recorded (first report of its (statement, kind) pair).
    fn alarm(&self, _e: &AlarmEvent) {}

    /// A parallel slice completed.
    fn slice(&self, _e: &SliceEvent) {}

    /// A sliced stage's ordered overlay merge completed.
    fn merge(&self, _stage: u64, _slices: usize, _nanos: u64) {}

    /// A stage fell back to sequential execution.
    fn fallback(&self, _reason: &'static str) {}

    /// Work-stealing pool counters for the run (emitted once per run when
    /// a pool was active).
    fn pool(&self, _p: &PoolCounters) {}

    /// A batch job finished.
    fn batch_job(&self, _e: &BatchJobEvent) {}

    /// Fleet coordinator counters for one fleet run (emitted once per run
    /// by the fleet session).
    fn fleet(&self, _c: &FleetCounters) {}

    /// Invariant-cache counters for one analysis run (emitted once per run
    /// when a cache store is attached to the session).
    fn cache(&self, _c: &CacheCounters) {}

    /// Persistent-map sharing counters for one analysis run (emitted once
    /// per run by the analysis session).
    fn pmap(&self, _c: &PmapCounters) {}

    /// Octagon pack sizes (variable count per discovered pack), emitted
    /// once per run right after pack discovery. Feeds the pack-size
    /// histogram that backs the small-pack kernel dispatch policy.
    fn pack_sizes(&self, _sizes: &[usize]) {}

    /// Free-form trace line (only meaningful when [`Recorder::tracing`]).
    fn trace(&self, _line: &str) {}
}

/// The no-op recorder: the default everywhere, adds no observable cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// A shared no-op instance for call sites needing a `&'static dyn Recorder`.
pub static NULL: NullRecorder = NullRecorder;

// ---------------------------------------------------------------------------
// Aggregated metrics model
// ---------------------------------------------------------------------------

/// Per-loop fixpoint counters.
#[derive(Debug, Default, Clone)]
pub struct LoopMetrics {
    /// Total fixpoint iterations.
    pub iterations: u64,
    /// Plain-union iterations (delayed widening).
    pub union_iterations: u64,
    /// Widening applications (including threshold-free ones).
    pub widenings: u64,
    /// Narrowing applications.
    pub narrowings: u64,
    /// Bounds caught by a finite widening threshold.
    pub threshold_hits: u64,
    /// Bounds that escaped to ±∞.
    pub infinity_escapes: u64,
    /// Semantic unrolling factor applied.
    pub unroll_factor: u32,
    /// Iteration at which the invariant stabilized.
    pub stabilized_at: u64,
}

/// Per-function counters.
#[derive(Debug, Default, Clone)]
pub struct FunctionMetrics {
    /// Peak simultaneously-live trace partitions observed.
    pub peak_partitions: u64,
    /// Loops solved within the function, by loop id.
    pub loops: BTreeMap<u32, LoopMetrics>,
}

/// Count and wall time of one domain operation.
#[derive(Debug, Default, Clone)]
pub struct OpMetrics {
    /// Number of applications.
    pub count: u64,
    /// Total wall time.
    pub nanos: u64,
}

/// One recorded alarm with provenance (owned mirror of [`AlarmEvent`]).
#[derive(Debug, Clone)]
pub struct AlarmRecord {
    /// Enclosing function name.
    pub func: String,
    /// Statement id.
    pub stmt: u32,
    /// Source line.
    pub line: u32,
    /// Alarm kind slug.
    pub kind: String,
    /// Responsible base domain.
    pub domain: &'static str,
    /// Statement context.
    pub context: String,
    /// Innermost loop, if any.
    pub loop_id: Option<u32>,
    /// Checking-phase iteration.
    pub iteration: Option<u64>,
}

/// One recorded slice (owned mirror of [`SliceEvent`]).
#[derive(Debug, Clone)]
pub struct SliceRecord {
    /// Stage sequence number.
    pub stage: u64,
    /// Slice index within the stage.
    pub index: usize,
    /// Statements in the slice.
    pub stmts: usize,
    /// Wall time.
    pub nanos: u64,
}

/// One recorded batch job (owned mirror of [`BatchJobEvent`]).
#[derive(Debug, Clone)]
pub struct BatchJobRecord {
    /// Job name.
    pub name: String,
    /// Completion status.
    pub status: String,
    /// Failure detail.
    pub reason: Option<String>,
    /// Wall time.
    pub wall_nanos: u64,
    /// Worker index.
    pub worker: usize,
    /// Alarm count.
    pub alarms: Option<u64>,
}

/// Scheduler-side counters (parallel slicing + batch execution).
#[derive(Debug, Default, Clone)]
pub struct SchedulerMetrics {
    /// Sliced stages executed.
    pub stages: u64,
    /// Per-slice timings.
    pub slices: Vec<SliceRecord>,
    /// Ordered overlay merges performed.
    pub merges: u64,
    /// Total merge wall time.
    pub merge_nanos: u64,
    /// Fallback-to-sequential reasons, with occurrence counts.
    pub fallbacks: BTreeMap<&'static str, u64>,
    /// Batch job outcomes.
    pub batch_jobs: Vec<BatchJobRecord>,
    /// Work-stealing pool counters (absent when no pool ran).
    pub pool: Option<PoolCounters>,
}

/// The full aggregated metrics document.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Per-function fixpoint counters.
    pub functions: BTreeMap<String, FunctionMetrics>,
    /// Per-domain operation counts and wall times.
    pub domains: BTreeMap<&'static str, BTreeMap<&'static str, OpMetrics>>,
    /// Analysis phase wall times.
    pub phases: BTreeMap<&'static str, u64>,
    /// Alarms with provenance, in report order.
    pub alarms: Vec<AlarmRecord>,
    /// Scheduler counters.
    pub scheduler: SchedulerMetrics,
    /// Invariant-cache counters, summed across recorded runs.
    pub cache: CacheCounters,
    /// Persistent-map sharing counters, summed across recorded runs.
    pub pmap: PmapCounters,
    /// Octagon pack-size histogram (variables per pack → pack count),
    /// summed across recorded runs. The mass at 2–3 variables is what
    /// justifies the specialized small-pack closure kernels.
    pub pack_size_histogram: BTreeMap<usize, u64>,
    /// Fleet coordinator counters (absent when no fleet ran; the last
    /// reported run wins).
    pub fleet: Option<FleetCounters>,
}

impl Metrics {
    /// Renders the document in the `astree-metrics/1` schema.
    pub fn to_json(&self) -> Json {
        let functions = Json::Obj(
            self.functions
                .iter()
                .map(|(name, f)| {
                    let loops = Json::Obj(
                        f.loops
                            .iter()
                            .map(|(id, l)| {
                                (
                                    id.to_string(),
                                    Json::obj([
                                        ("iterations", Json::UInt(l.iterations)),
                                        ("union_iterations", Json::UInt(l.union_iterations)),
                                        ("widenings", Json::UInt(l.widenings)),
                                        ("narrowings", Json::UInt(l.narrowings)),
                                        ("threshold_hits", Json::UInt(l.threshold_hits)),
                                        ("infinity_escapes", Json::UInt(l.infinity_escapes)),
                                        ("unroll_factor", Json::UInt(l.unroll_factor as u64)),
                                        ("stabilized_at", Json::UInt(l.stabilized_at)),
                                    ]),
                                )
                            })
                            .collect(),
                    );
                    (
                        name.clone(),
                        Json::obj([
                            ("peak_partitions", Json::UInt(f.peak_partitions)),
                            ("loops", loops),
                        ]),
                    )
                })
                .collect(),
        );
        let domains = Json::Obj(
            self.domains
                .iter()
                .map(|(domain, ops)| {
                    (
                        domain.to_string(),
                        Json::Obj(
                            ops.iter()
                                .map(|(op, m)| {
                                    (
                                        op.to_string(),
                                        Json::obj([
                                            ("count", Json::UInt(m.count)),
                                            ("nanos", Json::UInt(m.nanos)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let phases =
            Json::Obj(self.phases.iter().map(|(p, n)| (p.to_string(), Json::UInt(*n))).collect());
        let alarms = Json::Arr(
            self.alarms
                .iter()
                .map(|a| {
                    Json::obj([
                        ("func", Json::str(&a.func)),
                        ("stmt", Json::UInt(a.stmt as u64)),
                        ("line", Json::UInt(a.line as u64)),
                        ("kind", Json::str(&a.kind)),
                        ("domain", Json::str(a.domain)),
                        ("context", Json::str(&a.context)),
                        ("loop", a.loop_id.map_or(Json::Null, |l| Json::UInt(l as u64))),
                        ("iteration", a.iteration.map_or(Json::Null, Json::UInt)),
                    ])
                })
                .collect(),
        );
        let s = &self.scheduler;
        let scheduler = Json::obj([
            ("stages", Json::UInt(s.stages)),
            (
                "slices",
                Json::Arr(
                    s.slices
                        .iter()
                        .map(|sl| {
                            Json::obj([
                                ("stage", Json::UInt(sl.stage)),
                                ("index", Json::UInt(sl.index as u64)),
                                ("stmts", Json::UInt(sl.stmts as u64)),
                                ("nanos", Json::UInt(sl.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("merges", Json::UInt(s.merges)),
            ("merge_nanos", Json::UInt(s.merge_nanos)),
            (
                "fallbacks",
                Json::Obj(
                    s.fallbacks.iter().map(|(r, n)| (r.to_string(), Json::UInt(*n))).collect(),
                ),
            ),
            (
                "batch_jobs",
                Json::Arr(
                    s.batch_jobs
                        .iter()
                        .map(|j| {
                            Json::obj([
                                ("name", Json::str(&j.name)),
                                ("status", Json::str(&j.status)),
                                ("reason", j.reason.as_deref().map_or(Json::Null, Json::str)),
                                ("wall_nanos", Json::UInt(j.wall_nanos)),
                                ("worker", Json::UInt(j.worker as u64)),
                                ("alarms", j.alarms.map_or(Json::Null, Json::UInt)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pool",
                s.pool.as_ref().map_or(Json::Null, |p| {
                    Json::obj([
                        ("workers", Json::UInt(p.workers)),
                        ("tasks", Json::UInt(p.tasks)),
                        ("steals", Json::UInt(p.steals)),
                        ("max_queue_depth", Json::UInt(p.max_queue_depth)),
                        (
                            "busy_nanos",
                            Json::Arr(p.busy_nanos.iter().map(|&n| Json::UInt(n)).collect()),
                        ),
                    ])
                }),
            ),
        ]);
        let c = &self.cache;
        let cache = Json::obj([
            ("full_hits", Json::UInt(c.full_hits)),
            ("misses", Json::UInt(c.misses)),
            ("seeded_functions", Json::UInt(c.seeded_functions)),
            ("invalidated_functions", Json::UInt(c.invalidated_functions)),
            ("loops_replayed", Json::UInt(c.loops_replayed)),
            ("loops_solved", Json::UInt(c.loops_solved)),
            ("loops_seeded", Json::UInt(c.loops_seeded)),
            ("seed_hits", Json::UInt(c.seed_hits)),
            ("evictions", Json::UInt(c.evictions)),
            ("corrupt_files", Json::UInt(c.corrupt_files)),
            ("bytes_read", Json::UInt(c.bytes_read)),
            ("bytes_written", Json::UInt(c.bytes_written)),
            ("replay_nanos", Json::UInt(c.replay_nanos)),
            ("saved_nanos", Json::UInt(c.saved_nanos)),
        ]);
        let p = &self.pmap;
        let pmap = Json::obj([
            ("nodes_allocated", Json::UInt(p.nodes_allocated)),
            ("merge_calls", Json::UInt(p.merge_calls)),
            ("root_shortcut_hits", Json::UInt(p.root_shortcut_hits)),
            ("interior_shortcut_hits", Json::UInt(p.interior_shortcut_hits)),
            ("identity_preserved", Json::UInt(p.identity_preserved)),
            ("nodes_recycled", Json::UInt(p.nodes_recycled)),
            ("slab_bytes_allocated", Json::UInt(p.slab_bytes_allocated)),
            ("slab_bytes_freed", Json::UInt(p.slab_bytes_freed)),
            ("bytes_live", Json::UInt(p.bytes_live())),
        ]);
        let packs = Json::obj([(
            "octagon_size_histogram",
            Json::Obj(
                self.pack_size_histogram
                    .iter()
                    .map(|(size, count)| (size.to_string(), Json::UInt(*count)))
                    .collect(),
            ),
        )]);
        let fleet = self.fleet.as_ref().map_or(Json::Null, |f| {
            Json::obj([
                ("workers", Json::UInt(f.workers)),
                ("processes", Json::Bool(f.processes)),
                ("jobs", Json::UInt(f.jobs)),
                ("steals", Json::UInt(f.steals)),
                ("resent", Json::UInt(f.resent)),
                ("crashes", Json::UInt(f.crashes)),
                ("timeouts", Json::UInt(f.timeouts)),
                ("respawns", Json::UInt(f.respawns)),
                ("store_full_hits", Json::UInt(f.store_full_hits)),
                ("store_gets", Json::UInt(f.store_gets)),
                ("store_puts", Json::UInt(f.store_puts)),
                ("seed_hits", Json::UInt(f.seed_hits)),
                ("loops_seeded", Json::UInt(f.loops_seeded)),
                (
                    "per_worker",
                    Json::Arr(
                        f.per_worker
                            .iter()
                            .map(|w| {
                                Json::obj([
                                    ("jobs", Json::UInt(w.jobs)),
                                    ("steals", Json::UInt(w.steals)),
                                    ("busy_nanos", Json::UInt(w.busy_nanos)),
                                    ("ewma_nanos", Json::UInt(w.ewma_nanos)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        });
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("functions", functions),
            ("domains", domains),
            ("phases", phases),
            ("alarms", alarms),
            ("scheduler", scheduler),
            ("cache", cache),
            ("pmap", pmap),
            ("packs", packs),
            ("fleet", fleet),
        ])
    }
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// The collecting recorder: aggregates every event into a [`Metrics`]
/// document and, when tracing, keeps the human-readable iteration log.
///
/// The single mutex is deliberate: telemetry runs are diagnostic runs, and
/// the per-event cost (one short critical section) is negligible next to the
/// abstract operations being measured.
#[derive(Debug, Default)]
pub struct Collector {
    metrics: Mutex<Metrics>,
    trace_on: bool,
    trace_lines: Mutex<Vec<String>>,
}

impl Collector {
    /// A collector without tracing.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// A collector that also records the per-iteration trace log.
    pub fn with_trace() -> Collector {
        Collector { trace_on: true, ..Collector::default() }
    }

    /// A copy of the aggregated metrics so far.
    pub fn snapshot(&self) -> Metrics {
        self.metrics.lock().expect("collector poisoned").clone()
    }

    /// Drains the trace log.
    pub fn take_trace(&self) -> Vec<String> {
        std::mem::take(&mut *self.trace_lines.lock().expect("collector poisoned"))
    }

    /// Renders the aggregated metrics as the `astree-metrics/1` document.
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }

    fn push_trace(&self, line: String) {
        self.trace_lines.lock().expect("collector poisoned").push(line);
    }
}

impl Recorder for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn tracing(&self) -> bool {
        self.trace_on
    }

    fn loop_iter(&self, e: &LoopIterEvent) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            let l = m
                .functions
                .entry(e.func.to_string())
                .or_default()
                .loops
                .entry(e.loop_id)
                .or_default();
            l.iterations += 1;
            match e.phase {
                Phase::Union => l.union_iterations += 1,
                Phase::Widen | Phase::WidenTop => l.widenings += 1,
                Phase::Narrow => l.narrowings += 1,
            }
            l.threshold_hits += e.threshold_hits;
            l.infinity_escapes += e.infinity_escapes;
        }
        if self.trace_on {
            self.push_trace(format!(
                "[{}] loop {} iter {:>3} {:<9} unstable={} hits={} escapes={}",
                e.func,
                e.loop_id,
                e.iteration,
                e.phase.as_str(),
                e.unstable_cells,
                e.threshold_hits,
                e.infinity_escapes,
            ));
        }
    }

    fn loop_done(&self, e: &LoopDoneEvent) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            let l = m
                .functions
                .entry(e.func.to_string())
                .or_default()
                .loops
                .entry(e.loop_id)
                .or_default();
            l.stabilized_at = e.stabilized_at;
        }
        if self.trace_on {
            self.push_trace(format!(
                "[{}] loop {} stable after {} iteration(s) ({} total)",
                e.func, e.loop_id, e.stabilized_at, e.iterations,
            ));
        }
    }

    fn unroll(&self, func: &str, loop_id: u32, factor: u32) {
        let mut m = self.metrics.lock().expect("collector poisoned");
        m.functions
            .entry(func.to_string())
            .or_default()
            .loops
            .entry(loop_id)
            .or_default()
            .unroll_factor = factor;
    }

    fn partitions(&self, func: &str, live: u64) {
        let mut m = self.metrics.lock().expect("collector poisoned");
        let f = m.functions.entry(func.to_string()).or_default();
        f.peak_partitions = f.peak_partitions.max(live);
    }

    fn domain_op(&self, domain: &'static str, op: &'static str, nanos: u64) {
        let mut m = self.metrics.lock().expect("collector poisoned");
        let e = m.domains.entry(domain).or_default().entry(op).or_default();
        e.count += 1;
        e.nanos += nanos;
    }

    fn domain_op_n(&self, domain: &'static str, op: &'static str, count: u64, nanos: u64) {
        if count == 0 {
            return;
        }
        let mut m = self.metrics.lock().expect("collector poisoned");
        let e = m.domains.entry(domain).or_default().entry(op).or_default();
        e.count += count;
        e.nanos += nanos;
    }

    fn phase_time(&self, phase: &'static str, nanos: u64) {
        let mut m = self.metrics.lock().expect("collector poisoned");
        *m.phases.entry(phase).or_insert(0) += nanos;
    }

    fn alarm(&self, e: &AlarmEvent) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            m.alarms.push(AlarmRecord {
                func: e.func.to_string(),
                stmt: e.stmt,
                line: e.line,
                kind: e.kind.to_string(),
                domain: e.domain,
                context: e.context.to_string(),
                loop_id: e.loop_id,
                iteration: e.iteration,
            });
        }
        if self.trace_on {
            self.push_trace(format!(
                "[{}] alarm {} at line {} ({}): {}",
                e.func, e.kind, e.line, e.domain, e.context,
            ));
        }
    }

    fn slice(&self, e: &SliceEvent) {
        let mut m = self.metrics.lock().expect("collector poisoned");
        m.scheduler.slices.push(SliceRecord {
            stage: e.stage,
            index: e.index,
            stmts: e.stmts,
            nanos: e.nanos,
        });
    }

    fn merge(&self, _stage: u64, slices: usize, nanos: u64) {
        let mut m = self.metrics.lock().expect("collector poisoned");
        m.scheduler.stages += 1;
        m.scheduler.merges += slices as u64;
        m.scheduler.merge_nanos += nanos;
    }

    fn fallback(&self, reason: &'static str) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            *m.scheduler.fallbacks.entry(reason).or_insert(0) += 1;
        }
        if self.trace_on {
            self.push_trace(format!("scheduler: sequential fallback ({reason})"));
        }
    }

    fn pool(&self, p: &PoolCounters) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            m.scheduler.pool = Some(p.clone());
        }
        if self.trace_on {
            self.push_trace(format!(
                "pool: workers={} tasks={} steals={} max_depth={}",
                p.workers, p.tasks, p.steals, p.max_queue_depth,
            ));
        }
    }

    fn batch_job(&self, e: &BatchJobEvent) {
        let mut m = self.metrics.lock().expect("collector poisoned");
        m.scheduler.batch_jobs.push(BatchJobRecord {
            name: e.name.to_string(),
            status: e.status.to_string(),
            reason: e.reason.map(|s| s.to_string()),
            wall_nanos: e.wall_nanos,
            worker: e.worker,
            alarms: e.alarms,
        });
    }

    fn cache(&self, c: &CacheCounters) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            m.cache.add(c);
        }
        if self.trace_on {
            self.push_trace(format!(
                "cache: full_hits={} misses={} seeded={} replayed={} solved={} loop_seeded={} \
                 seed_hits={} evictions={} corrupt={}",
                c.full_hits,
                c.misses,
                c.seeded_functions,
                c.loops_replayed,
                c.loops_solved,
                c.loops_seeded,
                c.seed_hits,
                c.evictions,
                c.corrupt_files,
            ));
        }
    }

    fn pmap(&self, c: &PmapCounters) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            m.pmap.add(c);
        }
        if self.trace_on {
            self.push_trace(format!(
                "pmap: allocated={} recycled={} merges={} root_hits={} interior_hits={} \
                 identity={} bytes_live={}",
                c.nodes_allocated,
                c.nodes_recycled,
                c.merge_calls,
                c.root_shortcut_hits,
                c.interior_shortcut_hits,
                c.identity_preserved,
                c.bytes_live(),
            ));
        }
    }

    fn pack_sizes(&self, sizes: &[usize]) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            for &s in sizes {
                *m.pack_size_histogram.entry(s).or_insert(0) += 1;
            }
        }
        if self.trace_on {
            self.push_trace(format!("packs: octagon_sizes={sizes:?}"));
        }
    }

    fn fleet(&self, c: &FleetCounters) {
        {
            let mut m = self.metrics.lock().expect("collector poisoned");
            m.fleet = Some(c.clone());
        }
        if self.trace_on {
            self.push_trace(format!(
                "fleet: workers={} jobs={} steals={} resent={} crashes={} store_hits={} \
                 store_gets={} store_puts={} seed_hits={}",
                c.workers,
                c.jobs,
                c.steals,
                c.resent,
                c.crashes,
                c.store_full_hits,
                c.store_gets,
                c.store_puts,
                c.seed_hits,
            ));
        }
    }

    fn trace(&self, line: &str) {
        if self.trace_on {
            self.push_trace(line.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder.enabled());
        assert!(!NULL.tracing());
        // All hooks are no-ops and must not panic.
        NULL.loop_iter(&LoopIterEvent {
            func: "main",
            loop_id: 0,
            iteration: 1,
            phase: Phase::Union,
            unstable_cells: 0,
            threshold_hits: 0,
            infinity_escapes: 0,
        });
        NULL.fallback("worker_panic");
    }

    #[test]
    fn collector_aggregates_loop_counters() {
        let c = Collector::new();
        for (i, phase) in
            [Phase::Union, Phase::Union, Phase::Widen, Phase::Narrow].into_iter().enumerate()
        {
            c.loop_iter(&LoopIterEvent {
                func: "main",
                loop_id: 3,
                iteration: i as u64 + 1,
                phase,
                unstable_cells: 2,
                threshold_hits: u64::from(phase == Phase::Widen),
                infinity_escapes: 0,
            });
        }
        c.loop_done(&LoopDoneEvent { func: "main", loop_id: 3, iterations: 4, stabilized_at: 3 });
        c.unroll("main", 3, 2);
        let m = c.snapshot();
        let l = &m.functions["main"].loops[&3];
        assert_eq!(l.iterations, 4);
        assert_eq!(l.union_iterations, 2);
        assert_eq!(l.widenings, 1);
        assert_eq!(l.narrowings, 1);
        assert_eq!(l.threshold_hits, 1);
        assert_eq!(l.stabilized_at, 3);
        assert_eq!(l.unroll_factor, 2);
    }

    #[test]
    fn collector_aggregates_domain_and_scheduler_events() {
        let c = Collector::new();
        c.domain_op("octagon", "closure", 10);
        c.domain_op("octagon", "closure", 5);
        c.domain_op("state", "widen", 7);
        c.slice(&SliceEvent { stage: 1, index: 0, stmts: 8, nanos: 100 });
        c.merge(1, 2, 50);
        c.fallback("worker_panic");
        c.fallback("worker_panic");
        c.phase_time("iterate", 1000);
        let m = c.snapshot();
        assert_eq!(m.domains["octagon"]["closure"].count, 2);
        assert_eq!(m.domains["octagon"]["closure"].nanos, 15);
        assert_eq!(m.domains["state"]["widen"].count, 1);
        assert_eq!(m.scheduler.slices.len(), 1);
        assert_eq!(m.scheduler.stages, 1);
        assert_eq!(m.scheduler.fallbacks["worker_panic"], 2);
        assert_eq!(m.phases["iterate"], 1000);
    }

    #[test]
    fn trace_lines_are_kept_only_when_tracing() {
        let quiet = Collector::new();
        quiet.trace("hidden");
        assert!(quiet.take_trace().is_empty());
        let loud = Collector::with_trace();
        loud.trace("shown");
        loud.fallback("slice_shape");
        let lines = loud.take_trace();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("slice_shape"));
    }

    #[test]
    fn json_document_matches_schema() {
        let c = Collector::new();
        c.loop_iter(&LoopIterEvent {
            func: "main",
            loop_id: 0,
            iteration: 1,
            phase: Phase::Widen,
            unstable_cells: 1,
            threshold_hits: 1,
            infinity_escapes: 0,
        });
        c.alarm(&AlarmEvent {
            func: "main",
            stmt: 7,
            line: 12,
            kind: "div_by_zero",
            domain: "int_interval",
            context: "x / y",
            loop_id: Some(0),
            iteration: Some(1),
        });
        c.batch_job(&BatchJobEvent {
            name: "gen-1",
            status: "done",
            reason: None,
            wall_nanos: 5,
            worker: 0,
            alarms: Some(1),
        });
        c.cache(&CacheCounters { full_hits: 1, saved_nanos: 500, ..CacheCounters::default() });
        c.pmap(&PmapCounters {
            nodes_allocated: 10,
            identity_preserved: 3,
            nodes_recycled: 4,
            slab_bytes_allocated: 640,
            slab_bytes_freed: 128,
            ..Default::default()
        });
        c.pack_sizes(&[2, 2, 3, 2]);
        c.fleet(&FleetCounters {
            workers: 2,
            processes: true,
            jobs: 3,
            steals: 1,
            per_worker: vec![FleetWorkerCounters {
                jobs: 2,
                steals: 1,
                busy_nanos: 9,
                ewma_nanos: 5,
            }],
            ..FleetCounters::default()
        });
        let j = c.to_json();
        assert_eq!(j.get("schema"), Some(&Json::str(SCHEMA)));
        for key in [
            "functions",
            "domains",
            "phases",
            "alarms",
            "scheduler",
            "cache",
            "pmap",
            "packs",
            "fleet",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let rendered = j.to_string();
        assert!(rendered.contains("\"div_by_zero\""));
        assert!(rendered.contains("\"batch_jobs\""));
        assert!(rendered.contains("\"store_full_hits\""));
        assert!(rendered.contains("\"nodes_recycled\": 4"));
        assert!(rendered.contains("\"bytes_live\": 512"));
        // Histogram: three packs of 2 variables, one of 3.
        assert!(rendered.contains("\"octagon_size_histogram\""));
        assert!(rendered.contains("\"2\": 3"));
        assert!(rendered.contains("\"3\": 1"));
        // The document round-trips through a strict JSON reader shape: no
        // trailing commas, balanced braces.
        assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
    }
}
