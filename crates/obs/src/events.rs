//! `astree-events/1` record builders.
//!
//! One function per recorder hook, each returning the JSON object that
//! represents the event on the wire (the `ev` tag plus the event's fields).
//! [`crate::StreamSink`] writes these records as JSONL to a file; the
//! `serve` daemon wraps the *same* records into `astree-serve/1` frames to
//! stream them back to a client — one builder, every transport.

use crate::json::Json;
use crate::{
    AlarmEvent, BatchJobEvent, CacheCounters, FleetCounters, LoopDoneEvent, LoopIterEvent,
    PoolCounters, SliceEvent,
};

fn record(ev: &'static str, fields: Vec<(&'static str, Json)>) -> Json {
    let mut pairs = vec![("ev", Json::str(ev))];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// One fixpoint iteration on a loop.
pub fn loop_iter(e: &LoopIterEvent) -> Json {
    record(
        "loop_iter",
        vec![
            ("func", Json::str(e.func)),
            ("loop", Json::UInt(e.loop_id as u64)),
            ("iteration", Json::UInt(e.iteration)),
            ("phase", Json::str(e.phase.as_str())),
            ("unstable_cells", Json::UInt(e.unstable_cells)),
            ("threshold_hits", Json::UInt(e.threshold_hits)),
            ("infinity_escapes", Json::UInt(e.infinity_escapes)),
        ],
    )
}

/// A loop's fixpoint computation finished.
pub fn loop_done(e: &LoopDoneEvent) -> Json {
    record(
        "loop_done",
        vec![
            ("func", Json::str(e.func)),
            ("loop", Json::UInt(e.loop_id as u64)),
            ("iterations", Json::UInt(e.iterations)),
            ("stabilized_at", Json::UInt(e.stabilized_at)),
        ],
    )
}

/// Semantic unrolling applied to a loop.
pub fn unroll(func: &str, loop_id: u32, factor: u32) -> Json {
    record(
        "unroll",
        vec![
            ("func", Json::str(func)),
            ("loop", Json::UInt(loop_id as u64)),
            ("factor", Json::UInt(factor as u64)),
        ],
    )
}

/// Trace-partition fan-out observed in a function.
pub fn partitions(func: &str, live: u64) -> Json {
    record("partitions", vec![("func", Json::str(func)), ("live", Json::UInt(live))])
}

/// A batched domain-operation report.
pub fn domain_op_n(domain: &'static str, op: &'static str, count: u64, nanos: u64) -> Json {
    record(
        "domain_op",
        vec![
            ("domain", Json::str(domain)),
            ("op", Json::str(op)),
            ("count", Json::UInt(count)),
            ("nanos", Json::UInt(nanos)),
        ],
    )
}

/// Wall time of a whole analysis phase.
pub fn phase_time(phase: &'static str, nanos: u64) -> Json {
    record("phase", vec![("phase", Json::str(phase)), ("nanos", Json::UInt(nanos))])
}

/// An alarm was recorded.
pub fn alarm(e: &AlarmEvent) -> Json {
    record(
        "alarm",
        vec![
            ("func", Json::str(e.func)),
            ("stmt", Json::UInt(e.stmt as u64)),
            ("line", Json::UInt(e.line as u64)),
            ("kind", Json::str(e.kind)),
            ("domain", Json::str(e.domain)),
            ("context", Json::str(e.context)),
            ("loop", e.loop_id.map_or(Json::Null, |l| Json::UInt(l as u64))),
            ("iteration", e.iteration.map_or(Json::Null, Json::UInt)),
        ],
    )
}

/// A parallel slice completed.
pub fn slice(e: &SliceEvent) -> Json {
    record(
        "slice",
        vec![
            ("stage", Json::UInt(e.stage)),
            ("index", Json::UInt(e.index as u64)),
            ("stmts", Json::UInt(e.stmts as u64)),
            ("nanos", Json::UInt(e.nanos)),
        ],
    )
}

/// A sliced stage's ordered overlay merge completed.
pub fn merge(stage: u64, slices: usize, nanos: u64) -> Json {
    record(
        "merge",
        vec![
            ("stage", Json::UInt(stage)),
            ("slices", Json::UInt(slices as u64)),
            ("nanos", Json::UInt(nanos)),
        ],
    )
}

/// A stage fell back to sequential execution.
pub fn fallback(reason: &'static str) -> Json {
    record("fallback", vec![("reason", Json::str(reason))])
}

/// Work-stealing pool counters for a run.
pub fn pool(p: &PoolCounters) -> Json {
    record(
        "pool",
        vec![
            ("workers", Json::UInt(p.workers)),
            ("tasks", Json::UInt(p.tasks)),
            ("steals", Json::UInt(p.steals)),
            ("max_queue_depth", Json::UInt(p.max_queue_depth)),
            ("busy_nanos", Json::Arr(p.busy_nanos.iter().map(|&n| Json::UInt(n)).collect())),
        ],
    )
}

/// A batch job finished.
pub fn batch_job(e: &BatchJobEvent) -> Json {
    record(
        "batch_job",
        vec![
            ("name", Json::str(e.name)),
            ("status", Json::str(e.status)),
            ("reason", e.reason.map_or(Json::Null, Json::str)),
            ("wall_nanos", Json::UInt(e.wall_nanos)),
            ("worker", Json::UInt(e.worker as u64)),
            ("alarms", e.alarms.map_or(Json::Null, Json::UInt)),
        ],
    )
}

/// Fleet coordinator counters for a fleet run.
pub fn fleet(c: &FleetCounters) -> Json {
    record(
        "fleet",
        vec![
            ("workers", Json::UInt(c.workers)),
            ("processes", Json::Bool(c.processes)),
            ("jobs", Json::UInt(c.jobs)),
            ("steals", Json::UInt(c.steals)),
            ("resent", Json::UInt(c.resent)),
            ("crashes", Json::UInt(c.crashes)),
            ("timeouts", Json::UInt(c.timeouts)),
            ("respawns", Json::UInt(c.respawns)),
            ("store_full_hits", Json::UInt(c.store_full_hits)),
        ],
    )
}

/// Invariant-cache counters for a run.
pub fn cache(c: &CacheCounters) -> Json {
    record(
        "cache",
        vec![
            ("full_hits", Json::UInt(c.full_hits)),
            ("misses", Json::UInt(c.misses)),
            ("seeded_functions", Json::UInt(c.seeded_functions)),
            ("invalidated_functions", Json::UInt(c.invalidated_functions)),
            ("loops_replayed", Json::UInt(c.loops_replayed)),
            ("loops_solved", Json::UInt(c.loops_solved)),
            ("corrupt_files", Json::UInt(c.corrupt_files)),
            ("bytes_read", Json::UInt(c.bytes_read)),
            ("bytes_written", Json::UInt(c.bytes_written)),
            ("replay_nanos", Json::UInt(c.replay_nanos)),
            ("saved_nanos", Json::UInt(c.saved_nanos)),
        ],
    )
}
