//! A minimal JSON tree and writer.
//!
//! The telemetry layer must stay zero-dependency (the build environment has
//! no registry access), so this module provides the small value model the
//! metrics schema needs: objects keep insertion order, numbers distinguish
//! signed/unsigned/float, and the writer emits pretty-printed, valid JSON.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values serialize as `null` (JSON has no ±∞/NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The boolean payload, when this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders on a single line with no indentation — the JSONL form used
    /// by the streaming event sink.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document. Numbers parse to [`Json::UInt`]/[`Json::Int`]
    /// when integral (matching what the writer emits) and [`Json::Float`]
    /// otherwise; duplicate object keys keep the last value. Intended for
    /// reading back the analyzer's own output — metrics documents and
    /// `astree-events/1` JSONL lines — not as a general-purpose parser.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            match pairs.iter_mut().find(|(pk, _)| *pk == k) {
                Some(pair) => pair.1 = v,
                None => pairs.push((k, v)),
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(format!("unterminated string at byte {start}")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs never appear in our own output
                            // (the writer only \u-escapes control bytes).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point at {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via the next boundary scan).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = rest
                        .get(..len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Escapes a string into a JSON string literal body.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Json {
    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{v}` alone prints "1" for 1.0, which JSON would parse
                    // as an integer; keep that (it is still a valid number).
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    return write!(f, "[]");
                }
                writeln!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    write!(f, "{pad}  ")?;
                    v.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(f, "{pad}]")
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return write!(f, "{{}}");
                }
                writeln!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    write!(f, "{pad}  \"{}\": ", escape(k))?;
                    v.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < pairs.len() { "," } else { "" })?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

/// Pretty-prints with two-space indentation.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(7).to_string(), "7");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::str("a\"b\n").to_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn nested_structure_renders() {
        let j = Json::obj([
            ("name", Json::str("x")),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("obj", Json::obj([("k", Json::Null)])),
        ]);
        let s = j.to_string();
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("\"empty\": []"));
        assert!(s.starts_with("{\n") && s.ends_with('}'));
    }

    #[test]
    fn get_walks_objects() {
        let j = Json::obj([("a", Json::obj([("b", Json::Int(1))]))]);
        assert_eq!(j.get("a").and_then(|a| a.get("b")), Some(&Json::Int(1)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj([
            ("name", Json::str("x \"quoted\"\n\ttail")),
            ("neg", Json::Int(-3)),
            ("big", Json::UInt(u64::MAX)),
            ("f", Json::Float(1.5)),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::UInt(1), Json::str("two"), Json::Arr(vec![])])),
            ("obj", Json::obj([("k", Json::Null)])),
        ]);
        // Both renderings (pretty and JSONL-compact) parse back to the tree.
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
    }

    #[test]
    fn parse_handles_numbers_and_escapes() {
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Float(2500.0));
        assert_eq!(Json::parse("\"a\\u0041é\"").unwrap(), Json::str("aAé"));
        assert_eq!(
            Json::parse(" [ 1 , 2 ] ").unwrap(),
            Json::Arr(vec![Json::UInt(1), Json::UInt(2),])
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\" 1}", "tru", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
