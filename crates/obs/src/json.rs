//! A minimal JSON tree and writer.
//!
//! The telemetry layer must stay zero-dependency (the build environment has
//! no registry access), so this module provides the small value model the
//! metrics schema needs: objects keep insertion order, numbers distinguish
//! signed/unsigned/float, and the writer emits pretty-printed, valid JSON.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values serialize as `null` (JSON has no ±∞/NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Escapes a string into a JSON string literal body.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Json {
    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{v}` alone prints "1" for 1.0, which JSON would parse
                    // as an integer; keep that (it is still a valid number).
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    return write!(f, "[]");
                }
                writeln!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    write!(f, "{pad}  ")?;
                    v.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(f, "{pad}]")
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return write!(f, "{{}}");
                }
                writeln!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    write!(f, "{pad}  \"{}\": ", escape(k))?;
                    v.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < pairs.len() { "," } else { "" })?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

/// Pretty-prints with two-space indentation.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(7).to_string(), "7");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::str("a\"b\n").to_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn nested_structure_renders() {
        let j = Json::obj([
            ("name", Json::str("x")),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("obj", Json::obj([("k", Json::Null)])),
        ]);
        let s = j.to_string();
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("\"empty\": []"));
        assert!(s.starts_with("{\n") && s.ends_with('}'));
    }

    #[test]
    fn get_walks_objects() {
        let j = Json::obj([("a", Json::obj([("b", Json::Int(1))]))]);
        assert_eq!(j.get("a").and_then(|a| a.get("b")), Some(&Json::Int(1)));
        assert_eq!(j.get("missing"), None);
    }
}
