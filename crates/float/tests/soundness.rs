//! Property tests: directed arithmetic brackets the exact real result.
//!
//! We cannot compute exact reals, but error-free transformations let us test
//! the *sign* of the rounding error independently of the implementation, and
//! bracketing the round-to-nearest result plus strict one-ulp tightness pins
//! the directed results exactly.

use astree_float::round::*;
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>().prop_filter("finite", |x| x.is_finite()),
        -1e3..1e3f64,
        -1.0..1.0f64,
        Just(0.0),
        Just(-0.0),
        Just(1.0),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
    ]
}

/// Checks `lo <= nearest <= hi` and that the bracket is at most one ulp on
/// each side, which (with soundness) pins the directed values exactly.
fn check_bracket(lo: f64, nearest: f64, hi: f64) {
    if nearest.is_nan() {
        assert!(lo.is_nan() && hi.is_nan());
        return;
    }
    if nearest.is_finite() {
        assert!(lo <= nearest, "lo {lo} > nearest {nearest}");
        assert!(hi >= nearest, "hi {hi} < nearest {nearest}");
    }
    assert!(lo <= hi);
    // One-ulp tightness holds everywhere except deep in the subnormal range,
    // where the implementation deliberately steps one extra ulp outward.
    if lo.is_finite() && hi.is_finite() && nearest.abs() > 1e-280 {
        assert!(hi <= next_up(lo), "bracket wider than one ulp: [{lo}, {hi}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn add_brackets(a in finite(), b in finite()) {
        check_bracket(add_down(a, b), a + b, add_up(a, b));
    }

    #[test]
    fn sub_brackets(a in finite(), b in finite()) {
        check_bracket(sub_down(a, b), a - b, sub_up(a, b));
    }

    #[test]
    fn mul_brackets(a in finite(), b in finite()) {
        check_bracket(mul_down(a, b), a * b, mul_up(a, b));
    }

    #[test]
    fn div_brackets(a in finite(), b in finite()) {
        prop_assume!(b != 0.0);
        check_bracket(div_down(a, b), a / b, div_up(a, b));
    }

    #[test]
    fn add_error_sign_agrees(a in -1e15..1e15f64, b in -1e15..1e15f64) {
        // In this safe range TwoSum is exact: verify directed results against
        // the independently computed error term.
        let s = a + b;
        let bb = s - a;
        let err = (a - (s - bb)) + (b - bb);
        if err > 0.0 {
            prop_assert_eq!(add_up(a, b), next_up(s));
            prop_assert_eq!(add_down(a, b), s);
        } else if err < 0.0 {
            prop_assert_eq!(add_down(a, b), next_down(s));
            prop_assert_eq!(add_up(a, b), s);
        } else {
            prop_assert_eq!(add_down(a, b), s);
            prop_assert_eq!(add_up(a, b), s);
        }
    }

    #[test]
    fn mul_error_sign_agrees(a in -1e100..1e100f64, b in -1e100..1e100f64) {
        let p = a * b;
        prop_assume!(p.is_finite() && p.abs() > 1e-280);
        let err = a.mul_add(b, -p);
        if err > 0.0 {
            prop_assert_eq!(mul_up(a, b), next_up(p));
        } else if err < 0.0 {
            prop_assert_eq!(mul_down(a, b), next_down(p));
        } else {
            prop_assert_eq!(mul_down(a, b), p);
            prop_assert_eq!(mul_up(a, b), p);
        }
    }

    #[test]
    fn directed_monotone_in_args(a in -1e6..1e6f64, b in -1e6..1e6f64, d in 0.0..1e3f64) {
        // Rounding directions must respect argument monotonicity.
        prop_assert!(add_down(a, b) <= add_down(a + d, b));
        prop_assert!(add_up(a, b) <= add_up(a + d, b));
        prop_assert!(sub_down(a, b) >= sub_down(a, b + d));
    }

    #[test]
    fn sqrt_brackets_prop(x in 0.0..1e300f64) {
        let lo = sqrt_down(x);
        let hi = sqrt_up(x);
        check_bracket(lo, x.sqrt(), hi);
        prop_assert!(mul_down(lo, lo) <= x);
        prop_assert!(mul_up(hi, hi) >= x);
    }

    #[test]
    fn f32_grid_brackets(x in finite()) {
        let lo = f32_down(x);
        let hi = f32_up(x);
        prop_assert!(lo <= x || lo == f32::MAX as f64);
        prop_assert!(hi >= x || hi == f32::MIN as f64);
        if lo.is_finite() {
            prop_assert_eq!(lo as f32 as f64, lo, "f32_down not on the f32 grid");
        }
        if hi.is_finite() {
            prop_assert_eq!(hi as f32 as f64, hi, "f32_up not on the f32 grid");
        }
        // A value already on the grid is a fixpoint.
        let g = (x as f32) as f64;
        if g.is_finite() {
            prop_assert_eq!(f32_down(g), g);
            prop_assert_eq!(f32_up(g), g);
        }
    }
}
