//! Sound directed-rounding floating-point primitives.
//!
//! The analyzer must "always perform rounding in the right direction" (paper
//! Sect. 6.2.1): every abstract operation on floats over-approximates the set
//! of concrete IEEE-754 results, so lower bounds are rounded toward −∞ and
//! upper bounds toward +∞. Portable Rust cannot switch the hardware rounding
//! mode, so this crate implements the standard substitute: compute with
//! round-to-nearest, then use *error-free transformations* (TwoSum, FMA
//! residuals) to decide whether the exact result lies above or below the
//! rounded one, and step one [ulp] in the needed direction only when it does.
//! The result is the *exactly* directed-rounded value for `+`, `-`, `*`, `/`
//! — not merely a one-ulp over-approximation.
//!
//! The crate also exposes the IEEE-754 double-precision constants the
//! ellipsoid domain's error term needs (paper Sect. 6.2.3: "`f` is the
//! greatest relative error of a float with respect to a real").
//!
//! # Examples
//!
//! ```
//! use astree_float::round;
//!
//! let a = 0.1_f64;
//! let b = 0.2_f64;
//! assert!(round::add_down(a, b) <= a + b);
//! assert!(round::add_up(a, b) >= a + b);
//! assert!(round::add_down(a, b) < round::add_up(a, b)); // 0.1 + 0.2 is inexact
//! assert_eq!(round::add_down(1.0, 2.0), 3.0);           // exact ops stay exact
//! ```

pub mod round;

/// Unit roundoff of IEEE-754 binary64: the greatest relative error of
/// rounding a real to the nearest double, `2⁻⁵³`.
///
/// This is the `f` of the paper's ellipsoid error term (Sect. 6.2.3).
pub const UNIT_ROUNDOFF: f64 = 1.1102230246251565e-16; // 2^-53

/// Smallest positive subnormal double, the absolute error floor near zero.
pub const MIN_SUBNORMAL: f64 = 5e-324;

/// Returns the distance to the next representable double above `x.abs()`,
/// i.e. one unit in the last place.
///
/// Returns `f64::INFINITY` for non-finite inputs.
///
/// # Examples
///
/// ```
/// assert_eq!(astree_float::ulp(1.0), f64::EPSILON);
/// assert!(astree_float::ulp(0.0) > 0.0);
/// ```
pub fn ulp(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::INFINITY;
    }
    let a = x.abs();
    let up = round::next_up(a);
    if up.is_finite() {
        up - a
    } else {
        a - round::next_down(a)
    }
}

/// Total-order minimum: like `f64::min`, but deterministic on signed zeros —
/// a `±0.0` tie always yields `-0.0`, whichever operand carried it.
///
/// `f64::min`/`f64::max` may return either zero for `min(-0.0, +0.0)`
/// (IEEE-754 `minNum` leaves it unspecified), so reductions over them are
/// *order-sensitive at the bit level*. Abstract joins must be bit-for-bit
/// commutative for the analyzer's cross-`jobs` determinism contract (slicing
/// reorders joins), so every bound reduction goes through these instead.
/// NaN handling matches `f64::min`: the non-NaN operand wins.
///
/// # Examples
///
/// ```
/// use astree_float::{max_total, min_total};
/// assert_eq!(min_total(-0.0, 0.0).to_bits(), (-0.0f64).to_bits());
/// assert_eq!(min_total(0.0, -0.0).to_bits(), (-0.0f64).to_bits());
/// assert_eq!(max_total(-0.0, 0.0).to_bits(), 0.0f64.to_bits());
/// assert_eq!(max_total(0.0, -0.0).to_bits(), 0.0f64.to_bits());
/// assert_eq!(min_total(1.0, 2.0), 1.0);
/// ```
pub fn min_total(a: f64, b: f64) -> f64 {
    if a < b {
        return a;
    }
    if b < a {
        return b;
    }
    if a == b {
        // Equal operands share a bit pattern except for the ±0.0 pair;
        // canonicalize the tie to the negative zero.
        return if a.is_sign_negative() { a } else { b };
    }
    // At least one operand is NaN: keep the other, like `f64::min`.
    if a.is_nan() {
        b
    } else {
        a
    }
}

/// Total-order maximum: like `f64::max`, but a `±0.0` tie always yields
/// `+0.0`. See [`min_total`] for why.
pub fn max_total(a: f64, b: f64) -> f64 {
    if a > b {
        return a;
    }
    if b > a {
        return b;
    }
    if a == b {
        return if a.is_sign_positive() { a } else { b };
    }
    if a.is_nan() {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundoff_is_half_epsilon() {
        assert_eq!(UNIT_ROUNDOFF, f64::EPSILON / 2.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn min_subnormal_is_smallest() {
        assert!(MIN_SUBNORMAL > 0.0);
        assert_eq!(MIN_SUBNORMAL / 2.0, 0.0);
    }

    #[test]
    fn total_order_min_max_are_commutative_on_zeros_and_nan() {
        for (a, b) in [(-0.0f64, 0.0f64), (0.0, -0.0), (-0.0, -0.0), (0.0, 0.0)] {
            assert_eq!(min_total(a, b).to_bits(), min_total(b, a).to_bits());
            assert_eq!(max_total(a, b).to_bits(), max_total(b, a).to_bits());
        }
        assert!(min_total(-0.0, 0.0).is_sign_negative());
        assert!(max_total(-0.0, 0.0).is_sign_positive());
        assert_eq!(min_total(f64::NAN, 3.0), 3.0);
        assert_eq!(max_total(3.0, f64::NAN), 3.0);
        assert_eq!(min_total(-1.0, 2.0), -1.0);
        assert_eq!(max_total(-1.0, 2.0), 2.0);
        assert_eq!(min_total(f64::NEG_INFINITY, 0.0), f64::NEG_INFINITY);
        assert_eq!(max_total(f64::INFINITY, 0.0), f64::INFINITY);
    }

    #[test]
    fn ulp_values() {
        assert_eq!(ulp(1.0), f64::EPSILON);
        assert_eq!(ulp(-1.0), f64::EPSILON);
        assert_eq!(ulp(0.0), MIN_SUBNORMAL);
        assert_eq!(ulp(f64::INFINITY), f64::INFINITY);
        assert_eq!(ulp(f64::NAN), f64::INFINITY);
        assert_eq!(ulp(f64::MAX), f64::MAX - round::next_down(f64::MAX));
    }
}
