//! Sound directed-rounding floating-point primitives.
//!
//! The analyzer must "always perform rounding in the right direction" (paper
//! Sect. 6.2.1): every abstract operation on floats over-approximates the set
//! of concrete IEEE-754 results, so lower bounds are rounded toward −∞ and
//! upper bounds toward +∞. Portable Rust cannot switch the hardware rounding
//! mode, so this crate implements the standard substitute: compute with
//! round-to-nearest, then use *error-free transformations* (TwoSum, FMA
//! residuals) to decide whether the exact result lies above or below the
//! rounded one, and step one [ulp] in the needed direction only when it does.
//! The result is the *exactly* directed-rounded value for `+`, `-`, `*`, `/`
//! — not merely a one-ulp over-approximation.
//!
//! The crate also exposes the IEEE-754 double-precision constants the
//! ellipsoid domain's error term needs (paper Sect. 6.2.3: "`f` is the
//! greatest relative error of a float with respect to a real").
//!
//! # Examples
//!
//! ```
//! use astree_float::round;
//!
//! let a = 0.1_f64;
//! let b = 0.2_f64;
//! assert!(round::add_down(a, b) <= a + b);
//! assert!(round::add_up(a, b) >= a + b);
//! assert!(round::add_down(a, b) < round::add_up(a, b)); // 0.1 + 0.2 is inexact
//! assert_eq!(round::add_down(1.0, 2.0), 3.0);           // exact ops stay exact
//! ```

pub mod round;

/// Unit roundoff of IEEE-754 binary64: the greatest relative error of
/// rounding a real to the nearest double, `2⁻⁵³`.
///
/// This is the `f` of the paper's ellipsoid error term (Sect. 6.2.3).
pub const UNIT_ROUNDOFF: f64 = 1.1102230246251565e-16; // 2^-53

/// Smallest positive subnormal double, the absolute error floor near zero.
pub const MIN_SUBNORMAL: f64 = 5e-324;

/// Returns the distance to the next representable double above `x.abs()`,
/// i.e. one unit in the last place.
///
/// Returns `f64::INFINITY` for non-finite inputs.
///
/// # Examples
///
/// ```
/// assert_eq!(astree_float::ulp(1.0), f64::EPSILON);
/// assert!(astree_float::ulp(0.0) > 0.0);
/// ```
pub fn ulp(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::INFINITY;
    }
    let a = x.abs();
    let up = round::next_up(a);
    if up.is_finite() {
        up - a
    } else {
        a - round::next_down(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundoff_is_half_epsilon() {
        assert_eq!(UNIT_ROUNDOFF, f64::EPSILON / 2.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn min_subnormal_is_smallest() {
        assert!(MIN_SUBNORMAL > 0.0);
        assert_eq!(MIN_SUBNORMAL / 2.0, 0.0);
    }

    #[test]
    fn ulp_values() {
        assert_eq!(ulp(1.0), f64::EPSILON);
        assert_eq!(ulp(-1.0), f64::EPSILON);
        assert_eq!(ulp(0.0), MIN_SUBNORMAL);
        assert_eq!(ulp(f64::INFINITY), f64::INFINITY);
        assert_eq!(ulp(f64::NAN), f64::INFINITY);
        assert_eq!(ulp(f64::MAX), f64::MAX - round::next_down(f64::MAX));
    }
}
