//! Exactly-rounded directed arithmetic on `f64`.
//!
//! Each `*_down` function returns the largest double less than or equal to
//! the exact real result (round toward −∞); each `*_up` function returns the
//! smallest double greater than or equal to it (round toward +∞). NaN inputs
//! and invalid operations propagate NaN; the caller (the interval domain)
//! treats NaN as a reported error, exactly like the paper's analyzer.
//!
//! Overflow follows the IEEE-754 directed-rounding convention: a finite exact
//! result larger than `f64::MAX` rounds down to `f64::MAX` and up to `+∞`.

/// Returns the next representable double above `x`.
///
/// `next_up(f64::MAX)` is `+∞`; `next_up(+∞)` is `+∞`; NaN propagates.
pub fn next_up(x: f64) -> f64 {
    // Stable in std since 1.86; delegate to keep bit-level subtleties
    // (signed zeros, subnormals) in one vetted place.
    x.next_up()
}

/// Returns the next representable double below `x`.
///
/// `next_down(f64::MIN)` is `−∞`; `next_down(−∞)` is `−∞`; NaN propagates.
pub fn next_down(x: f64) -> f64 {
    x.next_down()
}

/// Splits the rounding of `a + b`: returns the round-to-nearest sum and the
/// exact error term (Knuth's TwoSum). Valid — with no intermediate overflow —
/// whenever the nearest sum `s` itself is finite, which the callers check.
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// Magnitude below which FMA residuals of `*`/`/` may be swallowed by
/// underflow; below it we conservatively step one ulp outward, making the
/// result possibly one ulp looser than true directed rounding (still sound).
const UNDERFLOW_GUARD: f64 = 1e-290;

fn clamp_down(s: f64) -> f64 {
    // Round-toward-−∞ of an exact value that round-to-nearest sent to ±∞.
    if s == f64::INFINITY {
        f64::MAX
    } else {
        s // −∞ stays −∞: the exact value is below −MAX.
    }
}

fn clamp_up(s: f64) -> f64 {
    if s == f64::NEG_INFINITY {
        f64::MIN
    } else {
        s
    }
}

/// Returns the largest double `≤ a + b` exactly.
pub fn add_down(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        return s;
    }
    if !s.is_finite() {
        return if a.is_finite() && b.is_finite() { clamp_down(s) } else { s };
    }
    let (s, err) = two_sum(a, b);
    if err < 0.0 {
        next_down(s)
    } else {
        s
    }
}

/// Returns the smallest double `≥ a + b` exactly.
pub fn add_up(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        return s;
    }
    if !s.is_finite() {
        return if a.is_finite() && b.is_finite() { clamp_up(s) } else { s };
    }
    let (s, err) = two_sum(a, b);
    if err > 0.0 {
        next_up(s)
    } else {
        s
    }
}

/// Returns the largest double `≤ a − b` exactly.
pub fn sub_down(a: f64, b: f64) -> f64 {
    add_down(a, -b)
}

/// Returns the smallest double `≥ a − b` exactly.
pub fn sub_up(a: f64, b: f64) -> f64 {
    add_up(a, -b)
}

/// Returns the largest double `≤ a × b` exactly.
pub fn mul_down(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        return p;
    }
    if !p.is_finite() {
        return if a.is_finite() && b.is_finite() { clamp_down(p) } else { p };
    }
    if p != 0.0 && p.abs() < UNDERFLOW_GUARD {
        return next_down(p);
    }
    let err = a.mul_add(b, -p);
    if err < 0.0 {
        next_down(p)
    } else {
        p
    }
}

/// Returns the smallest double `≥ a × b` exactly.
pub fn mul_up(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        return p;
    }
    if !p.is_finite() {
        return if a.is_finite() && b.is_finite() { clamp_up(p) } else { p };
    }
    if p != 0.0 && p.abs() < UNDERFLOW_GUARD {
        return next_up(p);
    }
    let err = a.mul_add(b, -p);
    if err > 0.0 {
        next_up(p)
    } else {
        p
    }
}

/// Returns the largest double `≤ a ÷ b` exactly.
///
/// Division by (signed) zero follows IEEE and yields ±∞ or NaN; detecting
/// and alarming on it is the analyzer's job, not this primitive's.
pub fn div_down(a: f64, b: f64) -> f64 {
    let q = a / b;
    if q.is_nan() || b == 0.0 {
        return q;
    }
    if !q.is_finite() {
        return if a.is_finite() && b.is_finite() { clamp_down(q) } else { q };
    }
    if (q != 0.0 && q.abs() < UNDERFLOW_GUARD) || !b.is_finite() {
        return next_down(q);
    }
    // r = q·b − a exactly; exact quotient − q = −r/b.
    let r = q.mul_add(b, -a);
    if r == 0.0 {
        q
    } else if (r > 0.0) == (b > 0.0) {
        // −r/b < 0: exact quotient below q.
        next_down(q)
    } else {
        q
    }
}

/// Returns the smallest double `≥ a ÷ b` exactly.
pub fn div_up(a: f64, b: f64) -> f64 {
    let q = a / b;
    if q.is_nan() || b == 0.0 {
        return q;
    }
    if !q.is_finite() {
        return if a.is_finite() && b.is_finite() { clamp_up(q) } else { q };
    }
    if (q != 0.0 && q.abs() < UNDERFLOW_GUARD) || !b.is_finite() {
        return next_up(q);
    }
    let r = q.mul_add(b, -a);
    if r == 0.0 {
        q
    } else if (r > 0.0) != (b > 0.0) {
        // −r/b > 0: exact quotient above q.
        next_up(q)
    } else {
        q
    }
}

/// Returns the largest double `≤ √x` exactly (NaN for negative `x`).
pub fn sqrt_down(x: f64) -> f64 {
    let s = x.sqrt();
    if !s.is_finite() || s == 0.0 {
        return s;
    }
    if s.abs() < UNDERFLOW_GUARD {
        return next_down(s);
    }
    let r = s.mul_add(s, -x); // s² − x, exact
    if r > 0.0 {
        next_down(s)
    } else {
        s
    }
}

/// Returns the smallest double `≥ √x` exactly (NaN for negative `x`).
pub fn sqrt_up(x: f64) -> f64 {
    let s = x.sqrt();
    if !s.is_finite() || s == 0.0 {
        return s;
    }
    if s.abs() < UNDERFLOW_GUARD {
        return next_up(s);
    }
    let r = s.mul_add(s, -x);
    if r < 0.0 {
        next_up(s)
    } else {
        s
    }
}

/// Returns the largest double on the `f32` grid `≤ x`, as an `f64`.
///
/// Used to re-round abstract bounds after single-precision operations: a
/// bound that is not representable in `f32` must be widened outward to the
/// value single-precision hardware could produce.
pub fn f32_down(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > f32::MAX as f64 {
        return f32::MAX as f64;
    }
    if x < f32::MIN as f64 {
        return f64::NEG_INFINITY;
    }
    let y = x as f32; // round to nearest f32
    if (y as f64) <= x {
        y as f64
    } else {
        prev_f32(y) as f64
    }
}

/// Returns the smallest double on the `f32` grid `≥ x`, as an `f64`.
pub fn f32_up(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x < f32::MIN as f64 {
        return f32::MIN as f64;
    }
    if x > f32::MAX as f64 {
        return f64::INFINITY;
    }
    let y = x as f32;
    if (y as f64) >= x {
        y as f64
    } else {
        next_f32(y) as f64
    }
}

fn next_f32(x: f32) -> f32 {
    x.next_up()
}

fn prev_f32(x: f32) -> f32 {
    x.next_down()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ops_stay_exact() {
        assert_eq!(add_down(1.0, 2.0), 3.0);
        assert_eq!(add_up(1.0, 2.0), 3.0);
        assert_eq!(mul_down(1.5, 2.0), 3.0);
        assert_eq!(mul_up(1.5, 2.0), 3.0);
        assert_eq!(div_down(3.0, 2.0), 1.5);
        assert_eq!(div_up(3.0, 2.0), 1.5);
        assert_eq!(sqrt_down(4.0), 2.0);
        assert_eq!(sqrt_up(4.0), 2.0);
    }

    #[test]
    fn inexact_ops_bracket() {
        let cases = [(0.1, 0.2), (1.0, 1e-20), (1e10, -3.3), (0.3, 0.7)];
        for (a, b) in cases {
            let lo = add_down(a, b);
            let hi = add_up(a, b);
            assert!(lo <= a + b && a + b <= hi);
            assert!(hi <= next_up(lo), "bracket wider than one ulp for {a}+{b}");
        }
    }

    #[test]
    fn directed_add_matches_twosum_sign() {
        // 1 + 2^-60 rounds to 1 with positive error: RU must step up.
        let tiny = 2f64.powi(-60);
        assert_eq!(add_down(1.0, tiny), 1.0);
        assert_eq!(add_up(1.0, tiny), next_up(1.0));
        assert_eq!(add_down(1.0, -tiny), next_down(1.0));
        assert_eq!(add_up(1.0, -tiny), 1.0);
    }

    #[test]
    fn directed_mul_brackets() {
        for (a, b) in [(0.1, 0.1), (1.0 / 3.0, 3.0), (1e-200, 1e-200), (1e200, 1e200)] {
            let lo = mul_down(a, b);
            let hi = mul_up(a, b);
            assert!(lo <= hi);
            let nearest = a * b;
            if nearest.is_finite() {
                assert!(lo <= nearest && nearest <= hi);
            }
        }
    }

    #[test]
    fn directed_div_brackets() {
        for (a, b) in [(1.0, 3.0), (-1.0, 3.0), (1e300, 1e-300), (5.0, 7.0)] {
            let lo = div_down(a, b);
            let hi = div_up(a, b);
            assert!(lo <= hi, "{a}/{b}: {lo} > {hi}");
            let nearest = a / b;
            if nearest.is_finite() {
                assert!(lo <= nearest && nearest <= hi);
            }
        }
        // 1/3 is inexact: the bracket must be strict.
        assert!(div_down(1.0, 3.0) < div_up(1.0, 3.0));
    }

    #[test]
    fn division_residual_sign_is_correct() {
        // 1/3 < nearest(1/3)? nearest(1/3) = 0.333...33 with known direction:
        // check against the mathematical ordering via multiplication.
        let q_down = div_down(1.0, 3.0);
        let q_up = div_up(1.0, 3.0);
        assert!(q_down * 3.0 <= 1.0 || mul_down(q_down, 3.0) <= 1.0);
        assert!(mul_up(q_up, 3.0) >= 1.0);
        assert_eq!(q_up, next_up(q_down));
    }

    #[test]
    fn overflow_clamps_by_direction() {
        assert_eq!(add_down(f64::MAX, f64::MAX), f64::MAX);
        assert_eq!(add_up(f64::MAX, f64::MAX), f64::INFINITY);
        assert_eq!(add_up(f64::MIN, f64::MIN), f64::MIN);
        assert_eq!(add_down(f64::MIN, f64::MIN), f64::NEG_INFINITY);
        assert_eq!(mul_down(1e200, 1e200), f64::MAX);
        assert_eq!(mul_up(1e200, 1e200), f64::INFINITY);
        assert_eq!(mul_up(-1e200, 1e200), f64::MIN);
        assert_eq!(mul_down(-1e200, 1e200), f64::NEG_INFINITY);
    }

    #[test]
    fn infinities_pass_through() {
        assert_eq!(add_down(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(add_up(f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
        assert!(add_down(f64::INFINITY, f64::NEG_INFINITY).is_nan());
        assert!(mul_down(0.0, f64::INFINITY).is_nan());
        assert_eq!(div_down(1.0, 0.0), f64::INFINITY);
        assert_eq!(div_down(-1.0, 0.0), f64::NEG_INFINITY);
        assert!(div_down(0.0, 0.0).is_nan());
    }

    #[test]
    fn nan_propagates() {
        assert!(add_down(f64::NAN, 1.0).is_nan());
        assert!(mul_up(f64::NAN, 1.0).is_nan());
        assert!(div_up(f64::NAN, 1.0).is_nan());
        assert!(sqrt_down(-1.0).is_nan());
    }

    #[test]
    fn sqrt_brackets() {
        for x in [2.0, 3.0, 0.5, 1e-10, 1e10] {
            let lo = sqrt_down(x);
            let hi = sqrt_up(x);
            assert!(lo <= x.sqrt() && x.sqrt() <= hi);
            assert!(mul_down(lo, lo) <= x);
            assert!(mul_up(hi, hi) >= x);
        }
        assert_eq!(sqrt_down(0.0), 0.0);
    }

    #[test]
    fn f32_grid_rounding() {
        let x = 0.1_f64; // not representable in f32
        let lo = f32_down(x);
        let hi = f32_up(x);
        assert!(lo < x && x < hi);
        assert_eq!(lo as f32 as f64, lo);
        assert_eq!(hi as f32 as f64, hi);
        // Values on the grid stay put.
        assert_eq!(f32_down(0.5), 0.5);
        assert_eq!(f32_up(0.5), 0.5);
        // Overflow beyond the f32 range.
        assert_eq!(f32_up(1e100), f64::INFINITY);
        assert_eq!(f32_down(1e100), f32::MAX as f64);
        assert_eq!(f32_down(-1e100), f64::NEG_INFINITY);
        assert_eq!(f32_up(-1e100), f32::MIN as f64);
    }

    #[test]
    fn subnormal_region_is_sound() {
        // 2^-1060 sits inside the subnormal range (the smallest subnormal
        // is 2^-1074): representable, positive, below MIN_POSITIVE. (An
        // earlier revision asserted it underflows to 0 — that only holds
        // for `powi` implementations computing `1 / 2^1060` through an
        // infinite intermediate, not for direct negative-exponent squaring.)
        let tiny = 2f64.powi(-1060);
        assert!(tiny > 0.0 && tiny < f64::MIN_POSITIVE);
        let a = 1e-300;
        let b = 1e-10;
        let lo = mul_down(a, b);
        let hi = mul_up(a, b);
        assert!(lo <= hi);
        assert!(hi > 0.0);
    }
}
