//! JSON codecs for the `astree-fleet/1` worker protocol.
//!
//! Determinism across processes is the point of the fleet, so the codecs
//! are exact: every `f64` travels as its IEEE-754 bit pattern (a `u64`),
//! never as a decimal rendering, and unordered collections are sorted
//! before encoding. A worker decoding a config must reconstruct the
//! coordinator's configuration bit-for-bit.

use crate::job::{ConfigOverrides, JobOutcome, JobSpec, JobStatus, OracleJob};
use astree_core::{AlarmKind, AnalysisConfig};
use astree_domains::Thresholds;
use astree_gen::{BugKind, StructKnobs};
use astree_ir::LoopId;
use astree_obs::Json;
use astree_oracle::{Divergence, DivergenceKind, MemberOutcome, MemberSpec};
use std::collections::BTreeMap;
use std::time::Duration;

/// All alarm kinds, for slug interning.
const ALARM_KINDS: [AlarmKind; 7] = [
    AlarmKind::DivByZero,
    AlarmKind::IntOverflow,
    AlarmKind::FloatOverflow,
    AlarmKind::InvalidFloatOp,
    AlarmKind::ShiftRange,
    AlarmKind::OutOfBounds,
    AlarmKind::InvalidCast,
];

/// Interns an alarm-kind slug coming off the wire back to the `&'static`
/// string the in-process types carry.
fn intern_alarm_slug(s: &str) -> Result<&'static str, String> {
    ALARM_KINDS
        .into_iter()
        .map(AlarmKind::slug)
        .find(|k| *k == s)
        .ok_or_else(|| format!("unknown alarm kind slug {s:?}"))
}

fn f64_bits(v: f64) -> Json {
    Json::UInt(v.to_bits())
}

/// FNV-1a fingerprint of a store file's text, used by both sides of the
/// `store_get`/`store_put` exchange to skip shipping bytes the peer
/// already holds (content-level dedup on top of the store's own
/// merge-level dedup).
pub fn content_fingerprint(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn get_f64_bits(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .map(f64::from_bits)
        .ok_or_else(|| format!("missing f64 field {key}"))
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field {key}"))
}

fn get_i64(obj: &Json, key: &str) -> Result<i64, String> {
    match obj.get(key) {
        Some(Json::Int(v)) => Ok(*v),
        Some(Json::UInt(v)) => Ok(*v as i64),
        _ => Err(format!("missing integer field {key}")),
    }
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, String> {
    obj.get(key).and_then(Json::as_bool).ok_or_else(|| format!("missing bool field {key}"))
}

fn get_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key}"))
}

fn opt_str(obj: &Json, key: &str) -> Option<String> {
    obj.get(key).and_then(Json::as_str).map(str::to_string)
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(Json::str).collect())
}

fn get_str_arr(obj: &Json, key: &str) -> Result<Vec<String>, String> {
    match obj.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| v.as_str().map(str::to_string).ok_or_else(|| format!("{key}: not a string")))
            .collect(),
        _ => Err(format!("missing array field {key}")),
    }
}

// ---------------------------------------------------------------------------
// AnalysisConfig
// ---------------------------------------------------------------------------

/// Encodes the full analysis configuration for the `init` frame.
pub fn config_to_json(c: &AnalysisConfig) -> Json {
    let thresholds = Json::Arr(c.thresholds.ramp().iter().map(|&v| f64_bits(v)).collect());
    let mut per_loop: Vec<(LoopId, u32)> =
        c.per_loop_unroll.iter().map(|(k, v)| (*k, *v)).collect();
    per_loop.sort();
    let mut partitioned: Vec<&String> = c.partitioned_functions.iter().collect();
    partitioned.sort();
    Json::obj([
        ("thresholds", thresholds),
        ("widening_delay", Json::UInt(c.widening_delay as u64)),
        ("stabilization_grace", Json::UInt(c.stabilization_grace as u64)),
        ("max_iterations", Json::UInt(c.max_iterations as u64)),
        ("narrowing_iterations", Json::UInt(c.narrowing_iterations as u64)),
        ("loop_unroll", Json::UInt(c.loop_unroll as u64)),
        (
            "per_loop_unroll",
            Json::Arr(
                per_loop
                    .iter()
                    .map(|(id, n)| Json::Arr(vec![Json::UInt(id.0 as u64), Json::UInt(*n as u64)]))
                    .collect(),
            ),
        ),
        ("max_clock", Json::Int(c.max_clock)),
        ("float_perturbation", f64_bits(c.float_perturbation)),
        ("shrink_threshold", Json::UInt(c.shrink_threshold as u64)),
        ("enable_octagons", Json::Bool(c.enable_octagons)),
        ("enable_ellipsoids", Json::Bool(c.enable_ellipsoids)),
        ("enable_dtrees", Json::Bool(c.enable_dtrees)),
        ("enable_clocked", Json::Bool(c.enable_clocked)),
        ("enable_linearization", Json::Bool(c.enable_linearization)),
        ("partitioned_functions", Json::Arr(partitioned.iter().map(|s| Json::str(*s)).collect())),
        ("max_partitions", Json::UInt(c.max_partitions as u64)),
        ("octagon_pack_cap", Json::UInt(c.octagon_pack_cap as u64)),
        ("dtree_pack_bool_cap", Json::UInt(c.dtree_pack_bool_cap as u64)),
        (
            "octagon_pack_filter",
            match &c.octagon_pack_filter {
                Some(idxs) => Json::Arr(idxs.iter().map(|&i| Json::UInt(i as u64)).collect()),
                None => Json::Null,
            },
        ),
        (
            "octagon_packs_extra",
            Json::Arr(c.octagon_packs_extra.iter().map(|pack| str_arr(pack)).collect()),
        ),
        ("jobs", Json::UInt(c.jobs as u64)),
        ("nested_slicing", Json::Bool(c.nested_slicing)),
        ("nested_cost_fraction", f64_bits(c.nested_cost_fraction)),
        ("debug_no_ptr_shortcuts", Json::Bool(c.debug_no_ptr_shortcuts)),
        ("debug_generic_kernels", Json::Bool(c.debug_generic_kernels)),
        ("collect_stmt_invariants", Json::Bool(c.collect_stmt_invariants)),
    ])
}

/// Decodes an `init` frame configuration; the exact inverse of
/// [`config_to_json`] (the `debug_*` fault knobs that never cross the wire
/// decode to their defaults).
pub fn config_from_json(j: &Json) -> Result<AnalysisConfig, String> {
    let mut c = AnalysisConfig::default();
    let ramp = match j.get("thresholds") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| v.as_u64().map(f64::from_bits).ok_or("thresholds: not a bit pattern"))
            .collect::<Result<Vec<f64>, _>>()?,
        _ => return Err("missing thresholds".into()),
    };
    c.thresholds = Thresholds::from_values(ramp);
    c.widening_delay = get_u64(j, "widening_delay")? as u32;
    c.stabilization_grace = get_u64(j, "stabilization_grace")? as u32;
    c.max_iterations = get_u64(j, "max_iterations")? as u32;
    c.narrowing_iterations = get_u64(j, "narrowing_iterations")? as u32;
    c.loop_unroll = get_u64(j, "loop_unroll")? as u32;
    c.per_loop_unroll.clear();
    if let Some(Json::Arr(pairs)) = j.get("per_loop_unroll") {
        for p in pairs {
            let Json::Arr(kv) = p else { return Err("per_loop_unroll: not a pair".into()) };
            let (Some(id), Some(n)) =
                (kv.first().and_then(Json::as_u64), kv.get(1).and_then(Json::as_u64))
            else {
                return Err("per_loop_unroll: bad pair".into());
            };
            c.per_loop_unroll.insert(LoopId(id as u32), n as u32);
        }
    }
    c.max_clock = get_i64(j, "max_clock")?;
    c.float_perturbation = get_f64_bits(j, "float_perturbation")?;
    c.shrink_threshold = get_u64(j, "shrink_threshold")? as usize;
    c.enable_octagons = get_bool(j, "enable_octagons")?;
    c.enable_ellipsoids = get_bool(j, "enable_ellipsoids")?;
    c.enable_dtrees = get_bool(j, "enable_dtrees")?;
    c.enable_clocked = get_bool(j, "enable_clocked")?;
    c.enable_linearization = get_bool(j, "enable_linearization")?;
    c.partitioned_functions = get_str_arr(j, "partitioned_functions")?.into_iter().collect();
    c.max_partitions = get_u64(j, "max_partitions")? as usize;
    c.octagon_pack_cap = get_u64(j, "octagon_pack_cap")? as usize;
    c.dtree_pack_bool_cap = get_u64(j, "dtree_pack_bool_cap")? as usize;
    c.octagon_pack_filter = match j.get("octagon_pack_filter") {
        Some(Json::Arr(items)) => Some(
            items
                .iter()
                .map(|v| v.as_u64().map(|i| i as usize).ok_or("octagon_pack_filter: not an index"))
                .collect::<Result<Vec<usize>, _>>()?,
        ),
        _ => None,
    };
    c.octagon_packs_extra = match j.get("octagon_packs_extra") {
        Some(Json::Arr(packs)) => packs
            .iter()
            .map(|p| match p {
                Json::Arr(names) => names
                    .iter()
                    .map(|n| n.as_str().map(str::to_string).ok_or("pack name: not a string"))
                    .collect::<Result<Vec<String>, _>>(),
                _ => Err("octagon_packs_extra: not an array"),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => Vec::new(),
    };
    c.jobs = (get_u64(j, "jobs")? as usize).max(1);
    c.nested_slicing = get_bool(j, "nested_slicing")?;
    c.nested_cost_fraction = get_f64_bits(j, "nested_cost_fraction")?;
    c.debug_no_ptr_shortcuts = get_bool(j, "debug_no_ptr_shortcuts")?;
    c.debug_generic_kernels = get_bool(j, "debug_generic_kernels")?;
    c.collect_stmt_invariants = get_bool(j, "collect_stmt_invariants")?;
    Ok(c)
}

// ---------------------------------------------------------------------------
// JobSpec
// ---------------------------------------------------------------------------

fn overrides_to_json(o: &ConfigOverrides) -> Json {
    fn opt_bool(v: Option<bool>) -> Json {
        v.map_or(Json::Null, Json::Bool)
    }
    Json::obj([
        ("max_clock", o.max_clock.map_or(Json::Null, Json::Int)),
        ("loop_unroll", o.loop_unroll.map_or(Json::Null, |v| Json::UInt(v as u64))),
        ("jobs", o.jobs.map_or(Json::Null, |v| Json::UInt(v as u64))),
        ("octagons", opt_bool(o.octagons)),
        ("dtrees", opt_bool(o.dtrees)),
        ("ellipsoids", opt_bool(o.ellipsoids)),
        ("clocked", opt_bool(o.clocked)),
        ("linearize", opt_bool(o.linearize)),
        ("partition", str_arr(&o.partition)),
    ])
}

fn overrides_from_json(j: &Json) -> Result<ConfigOverrides, String> {
    let opt_bool = |key: &str| j.get(key).and_then(Json::as_bool);
    Ok(ConfigOverrides {
        max_clock: match j.get("max_clock") {
            Some(Json::Int(v)) => Some(*v),
            Some(Json::UInt(v)) => Some(*v as i64),
            _ => None,
        },
        loop_unroll: j.get("loop_unroll").and_then(Json::as_u64).map(|v| v as u32),
        jobs: j.get("jobs").and_then(Json::as_u64).map(|v| v as usize),
        octagons: opt_bool("octagons"),
        dtrees: opt_bool("dtrees"),
        ellipsoids: opt_bool("ellipsoids"),
        clocked: opt_bool("clocked"),
        linearize: opt_bool("linearize"),
        partition: get_str_arr(j, "partition").unwrap_or_default(),
    })
}

fn bug_to_json(b: Option<BugKind>) -> Json {
    match b {
        Some(b) => Json::str(format!("{b:?}")),
        None => Json::Null,
    }
}

fn bug_from_json(j: Option<&Json>) -> Result<Option<BugKind>, String> {
    match j.and_then(Json::as_str) {
        None => Ok(None),
        Some("DivByZero") => Ok(Some(BugKind::DivByZero)),
        Some("OutOfBounds") => Ok(Some(BugKind::OutOfBounds)),
        Some("IntOverflow") => Ok(Some(BugKind::IntOverflow)),
        Some(other) => Err(format!("unknown bug kind {other:?}")),
    }
}

/// Encodes a corpus member spec.
pub fn member_spec_to_json(m: &MemberSpec) -> Json {
    Json::obj([
        ("channels", Json::UInt(m.channels as u64)),
        ("gen_seed", Json::UInt(m.gen_seed)),
        ("bug", bug_to_json(m.bug)),
        ("hist_depth", Json::UInt(m.knobs.hist_depth as u64)),
        ("tbl_size", Json::UInt(m.knobs.tbl_size as u64)),
        ("phase_mod", Json::UInt(m.knobs.phase_mod as u64)),
        ("cross_couple", Json::Bool(m.knobs.cross_couple)),
    ])
}

/// Decodes a corpus member spec.
pub fn member_spec_from_json(j: &Json) -> Result<MemberSpec, String> {
    Ok(MemberSpec {
        channels: get_u64(j, "channels")? as usize,
        gen_seed: get_u64(j, "gen_seed")?,
        bug: bug_from_json(j.get("bug"))?,
        knobs: StructKnobs {
            hist_depth: get_u64(j, "hist_depth")? as usize,
            tbl_size: get_u64(j, "tbl_size")? as usize,
            phase_mod: get_u64(j, "phase_mod")? as usize,
            cross_couple: get_bool(j, "cross_couple")?,
        },
    })
}

/// Encodes a job spec for the `job` frame.
pub fn spec_to_json(s: &JobSpec) -> Json {
    let oracle = match &s.oracle {
        Some(o) => Json::obj([
            ("spec", member_spec_to_json(&o.spec)),
            ("seeds", Json::UInt(o.seeds)),
            ("ticks", Json::UInt(o.ticks)),
            ("max_steps", Json::UInt(o.max_steps)),
            ("shrink", Json::Bool(o.shrink)),
            ("debug_tighten_cell", o.debug_tighten_cell.as_deref().map_or(Json::Null, Json::str)),
        ]),
        None => Json::Null,
    };
    Json::obj([
        ("name", Json::str(&s.name)),
        ("source", Json::str(&s.source)),
        ("overrides", overrides_to_json(&s.overrides)),
        ("oracle", oracle),
    ])
}

/// Decodes a job spec from a `job` frame.
pub fn spec_from_json(j: &Json) -> Result<JobSpec, String> {
    let oracle = match j.get("oracle") {
        Some(o @ Json::Obj(_)) => Some(OracleJob {
            spec: member_spec_from_json(o.get("spec").ok_or("oracle: missing spec")?)?,
            seeds: get_u64(o, "seeds")?,
            ticks: get_u64(o, "ticks")?,
            max_steps: get_u64(o, "max_steps")?,
            shrink: get_bool(o, "shrink")?,
            debug_tighten_cell: opt_str(o, "debug_tighten_cell"),
        }),
        _ => None,
    };
    Ok(JobSpec {
        name: get_str(j, "name")?,
        source: get_str(j, "source")?,
        overrides: overrides_from_json(j.get("overrides").unwrap_or(&Json::Null))?,
        oracle,
    })
}

// ---------------------------------------------------------------------------
// JobOutcome
// ---------------------------------------------------------------------------

fn divergence_to_json(d: &Divergence) -> Json {
    let (kind, fields): (&str, Vec<(&str, Json)>) = match &d.kind {
        DivergenceKind::Escape { cell, value, abs } => (
            "escape",
            vec![
                ("cell", Json::str(cell.clone())),
                ("value", Json::str(value.clone())),
                ("abs", Json::str(abs.clone())),
            ],
        ),
        DivergenceKind::Unreachable => ("unreachable", Vec::new()),
        DivergenceKind::MissedError { kind } => ("missed_error", vec![("error", Json::str(*kind))]),
    };
    let mut pairs = vec![
        ("member", member_spec_to_json(&d.member)),
        ("exec_seed", Json::UInt(d.exec_seed)),
        ("stmt", Json::UInt(d.stmt as u64)),
        ("tick", Json::UInt(d.tick)),
        ("shrunk", Json::Bool(d.shrunk)),
        ("kind", Json::str(kind)),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

fn divergence_from_json(j: &Json) -> Result<Divergence, String> {
    let kind = match j.get("kind").and_then(Json::as_str) {
        Some("escape") => DivergenceKind::Escape {
            cell: get_str(j, "cell")?,
            value: get_str(j, "value")?,
            abs: get_str(j, "abs")?,
        },
        Some("unreachable") => DivergenceKind::Unreachable,
        Some("missed_error") => {
            DivergenceKind::MissedError { kind: intern_alarm_slug(&get_str(j, "error")?)? }
        }
        other => return Err(format!("unknown divergence kind {other:?}")),
    };
    Ok(Divergence {
        member: member_spec_from_json(j.get("member").ok_or("divergence: missing member")?)?,
        exec_seed: get_u64(j, "exec_seed")?,
        stmt: get_u64(j, "stmt")? as u32,
        tick: get_u64(j, "tick")?,
        kind,
        shrunk: get_bool(j, "shrunk")?,
    })
}

fn member_outcome_to_json(m: &MemberOutcome) -> Json {
    Json::obj([
        ("spec", member_spec_to_json(&m.spec)),
        ("executions", Json::UInt(m.executions)),
        ("states_checked", Json::UInt(m.states_checked)),
        ("inconclusive", Json::UInt(m.inconclusive)),
        (
            "alarms",
            Json::obj(m.alarms.iter().map(|(k, n)| (*k, Json::UInt(*n))).collect::<Vec<_>>()),
        ),
        ("divergences", Json::Arr(m.divergences.iter().map(divergence_to_json).collect())),
    ])
}

fn member_outcome_from_json(j: &Json) -> Result<MemberOutcome, String> {
    let mut alarms: BTreeMap<&'static str, u64> = BTreeMap::new();
    if let Some(Json::Obj(census)) = j.get("alarms") {
        for (k, v) in census {
            alarms.insert(intern_alarm_slug(k)?, v.as_u64().unwrap_or(0));
        }
    }
    let divergences = match j.get("divergences") {
        Some(Json::Arr(items)) => {
            items.iter().map(divergence_from_json).collect::<Result<Vec<_>, _>>()?
        }
        _ => Vec::new(),
    };
    Ok(MemberOutcome {
        spec: member_spec_from_json(j.get("spec").ok_or("outcome: missing spec")?)?,
        executions: get_u64(j, "executions")?,
        states_checked: get_u64(j, "states_checked")?,
        inconclusive: get_u64(j, "inconclusive")?,
        alarms,
        divergences,
    })
}

/// Encodes a job outcome for the `done` frame.
pub fn outcome_to_json(o: &JobOutcome) -> Json {
    Json::obj([
        ("name", Json::str(&o.name)),
        ("status", Json::str(o.status.slug())),
        ("alarms", o.alarms.map_or(Json::Null, |n| Json::UInt(n as u64))),
        ("alarm_lines", str_arr(&o.alarm_lines)),
        ("main_invariant", o.main_invariant.as_deref().map_or(Json::Null, Json::str)),
        ("main_census", o.main_census.as_deref().map_or(Json::Null, Json::str)),
        ("cache_full_hit", Json::Bool(o.cache_full_hit)),
        ("loops_seeded", Json::UInt(o.loops_seeded)),
        ("seed_hits", Json::UInt(o.seed_hits)),
        ("wall_nanos", Json::UInt(o.wall.as_nanos() as u64)),
        ("detail", o.detail.as_deref().map_or(Json::Null, Json::str)),
        ("oracle", o.oracle.as_ref().map_or(Json::Null, member_outcome_to_json)),
    ])
}

/// Decodes a job outcome from a `done` frame. The scheduling fields the
/// worker cannot know (`worker`, `resent`) decode to zero; the coordinator
/// fills them in.
pub fn outcome_from_json(j: &Json) -> Result<JobOutcome, String> {
    let status = JobStatus::from_slug(&get_str(j, "status")?)
        .ok_or_else(|| format!("unknown status {:?}", j.get("status")))?;
    Ok(JobOutcome {
        name: get_str(j, "name")?,
        status,
        alarms: j.get("alarms").and_then(Json::as_u64).map(|n| n as usize),
        alarm_lines: get_str_arr(j, "alarm_lines").unwrap_or_default(),
        main_invariant: opt_str(j, "main_invariant"),
        main_census: opt_str(j, "main_census"),
        cache_full_hit: j.get("cache_full_hit").and_then(Json::as_bool).unwrap_or(false),
        loops_seeded: j.get("loops_seeded").and_then(Json::as_u64).unwrap_or(0),
        seed_hits: j.get("seed_hits").and_then(Json::as_u64).unwrap_or(0),
        wall: Duration::from_nanos(get_u64(j, "wall_nanos")?),
        worker: 0,
        resent: 0,
        detail: opt_str(j, "detail"),
        oracle: match j.get("oracle") {
            Some(o @ Json::Obj(_)) => Some(member_outcome_from_json(o)?),
            _ => None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_bit_exactly() {
        let mut c = AnalysisConfig::default();
        c.thresholds = Thresholds::from_values(vec![1.5, 1e20, 0.1]);
        c.per_loop_unroll.insert(LoopId(3), 4);
        c.per_loop_unroll.insert(LoopId(1), 2);
        c.max_clock = -7;
        c.float_perturbation = 1e-9;
        c.partitioned_functions.insert("main".into());
        c.partitioned_functions.insert("aux".into());
        c.octagon_pack_filter = Some(vec![0, 3]);
        c.octagon_packs_extra = vec![vec!["a".into(), "b".into()]];
        c.nested_cost_fraction = 0.125;
        c.collect_stmt_invariants = true;
        let j = config_to_json(&c);
        let text = j.to_compact();
        let back = config_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.thresholds.ramp(), c.thresholds.ramp());
        assert_eq!(back.per_loop_unroll, c.per_loop_unroll);
        assert_eq!(back.max_clock, c.max_clock);
        assert_eq!(back.float_perturbation.to_bits(), c.float_perturbation.to_bits());
        assert_eq!(back.partitioned_functions, c.partitioned_functions);
        assert_eq!(back.octagon_pack_filter, c.octagon_pack_filter);
        assert_eq!(back.octagon_packs_extra, c.octagon_packs_extra);
        assert_eq!(back.nested_cost_fraction.to_bits(), c.nested_cost_fraction.to_bits());
        assert!(back.collect_stmt_invariants);
    }

    #[test]
    fn spec_and_outcome_round_trip() {
        let spec = JobSpec {
            name: "m1".into(),
            source: "int x;\n".into(),
            overrides: ConfigOverrides {
                max_clock: Some(50),
                octagons: Some(false),
                partition: vec!["main".into()],
                ..ConfigOverrides::default()
            },
            oracle: Some(OracleJob {
                spec: MemberSpec {
                    channels: 2,
                    gen_seed: 9,
                    bug: Some(BugKind::DivByZero),
                    knobs: StructKnobs { hist_depth: 8, ..StructKnobs::default() },
                },
                seeds: 3,
                ticks: 40,
                max_steps: 1000,
                shrink: true,
                debug_tighten_cell: Some("count0".into()),
            }),
        };
        let text = spec_to_json(&spec).to_compact();
        let back = spec_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.source, spec.source);
        assert_eq!(back.overrides, spec.overrides);
        let o = back.oracle.unwrap();
        assert_eq!(o.spec, spec.oracle.as_ref().unwrap().spec);
        assert_eq!(o.debug_tighten_cell.as_deref(), Some("count0"));

        let mut out = JobOutcome::empty("m1", JobStatus::Done);
        out.alarms = Some(2);
        out.alarm_lines = vec!["line 3: possible division by zero in `x / d`".into()];
        out.main_invariant = Some("x in [0, 4]\n".into());
        out.cache_full_hit = true;
        out.loops_seeded = 3;
        out.seed_hits = 1;
        out.wall = Duration::from_nanos(1234);
        out.oracle = Some(MemberOutcome {
            spec: spec.oracle.as_ref().unwrap().spec.clone(),
            executions: 3,
            states_checked: 77,
            inconclusive: 1,
            alarms: BTreeMap::from([("div_by_zero", 2u64)]),
            divergences: vec![Divergence {
                member: spec.oracle.as_ref().unwrap().spec.clone(),
                exec_seed: 1,
                stmt: 5,
                tick: 2,
                kind: DivergenceKind::MissedError { kind: "int_overflow" },
                shrunk: true,
            }],
        });
        let text = outcome_to_json(&out).to_compact();
        let back = outcome_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.status, JobStatus::Done);
        assert_eq!(back.alarms, Some(2));
        assert_eq!(back.alarm_lines, out.alarm_lines);
        assert_eq!(back.main_invariant, out.main_invariant);
        assert!(back.cache_full_hit);
        assert_eq!(back.loops_seeded, 3);
        assert_eq!(back.seed_hits, 1);
        assert_eq!(back.wall, out.wall);
        let m = back.oracle.unwrap();
        assert_eq!(m.executions, 3);
        assert_eq!(m.alarms.get("div_by_zero"), Some(&2));
        assert_eq!(m.divergences.len(), 1);
        assert_eq!(m.divergences[0].kind, DivergenceKind::MissedError { kind: "int_overflow" });
    }
}
