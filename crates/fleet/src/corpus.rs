//! Fleet construction helpers shared by `astree batch` and `astree fuzz`.
//!
//! Both commands used to grow their own job lists (batch its generated
//! family members, fuzz its oracle corpus); this module is the one place a
//! corpus becomes a `Vec<JobSpec>`, and the one place distributed oracle
//! outcomes fold back into a [`Campaign`].

use crate::job::{JobOutcome, JobSpec, JobStatus, OracleJob};
use astree_gen::{generate, GenConfig};
use astree_oracle::{build_corpus, Campaign, OracleConfig};

/// Parses a `--channels` argument: a single count or a comma list
/// (`"4"`, `"1,4"`). A list is cycled across the generated members, which
/// also gives the fleet a mix of job costs worth stealing over.
pub fn parse_channels(s: &str) -> Result<Vec<usize>, String> {
    let channels: Vec<usize> = s
        .split(',')
        .map(|part| part.trim().parse().map_err(|e| format!("--channels: {e}")))
        .collect::<Result<_, String>>()?;
    if channels.is_empty() || channels.contains(&0) {
        return Err("--channels: counts must be positive".into());
    }
    Ok(channels)
}

/// Builds analysis jobs for generated family members: one per seed, with
/// the channel counts cycled. Names are `gen-c<channels>-s<seed>`.
pub fn generated_jobs(channels: &[usize], seeds: &[u64]) -> Vec<JobSpec> {
    assert!(!channels.is_empty(), "channel list must not be empty");
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let channels = channels[i % channels.len()];
            let cfg = GenConfig { channels, seed, bug: None };
            JobSpec::new(format!("gen-c{channels}-s{seed}"), generate(&cfg))
        })
        .collect()
}

/// Builds one oracle job per corpus member of `cfg` (the `astree fuzz`
/// fleet). The member spec rides inside the job; workers regenerate the
/// member's source from it, so the job itself stays small.
pub fn campaign_jobs(cfg: &OracleConfig) -> Vec<JobSpec> {
    build_corpus(cfg)
        .into_iter()
        .map(|spec| {
            let mut job = JobSpec::new(spec.label(), String::new());
            job.oracle = Some(OracleJob {
                spec,
                seeds: cfg.seeds,
                ticks: cfg.ticks,
                max_steps: cfg.max_steps,
                shrink: cfg.shrink,
                debug_tighten_cell: cfg.debug_tighten_cell.clone(),
            });
            job
        })
        .collect()
}

/// Folds distributed oracle outcomes back into a ranked [`Campaign`] —
/// the exact aggregation `run_campaign` performs in-process, so a fleet
/// fuzz run and a local one produce the same report. `jobs` and
/// `outcomes` are parallel, in submission order.
pub fn campaign_from_outcomes(jobs: &[JobSpec], outcomes: &[JobOutcome]) -> Campaign {
    assert_eq!(jobs.len(), outcomes.len(), "jobs and outcomes must be parallel");
    let mut campaign = Campaign::default();
    for (job, out) in jobs.iter().zip(outcomes) {
        let Some(oracle) = &job.oracle else { continue };
        match (&out.status, &out.oracle) {
            (JobStatus::Done, Some(member)) => campaign.absorb(member),
            _ => {
                let error =
                    out.detail.clone().unwrap_or_else(|| format!("job {}", out.status.slug()));
                campaign.absorb_failure(&oracle.spec, error);
            }
        }
    }
    campaign.finish();
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::FleetSession;
    use astree_core::AnalysisConfig;
    use astree_oracle::run_campaign;

    #[test]
    fn channel_lists_parse_and_cycle() {
        assert_eq!(parse_channels("4").unwrap(), vec![4]);
        assert_eq!(parse_channels("1, 4").unwrap(), vec![1, 4]);
        assert!(parse_channels("0").is_err());
        assert!(parse_channels("x").is_err());
        let jobs = generated_jobs(&[1, 4], &[1, 2, 3]);
        assert_eq!(jobs[0].name, "gen-c1-s1");
        assert_eq!(jobs[1].name, "gen-c4-s2");
        assert_eq!(jobs[2].name, "gen-c1-s3");
        assert!(jobs.iter().all(|j| !j.source.is_empty()));
    }

    #[test]
    fn fleet_campaign_matches_run_campaign() {
        let cfg = OracleConfig {
            members: 4,
            seeds: 1,
            ticks: 4,
            max_steps: 200_000,
            shrink: false,
            analysis: AnalysisConfig::default(),
            ..OracleConfig::default()
        };
        let local = run_campaign(&cfg, |_| {});

        let jobs = campaign_jobs(&cfg);
        assert_eq!(jobs.len(), 4);
        let report = FleetSession::builder().jobs(jobs.clone()).config(cfg.analysis.clone()).run();
        let fleet = campaign_from_outcomes(&jobs, &report.outcomes);

        assert_eq!(fleet.members, local.members);
        assert_eq!(fleet.executions, local.executions);
        assert_eq!(fleet.states_checked, local.states_checked);
        assert_eq!(fleet.alarm_census, local.alarm_census);
        assert_eq!(fleet.divergences.len(), local.divergences.len());
    }
}
