//! Length-delimited JSON framing and endpoints, shared by every astree
//! wire protocol (`astree-serve/1` between clients and the daemon,
//! `astree-fleet/1` between the coordinator and its workers).
//!
//! A frame is one JSON value, length-delimited so neither side ever needs a
//! streaming JSON parser:
//!
//! ```text
//! <payload length in bytes, ASCII decimal>\n
//! <payload: one compact JSON value>\n
//! ```
//!
//! The payload length counts the JSON bytes only (not the trailing
//! newline). The newlines make a captured conversation readable with plain
//! text tools while keeping the framing unambiguous — the reader trusts the
//! length, not the line structure. Requests and responses are JSON objects;
//! see `DESIGN.md` for the full schemas.

use astree_obs::Json;
use std::io::{self, BufRead, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// The protocol identifier carried by every coordinator→worker `init`
/// frame.
pub const FLEET_PROTO: &str = "astree-fleet/1";

/// Frames larger than this are rejected as malformed (64 MiB — far above
/// any real request, small enough to bound a hostile allocation).
pub const MAX_FRAME: usize = 64 << 20;

/// Upper bound on store-file bytes in flight per `store_files`/`store_put`
/// frame. Files that would overflow the bound stay behind and ride a later
/// exchange; the sync degrades to extra cold solves, never to an oversized
/// frame. Sized so JSON string escaping (worst case ~2x) cannot push a
/// frame past [`MAX_FRAME`], while single large-member entries (a few MiB
/// each) still ship in one exchange.
pub const SYNC_BYTES_CAP: usize = 24 << 20;

/// Where a server listens or a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket at the given path (the default transport).
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7878`.
    Tcp(String),
}

impl Endpoint {
    /// The default socket path: `astree-serve-<uid or "user">.sock` in the
    /// system temp directory.
    pub fn default_socket() -> Endpoint {
        let user = std::env::var("USER").unwrap_or_else(|_| "user".into());
        Endpoint::Unix(std::env::temp_dir().join(format!("astree-serve-{user}.sock")))
    }

    /// Parses a CLI endpoint argument: `unix:PATH`, `tcp:ADDR`, a bare
    /// path (containing `/` or ending in `.sock`), or a bare `HOST:PORT`.
    pub fn parse(s: &str) -> Endpoint {
        if let Some(path) = s.strip_prefix("unix:") {
            Endpoint::Unix(path.into())
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_string())
        } else if s.contains('/') || s.ends_with(".sock") {
            Endpoint::Unix(s.into())
        } else {
            Endpoint::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A bidirectional connection split into independently-owned halves, so a
/// handler can block reading the next request while telemetry frames are
/// written from the analysis it is running.
pub struct Conn {
    pub reader: Box<dyn io::Read + Send>,
    pub writer: Box<dyn Write + Send>,
}

impl Conn {
    pub fn from_unix(s: UnixStream) -> io::Result<Conn> {
        let r = s.try_clone()?;
        Ok(Conn { reader: Box::new(r), writer: Box::new(s) })
    }

    pub fn from_tcp(s: TcpStream) -> io::Result<Conn> {
        s.set_nodelay(true).ok();
        let r = s.try_clone()?;
        Ok(Conn { reader: Box::new(r), writer: Box::new(s) })
    }

    /// Connects to an endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        match endpoint {
            Endpoint::Unix(path) => Conn::from_unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Conn::from_tcp(TcpStream::connect(addr.as_str())?),
        }
    }
}

/// Writes one frame and flushes it (a frame is a durability point: the peer
/// may act on it immediately).
pub fn write_frame(w: &mut dyn Write, value: &Json) -> io::Result<()> {
    let payload = value.to_compact();
    let mut buf = Vec::with_capacity(payload.len() + 16);
    buf.extend_from_slice(payload.len().to_string().as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(payload.as_bytes());
    buf.push(b'\n');
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream (the peer
/// closed before a length line started) and an error on anything malformed.
pub fn read_frame(r: &mut dyn BufRead) -> io::Result<Option<Json>> {
    let mut len_line = String::new();
    if r.read_line(&mut len_line)? == 0 {
        return Ok(None);
    }
    let len: usize = len_line
        .trim()
        .parse()
        .map_err(|_| bad_data(format!("bad frame length line {len_line:?}")))?;
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap")));
    }
    let mut payload = vec![0u8; len + 1]; // + trailing newline
    r.read_exact(&mut payload)?;
    if payload.pop() != Some(b'\n') {
        return Err(bad_data("frame payload not newline-terminated".into()));
    }
    let text = String::from_utf8(payload).map_err(|e| bad_data(format!("frame not UTF-8: {e}")))?;
    Json::parse(&text).map(Some).map_err(|e| bad_data(format!("frame not JSON: {e}")))
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let v = Json::obj([
            ("proto", Json::str(FLEET_PROTO)),
            ("req", Json::str("analyze")),
            ("id", Json::UInt(7)),
            ("source", Json::str("int main() { return 0; }\n")),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &Json::obj([("frame", Json::str("bye"))])).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap(), Some(v));
        let second = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(second.get("frame").and_then(Json::as_str), Some("bye"));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn newlines_inside_strings_do_not_break_framing() {
        let v = Json::obj([("source", Json::str("line1\nline2\n\"quoted\"\n"))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        let got = read_frame(&mut BufReader::new(&buf[..])).unwrap().unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn oversized_and_garbage_frames_are_rejected() {
        let mut r = BufReader::new(&b"99999999999\n"[..]);
        assert!(read_frame(&mut r).is_err());
        let mut r = BufReader::new(&b"not-a-length\n{}\n"[..]);
        assert!(read_frame(&mut r).is_err());
        let mut r = BufReader::new(&b"2\n{}X"[..]);
        assert!(read_frame(&mut r).is_err(), "missing newline terminator");
    }

    #[test]
    fn endpoint_parse_distinguishes_paths_from_addresses() {
        assert_eq!(Endpoint::parse("unix:/tmp/w.sock"), Endpoint::Unix("/tmp/w.sock".into()));
        assert_eq!(Endpoint::parse("tcp:127.0.0.1:7878"), Endpoint::Tcp("127.0.0.1:7878".into()));
        assert_eq!(Endpoint::parse("/tmp/w.sock"), Endpoint::Unix("/tmp/w.sock".into()));
        assert_eq!(Endpoint::parse("w.sock"), Endpoint::Unix("w.sock".into()));
        assert_eq!(Endpoint::parse("127.0.0.1:7878"), Endpoint::Tcp("127.0.0.1:7878".into()));
    }
}
