//! The worker side of the `astree-fleet/1` protocol.
//!
//! A worker is a dumb executor: it decodes the coordinator's `init` frame
//! into a base configuration and a shared store, then answers each `job`
//! frame with a `done` frame until `bye` or EOF. All scheduling lives in
//! the coordinator; the worker's only policy is panic containment (a
//! panicking job becomes a [`JobStatus::Panicked`] outcome, the worker
//! survives).
//!
//! When the `init` frame sets `store_sync` (and names no shared
//! `cache_dir`), the worker keeps a throwaway local invariant store and
//! brackets every job with a wire exchange: `store_get` pulls the
//! coordinator's warm store files before the solve, `store_put` ships the
//! files the job changed back afterwards. Workers on machines with no
//! shared filesystem get the same warm-start behavior as local ones.
//!
//! Two entry points: [`serve_stdio`] speaks over stdin/stdout for local
//! child processes, [`serve_listener`] accepts fleet connections on a Unix
//! or TCP socket for remote workers, one thread per connection.

use crate::exec::{execute, ExecContext};
use crate::job::{JobOutcome, JobStatus};
use crate::proto::{read_frame, write_frame, Endpoint, FLEET_PROTO, SYNC_BYTES_CAP};
use crate::wire::{config_from_json, content_fingerprint, outcome_to_json, spec_from_json};
use astree_core::InvariantStore;
use astree_obs::Json;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Serves one fleet conversation over stdin/stdout. Returns when the
/// coordinator says `bye` or closes the pipe.
pub fn serve_stdio() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_conn(&mut reader, &mut writer)
}

/// Binds `endpoint` and serves fleet conversations forever, one thread per
/// connection. A stale Unix socket file from a dead worker is replaced.
pub fn serve_listener(endpoint: &Endpoint) -> io::Result<()> {
    match endpoint {
        Endpoint::Unix(path) => {
            if path.exists() && UnixListener::bind(path).is_err() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            eprintln!("astree worker listening on {endpoint}");
            for conn in listener.incoming() {
                let conn = conn?;
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(conn.try_clone().expect("clone unix socket"));
                    let mut writer = conn;
                    let _ = serve_conn(&mut reader, &mut writer);
                });
            }
        }
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            eprintln!("astree worker listening on tcp:{}", listener.local_addr()?);
            for conn in listener.incoming() {
                let conn = conn?;
                conn.set_nodelay(true).ok();
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(conn.try_clone().expect("clone tcp socket"));
                    let mut writer = conn;
                    let _ = serve_conn(&mut reader, &mut writer);
                });
            }
        }
    }
    Ok(())
}

fn bad_proto(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A worker-local invariant store backing the `store_get`/`store_put` wire
/// sync: a throwaway temp directory (no shared filesystem required) plus
/// the content fingerprints of everything already exchanged with the
/// coordinator, so each direction ships only files whose bytes changed.
///
/// Sync state is maintained incrementally — a pull refreshes only the
/// files it imported, a push re-reads only files whose `(len, mtime)`
/// stamp moved since the last exchange — so a warm no-change job costs a
/// handful of `stat` calls, not a full store read.
struct SyncStore {
    store: Arc<InvariantStore>,
    dir: PathBuf,
    /// Content fingerprint of each local file as of the last exchange;
    /// doubles as the `have` inventory sent with `store_get`.
    synced: HashMap<String, u64>,
    /// `(len, mtime_nanos)` of each local file at the last exchange: the
    /// cheap change detector deciding which files a push re-reads. A write
    /// that preserves both length and timestamp slips past it — the entry
    /// merely fails to propagate this round (store entries are warm-start
    /// hints, never required for soundness).
    meta: HashMap<String, (u64, u128)>,
    /// Coordinator store generation as of the last *complete* pull; 0
    /// before the first. When it still matches, the coordinator answers
    /// `store_get` without touching its disk.
    gen: u64,
}

impl SyncStore {
    fn create() -> io::Result<SyncStore> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "astree-fleet-sync-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = Arc::new(InvariantStore::open(&dir)?);
        Ok(SyncStore { store, dir, synced: HashMap::new(), meta: HashMap::new(), gen: 0 })
    }

    /// `(len, mtime_nanos)` of a local store file, if it exists.
    fn stat(&self, name: &str) -> Option<(u64, u128)> {
        let md = std::fs::metadata(self.dir.join(name)).ok()?;
        let mtime = md.modified().ok()?.duration_since(std::time::UNIX_EPOCH).ok()?.as_nanos();
        Some((md.len(), mtime))
    }

    /// Re-reads `name` and refreshes its sync state (or drops it when the
    /// file is gone).
    fn refresh(&mut self, name: &str) {
        match self.store.export_file(name) {
            Some(text) => {
                self.synced.insert(name.to_string(), content_fingerprint(&text));
                if let Some(m) = self.stat(name) {
                    self.meta.insert(name.to_string(), m);
                }
            }
            None => {
                self.synced.remove(name);
                self.meta.remove(name);
            }
        }
    }

    /// Asks the coordinator for store files this worker does not hold yet
    /// and imports the reply, repeating while the coordinator reports the
    /// sync incomplete (each round ships up to [`SYNC_BYTES_CAP`] of new
    /// content) so a capped exchange cannot cost this job its warm start.
    fn pull(
        &mut self,
        seq: u64,
        reader: &mut dyn BufRead,
        writer: &mut dyn Write,
    ) -> io::Result<()> {
        for _ in 0..8 {
            if self.pull_once(seq, reader, writer)? {
                break;
            }
        }
        Ok(())
    }

    /// One `store_get`/`store_files` exchange; returns whether the
    /// coordinator reported the sync complete.
    fn pull_once(
        &mut self,
        seq: u64,
        reader: &mut dyn BufRead,
        writer: &mut dyn Write,
    ) -> io::Result<bool> {
        let have = Json::Arr(
            self.synced
                .iter()
                .map(|(n, fp)| Json::Arr(vec![Json::str(n), Json::UInt(*fp)]))
                .collect(),
        );
        write_frame(
            writer,
            &Json::obj([
                ("frame", Json::str("store_get")),
                ("seq", Json::UInt(seq)),
                ("gen", Json::UInt(self.gen)),
                ("have", have),
            ]),
        )?;
        let reply = read_frame(reader)?
            .ok_or_else(|| bad_proto("coordinator went away mid store sync".into()))?;
        if reply.get("frame").and_then(Json::as_str) != Some("store_files") {
            return Err(bad_proto(format!("expected store_files, got {}", reply.to_compact())));
        }
        if let Some(Json::Arr(files)) = reply.get("files") {
            for item in files {
                let Json::Arr(kv) = item else { continue };
                if let (Some(name), Some(text)) =
                    (kv.first().and_then(Json::as_str), kv.get(1).and_then(Json::as_str))
                {
                    let name = name.to_string();
                    self.store.import_file(&name, text);
                    // Refresh from the merged local bytes, not the shipped
                    // text — an import into existing content merges.
                    self.refresh(&name);
                }
            }
        }
        let complete = reply.get("complete").and_then(Json::as_bool).unwrap_or(true);
        if complete {
            self.gen = reply.get("gen").and_then(Json::as_u64).unwrap_or(0);
        }
        Ok(complete)
    }

    /// Ships files the job changed back to the coordinator, bounded by
    /// [`SYNC_BYTES_CAP`] per frame (files left behind ride a later job's
    /// push).
    fn push(&mut self, seq: u64, writer: &mut dyn Write) -> io::Result<()> {
        let names = self.store.file_names();
        // Drop sync state for files the store no longer holds, so the
        // `have` inventory never claims something this worker cannot serve.
        let live: std::collections::HashSet<&str> = names.iter().map(String::as_str).collect();
        self.synced.retain(|n, _| live.contains(n.as_str()));
        self.meta.retain(|n, _| live.contains(n.as_str()));

        let mut files = Vec::new();
        let mut bytes = 0usize;
        for name in &names {
            let cur = self.stat(name);
            if cur.is_some() && cur == self.meta.get(name.as_str()).copied() {
                continue; // stamp unchanged: the job did not touch this file
            }
            let Some(text) = self.store.export_file(name) else { continue };
            let fp = content_fingerprint(&text);
            if self.synced.get(name.as_str()) == Some(&fp) {
                // Metadata churn without a content change: remember the
                // new stamp so the next push skips the re-read.
                if let Some(m) = cur {
                    self.meta.insert(name.clone(), m);
                }
                continue;
            }
            if bytes + text.len() > SYNC_BYTES_CAP {
                continue;
            }
            bytes += text.len();
            self.synced.insert(name.clone(), fp);
            if let Some(m) = cur {
                self.meta.insert(name.clone(), m);
            }
            files.push(Json::Arr(vec![Json::str(name), Json::str(text)]));
        }
        if files.is_empty() {
            return Ok(());
        }
        write_frame(
            writer,
            &Json::obj([
                ("frame", Json::str("store_put")),
                ("seq", Json::UInt(seq)),
                ("files", Json::Arr(files)),
            ]),
        )
    }
}

impl Drop for SyncStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The per-connection loop shared by both entry points.
pub fn serve_conn(reader: &mut dyn BufRead, writer: &mut dyn Write) -> io::Result<()> {
    let Some(init) = read_frame(reader)? else {
        return Ok(()); // coordinator went away before init
    };
    if init.get("proto").and_then(Json::as_str) != Some(FLEET_PROTO) {
        return Err(bad_proto(format!("expected proto {FLEET_PROTO:?} in init frame")));
    }
    let config = init
        .get("config")
        .ok_or_else(|| bad_proto("init frame without config".into()))
        .and_then(|c| config_from_json(c).map_err(bad_proto))?;
    // A shared cache directory wins over wire sync: when the coordinator
    // names one, this worker can already see the coordinator's store
    // through the filesystem and the wire exchange would be redundant.
    let mut sync: Option<SyncStore> = None;
    let cache = match init.get("cache_dir").and_then(Json::as_str) {
        Some(dir) => Some(Arc::new(InvariantStore::open(dir)?)),
        None if init.get("store_sync").and_then(Json::as_bool) == Some(true) => {
            let s = SyncStore::create()?;
            let store = Arc::clone(&s.store);
            sync = Some(s);
            Some(store)
        }
        None => None,
    };
    let crash_on = init.get("crash_on").and_then(Json::as_str).map(str::to_string);

    write_frame(
        writer,
        &Json::obj([("frame", Json::str("ready")), ("pid", Json::UInt(std::process::id() as u64))]),
    )?;

    while let Some(frame) = read_frame(reader)? {
        match frame.get("frame").and_then(Json::as_str) {
            Some("job") => {
                let seq = frame
                    .get("seq")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad_proto("job frame without seq".into()))?;
                let spec = frame
                    .get("spec")
                    .ok_or_else(|| bad_proto("job frame without spec".into()))
                    .and_then(|s| spec_from_json(s).map_err(bad_proto))?;
                if crash_on.as_deref() == Some(spec.name.as_str()) {
                    // Fault injection: die exactly like a segfaulting worker
                    // would — no unwinding, no reply, no cleanup.
                    std::process::abort();
                }
                if let Some(sync) = sync.as_mut() {
                    sync.pull(seq, reader, writer)?;
                }
                let ctx = ExecContext {
                    config: &config,
                    cache: cache.clone(),
                    recorder: None,
                    pool: None,
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| execute(&spec, &ctx)))
                    .unwrap_or_else(|payload| {
                        let mut out = JobOutcome::empty(spec.name.clone(), JobStatus::Panicked);
                        out.detail = Some(panic_message(payload.as_ref()));
                        out
                    });
                if let Some(sync) = sync.as_mut() {
                    sync.push(seq, writer)?;
                }
                write_frame(
                    writer,
                    &Json::obj([
                        ("frame", Json::str("done")),
                        ("seq", Json::UInt(seq)),
                        ("outcome", outcome_to_json(&outcome)),
                    ]),
                )?;
            }
            Some("bye") => return Ok(()),
            other => return Err(bad_proto(format!("unexpected frame kind {other:?}"))),
        }
    }
    Ok(())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::wire::{config_to_json, outcome_from_json, spec_to_json};
    use astree_core::AnalysisConfig;
    use std::io::BufReader;

    #[test]
    fn conversation_over_in_memory_pipes() {
        let config = AnalysisConfig::default();
        let spec = JobSpec::new("ok", "int main() { int x = 1; return x; }\n");
        let mut request = Vec::new();
        write_frame(
            &mut request,
            &Json::obj([
                ("proto", Json::str(FLEET_PROTO)),
                ("frame", Json::str("init")),
                ("config", config_to_json(&config)),
                ("cache_dir", Json::Null),
                ("crash_on", Json::Null),
            ]),
        )
        .unwrap();
        write_frame(
            &mut request,
            &Json::obj([
                ("frame", Json::str("job")),
                ("seq", Json::UInt(0)),
                ("spec", spec_to_json(&spec)),
            ]),
        )
        .unwrap();
        write_frame(&mut request, &Json::obj([("frame", Json::str("bye"))])).unwrap();

        let mut reader = BufReader::new(&request[..]);
        let mut response = Vec::new();
        serve_conn(&mut reader, &mut response).unwrap();

        let mut r = BufReader::new(&response[..]);
        let ready = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(ready.get("frame").and_then(Json::as_str), Some("ready"));
        let done = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(done.get("frame").and_then(Json::as_str), Some("done"));
        assert_eq!(done.get("seq").and_then(Json::as_u64), Some(0));
        let outcome = outcome_from_json(done.get("outcome").unwrap()).unwrap();
        assert_eq!(outcome.status, JobStatus::Done);
        assert_eq!(outcome.alarms, Some(0));
    }

    #[test]
    fn wrong_proto_is_rejected() {
        let mut request = Vec::new();
        write_frame(&mut request, &Json::obj([("proto", Json::str("bogus/9"))])).unwrap();
        let mut reader = BufReader::new(&request[..]);
        let mut response = Vec::new();
        assert!(serve_conn(&mut reader, &mut response).is_err());
    }
}
