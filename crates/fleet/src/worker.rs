//! The worker side of the `astree-fleet/1` protocol.
//!
//! A worker is a dumb executor: it decodes the coordinator's `init` frame
//! into a base configuration and a shared store, then answers each `job`
//! frame with a `done` frame until `bye` or EOF. All scheduling lives in
//! the coordinator; the worker's only policy is panic containment (a
//! panicking job becomes a [`JobStatus::Panicked`] outcome, the worker
//! survives).
//!
//! Two entry points: [`serve_stdio`] speaks over stdin/stdout for local
//! child processes, [`serve_listener`] accepts fleet connections on a Unix
//! or TCP socket for remote workers, one thread per connection.

use crate::exec::{execute, ExecContext};
use crate::job::{JobOutcome, JobStatus};
use crate::proto::{read_frame, write_frame, Endpoint, FLEET_PROTO};
use crate::wire::{config_from_json, outcome_to_json, spec_from_json};
use astree_core::InvariantStore;
use astree_obs::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Serves one fleet conversation over stdin/stdout. Returns when the
/// coordinator says `bye` or closes the pipe.
pub fn serve_stdio() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_conn(&mut reader, &mut writer)
}

/// Binds `endpoint` and serves fleet conversations forever, one thread per
/// connection. A stale Unix socket file from a dead worker is replaced.
pub fn serve_listener(endpoint: &Endpoint) -> io::Result<()> {
    match endpoint {
        Endpoint::Unix(path) => {
            if path.exists() && UnixListener::bind(path).is_err() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            eprintln!("astree worker listening on {endpoint}");
            for conn in listener.incoming() {
                let conn = conn?;
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(conn.try_clone().expect("clone unix socket"));
                    let mut writer = conn;
                    let _ = serve_conn(&mut reader, &mut writer);
                });
            }
        }
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            eprintln!("astree worker listening on tcp:{}", listener.local_addr()?);
            for conn in listener.incoming() {
                let conn = conn?;
                conn.set_nodelay(true).ok();
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(conn.try_clone().expect("clone tcp socket"));
                    let mut writer = conn;
                    let _ = serve_conn(&mut reader, &mut writer);
                });
            }
        }
    }
    Ok(())
}

fn bad_proto(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The per-connection loop shared by both entry points.
pub fn serve_conn(reader: &mut dyn BufRead, writer: &mut dyn Write) -> io::Result<()> {
    let Some(init) = read_frame(reader)? else {
        return Ok(()); // coordinator went away before init
    };
    if init.get("proto").and_then(Json::as_str) != Some(FLEET_PROTO) {
        return Err(bad_proto(format!("expected proto {FLEET_PROTO:?} in init frame")));
    }
    let config = init
        .get("config")
        .ok_or_else(|| bad_proto("init frame without config".into()))
        .and_then(|c| config_from_json(c).map_err(bad_proto))?;
    let cache = match init.get("cache_dir").and_then(Json::as_str) {
        Some(dir) => Some(Arc::new(InvariantStore::open(dir)?)),
        None => None,
    };
    let crash_on = init.get("crash_on").and_then(Json::as_str).map(str::to_string);

    write_frame(
        writer,
        &Json::obj([("frame", Json::str("ready")), ("pid", Json::UInt(std::process::id() as u64))]),
    )?;

    while let Some(frame) = read_frame(reader)? {
        match frame.get("frame").and_then(Json::as_str) {
            Some("job") => {
                let seq = frame
                    .get("seq")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad_proto("job frame without seq".into()))?;
                let spec = frame
                    .get("spec")
                    .ok_or_else(|| bad_proto("job frame without spec".into()))
                    .and_then(|s| spec_from_json(s).map_err(bad_proto))?;
                if crash_on.as_deref() == Some(spec.name.as_str()) {
                    // Fault injection: die exactly like a segfaulting worker
                    // would — no unwinding, no reply, no cleanup.
                    std::process::abort();
                }
                let ctx = ExecContext {
                    config: &config,
                    cache: cache.clone(),
                    recorder: None,
                    pool: None,
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| execute(&spec, &ctx)))
                    .unwrap_or_else(|payload| {
                        let mut out = JobOutcome::empty(spec.name.clone(), JobStatus::Panicked);
                        out.detail = Some(panic_message(payload.as_ref()));
                        out
                    });
                write_frame(
                    writer,
                    &Json::obj([
                        ("frame", Json::str("done")),
                        ("seq", Json::UInt(seq)),
                        ("outcome", outcome_to_json(&outcome)),
                    ]),
                )?;
            }
            Some("bye") => return Ok(()),
            other => return Err(bad_proto(format!("unexpected frame kind {other:?}"))),
        }
    }
    Ok(())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::wire::{config_to_json, outcome_from_json, spec_to_json};
    use astree_core::AnalysisConfig;
    use std::io::BufReader;

    #[test]
    fn conversation_over_in_memory_pipes() {
        let config = AnalysisConfig::default();
        let spec = JobSpec::new("ok", "int main() { int x = 1; return x; }\n");
        let mut request = Vec::new();
        write_frame(
            &mut request,
            &Json::obj([
                ("proto", Json::str(FLEET_PROTO)),
                ("frame", Json::str("init")),
                ("config", config_to_json(&config)),
                ("cache_dir", Json::Null),
                ("crash_on", Json::Null),
            ]),
        )
        .unwrap();
        write_frame(
            &mut request,
            &Json::obj([
                ("frame", Json::str("job")),
                ("seq", Json::UInt(0)),
                ("spec", spec_to_json(&spec)),
            ]),
        )
        .unwrap();
        write_frame(&mut request, &Json::obj([("frame", Json::str("bye"))])).unwrap();

        let mut reader = BufReader::new(&request[..]);
        let mut response = Vec::new();
        serve_conn(&mut reader, &mut response).unwrap();

        let mut r = BufReader::new(&response[..]);
        let ready = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(ready.get("frame").and_then(Json::as_str), Some("ready"));
        let done = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(done.get("frame").and_then(Json::as_str), Some("done"));
        assert_eq!(done.get("seq").and_then(Json::as_u64), Some(0));
        let outcome = outcome_from_json(done.get("outcome").unwrap()).unwrap();
        assert_eq!(outcome.status, JobStatus::Done);
        assert_eq!(outcome.alarms, Some(0));
    }

    #[test]
    fn wrong_proto_is_rejected() {
        let mut request = Vec::new();
        write_frame(&mut request, &Json::obj([("proto", Json::str("bogus/9"))])).unwrap();
        let mut reader = BufReader::new(&request[..]);
        let mut response = Vec::new();
        assert!(serve_conn(&mut reader, &mut response).is_err());
    }
}
