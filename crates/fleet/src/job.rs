//! The one job shape every fan-out surface shares.
//!
//! `astree batch`, the serve daemon's batch requests and the fuzz
//! campaign used to carry three private job structs; they all now submit
//! [`JobSpec`]s and get [`JobOutcome`]s back, so the wire protocol, the
//! campaign reports and the CLI cannot drift on spelling or shape.

use astree_core::AnalysisConfig;
use astree_obs::FleetCounters;
use astree_oracle::{MemberOutcome, MemberSpec};
use std::time::Duration;

/// One fleet job: a named source plus per-job configuration overrides, and
/// optionally an oracle payload turning the job into a fuzz-campaign member.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name (file name, generated-program identifier, or member
    /// label).
    pub name: String,
    /// C source text (derived from the member spec for oracle jobs).
    pub source: String,
    /// Per-job configuration overrides, applied on top of the fleet's base
    /// configuration.
    pub overrides: ConfigOverrides,
    /// When set, the job runs the differential soundness oracle on this
    /// member instead of a plain analysis.
    pub oracle: Option<OracleJob>,
}

impl JobSpec {
    /// A plain analysis job with no overrides.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> JobSpec {
        JobSpec {
            name: name.into(),
            source: source.into(),
            overrides: ConfigOverrides::default(),
            oracle: None,
        }
    }
}

/// Per-job overrides of the fleet-level base [`AnalysisConfig`]. Every
/// field is optional; `None` keeps the base value. This is the same
/// subset the serve protocol's `config` object exposes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigOverrides {
    /// Overrides `max_clock`.
    pub max_clock: Option<i64>,
    /// Overrides `loop_unroll`.
    pub loop_unroll: Option<u32>,
    /// Overrides `jobs` (intra-analysis worker threads).
    pub jobs: Option<usize>,
    /// Overrides `enable_octagons`.
    pub octagons: Option<bool>,
    /// Overrides `enable_dtrees`.
    pub dtrees: Option<bool>,
    /// Overrides `enable_ellipsoids`.
    pub ellipsoids: Option<bool>,
    /// Overrides `enable_clocked`.
    pub clocked: Option<bool>,
    /// Overrides `enable_linearization`.
    pub linearize: Option<bool>,
    /// Functions *added* to `partitioned_functions`.
    pub partition: Vec<String>,
}

impl ConfigOverrides {
    /// `true` when no override is set.
    pub fn is_empty(&self) -> bool {
        *self == ConfigOverrides::default()
    }

    /// The base configuration with these overrides applied.
    pub fn apply(&self, base: &AnalysisConfig) -> AnalysisConfig {
        let mut cfg = base.clone();
        if let Some(v) = self.max_clock {
            cfg.max_clock = v;
        }
        if let Some(v) = self.loop_unroll {
            cfg.loop_unroll = v;
        }
        if let Some(v) = self.jobs {
            cfg.jobs = v.max(1);
        }
        if let Some(v) = self.octagons {
            cfg.enable_octagons = v;
        }
        if let Some(v) = self.dtrees {
            cfg.enable_dtrees = v;
        }
        if let Some(v) = self.ellipsoids {
            cfg.enable_ellipsoids = v;
        }
        if let Some(v) = self.clocked {
            cfg.enable_clocked = v;
        }
        if let Some(v) = self.linearize {
            cfg.enable_linearization = v;
        }
        for f in &self.partition {
            cfg.partitioned_functions.insert(f.clone());
        }
        cfg
    }
}

/// The oracle payload of a fuzz-campaign job: the member to analyze plus
/// the per-member campaign parameters (the corpus-level parameters stay
/// with the caller).
#[derive(Debug, Clone)]
pub struct OracleJob {
    /// The corpus member.
    pub spec: MemberSpec,
    /// Execution seeds fuzzed against the member.
    pub seeds: u64,
    /// Clock ticks per execution.
    pub ticks: u64,
    /// Interpreter step budget per execution.
    pub max_steps: u64,
    /// Shrink counterexamples before reporting.
    pub shrink: bool,
    /// Fault injection for tests (see `OracleConfig::debug_tighten_cell`).
    pub debug_tighten_cell: Option<String>,
}

/// How a fleet job ended. Serialized exclusively through [`JobStatus::slug`]
/// / [`JobStatus::from_slug`], so the serve wire protocol, campaign reports
/// and the CLI all spell outcomes identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobStatus {
    /// The job ran to completion.
    Done,
    /// The job's source failed to compile or validate.
    Failed,
    /// The job panicked (isolated; the worker kept serving).
    Panicked,
    /// The job exceeded the per-job timeout and was killed.
    TimedOut,
    /// The worker process died mid-job and the retry budget ran out.
    Crashed,
}

impl JobStatus {
    /// Every status, in slug order.
    pub const ALL: [JobStatus; 5] = [
        JobStatus::Done,
        JobStatus::Failed,
        JobStatus::Panicked,
        JobStatus::TimedOut,
        JobStatus::Crashed,
    ];

    /// The stable wire/report spelling.
    pub fn slug(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Panicked => "panicked",
            JobStatus::TimedOut => "timed-out",
            JobStatus::Crashed => "crashed",
        }
    }

    /// Parses a slug back; the inverse of [`JobStatus::slug`].
    pub fn from_slug(s: &str) -> Option<JobStatus> {
        JobStatus::ALL.into_iter().find(|k| k.slug() == s)
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Outcome of one fleet job, reported in submission order.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name as submitted.
    pub name: String,
    /// How the job ended.
    pub status: JobStatus,
    /// Number of alarms, when the job completed.
    pub alarms: Option<usize>,
    /// Rendered alarm lines, when the job completed (same `Display` as
    /// `astree analyze`, so reports diff byte-for-byte).
    pub alarm_lines: Vec<String>,
    /// Rendered main-loop invariant, when one was computed.
    pub main_invariant: Option<String>,
    /// Rendered main-loop census, when one was computed.
    pub main_census: Option<String>,
    /// The shared invariant store answered this job verbatim.
    pub cache_full_hit: bool,
    /// Loops installed from per-loop seeds on this job (cache telemetry,
    /// excluded from the stable report like every warm/cold-dependent
    /// field).
    pub loops_seeded: u64,
    /// Loops installed from cross-member portable seeds on this job
    /// (excluded from the stable report).
    pub seed_hits: u64,
    /// Wall-clock time the job occupied a worker.
    pub wall: Duration,
    /// Worker lane that ran the job (informational).
    pub worker: usize,
    /// Times the job was re-scattered after its worker died.
    pub resent: u32,
    /// Error detail for failed jobs (panic message or compile error).
    pub detail: Option<String>,
    /// Oracle outcome, for fuzz-campaign jobs that completed.
    pub oracle: Option<MemberOutcome>,
}

impl JobOutcome {
    /// A skeleton outcome for a job that produced no analysis result.
    pub fn empty(name: impl Into<String>, status: JobStatus) -> JobOutcome {
        JobOutcome {
            name: name.into(),
            status,
            alarms: None,
            alarm_lines: Vec::new(),
            main_invariant: None,
            main_census: None,
            cache_full_hit: false,
            loops_seeded: 0,
            seed_hits: 0,
            wall: Duration::ZERO,
            worker: 0,
            resent: 0,
            detail: None,
            oracle: None,
        }
    }
}

/// Aggregated outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-job outcomes in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock time of the whole fleet run.
    pub wall: Duration,
    /// Worker lanes used (in-process threads or worker processes).
    pub workers: usize,
    /// Sum of per-job wall times (the sequential cost).
    pub total_job_time: Duration,
    /// Coordinator counters (steals, re-sends, crashes, store hits, per
    /// worker busy time).
    pub counters: FleetCounters,
}

impl FleetReport {
    /// Number of jobs that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == JobStatus::Done).count()
    }

    /// Total alarms across completed jobs.
    pub fn total_alarms(&self) -> usize {
        self.outcomes.iter().filter_map(|o| o.alarms).sum()
    }

    /// Observed speedup (sequential cost over fleet wall time).
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.total_job_time.as_secs_f64() / self.wall.as_secs_f64()
    }

    /// A deterministic rendering of the run's *results* — names, statuses,
    /// alarms, invariants, censuses and oracle outcomes in submission order
    /// — excluding everything scheduling-dependent (wall times, worker
    /// indices, re-send counts, cache hits). Two runs of the same fleet at
    /// any worker count must produce byte-identical stable reports; the
    /// determinism tests and the `fleet-smoke` CI job diff exactly this.
    pub fn stable_report(&self) -> String {
        let mut out = String::from("fleet-report/1\n");
        for o in &self.outcomes {
            out.push_str(&format!("job {}\n", o.name));
            out.push_str(&format!("status {}\n", o.status.slug()));
            match o.alarms {
                Some(n) => out.push_str(&format!("alarms {n}\n")),
                None => out.push_str("alarms -\n"),
            }
            for line in &o.alarm_lines {
                out.push_str(&format!("alarm {line}\n"));
            }
            if let Some(inv) = &o.main_invariant {
                for line in inv.lines() {
                    out.push_str(&format!("invariant {line}\n"));
                }
            }
            if let Some(c) = &o.main_census {
                for line in c.lines() {
                    out.push_str(&format!("census {line}\n"));
                }
            }
            if let Some(d) = &o.detail {
                out.push_str(&format!("detail {}\n", d.replace('\n', " ")));
            }
            if let Some(m) = &o.oracle {
                out.push_str(&format!(
                    "oracle executions={} states={} inconclusive={}\n",
                    m.executions, m.states_checked, m.inconclusive
                ));
                for (k, n) in &m.alarms {
                    out.push_str(&format!("oracle-alarm {k} {n}\n"));
                }
                for d in &m.divergences {
                    out.push_str(&format!(
                        "oracle-divergence seed={} stmt={} tick={} shrunk={} {:?}\n",
                        d.exec_seed, d.stmt, d.tick, d.shrunk, d.kind
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_slugs_round_trip() {
        for s in JobStatus::ALL {
            assert_eq!(JobStatus::from_slug(s.slug()), Some(s));
        }
        assert_eq!(JobStatus::from_slug("nope"), None);
        assert_eq!(JobStatus::TimedOut.to_string(), "timed-out");
    }

    #[test]
    fn overrides_apply_on_top_of_base() {
        let base = AnalysisConfig::default();
        let ov = ConfigOverrides {
            max_clock: Some(99),
            octagons: Some(false),
            partition: vec!["main".into()],
            ..ConfigOverrides::default()
        };
        assert!(!ov.is_empty());
        let cfg = ov.apply(&base);
        assert_eq!(cfg.max_clock, 99);
        assert!(!cfg.enable_octagons);
        assert!(cfg.partitioned_functions.contains("main"));
        assert_eq!(cfg.loop_unroll, base.loop_unroll);
        assert!(ConfigOverrides::default().is_empty());
    }

    #[test]
    fn stable_report_excludes_scheduling_noise() {
        let mut a = JobOutcome::empty("j", JobStatus::Done);
        a.alarms = Some(0);
        let mut b = a.clone();
        b.wall = Duration::from_secs(5);
        b.worker = 3;
        b.resent = 2;
        b.cache_full_hit = true;
        b.loops_seeded = 4;
        b.seed_hits = 2;
        let ra = FleetReport {
            outcomes: vec![a],
            wall: Duration::from_secs(1),
            workers: 1,
            total_job_time: Duration::from_secs(1),
            counters: FleetCounters::default(),
        };
        let rb = FleetReport {
            outcomes: vec![b],
            wall: Duration::from_secs(9),
            workers: 4,
            total_job_time: Duration::from_secs(2),
            counters: FleetCounters::default(),
        };
        assert_eq!(ra.stable_report(), rb.stable_report());
    }
}
