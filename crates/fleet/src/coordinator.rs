//! The fleet coordinator: scatters jobs over worker lanes, steals work
//! between them, and survives worker crashes.
//!
//! Each lane drives one [`Transport`] — a local child process or a remote
//! socket — through the `astree-fleet/1` conversation:
//!
//! ```text
//! coordinator → worker   init        {proto, config, cache_dir, store_sync, crash_on}
//! worker → coordinator   ready       {pid}
//! coordinator → worker   job         {seq, spec}          (repeated)
//! worker → coordinator   store_get   {seq, have}          (syncing workers, before the solve)
//! coordinator → worker   store_files {seq, files}
//! worker → coordinator   store_put   {seq, files}         (after the solve, when changed)
//! worker → coordinator   done        {seq, outcome}       (one per job)
//! coordinator → worker   bye
//! ```
//!
//! Scheduling is deterministic in *outcome*, not in placement: jobs are
//! scattered to the least-loaded lane (an EWMA of per-lane service time
//! weights queue depth; with no history it degenerates to round-robin), an
//! idle lane steals from the back of the richest queue, and results land
//! in a slot table indexed by submission order, so the report is
//! byte-identical at any worker count even though which lane ran which job
//! is timing-dependent.
//!
//! Isolation policy: a worker that misses its deadline is killed and its
//! job reported [`JobStatus::TimedOut`]; a worker that dies mid-job has the
//! job re-scattered to another live lane (front of queue, so it runs next)
//! while the lane respawns its worker, until the per-job retry budget is
//! exhausted and the job is reported [`JobStatus::Crashed`].

use crate::job::{JobOutcome, JobSpec, JobStatus};
use crate::proto::{read_frame, write_frame, Endpoint, FLEET_PROTO, SYNC_BYTES_CAP};
use crate::wire::{config_to_json, content_fingerprint, outcome_from_json, spec_to_json};
use astree_core::{AnalysisConfig, InvariantStore};
use astree_obs::{FleetCounters, FleetWorkerCounters, Json};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a freshly started worker gets to answer `init` with `ready`.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// One worker connection the coordinator can start, feed frames, and kill.
///
/// `start` may be called again after a failure: process transports spawn a
/// fresh child, socket transports reconnect. Each call returns the read
/// half for a *new* reader thread, so frames from a dead incarnation can
/// never be attributed to its replacement.
pub trait Transport: Send {
    /// Starts (or restarts) the worker and returns its frame stream.
    fn start(&mut self) -> io::Result<Box<dyn Read + Send>>;
    /// Sends one frame to the worker.
    fn send(&mut self, frame: &Json) -> io::Result<()>;
    /// Forcibly terminates the connection (and the child, if local).
    fn kill(&mut self);
    /// Human-readable identity for error messages.
    fn describe(&self) -> String;
}

/// A local `astree worker --stdio` child process.
pub struct ProcessTransport {
    cmd: Vec<String>,
    child: Option<Child>,
}

impl ProcessTransport {
    /// `cmd` is the argv to spawn; the fleet protocol runs over its
    /// stdin/stdout, stderr is inherited for debuggability.
    pub fn new(cmd: Vec<String>) -> ProcessTransport {
        assert!(!cmd.is_empty(), "worker command must not be empty");
        ProcessTransport { cmd, child: None }
    }
}

impl Transport for ProcessTransport {
    fn start(&mut self) -> io::Result<Box<dyn Read + Send>> {
        self.kill();
        let mut child = Command::new(&self.cmd[0])
            .args(&self.cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        self.child = Some(child);
        Ok(Box::new(stdout))
    }

    fn send(&mut self, frame: &Json) -> io::Result<()> {
        let child = self
            .child
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "worker not started"))?;
        let stdin = child
            .stdin
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin closed"))?;
        write_frame(stdin, frame)
    }

    fn kill(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn describe(&self) -> String {
        format!("process `{}`", self.cmd.join(" "))
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        self.kill();
    }
}

enum RawStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// A remote worker reached over a Unix or TCP socket (an
/// `astree worker --socket PATH` / `--listen ADDR` listener).
pub struct SocketTransport {
    endpoint: Endpoint,
    stream: Option<(RawStream, Box<dyn Write + Send>)>,
}

impl SocketTransport {
    pub fn new(endpoint: Endpoint) -> SocketTransport {
        SocketTransport { endpoint, stream: None }
    }
}

impl Transport for SocketTransport {
    fn start(&mut self) -> io::Result<Box<dyn Read + Send>> {
        self.kill();
        match &self.endpoint {
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                let reader = s.try_clone()?;
                let writer = s.try_clone()?;
                self.stream = Some((RawStream::Unix(s), Box::new(writer)));
                Ok(Box::new(reader))
            }
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true).ok();
                let reader = s.try_clone()?;
                let writer = s.try_clone()?;
                self.stream = Some((RawStream::Tcp(s), Box::new(writer)));
                Ok(Box::new(reader))
            }
        }
    }

    fn send(&mut self, frame: &Json) -> io::Result<()> {
        let (_, writer) = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "not connected"))?;
        write_frame(writer.as_mut(), frame)
    }

    fn kill(&mut self) {
        if let Some((raw, _)) = self.stream.take() {
            match raw {
                RawStream::Unix(s) => drop(s.shutdown(Shutdown::Both)),
                RawStream::Tcp(s) => drop(s.shutdown(Shutdown::Both)),
            }
        }
    }

    fn describe(&self) -> String {
        format!("socket {}", self.endpoint)
    }
}

/// Coordinator-side knobs, separate from the per-job analysis config.
pub struct FleetConfig<'a> {
    /// Base analysis configuration shipped to every worker's `init` frame.
    pub config: &'a AnalysisConfig,
    /// Directory of the shared invariant store, if the fleet has one and
    /// workers can reach it through the filesystem.
    pub cache_dir: Option<PathBuf>,
    /// The coordinator's own open invariant store, when workers should
    /// sync against it over the wire instead of a shared filesystem
    /// (`store_get`/`store_put` frames). Mutually exclusive with
    /// `cache_dir` in practice: a worker that can see the directory skips
    /// the wire exchange.
    pub store: Option<Arc<InvariantStore>>,
    /// Per-job deadline; a worker that misses it is killed.
    pub timeout: Option<Duration>,
    /// How many times a crashed job is re-scattered before giving up.
    pub retry_budget: u32,
    /// Fault injection for tests: the first worker of lane 0 aborts when it
    /// receives the job with this name. Respawns never inherit it.
    #[doc(hidden)]
    pub crash_on: Option<String>,
}

struct Shared {
    queues: Vec<VecDeque<usize>>,
    live: Vec<bool>,
    outcomes: Vec<Option<JobOutcome>>,
    retries: Vec<u32>,
    completed: usize,
    total: usize,
    counters: FleetCounters,
    /// Exponentially-weighted moving average of each lane's job service
    /// time in nanoseconds (α = 0.3); zero until the lane completes its
    /// first job.
    ewma: Vec<u64>,
}

/// The lane a fresh job should land on: the least-loaded live lane, where
/// load is queued depth weighted by the lane's EWMA service time. Before
/// any job completes every EWMA is zero and this degenerates to shortest
/// queue (round-robin at fill time).
fn scatter_lane(s: &Shared, exclude: Option<usize>) -> Option<usize> {
    (0..s.queues.len())
        .filter(|&l| s.live[l] && Some(l) != exclude)
        .min_by_key(|&l| (s.queues[l].len() as u64 + 1) * s.ewma[l].max(1))
}

struct Board {
    state: Mutex<Shared>,
    cv: Condvar,
    /// Monotonic generation of the coordinator store's contents, bumped on
    /// every wire import that changed a file (starts at 1 so a worker's
    /// initial `gen: 0` never matches). A `store_get` carrying the current
    /// generation is answered empty without touching the disk.
    store_gen: AtomicU64,
    /// Cached content fingerprints of the coordinator store's files,
    /// refreshed per file on import, so repeated pulls only re-read files
    /// they actually ship.
    store_fps: Mutex<HashMap<String, u64>>,
}

/// Runs `jobs` across the given worker lanes and returns their outcomes in
/// submission order plus the fleet counters.
///
/// Every job gets an outcome — [`JobStatus::Crashed`] with a detail message
/// in the worst case — so the caller never has to handle holes.
pub fn run_fleet(
    jobs: &[JobSpec],
    transports: Vec<Box<dyn Transport>>,
    cfg: &FleetConfig<'_>,
) -> (Vec<JobOutcome>, FleetCounters) {
    let lanes = transports.len();
    assert!(lanes > 0, "run_fleet needs at least one transport");
    // Initial scatter: least-loaded lane. With no timing history yet this
    // is exactly round-robin; the EWMA weighting matters when a job is
    // re-scattered mid-run (see `scatter_lane`).
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
    for i in 0..jobs.len() {
        let lane = (0..lanes).min_by_key(|&l| queues[l].len()).unwrap();
        queues[lane].push_back(i);
    }
    let counters = FleetCounters {
        workers: lanes as u64,
        processes: true,
        jobs: jobs.len() as u64,
        per_worker: vec![FleetWorkerCounters::default(); lanes],
        ..FleetCounters::default()
    };
    let board = Board {
        state: Mutex::new(Shared {
            queues,
            live: vec![true; lanes],
            outcomes: (0..jobs.len()).map(|_| None).collect(),
            retries: vec![0; jobs.len()],
            completed: 0,
            total: jobs.len(),
            counters,
            ewma: vec![0; lanes],
        }),
        cv: Condvar::new(),
        store_gen: AtomicU64::new(1),
        store_fps: Mutex::new(HashMap::new()),
    };

    std::thread::scope(|scope| {
        for (idx, transport) in transports.into_iter().enumerate() {
            let board = &board;
            scope.spawn(move || lane(idx, transport, jobs, board, cfg));
        }
    });

    let shared = board.state.into_inner().unwrap();
    let outcomes = shared
        .outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.unwrap_or_else(|| {
                let mut out = JobOutcome::empty(jobs[i].name.clone(), JobStatus::Crashed);
                out.detail = Some("job lost: all lanes exited".into());
                out
            })
        })
        .collect();
    (outcomes, shared.counters)
}

fn init_frame(cfg: &FleetConfig<'_>, crash_on: Option<&str>) -> Json {
    Json::obj([
        ("proto", Json::str(FLEET_PROTO)),
        ("frame", Json::str("init")),
        ("config", config_to_json(cfg.config)),
        (
            "cache_dir",
            cfg.cache_dir.as_ref().map_or(Json::Null, |p| Json::str(p.display().to_string())),
        ),
        ("store_sync", Json::Bool(cfg.store.is_some())),
        ("crash_on", crash_on.map_or(Json::Null, Json::str)),
    ])
}

/// Answers a worker's `store_get`: every coordinator store file whose
/// content fingerprint differs from what the worker reports holding,
/// bounded by [`SYNC_BYTES_CAP`] per reply (`complete: false` tells the
/// worker to pull again for the remainder). A worker already at the
/// current store generation gets an empty reply without any disk reads.
fn store_files_reply(frame: &Json, cfg: &FleetConfig<'_>, board: &Board) -> Json {
    let seq = frame.get("seq").and_then(Json::as_u64).unwrap_or(0);
    // Read the generation before walking the directory: a concurrent
    // import makes the worker record a stale generation and simply pull
    // again next job.
    let gen_now = board.store_gen.load(Ordering::SeqCst);
    let reply = |files: Vec<Json>, complete: bool| {
        Json::obj([
            ("frame", Json::str("store_files")),
            ("seq", Json::UInt(seq)),
            ("gen", Json::UInt(gen_now)),
            ("complete", Json::Bool(complete)),
            ("files", Json::Arr(files)),
        ])
    };
    if frame.get("gen").and_then(Json::as_u64) == Some(gen_now) {
        return reply(Vec::new(), true);
    }
    let mut have: HashMap<&str, u64> = HashMap::new();
    if let Some(Json::Arr(items)) = frame.get("have") {
        for item in items {
            if let Json::Arr(kv) = item {
                if let (Some(name), Some(fp)) =
                    (kv.first().and_then(Json::as_str), kv.get(1).and_then(Json::as_u64))
                {
                    have.insert(name, fp);
                }
            }
        }
    }
    let mut files = Vec::new();
    let mut bytes = 0usize;
    let mut complete = true;
    if let Some(store) = &cfg.store {
        let mut fps = board.store_fps.lock().unwrap();
        for name in store.file_names() {
            let mut text = None;
            let fp = match fps.get(&name).copied() {
                Some(fp) => fp,
                None => {
                    let Some(t) = store.export_file(&name) else { continue };
                    let fp = content_fingerprint(&t);
                    fps.insert(name.clone(), fp);
                    text = Some(t);
                    fp
                }
            };
            if have.get(name.as_str()) == Some(&fp) {
                continue;
            }
            let Some(text) = text.or_else(|| store.export_file(&name)) else { continue };
            if bytes + text.len() > SYNC_BYTES_CAP {
                complete = false;
                continue;
            }
            bytes += text.len();
            files.push(Json::Arr(vec![Json::str(&name), Json::str(text)]));
        }
    }
    if !files.is_empty() {
        board.state.lock().unwrap().counters.store_gets += files.len() as u64;
    }
    reply(files, complete)
}

/// Handles a worker's `store_put`: merges each shipped file into the
/// coordinator's store (the store's own import dedup makes replays free)
/// and, when anything changed, refreshes the fingerprint cache and bumps
/// the store generation so other workers' pulls see the new content.
fn store_import(frame: &Json, cfg: &FleetConfig<'_>, board: &Board) {
    let Some(store) = &cfg.store else { return };
    let mut imported = 0u64;
    if let Some(Json::Arr(items)) = frame.get("files") {
        for item in items {
            if let Json::Arr(kv) = item {
                if let (Some(name), Some(text)) =
                    (kv.first().and_then(Json::as_str), kv.get(1).and_then(Json::as_str))
                {
                    if store.import_file(name, text) {
                        imported += 1;
                        // Fingerprint the merged on-disk bytes, not the
                        // shipped text — the import may have merged.
                        let mut fps = board.store_fps.lock().unwrap();
                        match store.export_file(name) {
                            Some(merged) => {
                                fps.insert(name.to_string(), content_fingerprint(&merged))
                            }
                            None => fps.remove(name),
                        };
                    }
                }
            }
        }
    }
    if imported > 0 {
        board.store_gen.fetch_add(1, Ordering::SeqCst);
        board.state.lock().unwrap().counters.store_puts += imported;
    }
}

/// Starts the transport, spawns a dedicated reader thread, performs the
/// init/ready handshake, and returns the frame receiver.
fn spawn_worker(
    transport: &mut dyn Transport,
    cfg: &FleetConfig<'_>,
    crash_on: Option<&str>,
) -> Result<Receiver<Json>, String> {
    let reader = transport.start().map_err(|e| format!("{}: {e}", transport.describe()))?;
    let (tx, rx): (Sender<Json>, Receiver<Json>) = mpsc::channel();
    std::thread::spawn(move || {
        let mut r = BufReader::new(reader);
        while let Ok(Some(frame)) = read_frame(&mut r) {
            if tx.send(frame).is_err() {
                break; // coordinator lost interest (lane respawned or done)
            }
        }
        // EOF or malformed frame: dropping `tx` disconnects the lane.
    });
    transport
        .send(&init_frame(cfg, crash_on))
        .map_err(|e| format!("{}: init: {e}", transport.describe()))?;
    let deadline = cfg.timeout.unwrap_or(HANDSHAKE_TIMEOUT).max(HANDSHAKE_TIMEOUT);
    match rx.recv_timeout(deadline) {
        Ok(frame) if frame.get("frame").and_then(Json::as_str) == Some("ready") => Ok(rx),
        Ok(frame) => {
            Err(format!("{}: expected ready, got {}", transport.describe(), frame.to_compact()))
        }
        Err(_) => Err(format!("{}: no ready within {deadline:?}", transport.describe())),
    }
}

/// Claims the next job for `idx`: own queue first, then the richest other
/// queue (a steal), otherwise blocks until work appears or the fleet is
/// done. `None` means done.
fn claim_job(idx: usize, board: &Board) -> Option<usize> {
    let mut s = board.state.lock().unwrap();
    loop {
        if s.completed == s.total {
            return None;
        }
        if let Some(i) = s.queues[idx].pop_front() {
            return Some(i);
        }
        let victim = (0..s.queues.len())
            .filter(|&l| l != idx && !s.queues[l].is_empty())
            .max_by_key(|&l| s.queues[l].len());
        if let Some(v) = victim {
            let i = s.queues[v].pop_back().unwrap();
            s.counters.steals += 1;
            s.counters.per_worker[idx].steals += 1;
            return Some(i);
        }
        s = board.cv.wait(s).unwrap();
    }
}

/// Records a terminal outcome for `job_idx` and wakes every lane.
fn complete(idx: usize, job_idx: usize, mut outcome: JobOutcome, busy: Duration, board: &Board) {
    let mut s = board.state.lock().unwrap();
    outcome.worker = idx;
    outcome.resent = s.retries[job_idx];
    s.counters.per_worker[idx].jobs += 1;
    s.counters.per_worker[idx].busy_nanos += busy.as_nanos() as u64;
    let busy_nanos = busy.as_nanos() as u64;
    s.ewma[idx] =
        if s.ewma[idx] == 0 { busy_nanos } else { (3 * busy_nanos + 7 * s.ewma[idx]) / 10 };
    s.counters.per_worker[idx].ewma_nanos = s.ewma[idx];
    s.outcomes[job_idx] = Some(outcome);
    s.completed += 1;
    board.cv.notify_all();
}

/// Takes this lane out of service, rehoming its queued jobs — to another
/// live lane if one exists, otherwise each is reported crashed.
fn lane_dead(idx: usize, jobs: &[JobSpec], board: &Board, reason: &str) {
    let mut s = board.state.lock().unwrap();
    s.live[idx] = false;
    let orphans: Vec<usize> = s.queues[idx].drain(..).collect();
    let target = scatter_lane(&s, None);
    for i in orphans {
        match target {
            Some(t) => s.queues[t].push_back(i),
            None => {
                let mut out = JobOutcome::empty(jobs[i].name.clone(), JobStatus::Crashed);
                out.detail = Some(format!("no live workers left ({reason})"));
                out.worker = idx;
                out.resent = s.retries[i];
                s.outcomes[i] = Some(out);
                s.completed += 1;
            }
        }
    }
    board.cv.notify_all();
}

fn lane(
    idx: usize,
    mut transport: Box<dyn Transport>,
    jobs: &[JobSpec],
    board: &Board,
    cfg: &FleetConfig<'_>,
) {
    // Only the very first incarnation of lane 0 carries the crash knob, so
    // the respawned worker can finish the re-scattered job.
    let crash_on = if idx == 0 { cfg.crash_on.as_deref() } else { None };
    let mut rx = match spawn_worker(transport.as_mut(), cfg, crash_on) {
        Ok(rx) => rx,
        Err(reason) => {
            lane_dead(idx, jobs, board, &reason);
            return;
        }
    };

    while let Some(job_idx) = claim_job(idx, board) {
        let t0 = Instant::now();
        let frame = Json::obj([
            ("frame", Json::str("job")),
            ("seq", Json::UInt(job_idx as u64)),
            ("spec", spec_to_json(&jobs[job_idx])),
        ]);
        // Wait for the job's `done`, servicing store-sync frames as they
        // arrive (a syncing worker sends `store_get` before solving and
        // `store_put` after, both inside the job's deadline).
        let reply = match transport.send(&frame) {
            Ok(()) => {
                let deadline = cfg.timeout.map(|t| Instant::now() + t);
                loop {
                    let next = match deadline {
                        Some(d) => rx.recv_timeout(d.saturating_duration_since(Instant::now())),
                        None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                    };
                    match next {
                        Ok(f) => match f.get("frame").and_then(Json::as_str) {
                            Some("store_get") => {
                                if transport.send(&store_files_reply(&f, cfg, board)).is_err() {
                                    break Err(RecvTimeoutError::Disconnected);
                                }
                            }
                            Some("store_put") => store_import(&f, cfg, board),
                            _ => break Ok(f),
                        },
                        Err(e) => break Err(e),
                    }
                }
            }
            Err(_) => Err(RecvTimeoutError::Disconnected),
        };
        match reply {
            Ok(frame) => {
                let ok = frame.get("frame").and_then(Json::as_str) == Some("done")
                    && frame.get("seq").and_then(Json::as_u64) == Some(job_idx as u64);
                let outcome = if ok {
                    frame
                        .get("outcome")
                        .ok_or_else(|| "done frame without outcome".to_string())
                        .and_then(outcome_from_json)
                } else {
                    Err(format!("unexpected frame {}", frame.to_compact()))
                };
                match outcome {
                    Ok(out) => complete(idx, job_idx, out, t0.elapsed(), board),
                    Err(reason) => {
                        // A worker speaking garbage is as good as dead.
                        if !crash_recover(
                            idx,
                            job_idx,
                            jobs,
                            transport.as_mut(),
                            board,
                            cfg,
                            &mut rx,
                            &reason,
                        ) {
                            return;
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                transport.kill();
                let mut out = JobOutcome::empty(jobs[job_idx].name.clone(), JobStatus::TimedOut);
                out.detail = Some(format!("no response within {:?}", cfg.timeout.unwrap()));
                {
                    let mut s = board.state.lock().unwrap();
                    s.counters.timeouts += 1;
                }
                complete(idx, job_idx, out, t0.elapsed(), board);
                match spawn_worker(transport.as_mut(), cfg, None) {
                    Ok(next) => {
                        rx = next;
                        board.state.lock().unwrap().counters.respawns += 1;
                    }
                    Err(reason) => {
                        lane_dead(idx, jobs, board, &reason);
                        return;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let reason = format!("{} disconnected", transport.describe());
                if !crash_recover(
                    idx,
                    job_idx,
                    jobs,
                    transport.as_mut(),
                    board,
                    cfg,
                    &mut rx,
                    &reason,
                ) {
                    return;
                }
            }
        }
    }
    let _ = transport.send(&Json::obj([("frame", Json::str("bye"))]));
    transport.kill();
}

/// Crash path: charge the job's retry budget, re-scatter or fail it, and
/// respawn this lane's worker. Returns `false` if the lane could not be
/// revived (the caller must exit).
#[allow(clippy::too_many_arguments)]
fn crash_recover(
    idx: usize,
    job_idx: usize,
    jobs: &[JobSpec],
    transport: &mut dyn Transport,
    board: &Board,
    cfg: &FleetConfig<'_>,
    rx: &mut Receiver<Json>,
    reason: &str,
) -> bool {
    transport.kill();
    {
        let mut s = board.state.lock().unwrap();
        s.counters.crashes += 1;
        s.retries[job_idx] += 1;
        if s.retries[job_idx] > cfg.retry_budget {
            let mut out = JobOutcome::empty(jobs[job_idx].name.clone(), JobStatus::Crashed);
            out.detail = Some(format!("{reason}; retry budget of {} exhausted", cfg.retry_budget));
            out.worker = idx;
            out.resent = s.retries[job_idx] - 1;
            s.outcomes[job_idx] = Some(out);
            s.completed += 1;
        } else {
            // Front of the least-loaded other lane's queue so the orphan
            // runs next where it waits the shortest (EWMA-weighted); fall
            // back to our own queue (we are about to respawn).
            s.counters.resent += 1;
            let target = scatter_lane(&s, Some(idx)).unwrap_or(idx);
            s.queues[target].push_front(job_idx);
        }
        board.cv.notify_all();
    }
    match spawn_worker(transport, cfg, None) {
        Ok(next) => {
            *rx = next;
            board.state.lock().unwrap().counters.respawns += 1;
            true
        }
        Err(spawn_reason) => {
            lane_dead(idx, jobs, board, &spawn_reason);
            false
        }
    }
}
