//! The unified Fleet API: one builder for every fan-out surface.
//!
//! `astree batch`, the serve daemon's batch request, and `astree fuzz` all
//! construct a [`FleetSession`] and call [`FleetSessionBuilder::run`]. The
//! builder decides the execution strategy from its distribution knobs:
//!
//! - no workers, no endpoints → **in-process**: jobs run on this process's
//!   threads ([`astree_sched::run_batch`] when parallel or deadlined,
//!   inline with panic containment otherwise — the daemon's path, which
//!   can also borrow a resident [`WorkerPool`]);
//! - `workers(n)` / `connect(..)` → **fleet**: the coordinator scatters
//!   jobs over local `astree worker` child processes and/or remote socket
//!   workers, with work stealing and crash isolation.
//!
//! Outcomes are identical either way — same [`JobOutcome`] per job, in
//! submission order, byte-identical at any worker count. Only the
//! scheduling telemetry ([`FleetCounters`]) differs.

use crate::coordinator::{run_fleet, FleetConfig, ProcessTransport, SocketTransport, Transport};
use crate::exec::{execute, ExecContext};
use crate::job::{FleetReport, JobOutcome, JobSpec, JobStatus};
use crate::proto::Endpoint;
use astree_core::{AnalysisConfig, InvariantStore};
use astree_obs::{BatchJobEvent, FleetCounters, Recorder};
use astree_sched::{run_batch, BatchConfig, Job, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Entry point for fleet analysis; see the module docs.
pub struct FleetSession;

impl FleetSession {
    /// Starts building a fleet run.
    pub fn builder<'p>() -> FleetSessionBuilder<'p> {
        FleetSessionBuilder {
            jobs: Vec::new(),
            config: AnalysisConfig::default(),
            threads: 1,
            workers: 0,
            worker_cmd: None,
            connect: Vec::new(),
            timeout: None,
            retry_budget: 2,
            cache: None,
            cache_wire: false,
            recorder: None,
            pool: None,
            crash_on: None,
        }
    }
}

/// Builder for a fleet run; mirrors `AnalysisSession::builder`.
pub struct FleetSessionBuilder<'p> {
    jobs: Vec<JobSpec>,
    config: AnalysisConfig,
    threads: usize,
    workers: usize,
    worker_cmd: Option<Vec<String>>,
    connect: Vec<Endpoint>,
    timeout: Option<Duration>,
    retry_budget: u32,
    cache: Option<Arc<InvariantStore>>,
    cache_wire: bool,
    recorder: Option<Arc<dyn Recorder>>,
    pool: Option<&'p WorkerPool>,
    crash_on: Option<String>,
}

impl<'p> FleetSessionBuilder<'p> {
    /// Sets the job list (replacing any previous one).
    pub fn jobs(mut self, jobs: Vec<JobSpec>) -> Self {
        self.jobs = jobs;
        self
    }

    /// Appends one job.
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Base analysis configuration; each job's overrides apply on top.
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// In-process concurrency when no worker processes are configured
    /// (default 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of local worker *processes* to spawn (default 0: in-process).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Argv for local workers (default: this executable,
    /// `worker --stdio`).
    pub fn worker_cmd(mut self, cmd: Vec<String>) -> Self {
        self.worker_cmd = Some(cmd);
        self
    }

    /// Adds a remote worker endpoint (repeatable).
    pub fn connect(mut self, endpoint: Endpoint) -> Self {
        self.connect.push(endpoint);
        self
    }

    /// Per-job deadline. In the fleet, a worker missing it is killed.
    pub fn timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// How many times a crashed job is re-scattered before it is reported
    /// [`JobStatus::Crashed`] (default 2).
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Shared invariant store. In the fleet, workers open the same
    /// directory, so one worker's converged invariants warm every other.
    pub fn cache(mut self, store: Arc<InvariantStore>) -> Self {
        self.cache = Some(store);
        self
    }

    /// Syncs the store to fleet workers over the wire instead of a shared
    /// filesystem: workers never see the cache directory; they pull the
    /// coordinator's store files before each solve (`store_get`) and push
    /// what they changed back (`store_put`). No-op without a cache or for
    /// in-process runs (which share the store in memory anyway).
    pub fn cache_wire(mut self, on: bool) -> Self {
        self.cache_wire = on;
        self
    }

    /// Telemetry recorder: receives per-job `BatchJobEvent`s, fleet
    /// counters, and (in-process only) each analysis's own events.
    pub fn recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Resident slice pool for in-process sequential runs (the daemon's).
    pub fn pool(mut self, pool: &'p WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Fault injection for tests: the first worker of lane 0 aborts upon
    /// receiving the job with this name.
    #[doc(hidden)]
    pub fn crash_on(mut self, name: Option<String>) -> Self {
        self.crash_on = name;
        self
    }

    /// Runs the fleet and reports outcomes in submission order.
    pub fn run(self) -> FleetReport {
        let t0 = Instant::now();
        let recorder = self.recorder.clone();
        let (outcomes, mut counters) = if self.workers == 0 && self.connect.is_empty() {
            self.run_in_process()
        } else {
            self.run_distributed()
        };
        counters.store_full_hits = outcomes.iter().filter(|o| o.cache_full_hit).count() as u64;
        counters.loops_seeded = outcomes.iter().map(|o| o.loops_seeded).sum();
        counters.seed_hits = outcomes.iter().map(|o| o.seed_hits).sum();

        if let Some(rec) = &recorder {
            if rec.enabled() {
                for out in &outcomes {
                    rec.batch_job(&BatchJobEvent {
                        name: &out.name,
                        status: out.status.slug(),
                        reason: out.detail.as_deref(),
                        wall_nanos: out.wall.as_nanos() as u64,
                        worker: out.worker,
                        alarms: out.alarms.map(|n| n as u64),
                    });
                }
                rec.fleet(&counters);
            }
        }

        let total_job_time = outcomes.iter().map(|o| o.wall).sum();
        let workers = counters.workers as usize;
        FleetReport { outcomes, wall: t0.elapsed(), workers, total_job_time, counters }
    }

    fn run_distributed(self) -> (Vec<JobOutcome>, FleetCounters) {
        let cmd = self.worker_cmd.clone().unwrap_or_else(default_worker_cmd);
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        for _ in 0..self.workers {
            transports.push(Box::new(ProcessTransport::new(cmd.clone())));
        }
        for endpoint in &self.connect {
            transports.push(Box::new(SocketTransport::new(endpoint.clone())));
        }
        let cfg = FleetConfig {
            config: &self.config,
            cache_dir: if self.cache_wire {
                None
            } else {
                self.cache.as_ref().map(|s| s.dir().to_path_buf())
            },
            store: if self.cache_wire { self.cache.clone() } else { None },
            timeout: self.timeout,
            retry_budget: self.retry_budget,
            crash_on: self.crash_on.clone(),
        };
        run_fleet(&self.jobs, transports, &cfg)
    }

    fn run_in_process(self) -> (Vec<JobOutcome>, FleetCounters) {
        let n = self.jobs.len();
        let threads = self.threads.max(1).min(n.max(1));
        let counters = FleetCounters {
            workers: threads as u64,
            processes: false,
            jobs: n as u64,
            ..FleetCounters::default()
        };
        if threads <= 1 && self.timeout.is_none() {
            // Inline: keeps recorder and pool as plain borrows (the serve
            // daemon's path — its resident pool and per-connection
            // recorder are not `'static`).
            let ctx = ExecContext {
                config: &self.config,
                cache: self.cache.clone(),
                recorder: self.recorder.as_deref(),
                pool: self.pool,
            };
            let outcomes = self
                .jobs
                .iter()
                .map(|spec| {
                    catch_unwind(AssertUnwindSafe(|| execute(spec, &ctx))).unwrap_or_else(
                        |payload| {
                            let mut out = JobOutcome::empty(spec.name.clone(), JobStatus::Panicked);
                            out.detail = Some(panic_message(payload.as_ref()));
                            out
                        },
                    )
                })
                .collect();
            return (outcomes, counters);
        }

        // Threaded: `run_batch` wants `'static` closures, so shared parts
        // move in as clones/Arcs. The resident pool cannot cross.
        let config = self.config.clone();
        let cache = self.cache.clone();
        let recorder = self.recorder.clone();
        let jobs: Vec<Job<JobOutcome>> = self
            .jobs
            .iter()
            .map(|spec| {
                let spec = spec.clone();
                let config = config.clone();
                let cache = cache.clone();
                let recorder = recorder.clone();
                Job::new(spec.name.clone(), move || {
                    let ctx = ExecContext {
                        config: &config,
                        cache,
                        recorder: recorder.as_deref(),
                        pool: None,
                    };
                    execute(&spec, &ctx)
                })
            })
            .collect();
        let report = run_batch(&BatchConfig { workers: threads, timeout: self.timeout }, jobs);
        let outcomes = report
            .results
            .into_iter()
            .map(|r| {
                let mut out = match r.status {
                    astree_sched::JobStatus::Done(out) => out,
                    astree_sched::JobStatus::Panicked(msg) => {
                        let mut out = JobOutcome::empty(r.name, JobStatus::Panicked);
                        out.detail = Some(msg);
                        out
                    }
                    astree_sched::JobStatus::TimedOut => {
                        JobOutcome::empty(r.name, JobStatus::TimedOut)
                    }
                };
                out.wall = r.wall;
                out.worker = r.worker;
                out
            })
            .collect();
        (outcomes, counters)
    }
}

/// The default local worker: this very executable in `worker --stdio` mode.
fn default_worker_cmd() -> Vec<String> {
    let exe = std::env::current_exe().expect("cannot locate current executable for worker spawn");
    vec![exe.display().to_string(), "worker".into(), "--stdio".into()]
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ConfigOverrides;

    fn tiny_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::new("clean", "int x; void main(void) { x = 1; }"),
            JobSpec::new("div", "int x; int d; void main(void) { d = 0; x = 1 / d; }"),
            JobSpec::new("broken", "not C at all"),
        ]
    }

    #[test]
    fn in_process_inline_and_threaded_agree() {
        let inline = FleetSession::builder().jobs(tiny_jobs()).run();
        let threaded = FleetSession::builder().jobs(tiny_jobs()).threads(2).run();
        assert_eq!(inline.stable_report(), threaded.stable_report());
        assert_eq!(inline.outcomes.len(), 3);
        assert_eq!(inline.outcomes[0].alarms, Some(0));
        assert_eq!(inline.outcomes[1].alarms, Some(1));
        assert_eq!(inline.outcomes[2].status, JobStatus::Failed);
        assert_eq!(inline.completed(), 2);
        assert_eq!(inline.total_alarms(), 1);
        assert!(!inline.counters.processes);
    }

    #[test]
    fn overrides_flow_through_the_session() {
        let mut job = JobSpec::new("div", "int x; int d; void main(void) { d = 0; x = 1 / d; }");
        job.overrides = ConfigOverrides { octagons: Some(false), ..ConfigOverrides::default() };
        let report = FleetSession::builder().job(job).run();
        assert_eq!(report.outcomes[0].status, JobStatus::Done);
        assert_eq!(report.outcomes[0].alarms, Some(1));
    }
}
