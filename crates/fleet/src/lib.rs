//! Distributed fleet sharding: a process-level coordinator with work
//! stealing and a shared warm store, behind one unified Fleet API.
//!
//! The analyzer's fan-out surfaces — `astree batch`, the serve daemon's
//! batch request, and `astree fuzz` — all describe their work as
//! [`JobSpec`]s and run them through a [`FleetSession`]:
//!
//! ```
//! use astree_fleet::{FleetSession, JobSpec};
//!
//! let report = FleetSession::builder()
//!     .job(JobSpec::new("clean", "int x; void main(void) { x = 1; }"))
//!     .job(JobSpec::new("div", "int x; int d; void main(void) { d = 0; x = 1 / d; }"))
//!     .run();
//! assert_eq!(report.completed(), 2);
//! assert_eq!(report.total_alarms(), 1);
//! ```
//!
//! The same builder scales from that in-process run to a fleet of worker
//! processes (`.workers(4)`) and remote machines (`.connect(endpoint)`)
//! without changing what comes back: outcomes in submission order,
//! byte-identical at any worker count ([`FleetReport::stable_report`] is
//! the canonical digest). Workers share one content-addressed
//! [`InvariantStore`](astree_core::InvariantStore), so invariants converged
//! by one process warm every other.
//!
//! Module map — the layers of the fleet:
//!
//! - [`job`]: the vocabulary ([`JobSpec`], [`JobOutcome`], [`JobStatus`],
//!   [`FleetReport`]);
//! - [`exec`]: runs one job (shared by in-process and worker paths);
//! - [`proto`]: length-delimited JSON framing and [`Endpoint`]s (also
//!   reused by the serve daemon's `astree-serve/1`);
//! - [`wire`]: bit-exact codecs for configs, specs, and outcomes;
//! - [`coordinator`]: lanes, stealing, crash re-scatter ([`Transport`],
//!   [`ProcessTransport`], [`SocketTransport`]);
//! - [`worker`]: the `astree worker` serve loop;
//! - [`session`]: the [`FleetSession`] builder tying it together;
//! - [`corpus`]: fleet construction for generated members and oracle
//!   campaigns.

pub mod coordinator;
pub mod corpus;
pub mod exec;
pub mod job;
pub mod proto;
pub mod session;
pub mod wire;
pub mod worker;

pub use coordinator::{run_fleet, FleetConfig, ProcessTransport, SocketTransport, Transport};
pub use corpus::{campaign_from_outcomes, campaign_jobs, generated_jobs, parse_channels};
pub use exec::{execute, ExecContext};
pub use job::{ConfigOverrides, FleetReport, JobOutcome, JobSpec, JobStatus, OracleJob};
pub use proto::{read_frame, write_frame, Conn, Endpoint, FLEET_PROTO, MAX_FRAME};
pub use session::{FleetSession, FleetSessionBuilder};
pub use worker::{serve_listener, serve_stdio};
