//! Single-job execution: the one place a [`JobSpec`] is turned into a
//! [`JobOutcome`].
//!
//! Both sides of the process boundary share this path — the in-process
//! runner calls [`execute`] directly, a worker process calls it for each
//! `job` frame — which is what makes the fleet's determinism contract
//! cheap to keep: a job's outcome depends only on its spec and the base
//! configuration, never on which process ran it.

use crate::job::{JobOutcome, JobSpec, JobStatus};
use astree_core::{AnalysisConfig, AnalysisSession, InvariantStore};
use astree_frontend::Frontend;
use astree_obs::Recorder;
use astree_oracle::{run_member, OracleConfig};
use astree_sched::WorkerPool;
use std::sync::Arc;
use std::time::Instant;

/// Everything a job needs from its host besides the spec itself.
pub struct ExecContext<'a> {
    /// Base analysis configuration; the spec's overrides apply on top.
    pub config: &'a AnalysisConfig,
    /// Shared invariant store (the fleet's warm substrate), if any.
    pub cache: Option<Arc<InvariantStore>>,
    /// Telemetry recorder for the analysis itself, if any.
    pub recorder: Option<&'a dyn Recorder>,
    /// In-process slice pool to run the analysis on, if any.
    pub pool: Option<&'a WorkerPool>,
}

/// Runs one job to completion. Returns [`JobStatus::Done`] or
/// [`JobStatus::Failed`]; panics propagate (the caller decides whether to
/// `catch_unwind`, because only the caller knows its isolation story).
pub fn execute(spec: &JobSpec, ctx: &ExecContext<'_>) -> JobOutcome {
    let t0 = Instant::now();
    let mut out =
        if spec.oracle.is_some() { run_oracle_job(spec, ctx) } else { run_analysis_job(spec, ctx) };
    out.name = spec.name.clone();
    out.wall = t0.elapsed();
    out
}

fn failed(detail: String) -> JobOutcome {
    let mut out = JobOutcome::empty("", JobStatus::Failed);
    out.detail = Some(detail);
    out
}

fn run_analysis_job(spec: &JobSpec, ctx: &ExecContext<'_>) -> JobOutcome {
    let program = match Frontend::new().compile_str(&spec.source) {
        Ok(p) => p,
        Err(e) => return failed(format!("compile error: {e}")),
    };
    let errs = program.validate();
    if !errs.is_empty() {
        return failed(format!("invalid program: {}", errs.join("; ")));
    }
    let config = spec.overrides.apply(ctx.config);
    let mut builder = AnalysisSession::builder(&program).config(config);
    if let Some(rec) = ctx.recorder {
        builder = builder.recorder(rec);
    }
    if let Some(store) = &ctx.cache {
        builder = builder.cache(Arc::clone(store));
    }
    if let Some(pool) = ctx.pool {
        builder = builder.pool(pool);
    }
    let result = builder.build().run();

    let mut out = JobOutcome::empty("", JobStatus::Done);
    out.alarms = Some(result.alarms.len());
    out.alarm_lines = result.alarms.iter().map(|a| a.to_string()).collect();
    out.main_invariant = result.main_invariant.as_ref().map(|s| s.to_string());
    out.main_census = result.main_census.as_ref().map(|c| c.to_string());
    out.cache_full_hit = result.cache.full_hit;
    out.loops_seeded = result.stats.loops_seeded;
    out.seed_hits = result.stats.seed_hits;
    out
}

fn run_oracle_job(spec: &JobSpec, ctx: &ExecContext<'_>) -> JobOutcome {
    let oracle = spec.oracle.as_ref().expect("oracle job without oracle payload");
    let cfg = OracleConfig {
        members: 1,
        seeds: oracle.seeds,
        ticks: oracle.ticks,
        max_steps: oracle.max_steps,
        shrink: oracle.shrink,
        analysis: spec.overrides.apply(ctx.config),
        debug_tighten_cell: oracle.debug_tighten_cell.clone(),
        ..OracleConfig::default()
    };
    match run_member(&oracle.spec, &cfg) {
        Ok(member) => {
            let mut out = JobOutcome::empty("", JobStatus::Done);
            out.alarms = Some(member.alarms.values().map(|&n| n as usize).sum());
            out.oracle = Some(member);
            out
        }
        Err(e) => failed(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::OracleJob;
    use astree_oracle::MemberSpec;

    fn base_ctx(config: &AnalysisConfig) -> ExecContext<'_> {
        ExecContext { config, cache: None, recorder: None, pool: None }
    }

    #[test]
    fn analysis_job_reports_alarms_and_invariant() {
        let spec =
            JobSpec::new("div", "int main() { volatile int d = 0; int x = 1 / d; return x; }\n");
        let config = AnalysisConfig::default();
        let out = execute(&spec, &base_ctx(&config));
        assert_eq!(out.status, JobStatus::Done);
        assert!(out.alarms.unwrap() >= 1, "division by a zero volatile must alarm");
        assert_eq!(out.alarm_lines.len(), out.alarms.unwrap());
        assert_eq!(out.name, "div");
    }

    #[test]
    fn compile_errors_become_failed_outcomes() {
        let spec = JobSpec::new("bad", "int main( {\n");
        let config = AnalysisConfig::default();
        let out = execute(&spec, &base_ctx(&config));
        assert_eq!(out.status, JobStatus::Failed);
        assert!(out.detail.unwrap().contains("compile error"));
    }

    #[test]
    fn oracle_job_runs_a_member() {
        let mut spec = JobSpec::new("m", "");
        spec.oracle = Some(OracleJob {
            spec: MemberSpec { channels: 1, gen_seed: 1, bug: None, knobs: Default::default() },
            seeds: 1,
            ticks: 4,
            max_steps: 200_000,
            shrink: false,
            debug_tighten_cell: None,
        });
        let config = AnalysisConfig::default();
        let out = execute(&spec, &base_ctx(&config));
        assert_eq!(out.status, JobStatus::Done, "detail: {:?}", out.detail);
        let member = out.oracle.unwrap();
        assert!(member.executions >= 1);
    }
}
