//! Tests of the end-user parametrization surface (paper Sect. 3.2):
//! user-supplied packs, per-loop unrolling, threshold choice, pack caps.

use astree_core::{AnalysisConfig, AnalysisSession};
use astree_frontend::Frontend;
use astree_ir::LoopId;

fn compile(src: &str) -> astree_ir::Program {
    Frontend::new().compile_str(src).expect("compiles")
}

/// A relation octagon packing misses syntactically (the variables never
/// interact in one linear statement at the same block level) can be
/// restored by a user-supplied pack.
#[test]
fn user_pack_restores_missed_relation() {
    let src = r#"
        volatile int in;
        int a; int b; int out;
        void set_a(void) { a = in; }
        void set_b(void) { b = a; }      /* b = a, but via another block */
        void main(void) {
            __astree_input_int(in, 0, 1000);
            while (1) {
                set_a();
                set_b();
                if (a < 100) {
                    /* b == a < 100 here, but only a relational domain
                       covering {a, b} can know it. */
                    out = b * 2200000;
                }
                __astree_wait();
            }
        }
    "#;
    let p = compile(src);
    // The b=a assignment is linear in {a, b} in its own block, so automatic
    // packing does find it; the point of this test is that the *user* pack
    // alone also suffices when automatic packs are filtered away.
    let mut only_user = AnalysisConfig::default();
    only_user.octagon_packs_extra = vec![vec!["a".into(), "b".into()]];
    only_user.octagon_pack_filter = Some(vec![0]); // keep only the user pack
    let r = AnalysisSession::builder(&p).config(only_user).build().run();
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);

    // With octagons disabled entirely the overflow alarm appears.
    let mut no_oct = AnalysisConfig::default();
    no_oct.enable_octagons = false;
    let r = AnalysisSession::builder(&p).config(no_oct).build().run();
    assert!(!r.alarms.is_empty());
}

/// Per-loop unrolling applies only to the chosen loop.
#[test]
fn per_loop_unrolling_targets_one_loop() {
    let src = r#"
        int i; int j; int s1; int s2;
        void main(void) {
            s1 = 0;
            for (i = 0; i < 3; i++) { s1 = s1 + i; }
            s2 = 0;
            for (j = 0; j < 3; j++) { s2 = s2 + j; }
        }
    "#;
    let p = compile(src);
    // Unroll only the first loop: the second still alarms.
    let mut cfg = AnalysisConfig::default();
    cfg.loop_unroll = 0;
    cfg.per_loop_unroll.insert(LoopId(0), 4);
    let r = AnalysisSession::builder(&p).config(cfg).build().run();
    let lines: Vec<u32> = r.alarms.iter().map(|a| a.loc.line).collect();
    assert!(!lines.contains(&5), "first loop proven: {:?}", r.alarms);
    assert!(lines.contains(&7), "second loop still alarms: {:?}", r.alarms);
}

/// Smaller threshold ramps lose programs bigger ones prove (the αλᴺ
/// discussion of Sect. 7.1.2).
#[test]
fn threshold_ceiling_matters() {
    let src = r#"
        volatile double in;
        double x; int out;
        void main(void) {
            __astree_input_float(in, -50.0, 50.0);
            while (1) {
                x = 0.5 * x + in;          /* |x| <= 100 is invariant */
                out = (int)(x * 1000.0);
                __astree_wait();
            }
        }
    "#;
    let p = compile(src);
    // Ramp topping out below the needed bound: false alarms.
    let mut small = AnalysisConfig::default();
    small.thresholds = astree_domains::Thresholds::geometric(1.0, 10.0, 1); // max 10
    let r = AnalysisSession::builder(&p).config(small).build().run();
    assert!(!r.alarms.is_empty(), "ramp to 10 cannot hold |x| ≤ 100");
    // Ramp above it: clean.
    let mut big = AnalysisConfig::default();
    big.thresholds = astree_domains::Thresholds::geometric(1.0, 10.0, 4); // max 10^4
    let r = AnalysisSession::builder(&p).config(big).build().run();
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
}

/// The decision-tree boolean cap keeps packs small even when many booleans
/// relate to one numeric variable.
#[test]
fn dtree_bool_cap_is_respected() {
    let src = r#"
        volatile int in;
        _Bool b0; _Bool b1; _Bool b2; _Bool b3; _Bool b4;
        int x; int y;
        void main(void) {
            __astree_input_int(in, 0, 100);
            while (1) {
                x = in;
                b0 = (_Bool)(x > 0);
                b1 = (_Bool)(x > 10);
                b2 = (_Bool)(x > 20);
                b3 = (_Bool)(x > 30);
                b4 = (_Bool)(x > 40);
                if (b0) { y = 1000 / x; }
                if (b1) { y = y + x; }
                if (b2) { y = y + x; }
                if (b3) { y = y + x; }
                if (b4) { y = y + x; }
                __astree_wait();
            }
        }
    "#;
    let p = compile(src);
    let layout = astree_memory::CellLayout::new(&p, &astree_memory::LayoutConfig::default());
    let cfg = AnalysisConfig::default();
    let packs = astree_core::Packs::discover(&p, &layout, &cfg);
    for pack in &packs.dtrees {
        assert!(pack.bools.len() <= cfg.dtree_pack_bool_cap, "pack exceeds cap: {pack:?}");
    }
    // The division through b0 is still proven safe.
    let r = AnalysisSession::builder(&p).config(cfg).build().run();
    assert!(
        !r.alarms.iter().any(|a| a.kind == astree_core::AlarmKind::DivByZero),
        "{:?}",
        r.alarms
    );
}

/// Octagon pack caps split oversized blocks instead of truncating away the
/// needed relation.
#[test]
fn oversized_blocks_split_into_clusters() {
    // 12 interacting variables in one block with cap 8: two packs, each
    // keeping its own relations.
    let mut decls = String::new();
    let mut stmts = String::new();
    for i in 0..6 {
        decls.push_str(&format!("int a{i}; int b{i};\n"));
        stmts.push_str(&format!("a{i} = b{i} + {i};\n"));
    }
    let src = format!("{decls}\nvoid main(void) {{ {stmts} }}");
    let p = compile(&src);
    let layout = astree_memory::CellLayout::new(&p, &astree_memory::LayoutConfig::default());
    let cfg = AnalysisConfig::default();
    let packs = astree_core::Packs::discover(&p, &layout, &cfg);
    for pack in &packs.octagons {
        assert!(pack.cells.len() <= cfg.octagon_pack_cap, "{pack:?}");
    }
    // Every pair (a_i, b_i) must share a pack.
    for i in 0..6 {
        let a = layout.scalar_cell(p.var_by_name(&format!("a{i}")).unwrap());
        let b = layout.scalar_cell(p.var_by_name(&format!("b{i}")).unwrap());
        let shared = packs.octagons.iter().any(|pk| pk.cells.contains(&a) && pk.cells.contains(&b));
        assert!(shared, "pair {i} split across packs");
    }
}
