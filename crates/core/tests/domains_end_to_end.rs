//! End-to-end tests: each refinement of the paper removes the class of
//! false alarms it was designed for (Sect. 3.1's refinement methodology).

use astree_core::{AlarmKind, AnalysisConfig, AnalysisSession};
use astree_frontend::Frontend;

fn analyze_with(src: &str, cfg: AnalysisConfig) -> astree_core::AnalysisResult {
    let p = Frontend::new().compile_str(src).expect("compiles");
    AnalysisSession::builder(&p).config(cfg).build().run()
}

/// Paper Sect. 6.2.3 / Fig. 1: the second-order digital filter. Intervals
/// alone lose the filter state entirely (false float-overflow alarm); the
/// ellipsoid domain proves it bounded.
#[test]
fn ellipsoid_domain_bounds_filters() {
    let src = r#"
        volatile double in;
        double x; double y;
        _Bool init;
        void main(void) {
            __astree_input_float(in, -1.0, 1.0);
            init = 1;
            while (1) {
                double x1;
                if (init) {
                    x = in;
                    y = in;
                    init = 0;
                } else {
                    x1 = 1.5 * x - 0.7 * y + in;
                    y = x;
                    x = x1;
                }
                __astree_wait();
            }
        }
    "#;
    let with = analyze_with(src, AnalysisConfig::default());
    let overflow_with: Vec<_> =
        with.alarms.iter().filter(|a| a.kind == AlarmKind::FloatOverflow).collect();
    assert!(overflow_with.is_empty(), "ellipsoids should bound the filter: {:?}", with.alarms);

    let mut no_ell = AnalysisConfig::default();
    no_ell.enable_ellipsoids = false;
    let without = analyze_with(src, no_ell);
    assert!(
        without.alarms.iter().any(|a| a.kind == AlarmKind::FloatOverflow),
        "without ellipsoids the filter diverges: {:?}",
        without.alarms
    );
}

/// Paper Sect. 6.2.4: booleans carrying numeric facts. `B := (X == 0);
/// if (!B) Y := 1/X` divides only when `X ≠ 0`.
#[test]
fn decision_trees_relate_booleans_to_numerics() {
    let src = r#"
        volatile int in;
        _Bool b; int x; int y;
        void main(void) {
            __astree_input_int(in, 0, 100);
            while (1) {
                x = in;
                b = (_Bool)(x == 0);
                if (!b) { y = 1000 / x; }
                __astree_wait();
            }
        }
    "#;
    let with = analyze_with(src, AnalysisConfig::default());
    assert!(
        !with.alarms.iter().any(|a| a.kind == AlarmKind::DivByZero),
        "decision trees should prove the division safe: {:?}",
        with.alarms
    );

    let mut no_dt = AnalysisConfig::default();
    no_dt.enable_dtrees = false;
    let without = analyze_with(src, no_dt);
    assert!(
        without.alarms.iter().any(|a| a.kind == AlarmKind::DivByZero),
        "without decision trees the boolean fact is lost: {:?}",
        without.alarms
    );
}

/// Paper Sect. 6.3: linearization. `X := X − 0.2·X + in` contracts, but
/// naive interval evaluation inflates it every iteration.
#[test]
fn linearization_stabilizes_contracting_updates() {
    let src = r#"
        volatile double in;
        double x;
        void main(void) {
            __astree_input_float(in, -1.0, 1.0);
            x = 0.0;
            while (1) {
                x = x - 0.2 * x + in;
                __astree_wait();
            }
        }
    "#;
    let with = analyze_with(src, AnalysisConfig::default());
    assert!(
        !with.alarms.iter().any(|a| a.kind == AlarmKind::FloatOverflow),
        "linearization should stabilize the update: {:?}",
        with.alarms
    );

    let mut no_lin = AnalysisConfig::default();
    no_lin.enable_linearization = false;
    let without = analyze_with(src, no_lin);
    assert!(
        without.alarms.iter().any(|a| a.kind == AlarmKind::FloatOverflow),
        "naive interval evaluation should diverge: {:?}",
        without.alarms
    );
}

/// Paper Sect. 6.2.2: the octagon fragment. `R := X − Z; L := X;
/// if (R > V) L := Z + V;` implies `L ≤ X`, needed to keep later
/// arithmetic on `L` in range.
#[test]
fn octagons_recover_variable_differences() {
    let src = r#"
        volatile int xin; volatile int zin; volatile int vin;
        int x; int z; int v; int r; int l; int out;
        void main(void) {
            __astree_input_int(xin, 0, 1000);
            __astree_input_int(zin, 0, 10);
            __astree_input_int(vin, 0, 1000);
            while (1) {
                x = xin; z = zin; v = vin;
                r = x - z;
                if (x < 100) {
                    /* octagon: r − x ≤ 0 and r − x ≥ −10, so here
                       −10 ≤ r ≤ 99; the interval for r alone is [−10, 1000],
                       and 1000 · 2200000 overflows int. */
                    out = r * 2200000;
                }
                __astree_wait();
            }
        }
    "#;
    let with = analyze_with(src, AnalysisConfig::default());
    let overflow_with = with.alarms.iter().filter(|a| a.kind == AlarmKind::IntOverflow).count();
    assert_eq!(overflow_with, 0, "octagons should bound r by x: {:?}", with.alarms);

    let mut no_oct = AnalysisConfig::default();
    no_oct.enable_octagons = false;
    let without = analyze_with(src, no_oct);
    assert!(
        without.alarms.iter().any(|a| a.kind == AlarmKind::IntOverflow),
        "without octagons r keeps its interval bound 1000: {:?}",
        without.alarms
    );
}

/// Paper Sect. 7.1.2: widening thresholds bound `X := α·X + β` updates.
#[test]
fn thresholds_bound_affine_updates() {
    let src = r#"
        volatile double in;
        double x;
        int out;
        void main(void) {
            __astree_input_float(in, -5.0, 5.0);
            x = 0.0;
            while (1) {
                x = 0.5 * x + in;        /* |x| <= 10 is invariant */
                out = (int)(x * 1000.0); /* fits iff the bound is tight */
                __astree_wait();
            }
        }
    "#;
    let with = analyze_with(src, AnalysisConfig::default());
    assert!(
        !with.alarms.iter().any(|a| a.kind == AlarmKind::InvalidCast),
        "thresholds should find a stable bound: {:?}",
        with.alarms
    );

    // Without thresholds, widening overshoots to a huge bound; narrowing
    // recovers a finite but loose bound, and the cast still alarms
    // (the "many false alarms for overflow" of Sect. 7.1.2).
    let mut no_thresholds = AnalysisConfig::default();
    no_thresholds.thresholds = astree_domains::Thresholds::none();
    let without = analyze_with(src, no_thresholds);
    assert!(
        without.alarms.iter().any(|a| a.kind == AlarmKind::InvalidCast),
        "plain widening leaves a loose bound and the cast alarms: {:?}",
        without.alarms
    );
}

/// Paper Sect. 6.2.1: the clocked domain bounds event counters by the
/// maximal operating time.
#[test]
fn clocked_domain_bounds_event_counters() {
    let src = r#"
        volatile int ev;
        int count;
        void main(void) {
            __astree_input_int(ev, 0, 1);
            count = 0;
            while (1) {
                if (ev == 1) { count = count + 1; }
                __astree_wait();
            }
        }
    "#;
    let with = analyze_with(src, AnalysisConfig::default());
    assert!(with.alarms.is_empty(), "clock bounds the counter: {:?}", with.alarms);

    let mut no_clock = AnalysisConfig::default();
    no_clock.enable_clocked = false;
    let without = analyze_with(src, no_clock);
    assert!(
        without.alarms.iter().any(|a| a.kind == AlarmKind::IntOverflow),
        "without the clocked domain the counter may overflow: {:?}",
        without.alarms
    );
}

/// The full stack proves a representative reactive program entirely clean,
/// and each alarm the interpreter can actually trigger is reported.
#[test]
fn array_bounds_and_shrunk_tables() {
    let src = r#"
        volatile int idx;
        int table[16];
        int big[1000];
        int out;
        void main(void) {
            int i;
            __astree_input_int(idx, 0, 15);
            for (i = 0; i < 16; i++) { table[i] = i * 3; }
            while (1) {
                out = table[idx];
                big[idx] = out;
                __astree_wait();
            }
        }
    "#;
    let r = analyze_with(src, AnalysisConfig::default());
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);

    // Widening the input range beyond the bounds must alarm.
    let src_bad = src.replace("__astree_input_int(idx, 0, 15)", "__astree_input_int(idx, 0, 16)");
    let r = analyze_with(&src_bad, AnalysisConfig::default());
    assert!(r.alarms.iter().any(|a| a.kind == AlarmKind::OutOfBounds), "{:?}", r.alarms);
}

/// Function inlining: context-sensitive analysis of helpers, including
/// by-reference outputs.
#[test]
fn interprocedural_precision() {
    let src = r#"
        volatile int in;
        int out;
        int clamp(int v, int lo, int hi) {
            if (v < lo) { return lo; }
            if (v > hi) { return hi; }
            return v;
        }
        void scale(int *r, int k) { *r = *r * k; }
        void main(void) {
            __astree_input_int(in, -1000000, 1000000);
            while (1) {
                out = clamp(in, -100, 100);
                scale(&out, 1000);       /* |out| <= 100000: fits */
                __astree_wait();
            }
        }
    "#;
    let r = analyze_with(src, AnalysisConfig::default());
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
}

/// Trace partitioning (Sect. 7.1.5): correlated branches need delayed
/// merging.
#[test]
fn trace_partitioning_keeps_branch_correlation() {
    let src = r#"
        volatile int in;
        int mode; int d; int out;
        void step(int t) {
            if (t > 0) { mode = 1; d = t; } else { mode = 0; d = 0; }
            if (mode == 1) { out = 1000 / d; }
        }
        void main(void) {
            __astree_input_int(in, -100, 100);
            while (1) {
                step(in);
                __astree_wait();
            }
        }
    "#;
    // Isolate partitioning: decision trees don't apply (mode is an int) and
    // octagons are disabled (they, too, can relate mode and d here).
    let mut with = AnalysisConfig::default();
    with.partitioned_functions.insert("step".to_string());
    with.enable_dtrees = false;
    with.enable_octagons = false;
    let r = analyze_with(src, with);
    assert!(
        !r.alarms.iter().any(|a| a.kind == AlarmKind::DivByZero),
        "partitioning keeps the correlation: {:?}",
        r.alarms
    );

    let mut without = AnalysisConfig::default();
    without.enable_dtrees = false;
    without.enable_octagons = false;
    let r = analyze_with(src, without);
    assert!(
        r.alarms.iter().any(|a| a.kind == AlarmKind::DivByZero),
        "merged branches lose the correlation: {:?}",
        r.alarms
    );
}

/// Paper Sect. 7.1.3: delayed widening lets exactly-stabilizing values be
/// found before widening overshoots to a threshold.
#[test]
fn delayed_widening_preserves_exact_bounds() {
    let src = r#"
        volatile int in;
        int x; int y; int tbl[14]; int out;
        void main(void) {
            __astree_input_int(in, 0, 3);
            while (1) {
                out = tbl[y + 6];       /* safe iff y <= 7 exactly */
                x = y + in;
                if (x > 7) { x = 7; }
                y = x;
                __astree_wait();
            }
        }
    "#;
    let mut immediate = AnalysisConfig::default();
    immediate.widening_delay = 0;
    immediate.stabilization_grace = 0;
    immediate.enable_octagons = false;
    let r = analyze_with(src, immediate);
    assert!(
        r.alarms.iter().any(|a| a.kind == AlarmKind::OutOfBounds),
        "immediate widening should overshoot: {:?}",
        r.alarms
    );

    let mut delayed = AnalysisConfig::default();
    delayed.enable_octagons = false;
    let r = analyze_with(src, delayed);
    assert!(r.alarms.is_empty(), "delayed widening finds the exact bound: {:?}", r.alarms);
}
