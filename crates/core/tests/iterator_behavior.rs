//! Behavioural tests of the iterator: calls, returns, nested loops,
//! partitions, assumptions, shrunk arrays, perturbation — the machinery of
//! paper Sect. 5.3–5.5 beyond the headline domains.

use astree_core::{AlarmKind, AnalysisConfig, AnalysisSession};
use astree_frontend::Frontend;

fn analyze(src: &str) -> astree_core::AnalysisResult {
    let p = Frontend::new().compile_str(src).expect("compiles");
    AnalysisSession::builder(&p).build().run()
}

fn analyze_with(src: &str, cfg: AnalysisConfig) -> astree_core::AnalysisResult {
    let p = Frontend::new().compile_str(src).expect("compiles");
    AnalysisSession::builder(&p).config(cfg).build().run()
}

#[test]
fn multiple_returns_join() {
    let r = analyze(
        r#"
        volatile int in; int out;
        int sign(int v) {
            if (v > 0) { return 1; }
            if (v < 0) { return -1; }
            return 0;
        }
        void main(void) {
            __astree_input_int(in, -1000, 1000);
            out = sign(in);
            out = 100 / (out + 2);  /* out ∈ [-1,1]: divisor ∈ [1,3] */
        }
    "#,
    );
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
}

#[test]
fn return_inside_loop_is_sound() {
    let r = analyze(
        r#"
        volatile int in; int out;
        int find(void) {
            int i;
            for (i = 0; i < 10; i++) {
                if (i == in) { return i; }
            }
            return -1;
        }
        void main(void) {
            __astree_input_int(in, 0, 5);
            out = find();      /* out ∈ [-1, 9] */
            out = out + 1;     /* no overflow */
        }
    "#,
    );
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
}

#[test]
fn nested_loops_converge() {
    let r = analyze(
        r#"
        int mat[8][8]; int i; int j; int sum;
        void main(void) {
            for (i = 0; i < 8; i++) {
                for (j = 0; j < 8; j++) {
                    mat[i][j] = i * 8 + j;
                }
            }
            sum = mat[3][4];
        }
    "#,
    );
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
}

#[test]
fn contradictory_assume_kills_path() {
    let r = analyze(
        r#"
        int x;
        void main(void) {
            x = 1;
            if (x == 2) {
                x = 1 / 0;   /* dead: guard is definitely false */
            }
        }
    "#,
    );
    assert!(r.alarms.is_empty(), "dead code must not alarm: {:?}", r.alarms);
}

#[test]
fn assume_narrows_like_a_guard() {
    let r = analyze(
        r#"
        volatile int in; int x;
        void main(void) {
            __astree_input_int(in, -1000000, 1000000);
            x = in;
            __astree_assume(x > 0 && x < 100);
            x = 2000000000 / x;   /* x ∈ [1, 99]: safe */
        }
    "#,
    );
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
}

#[test]
fn shrunk_arrays_stay_sound() {
    // With a tiny shrink threshold the table collapses to one weak cell:
    // reads join all written values, so the range is still provable.
    let src = r#"
        int tbl[64]; int i; int out;
        void main(void) {
            for (i = 0; i < 64; i++) { tbl[i] = i; }
            out = 1000 / (tbl[7] + 1);   /* tbl[*] ∈ [0, 63] ⇒ divisor ≥ 1 */
        }
    "#;
    let mut cfg = AnalysisConfig::default();
    cfg.shrink_threshold = 8;
    let r = analyze_with(src, cfg);
    // The shrunk cell joins 0..63 with the initial 0 — divisor ∈ [1, 64]:
    // still provably non-zero, so no division alarm.
    assert!(!r.alarms.iter().any(|a| a.kind == AlarmKind::DivByZero), "{:?}", r.alarms);
    // But element-precision is gone: an exact-value check would alarm.
    // (Documents the precision/space trade-off of Sect. 6.1.1.)
    assert!(r.stats.cells < 20);
}

#[test]
fn expanded_arrays_are_element_precise() {
    let src = r#"
        int tbl[8]; int out;
        void main(void) {
            int i;
            for (i = 0; i < 8; i++) { tbl[i] = 1; }
            tbl[3] = 0;
            out = 10 / tbl[3];   /* definitely zero: must alarm */
        }
    "#;
    let r = analyze(src);
    assert!(r.alarms.iter().any(|a| a.kind == AlarmKind::DivByZero), "{:?}", r.alarms);
}

#[test]
fn float_perturbation_remains_sound() {
    let src = r#"
        volatile double in;
        double x;
        void main(void) {
            __astree_input_float(in, -1.0, 1.0);
            while (1) {
                x = 0.9 * x + in;
                __astree_wait();
            }
        }
    "#;
    let mut cfg = AnalysisConfig::default();
    cfg.float_perturbation = 1e-6;
    let r = analyze_with(src, cfg);
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    // The perturbed invariant still contains the exact fixpoint |x| ≤ 10.
    let p = Frontend::new().compile_str(src).unwrap();
    let layout = astree_memory::CellLayout::new(&p, &astree_memory::LayoutConfig::default());
    let _ = layout;
}

#[test]
fn partition_cap_folds_exponential_branches() {
    // 8 sequential ifs = 256 paths; the cap keeps analysis bounded.
    let mut body = String::new();
    for i in 0..8 {
        body.push_str(&format!("if (in > {i}) {{ x = x + 1; }} else {{ x = x - 1; }}\n"));
    }
    let src = format!(
        r#"
        volatile int in; int x;
        void step(void) {{ int t; t = in; {body} }}
        void main(void) {{
            __astree_input_int(in, 0, 10);
            while (1) {{ step(); __astree_wait(); }}
        }}
    "#
    );
    let mut cfg = AnalysisConfig::default();
    cfg.partitioned_functions.insert("step".into());
    cfg.max_partitions = 16;
    let p = Frontend::new().compile_str(&src).unwrap();
    let r = AnalysisSession::builder(&p).config(cfg).build().run();
    assert!(r.stats.peak_partitions <= 32, "cap violated: {}", r.stats.peak_partitions);
}

#[test]
fn by_ref_struct_fields() {
    let r = analyze(
        r#"
        struct State { int lo; int hi; };
        struct State s;
        volatile int in;
        int out;
        void widen(struct State *st, int v) {
            if (v < st->lo) { st->lo = v; }
            if (v > st->hi) { st->hi = v; }
        }
        void main(void) {
            __astree_input_int(in, -50, 50);
            s.lo = 0; s.hi = 0;
            widen(&s, in);
            out = s.hi - s.lo;     /* ≤ 100 */
            out = out * 1000000;   /* ≤ 1e8: fits */
        }
    "#,
    );
    assert!(r.alarms.is_empty(), "{:?}", r.alarms);
}

#[test]
fn volatile_without_declared_range_uses_type_range() {
    // A volatile int without __astree_input gets the full int range: the
    // division must alarm.
    let r = analyze(
        r#"
        volatile int in; int x;
        void main(void) {
            x = 10 / in;
        }
    "#,
    );
    assert!(r.alarms.iter().any(|a| a.kind == AlarmKind::DivByZero), "{:?}", r.alarms);
}

#[test]
fn checking_replays_deterministically() {
    // Two runs must produce identical alarms (no hidden nondeterminism).
    let src = r#"
        volatile int in; int x; int y;
        void main(void) {
            __astree_input_int(in, -10, 10);
            while (1) {
                x = in;
                if (x != 0) { y = 100 / x; }
                y = y + in;
                __astree_wait();
            }
        }
    "#;
    let a = analyze(src);
    let b = analyze(src);
    assert_eq!(a.alarms, b.alarms);
}

#[test]
fn alarm_lines_point_at_source() {
    let src = "int x; int d;\nvoid main(void) {\n    d = 0;\n    x = 1 / d;\n}\n";
    let r = analyze(src);
    assert_eq!(r.alarms.len(), 1);
    assert_eq!(r.alarms[0].loc.line, 4, "{:?}", r.alarms);
}
