//! The full abstract state: the interval/clocked environment in reduced
//! product with the relational pack domains (paper Sect. 6.1: "an abstract
//! value is … the reduction of the abstract values provided by each
//! different basic abstract domain").
//!
//! All relational components live in persistent maps keyed by pack index,
//! so cloning a state is O(1) and binary operations skip physically shared
//! packs — the paper's "sub-linear time costs via sharing of unmodified
//! octagons" (Sect. 7.2.1).

use crate::packs::Packs;
use astree_domains::dtree::Lattice;
use astree_domains::{Clocked, DecisionTree, Ellipsoid, FloatItv, IntItv, Octagon, Thresholds};
use astree_memory::{AbsEnv, CellId, CellLayout, CellVal};
use astree_pmap::{MergeOutcome, PMap};
use std::collections::BTreeSet;
use std::fmt;

/// The numeric sub-environment stored at decision-tree leaves: the values of
/// the pack's numeric cells in one boolean context.
#[derive(Debug, Clone, PartialEq)]
pub struct PackEnv {
    /// `(cell, value)` pairs, ordered by cell; all leaves of one tree carry
    /// the same cells.
    pub cells: Vec<(CellId, CellVal)>,
    /// `true` when this boolean context is unreachable.
    pub unreachable: bool,
}

impl PackEnv {
    /// Builds a leaf from the current environment for the given cells.
    pub fn from_env(env: &AbsEnv, layout: &CellLayout, cells: &[CellId]) -> PackEnv {
        PackEnv {
            cells: cells.iter().map(|c| (*c, env.get(*c, layout))).collect(),
            unreachable: env.is_bottom(),
        }
    }

    /// The value of a cell in this context (None if not a member).
    pub fn get(&self, cell: CellId) -> Option<CellVal> {
        self.cells.iter().find(|(c, _)| *c == cell).map(|(_, v)| *v)
    }

    /// Replaces the value of a member cell.
    #[must_use]
    pub fn set(&self, cell: CellId, val: CellVal) -> PackEnv {
        let mut out = self.clone();
        for (c, v) in &mut out.cells {
            if *c == cell {
                *v = val;
            }
        }
        if val.is_bottom() {
            out.unreachable = true;
        }
        out
    }

    /// Meets a member cell with a value.
    #[must_use]
    pub fn meet_cell(&self, cell: CellId, val: CellVal) -> PackEnv {
        match self.get(cell) {
            Some(old) => {
                let m = old.meet(&val);
                let mut out = self.set(cell, m);
                if m.is_bottom() {
                    out.unreachable = true;
                }
                out
            }
            None => self.clone(),
        }
    }
}

impl Lattice for PackEnv {
    fn join(&self, other: &Self) -> Self {
        if self.unreachable {
            return other.clone();
        }
        if other.unreachable {
            return self.clone();
        }
        PackEnv {
            cells: self
                .cells
                .iter()
                .zip(&other.cells)
                .map(|((c, a), (_, b))| (*c, a.join(b)))
                .collect(),
            unreachable: false,
        }
    }

    fn widen(&self, other: &Self, t: &Thresholds) -> Self {
        if self.unreachable {
            return other.clone();
        }
        if other.unreachable {
            return self.clone();
        }
        PackEnv {
            cells: self
                .cells
                .iter()
                .zip(&other.cells)
                .map(|((c, a), (_, b))| (*c, a.widen(b, t)))
                .collect(),
            unreachable: false,
        }
    }

    fn leq(&self, other: &Self) -> bool {
        if self.unreachable {
            return true;
        }
        if other.unreachable {
            return false;
        }
        self.cells.iter().zip(&other.cells).all(|((_, a), (_, b))| a.leq(b))
    }

    fn bottom() -> Self {
        PackEnv { cells: Vec::new(), unreachable: true }
    }

    fn is_bottom(&self) -> bool {
        self.unreachable || self.cells.iter().any(|(_, v)| v.is_bottom())
    }
}

impl PackEnv {
    /// Bitwise identity (cell values compared via [`CellVal::same`], so
    /// `-0.0`/`0.0` stay distinct) — see [`dtree_same`].
    fn same(&self, other: &PackEnv) -> bool {
        self.unreachable == other.unreachable
            && self.cells.len() == other.cells.len()
            && self
                .cells
                .iter()
                .zip(&other.cells)
                .all(|((ca, va), (cb, vb))| ca == cb && va.same(vb))
    }
}

/// One decision tree, as stored per pack.
pub type DTree = DecisionTree<CellId, PackEnv>;

/// Bitwise identity of two decision trees: identical branching structure
/// and bitwise-identical leaves. The derived `PartialEq` is too coarse for
/// identity decisions (it identifies `-0.0` with `0.0` in leaf values).
fn dtree_same(a: &DTree, b: &DTree) -> bool {
    match (a, b) {
        (DecisionTree::Leaf(x), DecisionTree::Leaf(y)) => x.same(y),
        (
            DecisionTree::Node { var: va, f: fa, t: ta },
            DecisionTree::Node { var: vb, f: fb, t: tb },
        ) => va == vb && dtree_same(fa, fb) && dtree_same(ta, tb),
        _ => false,
    }
}

/// Wraps a binary pack operation into an identity-classifying combiner for
/// [`PMap::union_outcome`]. Bitwise-equal operands short-circuit to `Left`
/// *before* `op` runs, which is what keeps the sharing and no-sharing modes
/// bit-identical: a physically shared pack skips the combiner entirely, so
/// the non-shared path must yield the left operand for bitwise-equal inputs
/// even when `op` itself is not bitwise-idempotent (e.g. `join_ref` closing
/// a dirty octagon).
fn merged<V: Clone>(
    a: &V,
    b: &V,
    same: impl Fn(&V, &V) -> bool,
    op: impl FnOnce(&V, &V) -> V,
) -> MergeOutcome<V> {
    if same(a, b) {
        return MergeOutcome::Left;
    }
    let v = op(a, b);
    if same(&v, a) {
        MergeOutcome::Left
    } else if same(&v, b) {
        MergeOutcome::Right
    } else {
        MergeOutcome::New(v)
    }
}

/// Bitwise identity for the `f64` pack maps (ellipsoid bounds, pending δ).
fn f64_same(a: &f64, b: &f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// The complete abstract state.
#[derive(Debug, Clone)]
pub struct AbsState {
    /// The non-relational environment (intervals + clocked).
    pub env: AbsEnv,
    /// Octagons by pack index (persistent, shared).
    octs: PMap<u32, Octagon>,
    /// Decision trees by pack index.
    dtrees: PMap<u32, DTree>,
    /// Ellipsoid constraint bounds `k` by pack index (∞ = ⊤).
    ellipses: PMap<u32, f64>,
    /// Pending `δ(k)` values, computed at a filter group's first statement
    /// and committed at its last.
    pending: PMap<u32, f64>,
}

/// A non-NaN float ordered wrapper is unnecessary — `f64` values stored in
/// the maps are never NaN (δ and reductions keep them in `[0, +∞]`).
impl AbsState {
    /// The initial state: zeroed environment, unconstrained packs.
    pub fn initial(layout: &CellLayout, packs: &Packs) -> AbsState {
        let env = AbsEnv::initial(layout);
        AbsState {
            octs: packs
                .octagons
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, Octagon::top(p.cells.len())))
                .collect(),
            dtrees: packs
                .dtrees
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    (i as u32, DecisionTree::leaf(PackEnv::from_env(&env, layout, &p.nums)))
                })
                .collect(),
            ellipses: (0..packs.ellipses.len()).map(|i| (i as u32, f64::INFINITY)).collect(),
            pending: (0..packs.ellipses.len()).map(|i| (i as u32, f64::INFINITY)).collect(),
            env,
        }
    }

    /// The unreachable state (O(1): shares every pack).
    pub fn bottom_like(&self) -> AbsState {
        AbsState { env: AbsEnv::bottom(), ..self.clone() }
    }

    /// `true` when no execution reaches this point.
    pub fn is_bottom(&self) -> bool {
        self.env.is_bottom()
    }

    /// The octagon of pack `pi`.
    pub fn oct(&self, pi: usize) -> &Octagon {
        self.octs.get(&(pi as u32)).expect("pack index in range")
    }

    /// Replaces the octagon of pack `pi`. Writing back a bitwise-identical
    /// octagon (the common case after a reduction that improved nothing)
    /// keeps the pack tree physically unchanged.
    pub fn set_oct(&mut self, pi: usize, o: Octagon) {
        self.octs = self.octs.insert_if_changed(pi as u32, o, Octagon::same);
    }

    /// The decision tree of pack `pi`.
    pub fn dtree(&self, pi: usize) -> &DTree {
        self.dtrees.get(&(pi as u32)).expect("pack index in range")
    }

    /// Replaces the decision tree of pack `pi` (no-op writes preserved).
    pub fn set_dtree(&mut self, pi: usize, t: DTree) {
        self.dtrees = self.dtrees.insert_if_changed(pi as u32, t, dtree_same);
    }

    /// The ellipsoid bound of pack `pi`.
    pub fn ell(&self, pi: usize) -> f64 {
        *self.ellipses.get(&(pi as u32)).expect("pack index in range")
    }

    /// Replaces the ellipsoid bound of pack `pi` (no-op writes preserved).
    pub fn set_ell(&mut self, pi: usize, k: f64) {
        self.ellipses = self.ellipses.insert_if_changed(pi as u32, k, f64_same);
    }

    /// The pending `δ(k)` of pack `pi`.
    pub fn pending(&self, pi: usize) -> f64 {
        *self.pending.get(&(pi as u32)).expect("pack index in range")
    }

    /// Replaces the pending `δ(k)` of pack `pi` (no-op writes preserved).
    pub fn set_pending(&mut self, pi: usize, k: f64) {
        self.pending = self.pending.insert_if_changed(pi as u32, k, f64_same);
    }

    /// Iterates over octagons.
    pub fn octs_iter(&self) -> impl Iterator<Item = (usize, &Octagon)> {
        self.octs.iter().map(|(k, v)| (*k as usize, v))
    }

    /// Iterates over decision trees.
    pub fn dtrees_iter(&self) -> impl Iterator<Item = (usize, &DTree)> {
        self.dtrees.iter().map(|(k, v)| (*k as usize, v))
    }

    /// Iterates over ellipse bounds.
    pub fn ellipses_iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.ellipses.iter().map(|(k, v)| (*k as usize, *v))
    }

    /// Abstract union `⊔`, with the pre-join ellipsoid reduction of
    /// Sect. 6.2.3 ("before computing the union … we reduce each constraint
    /// rᵢ = +∞ such that r₃₋ᵢ ≠ +∞"). Physically shared packs are skipped.
    #[must_use]
    pub fn join(&self, other: &AbsState, layout: &CellLayout, packs: &Packs) -> AbsState {
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        let ellipses = self.ellipses.union_outcome(&other.ellipses, |k, a, b| {
            merged(a, b, f64_same, |a, b| {
                let pi = *k as usize;
                let a = reduce_if_infinite(*a, *b, pi, &self.env, layout, packs);
                let b = reduce_if_infinite(*b, a, pi, &other.env, layout, packs);
                astree_float::max_total(a, b)
            })
        });
        AbsState {
            env: self.env.join(&other.env),
            octs: self.octs.union_outcome(&other.octs, |_, a, b| {
                merged(a, b, Octagon::same, Octagon::join_ref)
            }),
            dtrees: self
                .dtrees
                .union_outcome(&other.dtrees, |_, a, b| merged(a, b, dtree_same, DTree::join)),
            ellipses,
            pending: self.pending.union_outcome(&other.pending, |_, a, b| {
                merged(a, b, f64_same, |a, b| astree_float::max_total(*a, *b))
            }),
        }
    }

    /// Widening `∇` (with the same pre-widening ellipsoid reduction).
    #[must_use]
    pub fn widen(
        &self,
        other: &AbsState,
        layout: &CellLayout,
        packs: &Packs,
        t: &Thresholds,
    ) -> AbsState {
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        let ellipses = self.ellipses.union_outcome(&other.ellipses, |k, a, b| {
            merged(a, b, f64_same, |a, b| {
                let pi = *k as usize;
                let b = reduce_if_infinite(*b, *a, pi, &other.env, layout, packs);
                let p = &packs.ellipses[pi];
                Ellipsoid { a: p.a, b: p.b, k: *a }.widen(Ellipsoid { a: p.a, b: p.b, k: b }, t).k
            })
        });
        AbsState {
            env: self.env.widen(&other.env, t),
            octs: self.octs.union_outcome(&other.octs, |_, a, b| {
                merged(a, b, Octagon::same, |a, b| a.widen_ref(b, t))
            }),
            dtrees: self.dtrees.union_outcome(&other.dtrees, |_, a, b| {
                merged(a, b, dtree_same, |a, b| a.widen(b, t))
            }),
            ellipses,
            pending: self.pending.union_outcome(&other.pending, |_, a, b| {
                merged(a, b, f64_same, |a, b| astree_float::max_total(*a, *b))
            }),
        }
    }

    /// Narrowing `Δ` (refines unbounded components; relational packs keep
    /// their stabilized values).
    #[must_use]
    pub fn narrow(&self, other: &AbsState) -> AbsState {
        if self.is_bottom() || other.is_bottom() {
            return self.bottom_like();
        }
        AbsState {
            env: self.env.narrow(&other.env),
            octs: self.octs.clone(),
            dtrees: self.dtrees.clone(),
            ellipses: self.ellipses.union_outcome(&other.ellipses, |_, a, b| {
                merged(a, b, f64_same, |a, b| if a.is_infinite() { *b } else { *a })
            }),
            pending: self.pending.clone(),
        }
    }

    /// `true` when every component of the two states is the same physical
    /// tree — constant time, `true` implies semantic equality. The iterator
    /// uses this (when pointer shortcuts are enabled) to recognize a
    /// stabilized loop iterate without any structural walk.
    pub fn ptr_eq(&self, other: &AbsState) -> bool {
        self.env.ptr_eq(&other.env)
            && self.octs.ptr_eq(&other.octs)
            && self.dtrees.ptr_eq(&other.dtrees)
            && self.ellipses.ptr_eq(&other.ellipses)
            && self.pending.ptr_eq(&other.pending)
    }

    /// Inclusion `⊑`. A pack present on one side only reads as ⊤ there, so
    /// left-only packs are always included; in practice every state carries
    /// the full fixed `0..npacks` key set and the one-sided closures never
    /// fire (right-only keeps its historical permissive answer for the
    /// ellipse map, where ⊤ = +∞ is checkable).
    pub fn leq(&self, other: &AbsState) -> bool {
        if self.is_bottom() {
            return true;
        }
        if other.is_bottom() {
            return false;
        }
        self.env.leq(&other.env)
            && self.octs.all2(&other.octs, |_, _| true, |_, _| true, |_, a, b| a.leq_ref(b))
            && self.dtrees.all2(&other.dtrees, |_, _| true, |_, _| true, |_, a, b| a.leq(b))
            && self.ellipses.all2(
                &other.ellipses,
                |_, _| true,
                |_, b| b.is_infinite(),
                |_, a, b| a <= b,
            )
    }

    /// Bidirectional reduction between the environment and every relational
    /// pack (used at loop heads). Returns the cells improved.
    pub fn reduce(&mut self, layout: &CellLayout, packs: &Packs) -> usize {
        self.reduce_counting(layout, packs, None)
    }

    /// Full reduction with per-octagon usefulness credit (Sect. 7.2.2).
    pub fn reduce_counting(
        &mut self,
        layout: &CellLayout,
        packs: &Packs,
        oct_counts: Option<&mut [usize]>,
    ) -> usize {
        let octs: Vec<usize> = (0..packs.octagons.len()).collect();
        let dts: Vec<usize> = (0..packs.dtrees.len()).collect();
        let ells: Vec<usize> = (0..packs.ellipses.len()).collect();
        self.reduce_packs(layout, packs, &octs, &dts, &ells, oct_counts)
    }

    /// Localized reduction: only the packs containing one of `cells`
    /// (used after guards/assignments so cost stays proportional to the
    /// statement's footprint).
    pub fn reduce_local(
        &mut self,
        layout: &CellLayout,
        packs: &Packs,
        cells: &[CellId],
        oct_counts: Option<&mut [usize]>,
    ) -> usize {
        let mut octs = BTreeSet::new();
        let mut dts = BTreeSet::new();
        let mut ells = BTreeSet::new();
        for c in cells {
            if let Some(pids) = packs.oct_index.get(c) {
                octs.extend(pids.iter().copied());
            }
            if let Some(pids) = packs.dtree_index.get(c) {
                dts.extend(pids.iter().copied());
            }
            if let Some(pids) = packs.ellipse_index.get(c) {
                ells.extend(pids.iter().copied());
            }
        }
        let octs: Vec<usize> = octs.into_iter().collect();
        let dts: Vec<usize> = dts.into_iter().collect();
        let ells: Vec<usize> = ells.into_iter().collect();
        self.reduce_packs(layout, packs, &octs, &dts, &ells, oct_counts)
    }

    fn reduce_packs(
        &mut self,
        layout: &CellLayout,
        packs: &Packs,
        oct_ids: &[usize],
        dtree_ids: &[usize],
        ell_ids: &[usize],
        mut oct_counts: Option<&mut [usize]>,
    ) -> usize {
        if self.is_bottom() {
            return 0;
        }
        let mut improved = 0;
        // env → octagons, then octagons → env.
        for &pi in oct_ids {
            let pack = &packs.octagons[pi];
            let mut oct = self.oct(pi).clone();
            for (slot, cell) in pack.cells.iter().enumerate() {
                let itv = float_view(self.env.get(*cell, layout));
                if !itv.is_bottom() {
                    oct.refine_with_interval(slot, itv);
                }
            }
            oct.close();
            if oct.is_bottom() {
                self.env.set_bottom();
                return improved;
            }
            for (slot, cell) in pack.cells.iter().enumerate() {
                let bounds = oct.bounds(slot);
                if meet_cell_with_float(&mut self.env, layout, *cell, bounds) {
                    improved += 1;
                    if let Some(counts) = oct_counts.as_deref_mut() {
                        counts[pi] += 1;
                    }
                }
                if self.env.is_bottom() {
                    return improved;
                }
            }
            self.set_oct(pi, oct);
        }
        // dtrees → env (collapse) and env → dtrees (context meet).
        for &pi in dtree_ids {
            let tree = self.dtree(pi).clone();
            if tree.is_bottom() {
                self.env.set_bottom();
                return improved;
            }
            let collapsed = tree.collapse();
            for (cell, val) in &collapsed.cells {
                let old = self.env.get(*cell, layout);
                let m = old.meet(val);
                if m.is_bottom() {
                    self.env.set_bottom();
                    return improved;
                }
                if m != old {
                    improved += 1;
                    self.env = self.env.set(*cell, m);
                }
            }
            let env = &self.env;
            let refined = tree.map(&|leaf: &PackEnv| {
                let mut out = leaf.clone();
                for (c, v) in &mut out.cells {
                    let ev = env.get(*c, layout);
                    let m = v.meet(&ev);
                    if m.is_bottom() {
                        out.unreachable = true;
                    }
                    *v = m;
                }
                out
            });
            self.set_dtree(pi, refined);
        }
        // ellipses ↔ env.
        for &pi in ell_ids {
            let pack = &packs.ellipses[pi];
            let k = self.ell(pi);
            let ell = Ellipsoid { a: pack.a, b: pack.b, k };
            let x = float_view(self.env.get(pack.x, layout));
            let y = float_view(self.env.get(pack.y, layout));
            let reduced = ell.reduce_from_box(x, y);
            self.set_ell(pi, reduced.k);
            let xb = reduced.x_bound();
            let yb = reduced.y_bound();
            if xb.is_finite()
                && meet_cell_with_float(&mut self.env, layout, pack.x, FloatItv::new(-xb, xb))
            {
                improved += 1;
            }
            if yb.is_finite()
                && meet_cell_with_float(&mut self.env, layout, pack.y, FloatItv::new(-yb, yb))
            {
                improved += 1;
            }
            if self.env.is_bottom() {
                return improved;
            }
        }
        improved
    }

    /// Deterministic overlay of one parallel slice's effects (Monniaux's
    /// ordered merge): applies onto `self` everything `post` changed
    /// relative to the shared `pre` state the slice ran from.
    ///
    /// - environment cells are overlaid when their value differs from `pre`,
    ///   plus every cell in `eff.must_writes` (a slice may rewrite a cell to
    ///   a value equal to its pre value; the write must still shadow earlier
    ///   slices, exactly as the later statement would sequentially);
    /// - relational packs are copied wholesale for every pack in
    ///   `eff.packs_write` (the planner guarantees that two slices write the
    ///   same pack only when the later one rewrites it from scratch).
    pub(crate) fn overlay_from(
        &mut self,
        pre: &AbsState,
        post: &AbsState,
        eff: &crate::parallel::SliceEffects,
        layout: &CellLayout,
    ) {
        self.env.overlay_changed(&pre.env, &post.env);
        for &c in &eff.must_writes {
            let v = post.env.get(c, layout);
            self.env = self.env.set(c, v);
        }
        for &key in &eff.packs_write {
            match key {
                crate::parallel::PackKey::Oct(pi) => self.set_oct(pi, post.oct(pi).clone()),
                crate::parallel::PackKey::Dtree(pi) => self.set_dtree(pi, post.dtree(pi).clone()),
                crate::parallel::PackKey::Ell(pi) => {
                    self.set_ell(pi, post.ell(pi));
                    self.set_pending(pi, post.pending(pi));
                }
            }
        }
    }

    /// Clock-tick transfer for the relational components: decision-tree
    /// leaves store clocked integer values whose `x − clock` / `x + clock`
    /// bounds must shift with the hidden clock exactly like the
    /// environment's (otherwise later reductions would meet stale bounds —
    /// unsound).
    pub fn tick_relational(&mut self) {
        let updates: Vec<(usize, DTree)> = self
            .dtrees_iter()
            .map(|(pi, tree)| {
                let ticked = tree.map(&|leaf: &PackEnv| {
                    let mut out = leaf.clone();
                    for (_, v) in &mut out.cells {
                        if let CellVal::Int(c) = v {
                            *v = CellVal::Int(c.tick());
                        }
                    }
                    out
                });
                (pi, ticked)
            })
            .collect();
        for (pi, t) in updates {
            self.set_dtree(pi, t);
        }
    }

    /// Drops relational information about a cell (after a weak or imprecise
    /// update).
    pub fn forget_cell(&mut self, cell: CellId, packs: &Packs) {
        if let Some(pids) = packs.oct_index.get(&cell) {
            for &pi in pids {
                if let Some(slot) = packs.oct_slot(pi, cell) {
                    let mut o = self.oct(pi).clone();
                    o.forget(slot);
                    self.set_oct(pi, o);
                }
            }
        }
        if let Some(pids) = packs.dtree_index.get(&cell) {
            for &pi in pids {
                let pack = &packs.dtrees[pi];
                let tree = self.dtree(pi);
                let new = if pack.bools.contains(&cell) {
                    tree.forget(cell)
                } else {
                    tree.map(&|leaf: &PackEnv| match leaf.get(cell) {
                        Some(CellVal::Int(_)) => leaf.set(cell, CellVal::Int(Clocked::TOP)),
                        Some(CellVal::Float(_)) => leaf.set(
                            cell,
                            CellVal::Float(FloatItv::new(f64::NEG_INFINITY, f64::INFINITY)),
                        ),
                        None => leaf.clone(),
                    })
                };
                self.set_dtree(pi, new);
            }
        }
        if let Some(pids) = packs.ellipse_index.get(&cell) {
            for &pi in pids {
                self.set_ell(pi, f64::INFINITY);
            }
        }
    }
}

/// Pre-join/widen reduction: replace an `∞` constraint by the box bound when
/// the other side is finite, so a reinitialization branch does not wipe the
/// filter invariant.
fn reduce_if_infinite(
    k: f64,
    other_k: f64,
    pi: usize,
    env: &AbsEnv,
    layout: &CellLayout,
    packs: &Packs,
) -> f64 {
    if !k.is_infinite() || !other_k.is_finite() || env.is_bottom() {
        return k;
    }
    let pack = &packs.ellipses[pi];
    let x = float_view(env.get(pack.x, layout));
    let y = float_view(env.get(pack.y, layout));
    Ellipsoid { a: pack.a, b: pack.b, k: f64::INFINITY }.reduce_from_box(x, y).k
}

/// A cell value viewed as a float interval (for octagons/ellipses, which
/// work in the real field).
pub fn float_view(v: CellVal) -> FloatItv {
    match v {
        CellVal::Float(f) => f,
        CellVal::Int(c) => {
            if c.val.is_bottom() {
                FloatItv::BOTTOM
            } else {
                let lo = if c.val.lo == i64::MIN { f64::NEG_INFINITY } else { c.val.lo as f64 };
                let hi = if c.val.hi == i64::MAX { f64::INFINITY } else { c.val.hi as f64 };
                FloatItv::new(lo, hi)
            }
        }
    }
}

/// Meets a cell with a float interval (converting for int cells); returns
/// `true` when the environment actually improved.
pub fn meet_cell_with_float(
    env: &mut AbsEnv,
    layout: &CellLayout,
    cell: CellId,
    itv: FloatItv,
) -> bool {
    if itv.is_bottom() {
        env.set_bottom();
        return true;
    }
    let old = env.get(cell, layout);
    let new = match old {
        CellVal::Float(f) => CellVal::Float(f.meet(itv)),
        CellVal::Int(mut c) => {
            let lo = if itv.lo == f64::NEG_INFINITY { i64::MIN } else { itv.lo.ceil() as i64 };
            let hi = if itv.hi == f64::INFINITY { i64::MAX } else { itv.hi.floor() as i64 };
            c.val = c.val.meet(IntItv::new(lo, hi));
            CellVal::Int(c)
        }
    };
    if new.is_bottom() {
        env.set_bottom();
        return true;
    }
    if new != old {
        *env = env.set(cell, new);
        true
    } else {
        false
    }
}

impl fmt::Display for AbsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            return write!(f, "⊥");
        }
        write!(f, "{}", self.env)?;
        writeln!(
            f,
            "  + {} octagons, {} dtrees, {} ellipses",
            self.octs.len(),
            self.dtrees.len(),
            self.ellipses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use astree_frontend::Frontend;
    use astree_memory::LayoutConfig;

    fn setup(src: &str) -> (astree_ir::Program, CellLayout, Packs) {
        let p = Frontend::new().compile_str(src).expect("compiles");
        let l = CellLayout::new(&p, &LayoutConfig::default());
        let packs = Packs::discover(&p, &l, &AnalysisConfig::default());
        (p, l, packs)
    }

    #[test]
    fn initial_state_shape() {
        let (_, l, packs) =
            setup("int x; int y; void main(void) { x = y + 1; if (x < y) { x = 0; } }");
        let s = AbsState::initial(&l, &packs);
        assert!(!s.is_bottom());
        assert_eq!(s.octs.len(), packs.octagons.len());
    }

    #[test]
    fn join_with_bottom() {
        let (_, l, packs) = setup("int x; int y; void main(void) { x = y + 1; }");
        let s = AbsState::initial(&l, &packs);
        let b = s.bottom_like();
        assert!(!b.join(&s, &l, &packs).is_bottom());
        assert!(!s.join(&b, &l, &packs).is_bottom());
    }

    #[test]
    fn clone_is_cheap_and_shared() {
        let (_, l, packs) =
            setup("int x; int y; void main(void) { x = y + 1; if (x < y) { x = 0; } }");
        let s = AbsState::initial(&l, &packs);
        let t = s.clone();
        // Physically shared: a join must shortcut.
        assert!(s.octs.ptr_eq(&t.octs));
    }

    #[test]
    fn reduce_octagon_refines_env() {
        let (_, l, packs) =
            setup("int x; int y; void main(void) { x = y + 1; if (x < y) { x = 0; } }");
        let mut s = AbsState::initial(&l, &packs);
        let xc = l.scalar_cell(astree_ir::VarId(0));
        let slot_x = packs.oct_slot(0, xc).expect("x in pack");
        let pack = &packs.octagons[0];
        let slot_y = (0..pack.cells.len()).find(|i| *i != slot_x).expect("y slot");
        let mut oct = s.oct(0).clone();
        oct.add_diff_le(slot_x, slot_y, -3.0);
        oct.add_upper(slot_y, 10.0);
        s.set_oct(0, oct);
        s.env = AbsEnv::top(&l);
        let improved = s.reduce(&l, &packs);
        assert!(improved > 0);
        let x_after = float_view(s.env.get(xc, &l));
        assert!(x_after.hi <= 7.0 + 1e-9, "x ≤ y − 3 ≤ 7 expected, got {x_after}");
    }

    #[test]
    fn local_reduce_touches_only_relevant_packs() {
        let (_, l, packs) = setup(
            "int a; int b; int c; int d;
             void main(void) {
                 a = b + 1;
                 if (a < b) { c = d + 2; if (c < d) { a = 0; } }
             }",
        );
        assert!(packs.octagons.len() >= 2);
        let mut s = AbsState::initial(&l, &packs);
        s.env = AbsEnv::top(&l);
        let ac = l.scalar_cell(astree_ir::VarId(0));
        // Constrain both packs' octagons, then reduce only around `a`.
        for pi in 0..packs.octagons.len() {
            let mut o = s.oct(pi).clone();
            o.add_upper(0, 5.0);
            s.set_oct(pi, o);
        }
        let improved = s.reduce_local(&l, &packs, &[ac], None);
        assert!(improved >= 1);
        // The pack not containing `a` was untouched: its cells stay ⊤.
        let dc = l.scalar_cell(astree_ir::VarId(3));
        let d_itv = float_view(s.env.get(dc, &l));
        assert_eq!(d_itv.hi, f64::INFINITY);
    }

    #[test]
    fn pack_env_lattice_laws() {
        let (_, l, _packs) = setup("int x; void main(void) { x = 1; }");
        let env = AbsEnv::initial(&l);
        let cells = vec![l.scalar_cell(astree_ir::VarId(0))];
        let a = PackEnv::from_env(&env, &l, &cells);
        let bot = PackEnv::bottom();
        assert!(bot.leq(&a));
        assert!(a.leq(&a.join(&bot)));
        assert!(!a.is_bottom());
        assert!(bot.is_bottom());
    }

    #[test]
    fn forget_cell_clears_relations() {
        let (_, l, packs) =
            setup("int x; int y; void main(void) { x = y + 1; if (x < y) { x = 0; } }");
        let mut s = AbsState::initial(&l, &packs);
        let xc = l.scalar_cell(astree_ir::VarId(0));
        let slot = packs.oct_slot(0, xc).expect("in pack");
        let mut o = s.oct(0).clone();
        o.add_upper(slot, 5.0);
        s.set_oct(0, o);
        s.forget_cell(xc, &packs);
        let mut o = s.oct(0).clone();
        o.close();
        assert_eq!(o.bounds(slot).hi, f64::INFINITY);
    }
}
