//! The iterator: abstract execution by induction on the abstract syntax
//! (paper Sect. 5.3–5.5 and 7.1).
//!
//! Two modes share the same transfer functions:
//!
//! - **iteration mode** computes loop invariants by unrolled first
//!   iterations (Sect. 7.1.1), plain unions for the first iterations
//!   (delayed widening, Sect. 7.1.3), widening with thresholds
//!   (Sect. 7.1.2), optional float-bound perturbation (Sect. 7.1.4), and
//!   narrowing; no warnings are emitted;
//! - **checking mode** replays the program from the stored invariants and
//!   issues one alarm per operator application that may err.
//!
//! Calls are analyzed by abstract inlining (context-sensitive polyvariant
//! analysis, Sect. 5.4); by-reference parameters are substituted by the
//! actual l-values. Trace partitioning (Sect. 7.1.5) delays branch merging
//! inside user-selected functions until the function's return point.

use crate::alarms::AlarmSink;
use crate::cache::{Seed, SeedOrigin};
use crate::config::AnalysisConfig;
use crate::packs::Packs;
use crate::state::{float_view, meet_cell_with_float, AbsState, PackEnv};
use crate::substitute::substitute_block;
use astree_domains::dtree::Lattice;
use astree_domains::{Ellipsoid, ErrFlags, FloatItv, Thresholds};
use astree_ir::{
    Binop, Block, CallArg, Expr, FuncId, LoopId, Lvalue, Program, ScalarType, Stmt, StmtId,
    StmtKind, Unop, VarId,
};
use astree_memory::{CellId, CellLayout, CellVal, Evaluator};
use astree_obs::{AlarmEvent, LoopDoneEvent, LoopIterEvent, Phase, Recorder, SliceEvent};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Analysis mode (paper Sect. 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Generate invariants; no warnings.
    Iterate,
    /// Replay from invariants; collect alarms.
    Check,
}

/// Running counters exposed in the final statistics.
#[derive(Debug, Default, Clone)]
pub struct IterStats {
    /// Total widening/union iterations across all loops.
    pub loop_iterations: u64,
    /// Total statements interpreted (both modes).
    pub stmts_interpreted: u64,
    /// Peak number of simultaneously live trace partitions.
    pub peak_partitions: usize,
    /// Number of statement stages executed by parallel slicing.
    pub par_stages: u64,
    /// Total slices run across all parallel stages.
    pub par_slices: u64,
}

impl IterStats {
    /// Folds a worker iterator's counters into this one.
    fn merge_worker(&mut self, o: &IterStats) {
        self.loop_iterations += o.loop_iterations;
        self.stmts_interpreted += o.stmts_interpreted;
        self.peak_partitions = self.peak_partitions.max(o.peak_partitions);
        self.par_stages += o.par_stages;
        self.par_slices += o.par_slices;
    }
}

/// The iterator.
pub struct Iter<'a> {
    program: &'a Program,
    layout: &'a CellLayout,
    packs: &'a Packs,
    config: &'a AnalysisConfig,
    eval: Evaluator<'a>,
    mode: Mode,
    /// Loop-head invariants, filled in iteration mode, replayed in checking
    /// mode.
    pub invariants: HashMap<LoopId, AbsState>,
    /// Candidate loop invariants from the incremental cache. A candidate is
    /// accepted iff one body pass proves it is still a post-fixpoint
    /// (`entry ⊔ F(seed) ⊑ seed`); otherwise the loop is solved cold.
    /// Per-loop and cross-member candidates get one rescue attempt: the
    /// failed pass's iterate `entry ⊔ F(seed)` is itself re-checked with
    /// the same predicate (one Kleene step absorbs drift in cells the
    /// candidate could not carry, e.g. member-specific temporaries).
    pub seeds: HashMap<LoopId, Seed>,
    /// Per-loop *coverage witness*: the post-unroll entry iterate (`base`)
    /// of the **last** iteration-mode visit, recorded alongside the stored
    /// invariant. The checking pass replays a loop against the stored
    /// invariant only when its own post-unroll iterate is below this
    /// witness — the stored invariant is a post-fixpoint of the body
    /// transfer above it, so it soundly describes exactly those contexts.
    /// Any other context (nested loops re-solved per outer iteration,
    /// shared bodies reached from several call statements) is re-solved by
    /// [`Iter::recheck_invariant`]. The invariant itself cannot serve as
    /// the witness: the loop-done reduction preserves concretizations but
    /// can tighten the invariant below `base` in the abstract order, which
    /// would flag every single-visit loop as uncovered.
    pub cover: HashMap<LoopId, AbsState>,
    /// Joined abstract state observed at each statement during the Check
    /// pass, filled only when `config.collect_stmt_invariants` is set. For a
    /// `while` statement this additionally accumulates every loop-head
    /// arrival (unrolled passes and the residual invariant), matching the
    /// concrete interpreter's per-arrival observer.
    pub stmt_invariants: HashMap<StmtId, AbsState>,
    /// Loops solved by full widening/narrowing iteration (iteration mode).
    pub loops_solved: u64,
    /// Loops whose cached invariant was verified by a single body pass.
    pub loops_replayed: u64,
    /// Loops seeded from a per-loop or cross-member candidate that passed
    /// the acceptance check.
    pub loops_seeded: u64,
    /// The subset of [`Iter::loops_seeded`] whose candidate came from
    /// another family member (portable store).
    pub seed_hits: u64,
    /// Loops re-solved during the checking pass because the stored
    /// invariant did not cover the arriving context (see
    /// [`Iter::recheck_invariant`]).
    pub loops_rechecked: u64,
    /// Per-function breakdown of `loops_solved`.
    pub solved_by_func: BTreeMap<String, u64>,
    /// Per-function breakdown of `loops_replayed`.
    pub replayed_by_func: BTreeMap<String, u64>,
    /// The alarm sink (checking mode).
    pub sink: AlarmSink,
    /// Per-octagon-pack usefulness counters (Sect. 7.2.2).
    pub oct_useful: Vec<usize>,
    /// Counters.
    pub stats: IterStats,
    /// Persistent-map counters drained from worker slices (the main thread's
    /// own counters stay in its thread-local and are drained by the session).
    pub(crate) pmap_worker_stats: astree_pmap::PmapStats,
    /// Whether the top-level dispatch may be sliced across workers
    /// (Monniaux's partition-and-join scheme); disabled inside workers.
    par_enabled: bool,
    /// The persistent work-stealing pool slices run on. `None` falls back
    /// to the per-stage fork-join scatter (and disables nested slicing).
    pub(crate) pool: Option<&'a astree_sched::WorkerPool>,
    /// Per-statement cost (nanos) measured the last time the statement ran
    /// in a staged block; feeds cost-guided chunking and the fat-statement
    /// test for nested slicing. Purely a scheduling hint: any chunking of a
    /// parallel stage merges identically.
    stmt_cost: HashMap<StmtId, u64>,
    /// How many `if` branch levels below a staged block the current block
    /// sits at (0 = the staged block itself). Nested slicing recurses one
    /// level only.
    branch_level: u32,
    /// Whether the statement currently executing on the main iterator was
    /// measured fat enough (cost share ≥ `nested_cost_fraction`) for its
    /// branch blocks to be worth slicing.
    nested_fat: bool,
    /// Cached stage plans, keyed by the first statement of the block.
    plans: HashMap<StmtId, Arc<crate::parallel::BlockPlan>>,
    /// Telemetry sink (the no-op recorder by default).
    rec: &'a dyn Recorder,
    /// Cached `rec.enabled()`: hot paths pay one branch, not a virtual call.
    rec_on: bool,
    /// Function-name stack for event and cache-counter attribution.
    func_stack: Vec<&'a str>,
    /// `(loop id, checking iteration)` context stack (maintained when
    /// `rec_on`), for alarm provenance.
    loop_stack: Vec<(u32, u64)>,
}

/// The set of partitions flowing through a block, plus the accumulated
/// return state of the enclosing function.
struct Flow {
    parts: Vec<AbsState>,
    returned: AbsState,
}

/// Everything one slice of a parallel stage sends back to the merger.
struct SliceOut {
    /// The slice's post-state (`None` when it went to bottom or split into
    /// partitions — shapes the overlay model cannot express).
    post: Option<AbsState>,
    returned: AbsState,
    invariants: HashMap<LoopId, AbsState>,
    cover: HashMap<LoopId, AbsState>,
    sink: AlarmSink,
    stats: IterStats,
    oct_useful: Vec<usize>,
    wall: Duration,
    /// Per-statement cost, fed back into the chunking heuristic.
    stmt_nanos: Vec<(StmtId, u64)>,
    /// Octagon closures the ref fast paths skipped on this slice's thread.
    saved_closures: u64,
    /// Persistent-map counters drained from this slice's thread.
    pmap_stats: astree_pmap::PmapStats,
    loops_solved: u64,
    loops_replayed: u64,
    loops_seeded: u64,
    seed_hits: u64,
    loops_rechecked: u64,
    solved_by_func: BTreeMap<String, u64>,
    replayed_by_func: BTreeMap<String, u64>,
}

impl<'a> Iter<'a> {
    /// Creates an iterator over the given program and configuration, with
    /// the no-op telemetry recorder.
    pub fn new(
        program: &'a Program,
        layout: &'a CellLayout,
        packs: &'a Packs,
        config: &'a AnalysisConfig,
    ) -> Self {
        Iter::with_recorder(program, layout, packs, config, &astree_obs::NULL)
    }

    /// Creates an iterator that reports telemetry events to `rec`.
    pub fn with_recorder(
        program: &'a Program,
        layout: &'a CellLayout,
        packs: &'a Packs,
        config: &'a AnalysisConfig,
        rec: &'a dyn Recorder,
    ) -> Self {
        let mut eval = Evaluator::new(program, layout, config.max_clock);
        eval.linearize = config.enable_linearization;
        eval.clocked = config.enable_clocked;
        Iter {
            program,
            layout,
            packs,
            config,
            eval,
            mode: Mode::Iterate,
            invariants: HashMap::new(),
            cover: HashMap::new(),
            seeds: HashMap::new(),
            stmt_invariants: HashMap::new(),
            loops_solved: 0,
            loops_replayed: 0,
            loops_seeded: 0,
            seed_hits: 0,
            loops_rechecked: 0,
            solved_by_func: BTreeMap::new(),
            replayed_by_func: BTreeMap::new(),
            sink: AlarmSink::new(),
            oct_useful: vec![0; packs.octagons.len()],
            stats: IterStats::default(),
            pmap_worker_stats: astree_pmap::PmapStats::default(),
            // Parallel slices run on worker `Iter`s whose per-statement
            // captures would be dropped at merge; collection forces the
            // sequential interpreter (alarms are identical either way).
            par_enabled: config.jobs > 1 && !config.collect_stmt_invariants,
            pool: None,
            stmt_cost: HashMap::new(),
            branch_level: 0,
            nested_fat: true,
            plans: HashMap::new(),
            rec,
            rec_on: rec.enabled(),
            func_stack: Vec::new(),
            loop_stack: Vec::new(),
        }
    }

    /// The function currently being analyzed, for event attribution.
    fn cur_func(&self) -> &'a str {
        match self.func_stack.last() {
            Some(name) => name,
            None => self.program.func(self.program.entry).name.as_str(),
        }
    }

    /// Nanoseconds elapsed since `t0` (telemetry helper).
    fn nanos_since(t0: Instant) -> u64 {
        t0.elapsed().as_nanos() as u64
    }

    /// Runs one full pass from the entry point in the given mode and returns
    /// the final state.
    pub fn run_mode(&mut self, mode: Mode) -> AbsState {
        self.mode = mode;
        let state = AbsState::initial(self.layout, self.packs);
        self.exec_function(state, self.program.entry, None, 0)
    }

    // ----- functions -------------------------------------------------------

    fn exec_function(
        &mut self,
        state: AbsState,
        func: FuncId,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) -> AbsState {
        assert!(depth < 128, "call depth exceeded (recursion should be rejected)");
        let f = self.program.func(func);
        let partitioning = self.config.partitioned_functions.contains(&f.name);
        let body = f.body.clone();
        let bot = state.bottom_like();
        self.func_stack.push(self.program.func(func).name.as_str());
        let mut flow = Flow { parts: vec![state], returned: bot };
        self.exec_block(&mut flow, &body, ret_target, partitioning, depth);
        let mut out = flow.returned;
        for p in flow.parts {
            out = out.join(&p, self.layout, self.packs);
        }
        self.func_stack.pop();
        out
    }

    fn exec_block(
        &mut self,
        flow: &mut Flow,
        block: &Block,
        ret_target: Option<&Lvalue>,
        partitioning: bool,
        depth: u32,
    ) {
        // Top-level blocks (the entry dispatch and the synchronous loop's
        // body) may be sliced across workers when `jobs > 1`. Branch blocks
        // of a fat `if` may be sliced one level deeper (nested slicing),
        // their sub-slices becoming stealable tasks on the pool.
        let nest_ok = self.branch_level == 0
            || (self.config.nested_slicing
                && self.pool.is_some()
                && self.branch_level == 1
                && self.nested_fat);
        if self.par_enabled
            && depth == 0
            && !partitioning
            && nest_ok
            && block.len() >= 2
            && flow.parts.len() == 1
            && !flow.parts[0].is_bottom()
        {
            self.exec_block_staged(flow, block, ret_target, depth);
            return;
        }
        for s in block {
            // A lone statement is the whole block's cost: always fat.
            self.nested_fat = true;
            self.exec_stmt(flow, s, ret_target, partitioning, depth);
            flow.parts.retain(|p| !p.is_bottom());
            if flow.parts.is_empty() {
                return;
            }
        }
    }

    /// Cost share of `s` within `block` per the last measurements, deciding
    /// whether its branch blocks are worth nested slicing. Unmeasured blocks
    /// (first iteration, cold cache) count as fat — recursing is how the
    /// costs get measured.
    fn is_fat(&self, block: &Block, s: &Stmt) -> bool {
        let total: u64 =
            block.iter().map(|s| self.stmt_cost.get(&s.id).copied().unwrap_or(0)).sum();
        if total == 0 {
            return true;
        }
        let cost = self.stmt_cost.get(&s.id).copied().unwrap_or(0);
        cost as f64 >= self.config.nested_cost_fraction.clamp(0.0, 1.0) * total as f64
    }

    /// Executes a block stage by stage, slicing parallel stages across
    /// `config.jobs` workers. Statement order inside each stage's merge is
    /// fixed, so the result is bit-identical to the sequential interpreter
    /// for every worker count.
    fn exec_block_staged(
        &mut self,
        flow: &mut Flow,
        block: &Block,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) {
        let plan = match self.plans.get(&block[0].id) {
            Some(p) => Arc::clone(p),
            None => {
                let p = Arc::new(crate::parallel::plan_block(
                    self.program,
                    self.layout,
                    self.packs,
                    block,
                ));
                self.plans.insert(block[0].id, Arc::clone(&p));
                p
            }
        };
        if !plan.parallel {
            // No stage can be sliced: plain sequential execution.
            for s in block {
                self.exec_stmt_timed(flow, block, s, ret_target, depth);
                flow.parts.retain(|p| !p.is_bottom());
                if flow.parts.is_empty() {
                    return;
                }
            }
            return;
        }
        for stage in &plan.stages {
            let run_par = stage.parallel
                && self.config.jobs > 1
                && flow.parts.len() == 1
                && !flow.parts[0].is_bottom();
            if !run_par || !self.exec_stage_parallel(flow, block, &plan, stage, ret_target, depth) {
                for s in &block[stage.range()] {
                    self.exec_stmt_timed(flow, block, s, ret_target, depth);
                    flow.parts.retain(|p| !p.is_bottom());
                    if flow.parts.is_empty() {
                        return;
                    }
                }
            }
        }
    }

    /// Executes one statement of a staged block on the main iterator,
    /// recording its cost (the chunking heuristic for the next encounter —
    /// staged blocks re-run every fixpoint iteration) and flagging whether
    /// it is fat enough for nested slicing of its branch blocks.
    fn exec_stmt_timed(
        &mut self,
        flow: &mut Flow,
        block: &Block,
        s: &Stmt,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) {
        self.nested_fat = self.is_fat(block, s);
        let t0 = Instant::now();
        self.exec_stmt(flow, s, ret_target, false, depth);
        self.stmt_cost.insert(s.id, Self::nanos_since(t0));
    }

    /// Runs one parallel stage: the statement range is chunked into
    /// contiguous slices, each slice is analyzed from the shared pre-state by
    /// a fresh worker iterator, and the slice deltas are overlaid in slice
    /// order. Returns `false` (leaving the flow untouched) when the stage
    /// must be replayed sequentially instead.
    fn exec_stage_parallel(
        &mut self,
        flow: &mut Flow,
        block: &Block,
        plan: &crate::parallel::BlockPlan,
        stage: &astree_sched::Stage,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) -> bool {
        let stmts = &block[stage.range()];
        // Chunk by last-measured statement cost when available (zero-cost
        // vectors fall back to equal counts); chunks above the cost-fraction
        // threshold are split further into stealable tasks.
        let costs: Vec<u64> =
            stmts.iter().map(|s| self.stmt_cost.get(&s.id).copied().unwrap_or(0)).collect();
        let chunks = astree_sched::cost_chunk_ranges(
            stmts.len(),
            self.config.jobs,
            Some(&costs),
            self.config.nested_cost_fraction,
        );
        if chunks.len() < 2 {
            if self.rec_on {
                self.rec.fallback("too_few_chunks");
            }
            return false;
        }
        let pre = flow.parts[0].clone();
        let mode = self.mode;
        let program = self.program;
        let layout = self.layout;
        let packs = self.packs;
        let config = self.config;
        let seed_invariants = &self.invariants;
        let cover_map = &self.cover;
        let cache_seeds = &self.seeds;
        let panic_slice = self.config.debug_panic_slice;

        // Each worker runs under `catch_unwind`: a panicking slice must not
        // take down the analysis, it only forces the sequential replay below
        // (which is safe — nothing of the stage has been committed yet).
        // `AssertUnwindSafe` is sound here because a panicked slice's entire
        // result is discarded and the captured state is read-only.
        let worker = |ci: usize, r: std::ops::Range<usize>| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if panic_slice == Some(ci) {
                    panic!("injected slice fault (debug_panic_slice)");
                }
                // Pool threads keep their own copy of the thread-local
                // sharing flag: align it with the session's configuration on
                // every slice (the session only sets the caller's thread).
                astree_pmap::set_ptr_shortcuts(!config.debug_no_ptr_shortcuts);
                astree_domains::set_generic_kernels(config.debug_generic_kernels);
                let t0 = Instant::now();
                let mut w = Iter::new(program, layout, packs, config);
                w.par_enabled = false;
                w.mode = mode;
                // Cache seeds feed both iteration-mode solves and the
                // checking pass's context re-solves; share them either way
                // so worker and sequential solves stay identical.
                w.seeds = cache_seeds.clone();
                if mode == Mode::Check {
                    w.invariants = seed_invariants.clone();
                    w.cover = cover_map.clone();
                }
                let mut wf = Flow { parts: vec![pre.clone()], returned: pre.bottom_like() };
                let mut stmt_nanos = Vec::with_capacity(r.len());
                for s in &stmts[r] {
                    let ts = Instant::now();
                    w.exec_stmt(&mut wf, s, ret_target, false, depth);
                    stmt_nanos.push((s.id, Self::nanos_since(ts)));
                    wf.parts.retain(|p| !p.is_bottom());
                    if wf.parts.is_empty() {
                        break;
                    }
                }
                let post = if wf.parts.len() == 1 { Some(wf.parts.pop().unwrap()) } else { None };
                SliceOut {
                    post,
                    returned: wf.returned,
                    invariants: w.invariants,
                    cover: w.cover,
                    sink: w.sink,
                    stats: w.stats,
                    oct_useful: w.oct_useful,
                    wall: t0.elapsed(),
                    stmt_nanos,
                    saved_closures: astree_domains::take_saved_closures(),
                    pmap_stats: astree_pmap::take_stats(),
                    loops_solved: w.loops_solved,
                    loops_replayed: w.loops_replayed,
                    loops_seeded: w.loops_seeded,
                    seed_hits: w.seed_hits,
                    loops_rechecked: w.loops_rechecked,
                    solved_by_func: w.solved_by_func,
                    replayed_by_func: w.replayed_by_func,
                }
            }))
            .ok()
        };
        let results = if config.debug_inline_slices {
            chunks.iter().cloned().enumerate().map(|(ci, r)| worker(ci, r)).collect()
        } else {
            match self.pool {
                Some(pool) => pool.scatter_seeded(config.debug_force_steal, chunks.clone(), worker),
                None => astree_sched::scatter(chunks.clone(), worker),
            }
        };

        if results.iter().any(|r| r.is_none()) {
            if self.rec_on {
                self.rec.fallback("worker_panic");
            }
            return false;
        }
        let results: Vec<SliceOut> =
            results.into_iter().map(|r| r.expect("checked above")).collect();

        // Any slice that went to bottom, split into partitions, or produced a
        // return state falls outside the overlay model: replay sequentially.
        if results.iter().any(|r| r.post.is_none() || !r.returned.is_bottom()) {
            if self.rec_on {
                self.rec.fallback("slice_shape");
            }
            return false;
        }

        let stage_no = self.stats.par_stages + 1;
        if self.rec_on {
            for (ci, r) in results.iter().enumerate() {
                self.rec.slice(&SliceEvent {
                    stage: stage_no,
                    index: ci,
                    stmts: chunks[ci].len(),
                    nanos: r.wall.as_nanos() as u64,
                });
            }
        }
        let t_merge = self.rec_on.then(Instant::now);
        let mut merged = pre.clone();
        let mut saved_closures = 0u64;
        for (ci, out) in results.into_iter().enumerate() {
            let post = out.post.expect("checked above");
            let r = &chunks[ci];
            let eff = crate::parallel::slice_effects(
                &plan.footprints[stage.start + r.start..stage.start + r.end],
            );
            merged.overlay_from(&pre, &post, &eff, self.layout);
            self.loops_rechecked += out.loops_rechecked;
            if mode == Mode::Iterate {
                for (id, inv) in out.invariants {
                    self.invariants.insert(id, inv);
                }
                for (id, c) in out.cover {
                    self.cover.insert(id, c);
                }
                self.loops_solved += out.loops_solved;
                self.loops_replayed += out.loops_replayed;
                self.loops_seeded += out.loops_seeded;
                self.seed_hits += out.seed_hits;
                for (k, v) in out.solved_by_func {
                    *self.solved_by_func.entry(k).or_insert(0) += v;
                }
                for (k, v) in out.replayed_by_func {
                    *self.replayed_by_func.entry(k).or_insert(0) += v;
                }
            }
            self.sink.absorb(out.sink);
            self.stats.merge_worker(&out.stats);
            for (pi, n) in out.oct_useful.into_iter().enumerate() {
                self.oct_useful[pi] += n;
            }
            for (sid, ns) in out.stmt_nanos {
                self.stmt_cost.insert(sid, ns);
            }
            saved_closures += out.saved_closures;
            self.pmap_worker_stats.absorb(&out.pmap_stats);
        }
        if self.rec_on && saved_closures > 0 {
            self.rec.domain_op_n("octagon", "closure_saved", saved_closures, 0);
        }
        if let Some(t0) = t_merge {
            self.rec.merge(stage_no, chunks.len(), Self::nanos_since(t0));
        }
        self.stats.par_stages += 1;
        self.stats.par_slices += chunks.len() as u64;
        flow.parts[0] = merged;
        true
    }

    fn exec_stmt(
        &mut self,
        flow: &mut Flow,
        s: &Stmt,
        ret_target: Option<&Lvalue>,
        partitioning: bool,
        depth: u32,
    ) {
        self.stats.stmts_interpreted += flow.parts.len() as u64;
        self.stats.peak_partitions = self.stats.peak_partitions.max(flow.parts.len());
        if self.rec_on && flow.parts.len() > 1 {
            self.rec.partitions(self.cur_func(), flow.parts.len() as u64);
        }
        if self.config.collect_stmt_invariants && self.mode == Mode::Check {
            for p in &flow.parts {
                self.note_stmt_state(s.id, p);
            }
        }
        match &s.kind {
            StmtKind::Assign(lv, e) => {
                for p in &mut flow.parts {
                    *p = self.transfer_assign(p, lv, e, s);
                }
            }
            StmtKind::If(c, then_b, else_b) => {
                if self.mode == Mode::Check {
                    // Check the condition against every live partition (the
                    // alarm sink deduplicates per statement and kind).
                    let parts = std::mem::take(&mut flow.parts);
                    for p in &parts {
                        self.check_expr(Some(p), c, s);
                    }
                    flow.parts = parts;
                }
                let parts = std::mem::take(&mut flow.parts);
                let mut merged: Vec<AbsState> = Vec::new();
                // Branch blocks sit one slice level deeper; `nested_fat`
                // (set for this `if` by the staged caller) must be restored
                // before each branch since a sliced branch clobbers it.
                let fat = self.nested_fat;
                self.branch_level += 1;
                for p in parts {
                    let t_in = self.state_guard(&p, c, true);
                    let f_in = self.state_guard(&p, c, false);
                    let mut tf = Flow { parts: vec![t_in], returned: p.bottom_like() };
                    self.nested_fat = fat;
                    self.exec_block(&mut tf, then_b, ret_target, partitioning, depth);
                    let mut ff = Flow { parts: vec![f_in], returned: p.bottom_like() };
                    self.nested_fat = fat;
                    self.exec_block(&mut ff, else_b, ret_target, partitioning, depth);
                    flow.returned = flow.returned.join(&tf.returned, self.layout, self.packs);
                    flow.returned = flow.returned.join(&ff.returned, self.layout, self.packs);
                    if partitioning {
                        merged.extend(tf.parts);
                        merged.extend(ff.parts);
                    } else {
                        let mut j = p.bottom_like();
                        for q in tf.parts.into_iter().chain(ff.parts) {
                            j = j.join(&q, self.layout, self.packs);
                        }
                        merged.push(j);
                    }
                }
                self.branch_level -= 1;
                // Cap the number of live partitions.
                if merged.len() > self.config.max_partitions {
                    let mut j = merged[0].bottom_like();
                    for q in merged {
                        j = j.join(&q, self.layout, self.packs);
                    }
                    merged = vec![j];
                }
                flow.parts = merged;
            }
            StmtKind::While(id, c, body) => {
                // Loops merge partitions (partitioning applies to acyclic
                // code; the invariant is one abstract element).
                let mut entry = flow.parts[0].bottom_like();
                for p in std::mem::take(&mut flow.parts) {
                    entry = entry.join(&p, self.layout, self.packs);
                }
                let exit = match self.mode {
                    Mode::Iterate => self.solve_loop(entry, *id, c, body, ret_target, depth),
                    Mode::Check => self.check_loop(entry, *id, c, body, s, ret_target, depth),
                };
                flow.parts = vec![exit];
            }
            StmtKind::Call(ret, callee, args) => {
                let parts = std::mem::take(&mut flow.parts);
                for p in parts {
                    let out = self.transfer_call(p, *callee, args, ret.as_ref(), s, depth);
                    flow.parts.push(out);
                }
            }
            StmtKind::Return(e) => {
                let parts = std::mem::take(&mut flow.parts);
                for p in parts {
                    let p = match (e, ret_target) {
                        (Some(e), Some(target)) => self.transfer_assign(&p, target, e, s),
                        (Some(e), None) => {
                            if self.mode == Mode::Check {
                                self.check_expr(Some(&p), e, s);
                            }
                            p
                        }
                        _ => p,
                    };
                    flow.returned = flow.returned.join(&p, self.layout, self.packs);
                }
            }
            StmtKind::Wait => {
                for p in &mut flow.parts {
                    p.env = self.eval.tick(&p.env);
                    if self.config.enable_clocked {
                        p.tick_relational();
                    }
                }
            }
            StmtKind::Assume(c) => {
                for p in flow.parts.iter_mut() {
                    *p = self.state_guard(p, c, true);
                }
            }
            StmtKind::ReadVolatile(v) => {
                for p in &mut flow.parts {
                    *p = self.transfer_read_volatile(p, *v);
                }
            }
        }
    }

    // ----- loops (Sect. 5.5, 7.1) ------------------------------------------

    /// Post-fixpoint test with a `ptr_eq` fast path: once merges preserve
    /// identity, a stabilized iterate is *physically* equal to its
    /// predecessor and the structural `leq` walk can be skipped outright.
    /// The fast path is an implication (`ptr_eq ⇒ leq`), never a semantic
    /// change; `debug_no_ptr_shortcuts` (via the thread-local pmap flag)
    /// forces the walk for the CI differential.
    fn post_fixpoint(fval: &AbsState, inv: &AbsState) -> bool {
        (astree_pmap::ptr_shortcuts_enabled() && fval.ptr_eq(inv)) || fval.leq(inv)
    }

    fn solve_loop(
        &mut self,
        entry: AbsState,
        id: LoopId,
        cond: &Expr,
        body: &Block,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) -> AbsState {
        let mut exits = entry.bottom_like();
        let mut cur = entry;
        // Semantic loop unrolling (Sect. 7.1.1).
        let unroll = self.config.unroll_for(id);
        if self.rec_on && unroll > 0 {
            self.rec.unroll(self.cur_func(), id.0, unroll);
        }
        for _ in 0..unroll {
            exits = exits.join(&self.state_guard(&cur, cond, false), self.layout, self.packs);
            let body_in = self.state_guard(&cur, cond, true);
            if body_in.is_bottom() {
                self.invariants.insert(id, body_in.bottom_like());
                // Residual unreachable in this context: a checking-mode
                // context that *does* reach the residual is uncovered.
                self.cover.insert(id, body_in.bottom_like());
                return exits;
            }
            cur = self.exec_loop_body(body_in, body, ret_target, depth);
        }
        // Widening iterations for the residual loop.
        let base = cur.clone();
        // Incremental replay: a cached candidate invariant is accepted iff
        // one body pass proves it is still a post-fixpoint of the residual
        // loop (`entry ⊔ F(seed) ⊑ seed`, sound by Tarski). A stale
        // candidate costs one pass and falls back to cold iteration.
        if self.mode == Mode::Iterate {
            if let Some(seed) = self.seeds.get(&id).cloned() {
                let (mut cand, origin) = match seed {
                    Seed::Full(st, o) => (st, o),
                    Seed::Portable(p) => (p.apply(&base), SeedOrigin::Portable),
                };
                // A whole-function candidate either fits verbatim or not;
                // per-loop and cross-member candidates get the one-step
                // rescue (see the `seeds` field).
                let attempts = if origin == SeedOrigin::Func { 1 } else { 2 };
                for attempt in 0..attempts {
                    let body_in = self.state_guard(&cand, cond, true);
                    let body_out = self.exec_loop_body(body_in, body, ret_target, depth);
                    let fval = base.join(&body_out, self.layout, self.packs);
                    if Self::post_fixpoint(&fval, &cand) {
                        match origin {
                            SeedOrigin::Func => {
                                self.loops_replayed += 1;
                                let f = self.cur_func().to_string();
                                *self.replayed_by_func.entry(f).or_insert(0) += 1;
                            }
                            SeedOrigin::Loop => self.loops_seeded += 1,
                            SeedOrigin::Portable => {
                                self.loops_seeded += 1;
                                self.seed_hits += 1;
                            }
                        }
                        if self.rec_on {
                            self.rec.loop_done(&LoopDoneEvent {
                                func: self.cur_func(),
                                loop_id: id.0,
                                iterations: (attempt + 1) as u64,
                                stabilized_at: 1,
                            });
                        }
                        self.invariants.insert(id, cand.clone());
                        // The acceptance test proved `base ⊑ cand`.
                        self.cover.insert(id, base.clone());
                        return exits.join(
                            &self.state_guard(&cand, cond, false),
                            self.layout,
                            self.packs,
                        );
                    }
                    cand = fval;
                }
            }
            self.loops_solved += 1;
            let f = self.cur_func().to_string();
            *self.solved_by_func.entry(f).or_insert(0) += 1;
        }
        let mut inv = cur;
        let mut iter = 0u32;
        let mut grace = self.config.stabilization_grace;
        let mut prev_unstable = usize::MAX;
        let no_thresholds = Thresholds::none();
        let stabilized_at;
        loop {
            iter += 1;
            self.stats.loop_iterations += 1;
            let body_in = self.state_guard(&inv, cond, true);
            let mut body_out = self.exec_loop_body(body_in, body, ret_target, depth);
            self.perturb(&mut body_out);
            let fval = base.join(&body_out, self.layout, self.packs);
            if Self::post_fixpoint(&fval, &inv) {
                stabilized_at = iter as u64;
                break;
            }
            let unstable = inv.env.count_diff(&fval.env);
            let stabilizing = unstable < prev_unstable && grace > 0;
            prev_unstable = unstable;
            // Snapshot the invariant's env (cheap: persistent map) so the
            // telemetry event can classify which bounds moved and how.
            let before = self.rec_on.then(|| inv.env.clone());
            let t0 = self.rec_on.then(Instant::now);
            let phase;
            if iter <= self.config.widening_delay || stabilizing {
                if stabilizing && iter > self.config.widening_delay {
                    grace -= 1;
                }
                phase = Phase::Union;
                inv = inv.join(&fval, self.layout, self.packs);
            } else if iter <= self.config.max_iterations {
                phase = Phase::Widen;
                inv = inv.widen(&fval, self.layout, self.packs, &self.config.thresholds);
            } else {
                // Hard cap: finish with threshold-free widening.
                phase = Phase::WidenTop;
                inv = inv.widen(&fval, self.layout, self.packs, &no_thresholds);
            }
            if let (Some(before), Some(t0)) = (before, t0) {
                let op = if phase == Phase::Union { "join" } else { "widen" };
                self.rec.domain_op("state", op, Self::nanos_since(t0));
                let (threshold_hits, infinity_escapes) = self.widen_deltas(&before, &inv.env);
                self.rec.loop_iter(&LoopIterEvent {
                    func: self.cur_func(),
                    loop_id: id.0,
                    iteration: iter as u64,
                    phase,
                    unstable_cells: unstable as u64,
                    threshold_hits,
                    infinity_escapes,
                });
            }
        }
        // Narrowing iterations (Sect. 5.5).
        for k in 0..self.config.narrowing_iterations {
            let body_in = self.state_guard(&inv, cond, true);
            let body_out = self.exec_loop_body(body_in, body, ret_target, depth);
            let fval = base.join(&body_out, self.layout, self.packs);
            // Widening-overshoot correction: a physically unchanged iterate
            // cannot narrow anything (`x Δ x = x`), so skip the walk.
            if astree_pmap::ptr_shortcuts_enabled() && fval.ptr_eq(&inv) {
                continue;
            }
            let t0 = self.rec_on.then(Instant::now);
            inv = inv.narrow(&fval);
            if let Some(t0) = t0 {
                self.rec.domain_op("state", "narrow", Self::nanos_since(t0));
                self.rec.loop_iter(&LoopIterEvent {
                    func: self.cur_func(),
                    loop_id: id.0,
                    iteration: stabilized_at + k as u64 + 1,
                    phase: Phase::Narrow,
                    unstable_cells: 0,
                    threshold_hits: 0,
                    infinity_escapes: 0,
                });
            }
        }
        let t0 = self.rec_on.then(Instant::now);
        self.reduce_loop_done(&mut inv, &base.env, cond, body, depth);
        if let Some(t0) = t0 {
            self.rec.domain_op("octagon", "closure", Self::nanos_since(t0));
            self.rec.loop_done(&LoopDoneEvent {
                func: self.cur_func(),
                loop_id: id.0,
                iterations: stabilized_at + self.config.narrowing_iterations as u64,
                stabilized_at,
            });
        }
        self.invariants.insert(id, inv.clone());
        self.cover.insert(id, base);
        exits.join(&self.state_guard(&inv, cond, false), self.layout, self.packs)
    }

    /// The reduction closing a loop solve. Depth-0 loops (the synchronous
    /// loop, entry-block initialization loops) reduce the full state; loops
    /// inside callees reduce only the packs overlapping the loop's own cells
    /// (the localized loop-done reduction — cost proportional to the loop,
    /// and the statement footprint stays local, which is what lets the
    /// planner slice the top-level dispatch). Falls back to the full
    /// reduction when the loop's cell set is unbounded (call-depth cap,
    /// clock tick inside the body).
    fn reduce_loop_done(
        &mut self,
        inv: &mut AbsState,
        entry_env: &astree_memory::AbsEnv,
        cond: &Expr,
        body: &Block,
        depth: u32,
    ) {
        let cells = if depth == 0 {
            None
        } else {
            crate::parallel::loop_touched_cells(self.program, self.layout, cond, body)
        };
        match cells {
            Some(cells) => {
                let mut cells: Vec<CellId> = cells.into_iter().collect();
                // Add the cells the solve actually moved, enumerated by
                // `diff2` at cost proportional to the diff (not the
                // environment): this catches effects the syntactic walk
                // cannot attribute while keeping the reduction scope a
                // superset of the purely syntactic one. The diff is computed
                // the same way with sharing on and off, so both modes reduce
                // the same packs.
                entry_env.changed_cells(&inv.env, &mut cells);
                cells.sort_unstable();
                cells.dedup();
                inv.reduce_local(self.layout, self.packs, &cells, Some(&mut self.oct_useful));
            }
            None => {
                inv.reduce_counting(self.layout, self.packs, Some(&mut self.oct_useful));
            }
        }
    }

    /// Diffs the invariant environment across one join/widen step: a bound
    /// that moved to a finite value is a threshold hit, one that escaped to
    /// the type's extreme is an infinity escape. Driven by the changed-cell
    /// set (`diff2` skips shared subtrees wholesale), not a full env walk —
    /// bounds can only move at cells whose value changed.
    fn widen_deltas(
        &self,
        before: &astree_memory::AbsEnv,
        after: &astree_memory::AbsEnv,
    ) -> (u64, u64) {
        let mut hits = 0u64;
        let mut escapes = 0u64;
        let mut changed = Vec::new();
        before.changed_cells(after, &mut changed);
        for id in changed {
            let old = before.get(id, self.layout);
            let new = after.get(id, self.layout);
            match (old, &new) {
                (CellVal::Int(o), CellVal::Int(n)) => {
                    if n.val.lo < o.val.lo {
                        if n.val.lo == i64::MIN {
                            escapes += 1
                        } else {
                            hits += 1
                        }
                    }
                    if n.val.hi > o.val.hi {
                        if n.val.hi == i64::MAX {
                            escapes += 1
                        } else {
                            hits += 1
                        }
                    }
                }
                (CellVal::Float(o), CellVal::Float(n)) => {
                    if n.lo < o.lo {
                        if n.lo == f64::NEG_INFINITY {
                            escapes += 1
                        } else {
                            hits += 1
                        }
                    }
                    if n.hi > o.hi {
                        if n.hi == f64::INFINITY {
                            escapes += 1
                        } else {
                            hits += 1
                        }
                    }
                }
                _ => {}
            }
        }
        (hits, escapes)
    }

    /// Joins `st` into the per-statement invariant record for `id` (Check
    /// mode with `collect_stmt_invariants` only; bottom states — claimed
    /// unreachable — are skipped so absence in the map means "the analyzer
    /// claims no execution reaches this point").
    fn note_stmt_state(&mut self, id: StmtId, st: &AbsState) {
        if !self.config.collect_stmt_invariants || self.mode != Mode::Check || st.is_bottom() {
            return;
        }
        let (layout, packs) = (self.layout, self.packs);
        match self.stmt_invariants.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let joined = e.get().join(st, layout, packs);
                e.insert(joined);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(st.clone());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_loop(
        &mut self,
        entry: AbsState,
        id: LoopId,
        cond: &Expr,
        body: &Block,
        s: &Stmt,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) -> AbsState {
        let mut exits = entry.bottom_like();
        let entry0 = entry.clone();
        let mut cur = entry;
        let unroll = self.config.unroll_for(id);
        for k in 0..unroll {
            if self.rec_on {
                self.loop_stack.push((id.0, k as u64 + 1));
            }
            self.check_expr(Some(&cur), cond, s);
            exits = exits.join(&self.state_guard(&cur, cond, false), self.layout, self.packs);
            let body_in = self.state_guard(&cur, cond, true);
            if body_in.is_bottom() {
                if self.rec_on {
                    self.loop_stack.pop();
                }
                return exits;
            }
            cur = self.exec_loop_body(body_in, body, ret_target, depth);
            // Each back edge of an unrolled pass arrives at the loop head
            // with `cur`; record it so the soundness oracle can check the
            // concrete per-arrival observations of early iterations.
            self.note_stmt_state(s.id, &cur);
            if self.rec_on {
                self.loop_stack.pop();
            }
        }
        let covered = self.cover.get(&id).is_some_and(|c| Self::post_fixpoint(&cur, c));
        let inv = match self.invariants.get(&id) {
            // The stored invariant is a post-fixpoint of the body transfer
            // above the recorded coverage witness, so it soundly describes
            // the residual iterations of any context at or below it.
            Some(stored) if covered => stored.clone(),
            // Uncovered context: iteration mode stores loop invariants by
            // overwrite, so a loop revisited under several contexts (nested
            // loops re-solved per outer iteration, shared bodies reached
            // from several call statements) keeps only the *last* visit's
            // invariant. Checking this context against it would be unsound
            // — reproduce the iteration-mode in-context solve instead.
            Some(_) => self.recheck_invariant(entry0, id, cond, body, ret_target, depth),
            None => cur,
        };
        // All residual loop-head arrivals (beyond the unrolled prefix) are
        // covered by the loop invariant.
        self.note_stmt_state(s.id, &inv);
        // One extra pass in checking mode from the invariant (Sect. 5.4).
        if self.rec_on {
            self.loop_stack.push((id.0, unroll as u64 + 1));
        }
        self.check_expr(Some(&inv), cond, s);
        let body_in = self.state_guard(&inv, cond, true);
        if !body_in.is_bottom() {
            let _ = self.exec_loop_body(body_in, body, ret_target, depth);
        }
        if self.rec_on {
            self.loop_stack.pop();
        }
        exits.join(&self.state_guard(&inv, cond, false), self.layout, self.packs)
    }

    /// Re-solves a loop during the checking pass, for a context the stored
    /// invariant does not cover.
    ///
    /// Iteration mode stores `invariants[id]` by overwrite, so a loop
    /// visited under several contexts keeps only the last one: a nested
    /// loop re-solved on every outer iteration ends up described by the
    /// residual outer invariant alone, losing the unrolled first outer
    /// iterations (the differential soundness oracle caught this — a
    /// concrete first-tick store escaped the claimed exit state of an inner
    /// history-shift loop). Checking an uncovered context against the
    /// stored invariant could miss real errors.
    ///
    /// The cure reproduces what iteration mode computed when it visited the
    /// loop under *this* context: run [`Iter::solve_loop`] from the same
    /// entry state, in iteration mode (alarms and per-statement captures
    /// suppressed), and hand the resulting in-context invariant to the
    /// caller's single checking pass. Because the entry state is
    /// bit-identical to the iteration-mode visit's, so is the re-solved
    /// invariant — exit states match the fixpoint phase exactly and the
    /// mismatch does not cascade into enclosing loops. The invariant and
    /// coverage maps are snapshotted around the solve: checking mode must
    /// not perturb stored results (parallel check slices drop their local
    /// maps, and sequential runs must stay bit-identical to them).
    fn recheck_invariant(
        &mut self,
        entry: AbsState,
        id: LoopId,
        cond: &Expr,
        body: &Block,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) -> AbsState {
        let saved_invariants = self.invariants.clone();
        let saved_cover = self.cover.clone();
        // The re-solve is also counter- and telemetry-neutral: parallel
        // check slices execute from the stage's entry state, so their
        // off-footprint cells can spuriously fail the coverage test and
        // re-solve loops the sequential pass accepted (harmless — by slice
        // disjointness the re-solved invariant agrees on every cell the
        // slice touches). Letting those solves bump the widening counters
        // would break the bit-identical parallel-vs-sequential contract.
        let saved_stats = self.stats.clone();
        let saved_solved =
            (self.loops_solved, self.loops_replayed, self.loops_seeded, self.seed_hits);
        let saved_solved_func = self.solved_by_func.clone();
        let saved_replayed_func = self.replayed_by_func.clone();
        let prev_rec = self.rec_on;
        self.rec_on = false;
        let prev_mode = self.mode;
        self.mode = Mode::Iterate;
        let _ = self.solve_loop(entry, id, cond, body, ret_target, depth);
        self.mode = prev_mode;
        self.rec_on = prev_rec;
        let inv = self.invariants.get(&id).cloned().expect("solve_loop stores an invariant");
        self.invariants = saved_invariants;
        self.cover = saved_cover;
        self.stats = saved_stats;
        (self.loops_solved, self.loops_replayed, self.loops_seeded, self.seed_hits) = saved_solved;
        self.solved_by_func = saved_solved_func;
        self.replayed_by_func = saved_replayed_func;
        self.loops_rechecked += 1;
        inv
    }

    fn exec_loop_body(
        &mut self,
        state: AbsState,
        body: &Block,
        ret_target: Option<&Lvalue>,
        depth: u32,
    ) -> AbsState {
        let mut flow = Flow { parts: vec![state.clone()], returned: state.bottom_like() };
        self.exec_block(&mut flow, body, ret_target, false, depth);
        // `return` inside a loop leaves the function, not the loop; the
        // returned state is handled by the caller via `flow.returned`, which
        // we conservatively fold into the enclosing function by re-joining.
        // (The family's reactive main loops do not return.)
        let mut out = state.bottom_like();
        for p in flow.parts {
            out = out.join(&p, self.layout, self.packs);
        }
        if !flow.returned.is_bottom() {
            out = out.join(&flow.returned, self.layout, self.packs);
        }
        out
    }

    /// Floating iteration perturbation (Sect. 7.1.4): inflate float bounds
    /// by a relative ε so near-stable iterates are recognized as stable.
    fn perturb(&self, state: &mut AbsState) {
        let eps = self.config.float_perturbation;
        if eps <= 0.0 || state.is_bottom() {
            return;
        }
        let updates: Vec<(CellId, CellVal)> = state
            .env
            .iter()
            .filter_map(|(id, v)| match v {
                CellVal::Float(f) if !f.is_bottom() => {
                    let lo = f.lo - eps * f.lo.abs();
                    let hi = f.hi + eps * f.hi.abs();
                    Some((*id, CellVal::Float(FloatItv::new(lo, hi))))
                }
                _ => None,
            })
            .collect();
        for (id, v) in updates {
            state.env = state.env.set(id, v);
        }
    }

    // ----- transfers ---------------------------------------------------------

    fn transfer_assign(&mut self, state: &AbsState, lv: &Lvalue, e: &Expr, s: &Stmt) -> AbsState {
        if state.is_bottom() {
            return state.clone();
        }
        let mut out = state.clone();
        // Ellipsoid pending computation at the filter group's first stmt.
        if let Some(&pi) = self.packs.ellipse_starts.get(&s.id) {
            let t0 = self.rec_on.then(Instant::now);
            let d = self.ellipse_delta(&out, pi);
            out.set_pending(pi, d);
            if let Some(t0) = t0 {
                self.rec.domain_op("ellipsoid", "delta", Self::nanos_since(t0));
            }
        }
        let (env, flags) = self.eval.assign(&state.env, lv, e);
        if self.mode == Mode::Check && !flags.is_empty() {
            self.report(s, flags, lv, Some(e));
        }
        out.env = env;
        if out.is_bottom() {
            return out;
        }
        // Relational updates.
        let r = self.eval.resolve(&state.env, lv);
        if r.strong && r.cells.len() == 1 {
            let cell = r.cells[0];
            if self.rec_on {
                let t0 = Instant::now();
                self.oct_assign(&mut out, state, cell, e);
                self.rec.domain_op("octagon", "assign", Self::nanos_since(t0));
                let t0 = Instant::now();
                self.dtree_assign(&mut out, state, cell, e);
                self.rec.domain_op("dtree", "assign", Self::nanos_since(t0));
                let t0 = Instant::now();
                self.ellipse_assign(&mut out, cell, s);
                self.rec.domain_op("ellipsoid", "commit", Self::nanos_since(t0));
            } else {
                self.oct_assign(&mut out, state, cell, e);
                self.dtree_assign(&mut out, state, cell, e);
                self.ellipse_assign(&mut out, cell, s);
            }
        } else {
            for c in &r.cells {
                out.forget_cell(*c, self.packs);
            }
        }
        out
    }

    /// The `δ` update for filter pack `pi`, evaluated in the pre-state.
    fn ellipse_delta(&self, state: &AbsState, pi: usize) -> f64 {
        let pack = &self.packs.ellipses[pi];
        let x = float_view(state.env.get(pack.x, self.layout));
        let y = float_view(state.env.get(pack.y, self.layout));
        let ell = Ellipsoid { a: pack.a, b: pack.b, k: state.ell(pi) }.reduce_from_box(x, y);
        let t_max = match &pack.t {
            None => 0.0,
            Some(t) => {
                let (v, f) = self.eval.eval(&state.env, t);
                if !f.is_empty() {
                    return f64::INFINITY;
                }
                let fv = v.as_float();
                if fv.is_bottom() || !fv.lo.is_finite() || !fv.hi.is_finite() {
                    return f64::INFINITY;
                }
                fv.lo.abs().max(fv.hi.abs())
            }
        };
        ell.delta(t_max)
    }

    /// Octagon transfer for a strong scalar assignment.
    fn oct_assign(&mut self, out: &mut AbsState, pre: &AbsState, cell: CellId, e: &Expr) {
        let Some(pids) = self.packs.oct_index.get(&cell) else { return };
        for &pi in pids {
            let slot = self.packs.oct_slot(pi, cell).expect("cell in pack");
            // Try the exact affine shapes x := ±y + [lo, hi].
            if let Some((src, neg, lo, hi)) = self.affine_shape(pre, e) {
                if let Some(src_slot) = self.packs.oct_slot(pi, src) {
                    let mut oct = out.oct(pi).clone();
                    if neg {
                        oct.assign_neg_var_plus_const(slot, src_slot, lo, hi);
                    } else {
                        oct.assign_var_plus_const(slot, src_slot, lo, hi);
                    }
                    out.set_oct(pi, oct);
                    continue;
                }
            }
            // Fallback: interval assignment.
            let v = float_view(out.env.get(cell, self.layout));
            let mut oct = out.oct(pi).clone();
            oct.assign_interval(slot, v);
            out.set_oct(pi, oct);
        }
    }

    /// Matches `±y + [lo, hi]` against `e` (evaluating the non-variable part
    /// in the pre-state); the paper's "smart" octagon assignment. For float
    /// expressions the constant range is widened by the operation's rounding
    /// error, making the real-field octagon constraint sound for the
    /// floating-point semantics (the per-operator error absorption of
    /// Sect. 6.3).
    fn affine_shape(&self, pre: &AbsState, e: &Expr) -> Option<(CellId, bool, f64, f64)> {
        let plain = |lv: &Lvalue| -> Option<CellId> {
            let r = self.eval.resolve(&pre.env, lv);
            (r.strong && r.cells.len() == 1).then(|| r.cells[0])
        };
        let eval_itv = |e: &Expr| -> Option<(f64, f64)> {
            let (v, f) = self.eval.eval(&pre.env, e);
            if !f.is_empty() {
                return None;
            }
            let itv = match v {
                astree_memory::AbsVal::Float(fv) => fv,
                astree_memory::AbsVal::Int(iv) => {
                    if iv.is_bottom() || iv.lo == i64::MIN || iv.hi == i64::MAX {
                        return None;
                    }
                    FloatItv::new(iv.lo as f64, iv.hi as f64)
                }
            };
            (itv.lo.is_finite() && itv.hi.is_finite()).then_some((itv.lo, itv.hi))
        };
        // Absolute rounding-error bound of one float operation whose result
        // is `e`'s value (zero for exact integer arithmetic).
        let round_err = |e: &Expr| -> Option<f64> {
            match e.ty() {
                ScalarType::Int(_) => Some(0.0),
                ScalarType::Float(_) => {
                    let (lo, hi) = eval_itv(e)?;
                    let m = lo.abs().max(hi.abs());
                    Some(m * (4.0 * astree_float::UNIT_ROUNDOFF) + astree_float::MIN_SUBNORMAL)
                }
            }
        };
        match e {
            Expr::Load(lv, _) => plain(lv).map(|c| (c, false, 0.0, 0.0)),
            Expr::Unop(Unop::Neg, _, a) => match &**a {
                Expr::Load(lv, _) => plain(lv).map(|c| (c, true, 0.0, 0.0)),
                _ => None,
            },
            Expr::Binop(Binop::Add, _, a, b) => {
                let err = round_err(e)?;
                match (&**a, &**b) {
                    (Expr::Load(lv, _), rest) | (rest, Expr::Load(lv, _)) => {
                        let c = plain(lv)?;
                        let (lo, hi) = eval_itv(rest)?;
                        Some((c, false, lo - err, hi + err))
                    }
                    _ => None,
                }
            }
            Expr::Binop(Binop::Sub, _, a, b) => {
                let err = round_err(e)?;
                match (&**a, &**b) {
                    (Expr::Load(lv, _), rest) => {
                        let c = plain(lv)?;
                        let (lo, hi) = eval_itv(rest)?;
                        Some((c, false, -hi - err, -lo + err))
                    }
                    (rest, Expr::Load(lv, _)) => {
                        let c = plain(lv)?;
                        let (lo, hi) = eval_itv(rest)?;
                        Some((c, true, lo - err, hi + err))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Decision-tree transfer for a strong scalar assignment.
    fn dtree_assign(&mut self, out: &mut AbsState, pre: &AbsState, cell: CellId, e: &Expr) {
        let Some(pids) = self.packs.dtree_index.get(&cell) else { return };
        for &pi in pids {
            let pack = &self.packs.dtrees[pi];
            let tree = pre.dtree(pi).clone();
            if pack.bools.contains(&cell) {
                // b := e — split each context on the truth of e.
                let eval = &self.eval;
                let layout = self.layout;
                let env = &pre.env;
                let restrict = |value: bool| {
                    move |leaf: &PackEnv| -> PackEnv {
                        if leaf.is_bottom() {
                            return PackEnv { cells: leaf.cells.clone(), unreachable: true };
                        }
                        // Refine env with the leaf context, then guard on e.
                        let mut ctx = env.clone();
                        for (c, v) in &leaf.cells {
                            let m = ctx.get(*c, layout).meet(v);
                            if m.is_bottom() {
                                return PackEnv { cells: leaf.cells.clone(), unreachable: true };
                            }
                            ctx = ctx.set(*c, m);
                        }
                        let guarded = eval.guard(&ctx, e, value);
                        if guarded.is_bottom() {
                            PackEnv { cells: leaf.cells.clone(), unreachable: true }
                        } else {
                            PackEnv::from_env(&guarded, layout, &cells_of(leaf))
                        }
                    }
                };
                let new = tree.assign_bool(cell, &restrict(false), &restrict(true));
                out.set_dtree(pi, new);
            } else {
                // numeric := e — update the member in every context.
                let eval = &self.eval;
                let layout = self.layout;
                let env = &pre.env;
                let new = tree.map(&|leaf: &PackEnv| {
                    if leaf.is_bottom() {
                        return leaf.clone();
                    }
                    let mut ctx = env.clone();
                    for (c, v) in &leaf.cells {
                        let m = ctx.get(*c, layout).meet(v);
                        if m.is_bottom() {
                            return PackEnv { cells: leaf.cells.clone(), unreachable: true };
                        }
                        ctx = ctx.set(*c, m);
                    }
                    let (val, flags) = eval.eval(&ctx, e);
                    let new_val = if flags.is_empty() {
                        match val {
                            astree_memory::AbsVal::Int(i) => {
                                CellVal::Int(astree_domains::Clocked::of_val(i, ctx.clock))
                            }
                            astree_memory::AbsVal::Float(f) => CellVal::Float(f),
                        }
                    } else {
                        // Errors possible: fall back to the post-env value.
                        env.get(cell, layout)
                    };
                    leaf.set(cell, new_val)
                });
                out.set_dtree(pi, new);
            }
        }
    }

    /// Ellipsoid commit at the filter group's final statement.
    fn ellipse_assign(&mut self, out: &mut AbsState, cell: CellId, s: &Stmt) {
        // Default forgetting already happened via oct/dtree paths; ellipses
        // forget through `forget_cell` only on weak updates, so clear any
        // pack whose x/y was strongly overwritten, then commit pendings.
        if let Some(pids) = self.packs.ellipse_index.get(&cell) {
            for &pi in pids {
                out.set_ell(pi, f64::INFINITY);
            }
        }
        if let Some(&pi) = self.packs.ellipse_commits.get(&s.id) {
            let committed = out.pending(pi);
            out.set_ell(pi, committed);
            out.set_pending(pi, f64::INFINITY);
            // Reduce X's interval from the committed constraint
            // (the paper's post-assignment interval tightening).
            let pack = &self.packs.ellipses[pi];
            let e = Ellipsoid { a: pack.a, b: pack.b, k: committed };
            let xb = e.x_bound();
            if xb.is_finite() {
                meet_cell_with_float(&mut out.env, self.layout, pack.x, FloatItv::new(-xb, xb));
            }
            let yb = e.y_bound();
            if yb.is_finite() {
                meet_cell_with_float(&mut out.env, self.layout, pack.y, FloatItv::new(-yb, yb));
            }
        }
    }

    fn transfer_call(
        &mut self,
        state: AbsState,
        callee: FuncId,
        args: &[CallArg],
        ret: Option<&Lvalue>,
        s: &Stmt,
        depth: u32,
    ) -> AbsState {
        if state.is_bottom() {
            return state;
        }
        let f = self.program.func(callee);
        let mut cur = state;
        let mut ref_map: HashMap<VarId, Lvalue> = HashMap::new();
        for (param, arg) in f.params.iter().zip(args) {
            match arg {
                CallArg::Value(e) => {
                    let target = Lvalue::var(param.var);
                    cur = self.transfer_assign(&cur, &target, e, s);
                }
                CallArg::Ref(lv) => {
                    ref_map.insert(param.var, lv.clone());
                }
            }
        }
        if cur.is_bottom() {
            return cur;
        }
        // Abstract inlining with by-ref substitution.
        let body =
            if ref_map.is_empty() { f.body.clone() } else { substitute_block(&f.body, &ref_map) };
        let partitioning = self.config.partitioned_functions.contains(&f.name);
        self.func_stack.push(self.program.func(callee).name.as_str());
        let mut flow = Flow { parts: vec![cur.clone()], returned: cur.bottom_like() };
        self.exec_block(&mut flow, &body, ret, partitioning, depth + 1);
        self.func_stack.pop();
        let mut out = flow.returned;
        for p in flow.parts {
            out = out.join(&p, self.layout, self.packs);
        }
        out
    }

    fn transfer_read_volatile(&mut self, state: &AbsState, var: VarId) -> AbsState {
        let mut out = state.clone();
        out.env = self.eval.read_volatile(&state.env, var);
        let cell = self.layout.scalar_cell(var);
        out.forget_cell(cell, self.packs);
        // The octagon can keep the fresh interval.
        if let Some(pids) = self.packs.oct_index.get(&cell) {
            for &pi in pids.iter() {
                if let Some(slot) = self.packs.oct_slot(pi, cell) {
                    let v = float_view(out.env.get(cell, self.layout));
                    let mut oct = out.oct(pi).clone();
                    oct.assign_interval(slot, v);
                    out.set_oct(pi, oct);
                }
            }
        }
        out
    }

    // ----- guards ------------------------------------------------------------

    /// Full-state guard: environment refinement plus relational constraints.
    pub fn state_guard(&mut self, state: &AbsState, cond: &Expr, positive: bool) -> AbsState {
        if state.is_bottom() {
            return state.clone();
        }
        if !positive {
            return self.state_guard(state, &cond.negate_condition(), true);
        }
        match cond {
            Expr::Binop(Binop::LAnd, _, a, b) => {
                let s1 = self.state_guard(state, a, true);
                self.state_guard(&s1, b, true)
            }
            Expr::Binop(Binop::LOr, _, a, b) => {
                let s1 = self.state_guard(state, a, true);
                let s2 = self.state_guard(state, b, true);
                s1.join(&s2, self.layout, self.packs)
            }
            Expr::Unop(Unop::LNot, _, a)
                if matches!(&**a, Expr::Unop(Unop::LNot, _, _) | Expr::Int(..))
                    || matches!(&**a, Expr::Binop(op, _, _, _)
                        if op.is_comparison() || op.is_logical()) =>
            {
                self.state_guard(state, &a.negate_condition(), true)
            }
            _ => {
                let mut out = state.clone();
                out.env = self.eval.guard(&state.env, cond, true);
                if out.is_bottom() {
                    return out;
                }
                let t_guard = self.rec_on.then(Instant::now);
                self.oct_guard(&mut out, cond);
                self.dtree_guard(&mut out, cond, true);
                if let Some(t0) = t_guard {
                    self.rec.domain_op("octagon", "guard", Self::nanos_since(t0));
                }
                // Localized reduction: only the packs the condition touches.
                let mut cells = Vec::new();
                cond.for_each_lvalue(&mut |lv| {
                    let r = self.eval.resolve(&state.env, lv);
                    cells.extend(r.cells);
                });
                let t_red = self.rec_on.then(Instant::now);
                out.reduce_local(self.layout, self.packs, &cells, Some(&mut self.oct_useful));
                if let Some(t0) = t_red {
                    self.rec.domain_op("octagon", "closure", Self::nanos_since(t0));
                }
                out
            }
        }
    }

    /// Adds octagon constraints for atomic comparisons between pack members.
    fn oct_guard(&mut self, state: &mut AbsState, cond: &Expr) {
        let Expr::Binop(op, t, a, b) = cond else { return };
        if !op.is_comparison() {
            return;
        }
        let cell_of = |e: &Expr, st: &AbsState| -> Option<CellId> {
            match e {
                Expr::Load(lv, _) => {
                    let r = self.eval.resolve(&st.env, lv);
                    (r.strong && r.cells.len() == 1).then(|| r.cells[0])
                }
                _ => None,
            }
        };
        let (ca, cb) = (cell_of(a, state), cell_of(b, state));
        let is_int = matches!(t, ScalarType::Int(_));
        // Strictness margin: integers gain 1, floats use the closed bound.
        let margin = if is_int { 1.0 } else { 0.0 };
        match (ca, cb) {
            (Some(x), Some(y)) => {
                for (pi, (sx, sy)) in self.pack_pairs(x, y) {
                    let mut oct = state.oct(pi).clone();
                    match op {
                        Binop::Lt => oct.add_diff_le(sx, sy, -margin),
                        Binop::Le => oct.add_diff_le(sx, sy, 0.0),
                        Binop::Gt => oct.add_diff_le(sy, sx, -margin),
                        Binop::Ge => oct.add_diff_le(sy, sx, 0.0),
                        Binop::Eq => {
                            oct.add_diff_le(sx, sy, 0.0);
                            oct.add_diff_le(sy, sx, 0.0);
                        }
                        _ => {}
                    }
                    state.set_oct(pi, oct);
                }
            }
            (Some(x), None) => {
                // x op const-expr.
                if let Some((lo, hi)) = self.const_bounds(state, b) {
                    self.oct_unary_guard(state, x, *op, lo, hi, margin);
                }
            }
            (None, Some(y)) => {
                if let Some((lo, hi)) = self.const_bounds(state, a) {
                    self.oct_unary_guard(state, y, op.swap(), lo, hi, margin);
                }
            }
            _ => {}
        }
    }

    /// Pack and slot pairs shared by two cells.
    fn pack_pairs(&self, x: CellId, y: CellId) -> HashMap<usize, (usize, usize)> {
        let mut out = HashMap::new();
        if let (Some(pxs), Some(pys)) = (self.packs.oct_index.get(&x), self.packs.oct_index.get(&y))
        {
            for pi in pxs {
                if pys.contains(pi) {
                    let sx = self.packs.oct_slot(*pi, x).expect("in pack");
                    let sy = self.packs.oct_slot(*pi, y).expect("in pack");
                    out.insert(*pi, (sx, sy));
                }
            }
        }
        out
    }

    fn const_bounds(&self, state: &AbsState, e: &Expr) -> Option<(f64, f64)> {
        let (v, f) = self.eval.eval(&state.env, e);
        if !f.is_empty() {
            return None;
        }
        match v {
            astree_memory::AbsVal::Int(i) => {
                (!i.is_bottom() && i.lo != i64::MIN && i.hi != i64::MAX)
                    .then_some((i.lo as f64, i.hi as f64))
            }
            astree_memory::AbsVal::Float(fv) => {
                (!fv.is_bottom() && fv.lo.is_finite() && fv.hi.is_finite())
                    .then_some((fv.lo, fv.hi))
            }
        }
    }

    fn oct_unary_guard(
        &mut self,
        state: &mut AbsState,
        x: CellId,
        op: Binop,
        lo: f64,
        hi: f64,
        margin: f64,
    ) {
        let Some(pids) = self.packs.oct_index.get(&x) else { return };
        for &pi in pids {
            let slot = self.packs.oct_slot(pi, x).expect("in pack");
            let mut oct = state.oct(pi).clone();
            match op {
                Binop::Lt => oct.add_upper(slot, hi - margin),
                Binop::Le => oct.add_upper(slot, hi),
                Binop::Gt => oct.add_lower(slot, lo + margin),
                Binop::Ge => oct.add_lower(slot, lo),
                Binop::Eq => {
                    oct.add_upper(slot, hi);
                    oct.add_lower(slot, lo);
                }
                _ => {}
            }
            state.set_oct(pi, oct);
        }
    }

    /// Prunes decision-tree contexts on boolean guards (`b`, `!b`,
    /// `b == 0/1`).
    fn dtree_guard(&mut self, state: &mut AbsState, cond: &Expr, positive: bool) {
        let (cell, value) = match cond {
            Expr::Load(lv, ScalarType::Int(_)) => {
                let r = self.eval.resolve(&state.env, lv);
                if !(r.strong && r.cells.len() == 1) {
                    return;
                }
                (r.cells[0], positive)
            }
            Expr::Unop(Unop::LNot, _, inner) => {
                return self.dtree_guard(state, inner, !positive);
            }
            Expr::Binop(Binop::Eq, _, a, b) => match (&**a, &**b) {
                (Expr::Load(lv, _), Expr::Int(v, _)) | (Expr::Int(v, _), Expr::Load(lv, _)) => {
                    let r = self.eval.resolve(&state.env, lv);
                    if !(r.strong && r.cells.len() == 1) {
                        return;
                    }
                    (r.cells[0], if *v == 0 { !positive } else { positive })
                }
                _ => return,
            },
            Expr::Binop(Binop::Ne, _, a, b) => match (&**a, &**b) {
                (Expr::Load(lv, _), Expr::Int(v, _)) | (Expr::Int(v, _), Expr::Load(lv, _)) => {
                    let r = self.eval.resolve(&state.env, lv);
                    if !(r.strong && r.cells.len() == 1) {
                        return;
                    }
                    (r.cells[0], if *v == 0 { positive } else { !positive })
                }
                _ => return,
            },
            _ => return,
        };
        if let Some(pids) = self.packs.dtree_index.get(&cell) {
            for &pi in pids {
                if self.packs.dtrees[pi].bools.contains(&cell) {
                    let g = state.dtree(pi).guard(cell, value);
                    state.set_dtree(pi, g);
                }
            }
        }
    }

    // ----- checking ----------------------------------------------------------

    /// Evaluates an expression purely for its error flags (checking mode).
    fn check_expr(&mut self, state: Option<&AbsState>, e: &Expr, s: &Stmt) {
        let Some(state) = state else { return };
        if state.is_bottom() {
            return;
        }
        let (_, flags) = self.eval.eval(&state.env, e);
        if !flags.is_empty() {
            let ctx = astree_ir::pretty::expr_to_string(self.program, e);
            let fresh = self.sink.report(s.id, s.loc, flags, &ctx);
            self.emit_alarms(s, &ctx, fresh);
        }
    }

    fn report(&mut self, s: &Stmt, flags: ErrFlags, lv: &Lvalue, e: Option<&Expr>) {
        let mut ctx = astree_ir::pretty::lvalue_to_string(self.program, lv);
        if let Some(e) = e {
            ctx.push_str(" = ");
            ctx.push_str(&astree_ir::pretty::expr_to_string(self.program, e));
        }
        let fresh = self.sink.report(s.id, s.loc, flags, &ctx);
        self.emit_alarms(s, &ctx, fresh);
    }

    /// Emits one provenance event per freshly reported alarm kind, tagged
    /// with the surrounding loop context (if any).
    fn emit_alarms(&self, s: &Stmt, ctx: &str, fresh: Vec<crate::alarms::AlarmKind>) {
        if !self.rec_on || fresh.is_empty() {
            return;
        }
        let (loop_id, iteration) = match self.loop_stack.last() {
            Some(&(l, i)) => (Some(l), Some(i)),
            None => (None, None),
        };
        for kind in fresh {
            self.rec.alarm(&AlarmEvent {
                func: self.cur_func(),
                stmt: s.id.0,
                line: s.loc.line,
                kind: kind.slug(),
                domain: kind.domain(),
                context: ctx,
                loop_id,
                iteration,
            });
        }
    }
}

/// Cells listed in a leaf (helper for rebuilding a `PackEnv`).
fn cells_of(leaf: &PackEnv) -> Vec<CellId> {
    leaf.cells.iter().map(|(c, _)| *c).collect()
}
