//! The public analysis entry point: run both phases and assemble the
//! result (alarms, statistics, invariant census, packing report).

use crate::alarms::Alarm;
use crate::census::Census;
use crate::config::AnalysisConfig;
use crate::iterator::{Iter, Mode};
use crate::packs::Packs;
use crate::state::AbsState;
use astree_ir::Program;
use astree_memory::{CellLayout, LayoutConfig};
use std::time::{Duration, Instant};

/// Aggregated statistics of one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisStats {
    /// Wall time of the invariant-generation phase.
    pub time_iterate: Duration,
    /// Wall time of the checking phase.
    pub time_check: Duration,
    /// Number of abstract cells after array expansion/shrinking.
    pub cells: usize,
    /// Octagon packs used.
    pub octagon_packs: usize,
    /// Octagon packs that actually improved the analysis (Sect. 7.2.2).
    pub useful_octagon_packs: Vec<usize>,
    /// Decision-tree packs used.
    pub dtree_packs: usize,
    /// Ellipsoid filter instances detected.
    pub ellipse_packs: usize,
    /// Total widening/union loop iterations.
    pub loop_iterations: u64,
    /// Total abstract statement interpretations.
    pub stmts_interpreted: u64,
    /// Peak trace partitions.
    pub peak_partitions: usize,
    /// A proxy for analyzer memory: peak live abstract-environment entries
    /// touched (cells × loop invariants kept).
    pub invariant_cells: usize,
    /// Statement stages executed by parallel slicing (0 when `jobs` is 1).
    pub parallel_stages: u64,
    /// Total worker slices run across all parallel stages.
    pub parallel_slices: u64,
}

/// The result of an analysis.
#[derive(Debug)]
pub struct AnalysisResult {
    /// All alarms (empty means the program is proven free of run-time
    /// errors under the environment assumptions).
    pub alarms: Vec<Alarm>,
    /// Statistics.
    pub stats: AnalysisStats,
    /// Census of the main loop invariant (the first top-level loop of the
    /// entry function), when the program has one.
    pub main_census: Option<Census>,
    /// The invariant at the main loop head.
    pub main_invariant: Option<AbsState>,
}

/// The analyzer: couples a program with a configuration.
///
/// See the [crate root](crate) for an end-to-end example.
pub struct Analyzer<'a> {
    program: &'a Program,
    config: AnalysisConfig,
}

impl<'a> Analyzer<'a> {
    /// Creates an analyzer.
    pub fn new(program: &'a Program, config: AnalysisConfig) -> Self {
        Analyzer { program, config }
    }

    /// Runs both phases (iteration, then checking) and assembles the result.
    pub fn run(&self) -> AnalysisResult {
        self.run_recorded(&astree_obs::NULL)
    }

    /// Like [`Analyzer::run`], reporting telemetry events to `rec` along the
    /// way (fixpoint progress, domain timings, alarm provenance, scheduler
    /// activity). `run` is exactly this with the no-op recorder.
    pub fn run_recorded(&self, rec: &dyn astree_obs::Recorder) -> AnalysisResult {
        let layout = CellLayout::new(
            self.program,
            &LayoutConfig { shrink_threshold: self.config.shrink_threshold },
        );
        let packs = Packs::discover(self.program, &layout, &self.config);
        let mut iter = Iter::with_recorder(self.program, &layout, &packs, &self.config, rec);

        let t0 = Instant::now();
        let _final_state = iter.run_mode(Mode::Iterate);
        let time_iterate = t0.elapsed();

        let t1 = Instant::now();
        let _ = iter.run_mode(Mode::Check);
        let time_check = t1.elapsed();

        if rec.enabled() {
            rec.phase_time("iterate", time_iterate.as_nanos() as u64);
            rec.phase_time("check", time_check.as_nanos() as u64);
        }

        // The main loop: the first loop of the entry function.
        let main_loop = first_loop_id(self.program);
        let main_invariant = main_loop.and_then(|id| iter.invariants.get(&id).cloned());
        let main_census = main_invariant.as_ref().map(|s| Census::of_state(s, &layout, &packs));

        let useful: Vec<usize> =
            iter.oct_useful.iter().enumerate().filter(|(_, n)| **n > 0).map(|(i, _)| i).collect();
        let invariant_cells: usize = iter.invariants.values().map(|s| s.env.len()).sum::<usize>();

        let stats = AnalysisStats {
            time_iterate,
            time_check,
            cells: layout.num_cells(),
            octagon_packs: packs.octagons.len(),
            useful_octagon_packs: useful,
            dtree_packs: packs.dtrees.len(),
            ellipse_packs: packs.ellipses.len(),
            loop_iterations: iter.stats.loop_iterations,
            stmts_interpreted: iter.stats.stmts_interpreted,
            peak_partitions: iter.stats.peak_partitions,
            invariant_cells,
            parallel_stages: iter.stats.par_stages,
            parallel_slices: iter.stats.par_slices,
        };
        AnalysisResult {
            alarms: std::mem::take(&mut iter.sink).into_sorted(),
            stats,
            main_census,
            main_invariant,
        }
    }
}

/// The id of the entry function's main loop: the first top-level
/// constant-true (reactive) loop, else the first top-level loop.
fn first_loop_id(program: &Program) -> Option<astree_ir::LoopId> {
    let entry = program.func(program.entry);
    for s in &entry.body {
        if let astree_ir::StmtKind::While(id, c, _) = &s.kind {
            if matches!(c, astree_ir::Expr::Int(v, _) if *v != 0) {
                return Some(*id);
            }
        }
    }
    for s in &entry.body {
        if let astree_ir::StmtKind::While(id, _, _) = &s.kind {
            return Some(*id);
        }
    }
    // Fall back to the first loop anywhere.
    let mut found = None;
    for f in &program.funcs {
        astree_ir::stmt::for_each_stmt(&f.body, &mut |s| {
            if found.is_none() {
                if let astree_ir::StmtKind::While(id, _, _) = &s.kind {
                    found = Some(*id);
                }
            }
        });
        if found.is_some() {
            break;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_frontend::Frontend;

    fn analyze(src: &str) -> AnalysisResult {
        let p = Frontend::new().compile_str(src).expect("compiles");
        Analyzer::new(&p, AnalysisConfig::default()).run()
    }

    #[test]
    fn clean_straightline_program() {
        let r = analyze("int x; void main(void) { x = 1 + 2; }");
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    }

    #[test]
    fn certain_division_by_zero_is_reported() {
        let r = analyze("int x; int d; void main(void) { d = 0; x = 10 / d; }");
        assert_eq!(r.alarms.len(), 1, "{:?}", r.alarms);
        assert_eq!(r.alarms[0].kind, crate::alarms::AlarmKind::DivByZero);
    }

    #[test]
    fn guarded_division_is_clean() {
        let r = analyze(
            r#"
            volatile int in; int x;
            void main(void) {
                __astree_input_int(in, -100, 100);
                int d = in;
                if (d > 0) { x = 10 / d; }
            }
        "#,
        );
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    }

    #[test]
    fn guarded_accumulator_is_clean() {
        // An accumulator guarded against growth: intervals + thresholds
        // prove it bounded.
        let r = analyze(
            r#"
            int i; int sum;
            void main(void) {
                sum = 0;
                for (i = 0; i < 100; i++) {
                    if (sum < 10000) { sum = sum + i; }
                }
            }
        "#,
        );
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    }

    #[test]
    fn unrolling_proves_small_accumulators() {
        // An unguarded accumulator needs full semantic unrolling
        // (Sect. 7.1.1): with the default factor it alarms, fully unrolled
        // it is proven exact.
        let src = r#"
            int i; int sum;
            void main(void) {
                sum = 0;
                for (i = 0; i < 5; i++) { sum = sum + i; }
            }
        "#;
        let p = Frontend::new().compile_str(src).unwrap();
        let default = Analyzer::new(&p, AnalysisConfig::default()).run();
        assert_eq!(default.alarms.len(), 1, "{:?}", default.alarms);
        let mut cfg = AnalysisConfig::default();
        cfg.loop_unroll = 6;
        let unrolled = Analyzer::new(&p, cfg).run();
        assert!(unrolled.alarms.is_empty(), "{:?}", unrolled.alarms);
    }

    #[test]
    fn reactive_loop_with_inputs() {
        let r = analyze(
            r#"
            volatile int in; int x;
            void main(void) {
                __astree_input_int(in, 0, 10);
                while (1) {
                    x = in;
                    __astree_wait();
                }
            }
        "#,
        );
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
        assert!(r.main_census.is_some());
    }

    #[test]
    fn unbounded_counter_overflows_without_clock() {
        // A counter incremented every cycle: bounded only thanks to the
        // clocked domain and the max operating time.
        let src = r#"
            int ticks;
            void main(void) {
                ticks = 0;
                while (1) {
                    ticks = ticks + 1;
                    __astree_wait();
                }
            }
        "#;
        let p = Frontend::new().compile_str(src).unwrap();
        let with_clock = Analyzer::new(&p, AnalysisConfig::default()).run();
        assert!(with_clock.alarms.is_empty(), "{:?}", with_clock.alarms);
        let mut cfg = AnalysisConfig::default();
        cfg.enable_clocked = false;
        let without = Analyzer::new(&p, cfg).run();
        assert_eq!(without.alarms.len(), 1, "{:?}", without.alarms);
        assert_eq!(without.alarms[0].kind, crate::alarms::AlarmKind::IntOverflow);
    }

    #[test]
    fn stats_are_populated() {
        let r =
            analyze("int x; int y; void main(void) { x = y + 1; while (x < 10) { x = x + 1; } }");
        assert!(r.stats.cells >= 2);
        assert!(r.stats.loop_iterations > 0);
        assert!(r.stats.stmts_interpreted > 0);
    }
}
