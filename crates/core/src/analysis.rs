//! The public analysis entry point: [`AnalysisSession`], a builder-style
//! session coupling a program with a configuration, an optional telemetry
//! recorder, an optional incremental invariant cache and intra-analysis
//! parallelism — all orthogonal options behind one `run()`.

use crate::alarms::Alarm;
use crate::cache::{
    config_fingerprint, loops_in_preorder, packs_fingerprint, InvariantStore, Seed, SeedOrigin,
    StoreKey,
};
use crate::census::Census;
use crate::config::AnalysisConfig;
use crate::iterator::{Iter, Mode};
use crate::packs::Packs;
use crate::state::AbsState;
use astree_ir::{
    channel_tag, func_fingerprints, globals_fingerprint, loop_fingerprints,
    parametric_fingerprints, program_fingerprint, FuncId, LoopId, Program, StmtId,
};
use astree_memory::{CellLayout, LayoutConfig};
use astree_obs::{CacheCounters, PmapCounters, PoolCounters, Recorder, NULL};
use astree_sched::WorkerPool;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated statistics of one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisStats {
    /// Wall time of the invariant-generation phase. On a cache replay this
    /// is the *stored cold-run* time, so throughput comparisons (e.g. the
    /// `jobs_scaling` bench) stay meaningful; the actual replay cost is in
    /// [`AnalysisStats::time_replay`].
    pub time_iterate: Duration,
    /// Wall time of the checking phase (stored cold-run time on a replay).
    pub time_check: Duration,
    /// Wall time spent replaying a cached result (zero on cold runs).
    pub time_replay: Duration,
    /// Number of abstract cells after array expansion/shrinking.
    pub cells: usize,
    /// Octagon packs used.
    pub octagon_packs: usize,
    /// Octagon packs that actually improved the analysis (Sect. 7.2.2).
    pub useful_octagon_packs: Vec<usize>,
    /// Decision-tree packs used.
    pub dtree_packs: usize,
    /// Ellipsoid filter instances detected.
    pub ellipse_packs: usize,
    /// Total widening/union loop iterations.
    pub loop_iterations: u64,
    /// Total abstract statement interpretations.
    pub stmts_interpreted: u64,
    /// Peak trace partitions.
    pub peak_partitions: usize,
    /// A proxy for analyzer memory: peak live abstract-environment entries
    /// touched (cells × loop invariants kept).
    pub invariant_cells: usize,
    /// Statement stages executed by parallel slicing (0 when `jobs` is 1).
    pub parallel_stages: u64,
    /// Total worker slices run across all parallel stages.
    pub parallel_slices: u64,
    /// Loops solved by fixpoint iteration in *this* run.
    pub loops_solved: u64,
    /// Loops whose invariant was reused from a verified whole-function
    /// cache seed.
    pub loops_replayed: u64,
    /// Loops seeded from a per-loop or cross-member candidate that passed
    /// the post-fixpoint acceptance check (edited functions whose loops did
    /// not change, or another family member's converged invariants).
    pub loops_seeded: u64,
    /// The subset of [`AnalysisStats::loops_seeded`] whose candidate came
    /// from *another family member* via the portable (channel-parametric)
    /// seed store.
    pub seed_hits: u64,
    /// Loops re-solved during the checking pass because the stored
    /// invariant did not cover the arriving context (nested loops are
    /// re-solved per outer iteration in iteration mode, so the stored
    /// invariant describes only the *last* visit's context).
    pub loops_rechecked: u64,
}

/// How the incremental cache participated in one analysis run.
#[derive(Debug, Clone, Default)]
pub struct CacheReport {
    /// `true` when the session had a cache store attached.
    pub enabled: bool,
    /// `true` when the whole stored result was replayed verbatim (no
    /// abstract interpretation ran).
    pub full_hit: bool,
    /// Functions whose stored invariants were installed as seeds.
    pub seeded_functions: usize,
    /// Functions the warm store could not seed (edited, or transitively
    /// calling something edited).
    pub invalidated_functions: usize,
    /// Loops solved by full fixpoint iteration, by enclosing function.
    pub loops_solved_by_function: BTreeMap<String, u64>,
    /// Loops replayed from verified seeds, by enclosing function.
    pub loops_replayed_by_function: BTreeMap<String, u64>,
}

/// The result of an analysis.
#[derive(Debug)]
pub struct AnalysisResult {
    /// All alarms (empty means the program is proven free of run-time
    /// errors under the environment assumptions).
    pub alarms: Vec<Alarm>,
    /// Statistics.
    pub stats: AnalysisStats,
    /// Census of the main loop invariant (the first top-level loop of the
    /// entry function), when the program has one.
    pub main_census: Option<Census>,
    /// The invariant at the main loop head.
    pub main_invariant: Option<AbsState>,
    /// Cache participation report.
    pub cache: CacheReport,
    /// Joined abstract state per statement from the Check pass, present only
    /// when [`AnalysisConfig::collect_stmt_invariants`] was set. A statement
    /// absent from the map is claimed unreachable. Consumed by the
    /// differential soundness oracle (`astree-oracle`).
    pub stmt_invariants: Option<HashMap<StmtId, AbsState>>,
}

/// Builder for an [`AnalysisSession`]; see [`AnalysisSession::builder`].
pub struct AnalysisSessionBuilder<'a> {
    program: &'a Program,
    config: AnalysisConfig,
    recorder: &'a dyn Recorder,
    cache: Option<Arc<InvariantStore>>,
    jobs: Option<usize>,
    pool: Option<&'a WorkerPool>,
}

impl<'a> AnalysisSessionBuilder<'a> {
    /// Sets the analysis configuration (default: [`AnalysisConfig::default`]).
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry recorder (default: the no-op recorder).
    pub fn recorder(mut self, rec: &'a dyn Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Attaches an incremental invariant cache store.
    pub fn cache(mut self, store: Arc<InvariantStore>) -> Self {
        self.cache = Some(store);
        self
    }

    /// Sets the intra-analysis worker count (overrides the configuration's
    /// `jobs`, regardless of the `config`/`jobs` call order).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Hands the session an external, already-warm [`WorkerPool`] instead
    /// of letting it construct (and tear down) its own. The session clamps
    /// its effective `jobs` to the pool's worker count, and per-run pool
    /// counters are reported as deltas over the pool's cumulative totals,
    /// so a long-lived pool (the `serve` daemon's) can be shared by many
    /// sessions — concurrently: [`WorkerPool::scatter`] takes `&self`.
    pub fn pool(mut self, pool: &'a WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> AnalysisSession<'a> {
        let mut config = self.config;
        if let Some(jobs) = self.jobs {
            config.jobs = jobs;
        }
        if let Some(pool) = self.pool {
            config.jobs = config.jobs.min(pool.workers()).max(1);
        }
        AnalysisSession {
            program: self.program,
            config,
            recorder: self.recorder,
            cache: self.cache,
            pool: self.pool,
        }
    }
}

/// An analysis session: one program plus everything orthogonal to it —
/// configuration, telemetry, incremental cache, parallelism.
///
/// See the [crate root](crate) for an end-to-end example.
pub struct AnalysisSession<'a> {
    program: &'a Program,
    config: AnalysisConfig,
    recorder: &'a dyn Recorder,
    cache: Option<Arc<InvariantStore>>,
    pool: Option<&'a WorkerPool>,
}

impl<'a> AnalysisSession<'a> {
    /// Starts building a session for `program`.
    pub fn builder(program: &'a Program) -> AnalysisSessionBuilder<'a> {
        AnalysisSessionBuilder {
            program,
            config: AnalysisConfig::default(),
            recorder: &NULL,
            cache: None,
            jobs: None,
            pool: None,
        }
    }

    /// The effective configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Runs the analysis: replay a stored whole-program result when the
    /// cache has an exact match, otherwise run both phases (iteration with
    /// any verified seeds installed, then checking) and update the store.
    pub fn run(&self) -> AnalysisResult {
        let t_start = Instant::now();
        let rec = self.recorder;
        let layout = CellLayout::new(
            self.program,
            &LayoutConfig { shrink_threshold: self.config.shrink_threshold },
        );
        let packs = Packs::discover(self.program, &layout, &self.config);

        let mut report = CacheReport { enabled: self.cache.is_some(), ..CacheReport::default() };
        let mut run_counters = CacheCounters::default();
        let mut seeds: HashMap<LoopId, Seed> = HashMap::new();
        let mut cache_ctx: Option<(StoreKey, u64, Vec<u64>, CacheCounters)> = None;

        if let Some(store) = &self.cache {
            let key = StoreKey {
                layout_fp: globals_fingerprint(self.program),
                packs_fp: packs_fingerprint(&packs),
                config_fp: config_fingerprint(&self.config),
            };
            let program_fp = program_fingerprint(self.program);
            let store_before = store.counters();
            // A verbatim replay carries no per-statement states, so the
            // collection flag forces the full pipeline (seeds still apply).
            let full_hit = if self.config.collect_stmt_invariants {
                None
            } else {
                store.lookup_full(&key, program_fp, &layout, &packs)
            };
            if let Some(hit) = full_hit {
                let time_replay = t_start.elapsed();
                let mut stats = hit.stats;
                stats.time_replay = time_replay;
                report.full_hit = true;
                run_counters.full_hits = 1;
                run_counters.replay_nanos = time_replay.as_nanos() as u64;
                let cold = stats.time_iterate + stats.time_check;
                run_counters.saved_nanos =
                    cold.as_nanos().saturating_sub(time_replay.as_nanos()) as u64;
                let io = store.counters().since(&store_before);
                store.absorb_run(&run_counters);
                run_counters.bytes_read += io.bytes_read;
                run_counters.bytes_written += io.bytes_written;
                run_counters.corrupt_files += io.corrupt_files;
                run_counters.evictions += io.evictions;
                if rec.enabled() {
                    rec.phase_time("replay", time_replay.as_nanos() as u64);
                    rec.cache(&run_counters);
                }
                return AnalysisResult {
                    alarms: hit.alarms,
                    stats,
                    main_census: hit.census,
                    main_invariant: hit.invariant,
                    cache: report,
                    stmt_invariants: None,
                };
            }
            run_counters.misses = 1;
            let fps = func_fingerprints(self.program);
            let param_fps = parametric_fingerprints(self.program);
            let had_seeds = store.has_seeds(&key);
            for (fi, func) in self.program.funcs.iter().enumerate() {
                match store.lookup_seeds(&key, fps[fi], &layout, &packs) {
                    Some(stored) => {
                        let loop_ids = loops_in_preorder(func);
                        for (ordinal, st) in stored {
                            if let Some(&lid) = loop_ids.get(ordinal as usize) {
                                seeds.insert(lid, Seed::Full(st, SeedOrigin::Func));
                            }
                        }
                        report.seeded_functions += 1;
                    }
                    None => {
                        if had_seeds {
                            report.invalidated_functions += 1;
                        }
                        // The function (or a callee) changed. Fall back to
                        // its loops whose local fingerprint still matches,
                        // then to another family member's portable seeds for
                        // anything still cold.
                        let loop_ids = loops_in_preorder(func);
                        if loop_ids.is_empty() {
                            continue;
                        }
                        let loop_fps = loop_fingerprints(self.program, FuncId(fi as u32), &fps);
                        for (ordinal, &lid) in loop_ids.iter().enumerate() {
                            let Some(&lfp) = loop_fps.get(ordinal) else {
                                continue;
                            };
                            if let Some(st) = store.lookup_loop_seed(&key, lfp, &layout, &packs) {
                                seeds.insert(lid, Seed::Full(st, SeedOrigin::Loop));
                            }
                        }
                        let tag = channel_tag(&func.name);
                        if let Some(stored) = store.lookup_portable_seeds(
                            key.config_fp,
                            param_fps[fi],
                            tag,
                            &layout,
                            &packs,
                        ) {
                            for (ordinal, patch) in stored {
                                if let Some(&lid) = loop_ids.get(ordinal as usize) {
                                    seeds
                                        .entry(lid)
                                        .or_insert_with(|| Seed::Portable(Arc::new(patch)));
                                }
                            }
                        }
                    }
                }
            }
            run_counters.seeded_functions = report.seeded_functions as u64;
            run_counters.invalidated_functions = report.invalidated_functions as u64;
            cache_ctx = Some((key, program_fp, fps, store_before));
        }

        // One persistent work-stealing pool for the whole session (both
        // phases): stages pay queue pushes, not thread spawns. An external
        // pool (the daemon's warm one) is reused as-is; otherwise one is
        // created only when `jobs > 1` *and* only after the cache-hit early
        // return — a `--jobs 1` session or a replay spawns no threads.
        let own_pool = match self.pool {
            Some(_) => None,
            None => (self.config.jobs > 1).then(|| WorkerPool::new(self.config.jobs)),
        };
        let pool: Option<&WorkerPool> = self.pool.or(own_pool.as_ref());
        // Pool counters are cumulative over the pool's lifetime; snapshot
        // them so a shared pool reports per-run deltas.
        let pool_before = pool.map(|p| p.stats());
        // Reset the thread-local fast-path counters so a previous analysis
        // on this thread (with telemetry off) cannot leak into this run.
        let _ = astree_domains::take_saved_closures();
        let _ = astree_pmap::take_stats();
        // Arm (or, for the CI differential, disarm) the pointer shortcuts on
        // the calling thread; worker slices re-arm their own threads from the
        // config. Restored below so concurrent sessions on this thread (e.g.
        // the test harness) are not affected. The flag never changes results
        // — it is excluded from the cache fingerprint.
        let prev_shortcuts = astree_pmap::set_ptr_shortcuts(!self.config.debug_no_ptr_shortcuts);
        let prev_kernels = astree_domains::set_generic_kernels(self.config.debug_generic_kernels);

        let mut iter = Iter::with_recorder(self.program, &layout, &packs, &self.config, rec);
        iter.pool = pool;
        iter.seeds = seeds;

        let t0 = Instant::now();
        let _final_state = iter.run_mode(Mode::Iterate);
        let time_iterate = t0.elapsed();

        let t1 = Instant::now();
        let _ = iter.run_mode(Mode::Check);
        let time_check = t1.elapsed();

        let saved_closures = astree_domains::take_saved_closures();
        let mut pmap_stats = astree_pmap::take_stats();
        pmap_stats.absorb(&iter.pmap_worker_stats);
        astree_pmap::set_ptr_shortcuts(prev_shortcuts);
        astree_domains::set_generic_kernels(prev_kernels);
        if rec.enabled() {
            rec.phase_time("iterate", time_iterate.as_nanos() as u64);
            rec.phase_time("check", time_check.as_nanos() as u64);
            if saved_closures > 0 {
                rec.domain_op_n("octagon", "closure_saved", saved_closures, 0);
            }
            rec.pmap(&PmapCounters {
                nodes_allocated: pmap_stats.nodes_allocated,
                merge_calls: pmap_stats.merge_calls,
                root_shortcut_hits: pmap_stats.root_shortcut_hits,
                interior_shortcut_hits: pmap_stats.interior_shortcut_hits,
                identity_preserved: pmap_stats.identity_preserved,
                nodes_recycled: pmap_stats.nodes_recycled,
                slab_bytes_allocated: pmap_stats.slab_bytes_allocated,
                slab_bytes_freed: pmap_stats.slab_bytes_freed,
            });
            let oct_sizes: Vec<usize> = packs.octagons.iter().map(|p| p.cells.len()).collect();
            rec.pack_sizes(&oct_sizes);
            if let Some(pool) = pool {
                let s = match &pool_before {
                    Some(before) => pool.stats().since(before),
                    None => pool.stats(),
                };
                rec.pool(&PoolCounters {
                    workers: s.workers as u64,
                    tasks: s.tasks,
                    steals: s.steals,
                    max_queue_depth: s.max_queue_depth,
                    busy_nanos: s.busy_nanos,
                });
            }
        }

        // The main loop: the first loop of the entry function.
        let main_loop = first_loop_id(self.program);
        let main_invariant = main_loop.and_then(|id| iter.invariants.get(&id).cloned());
        let main_census = main_invariant.as_ref().map(|s| Census::of_state(s, &layout, &packs));

        let useful: Vec<usize> =
            iter.oct_useful.iter().enumerate().filter(|(_, n)| **n > 0).map(|(i, _)| i).collect();
        let invariant_cells: usize = iter.invariants.values().map(|s| s.env.len()).sum::<usize>();

        let stats = AnalysisStats {
            time_iterate,
            time_check,
            time_replay: Duration::ZERO,
            cells: layout.num_cells(),
            octagon_packs: packs.octagons.len(),
            useful_octagon_packs: useful,
            dtree_packs: packs.dtrees.len(),
            ellipse_packs: packs.ellipses.len(),
            loop_iterations: iter.stats.loop_iterations,
            stmts_interpreted: iter.stats.stmts_interpreted,
            peak_partitions: iter.stats.peak_partitions,
            invariant_cells,
            parallel_stages: iter.stats.par_stages,
            parallel_slices: iter.stats.par_slices,
            loops_solved: iter.loops_solved,
            loops_replayed: iter.loops_replayed,
            loops_seeded: iter.loops_seeded,
            seed_hits: iter.seed_hits,
            loops_rechecked: iter.loops_rechecked,
        };
        report.loops_solved_by_function = std::mem::take(&mut iter.solved_by_func);
        report.loops_replayed_by_function = std::mem::take(&mut iter.replayed_by_func);
        let alarms = std::mem::take(&mut iter.sink).into_sorted();

        if let (Some(store), Some((key, program_fp, fps, store_before))) = (&self.cache, cache_ctx)
        {
            let param_fps = parametric_fingerprints(self.program);
            let mut seeds_out: Vec<(u64, Vec<(u32, AbsState)>)> =
                Vec::with_capacity(self.program.funcs.len());
            let mut loop_seeds_out: Vec<(u64, AbsState)> = Vec::new();
            let mut portable_out: Vec<(u64, String, Vec<(u32, AbsState)>)> = Vec::new();
            for (fi, func) in self.program.funcs.iter().enumerate() {
                let loop_ids = loops_in_preorder(func);
                let mut loops = Vec::new();
                for (ordinal, lid) in loop_ids.iter().enumerate() {
                    if let Some(inv) = iter.invariants.get(lid) {
                        loops.push((ordinal as u32, inv.clone()));
                    }
                }
                if !loop_ids.is_empty() {
                    let loop_fps = loop_fingerprints(self.program, FuncId(fi as u32), &fps);
                    for (ordinal, lid) in loop_ids.iter().enumerate() {
                        if let (Some(inv), Some(&lfp)) =
                            (iter.invariants.get(lid), loop_fps.get(ordinal))
                        {
                            loop_seeds_out.push((lfp, inv.clone()));
                        }
                    }
                }
                if !loops.is_empty() {
                    let tag = channel_tag(&func.name).to_string();
                    portable_out.push((param_fps[fi], tag, loops.clone()));
                }
                seeds_out.push((fps[fi], loops));
            }
            store.update(
                &key,
                program_fp,
                &alarms,
                main_census,
                main_invariant.as_ref(),
                &stats,
                &seeds_out,
                &loop_seeds_out,
            );
            store.update_portable(key.config_fp, &layout, &packs, &portable_out);
            run_counters.loops_replayed = stats.loops_replayed;
            run_counters.loops_solved = stats.loops_solved;
            run_counters.loops_seeded = stats.loops_seeded;
            run_counters.seed_hits = stats.seed_hits;
            let io = store.counters().since(&store_before);
            store.absorb_run(&run_counters);
            run_counters.bytes_read += io.bytes_read;
            run_counters.bytes_written += io.bytes_written;
            run_counters.corrupt_files += io.corrupt_files;
            run_counters.evictions += io.evictions;
            if rec.enabled() {
                rec.cache(&run_counters);
            }
        }

        let stmt_invariants =
            self.config.collect_stmt_invariants.then(|| std::mem::take(&mut iter.stmt_invariants));

        AnalysisResult {
            alarms,
            stats,
            main_census,
            main_invariant,
            cache: report,
            stmt_invariants,
        }
    }
}

/// The id of the entry function's main loop: the first top-level
/// constant-true (reactive) loop, else the first top-level loop.
fn first_loop_id(program: &Program) -> Option<astree_ir::LoopId> {
    let entry = program.func(program.entry);
    for s in &entry.body {
        if let astree_ir::StmtKind::While(id, c, _) = &s.kind {
            if matches!(c, astree_ir::Expr::Int(v, _) if *v != 0) {
                return Some(*id);
            }
        }
    }
    for s in &entry.body {
        if let astree_ir::StmtKind::While(id, _, _) = &s.kind {
            return Some(*id);
        }
    }
    // Fall back to the first loop anywhere.
    let mut found = None;
    for f in &program.funcs {
        astree_ir::stmt::for_each_stmt(&f.body, &mut |s| {
            if found.is_none() {
                if let astree_ir::StmtKind::While(id, _, _) = &s.kind {
                    found = Some(*id);
                }
            }
        });
        if found.is_some() {
            break;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_frontend::Frontend;

    fn analyze(src: &str) -> AnalysisResult {
        let p = Frontend::new().compile_str(src).expect("compiles");
        AnalysisSession::builder(&p).build().run()
    }

    #[test]
    fn clean_straightline_program() {
        let r = analyze("int x; void main(void) { x = 1 + 2; }");
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    }

    #[test]
    fn certain_division_by_zero_is_reported() {
        let r = analyze("int x; int d; void main(void) { d = 0; x = 10 / d; }");
        assert_eq!(r.alarms.len(), 1, "{:?}", r.alarms);
        assert_eq!(r.alarms[0].kind, crate::alarms::AlarmKind::DivByZero);
    }

    #[test]
    fn guarded_division_is_clean() {
        let r = analyze(
            r#"
            volatile int in; int x;
            void main(void) {
                __astree_input_int(in, -100, 100);
                int d = in;
                if (d > 0) { x = 10 / d; }
            }
        "#,
        );
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    }

    #[test]
    fn guarded_accumulator_is_clean() {
        // An accumulator guarded against growth: intervals + thresholds
        // prove it bounded.
        let r = analyze(
            r#"
            int i; int sum;
            void main(void) {
                sum = 0;
                for (i = 0; i < 100; i++) {
                    if (sum < 10000) { sum = sum + i; }
                }
            }
        "#,
        );
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
    }

    #[test]
    fn unrolling_proves_small_accumulators() {
        // An unguarded accumulator needs full semantic unrolling
        // (Sect. 7.1.1): with the default factor it alarms, fully unrolled
        // it is proven exact.
        let src = r#"
            int i; int sum;
            void main(void) {
                sum = 0;
                for (i = 0; i < 5; i++) { sum = sum + i; }
            }
        "#;
        let p = Frontend::new().compile_str(src).unwrap();
        let default = AnalysisSession::builder(&p).build().run();
        assert_eq!(default.alarms.len(), 1, "{:?}", default.alarms);
        let mut cfg = AnalysisConfig::default();
        cfg.loop_unroll = 6;
        let unrolled = AnalysisSession::builder(&p).config(cfg).build().run();
        assert!(unrolled.alarms.is_empty(), "{:?}", unrolled.alarms);
    }

    #[test]
    fn reactive_loop_with_inputs() {
        let r = analyze(
            r#"
            volatile int in; int x;
            void main(void) {
                __astree_input_int(in, 0, 10);
                while (1) {
                    x = in;
                    __astree_wait();
                }
            }
        "#,
        );
        assert!(r.alarms.is_empty(), "{:?}", r.alarms);
        assert!(r.main_census.is_some());
    }

    #[test]
    fn unbounded_counter_overflows_without_clock() {
        // A counter incremented every cycle: bounded only thanks to the
        // clocked domain and the max operating time.
        let src = r#"
            int ticks;
            void main(void) {
                ticks = 0;
                while (1) {
                    ticks = ticks + 1;
                    __astree_wait();
                }
            }
        "#;
        let p = Frontend::new().compile_str(src).unwrap();
        let with_clock = AnalysisSession::builder(&p).build().run();
        assert!(with_clock.alarms.is_empty(), "{:?}", with_clock.alarms);
        let mut cfg = AnalysisConfig::default();
        cfg.enable_clocked = false;
        let without = AnalysisSession::builder(&p).config(cfg).build().run();
        assert_eq!(without.alarms.len(), 1, "{:?}", without.alarms);
        assert_eq!(without.alarms[0].kind, crate::alarms::AlarmKind::IntOverflow);
    }

    #[test]
    fn stats_are_populated() {
        let r =
            analyze("int x; int y; void main(void) { x = y + 1; while (x < 10) { x = x + 1; } }");
        assert!(r.stats.cells >= 2);
        assert!(r.stats.loop_iterations > 0);
        assert!(r.stats.stmts_interpreted > 0);
        assert!(r.stats.loops_solved > 0);
        assert_eq!(r.stats.loops_replayed, 0, "no cache attached");
        assert!(!r.cache.enabled);
    }

    #[test]
    fn builder_jobs_overrides_config_in_any_order() {
        let p = Frontend::new().compile_str("int x; void main(void) { x = 1; }").unwrap();
        let s = AnalysisSession::builder(&p).jobs(3).config(AnalysisConfig::default()).build();
        assert_eq!(s.config().jobs, 3);
        let s = AnalysisSession::builder(&p).config(AnalysisConfig::default()).jobs(2).build();
        assert_eq!(s.config().jobs, 2);
    }
}
