//! L-value substitution for abstract inlining of by-reference parameters.
//!
//! Function calls are analyzed "by abstract execution of the function body
//! in the context of the point of call" (paper Sect. 5.4). By-reference
//! parameters alias caller l-values, which the analyzer realizes by cloning
//! the callee body with each by-ref parameter's base variable replaced by
//! the actual l-value (prefixing its access path).

use astree_ir::{Access, Block, CallArg, Expr, Lvalue, Stmt, StmtKind, VarId};
use std::collections::HashMap;

/// Substitutes by-ref parameter roots in a block, returning a fresh block.
pub fn substitute_block(block: &Block, map: &HashMap<VarId, Lvalue>) -> Block {
    block.iter().map(|s| substitute_stmt(s, map)).collect()
}

fn substitute_stmt(s: &Stmt, map: &HashMap<VarId, Lvalue>) -> Stmt {
    let kind = match &s.kind {
        StmtKind::Assign(lv, e) => {
            StmtKind::Assign(substitute_lvalue(lv, map), substitute_expr(e, map))
        }
        StmtKind::If(c, a, b) => StmtKind::If(
            substitute_expr(c, map),
            substitute_block(a, map),
            substitute_block(b, map),
        ),
        StmtKind::While(id, c, body) => {
            StmtKind::While(*id, substitute_expr(c, map), substitute_block(body, map))
        }
        StmtKind::Call(ret, f, args) => StmtKind::Call(
            ret.as_ref().map(|lv| substitute_lvalue(lv, map)),
            *f,
            args.iter()
                .map(|a| match a {
                    CallArg::Value(e) => CallArg::Value(substitute_expr(e, map)),
                    CallArg::Ref(lv) => CallArg::Ref(substitute_lvalue(lv, map)),
                })
                .collect(),
        ),
        StmtKind::Return(e) => StmtKind::Return(e.as_ref().map(|e| substitute_expr(e, map))),
        StmtKind::Assume(e) => StmtKind::Assume(substitute_expr(e, map)),
        StmtKind::Wait => StmtKind::Wait,
        StmtKind::ReadVolatile(v) => StmtKind::ReadVolatile(*v),
    };
    Stmt { kind, id: s.id, loc: s.loc }
}

/// Substitutes the base of an l-value (and recursively its index
/// expressions).
pub fn substitute_lvalue(lv: &Lvalue, map: &HashMap<VarId, Lvalue>) -> Lvalue {
    let path: Vec<Access> = lv
        .path
        .iter()
        .map(|a| match a {
            Access::Field(f) => Access::Field(*f),
            Access::Index(e) => Access::Index(Box::new(substitute_expr(e, map))),
        })
        .collect();
    match map.get(&lv.base) {
        None => Lvalue { base: lv.base, path },
        Some(target) => {
            let mut full = target.path.clone();
            full.extend(path);
            Lvalue { base: target.base, path: full }
        }
    }
}

/// Substitutes l-value roots inside an expression.
pub fn substitute_expr(e: &Expr, map: &HashMap<VarId, Lvalue>) -> Expr {
    match e {
        Expr::Int(..) | Expr::Float(..) => e.clone(),
        Expr::Load(lv, t) => Expr::Load(substitute_lvalue(lv, map), *t),
        Expr::Unop(op, t, a) => Expr::Unop(*op, *t, Box::new(substitute_expr(a, map))),
        Expr::Binop(op, t, a, b) => Expr::Binop(
            *op,
            *t,
            Box::new(substitute_expr(a, map)),
            Box::new(substitute_expr(b, map)),
        ),
        Expr::Cast(t, a) => Expr::Cast(*t, Box::new(substitute_expr(a, map))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_ir::{IntType, ScalarType};

    #[test]
    fn substitutes_base_and_prefixes_path() {
        let mut map = HashMap::new();
        // param p ↦ g[2]
        map.insert(VarId(10), Lvalue::index(VarId(0), Expr::int(2)));
        let lv = Lvalue { base: VarId(10), path: vec![Access::Field(1)] };
        let out = substitute_lvalue(&lv, &map);
        assert_eq!(out.base, VarId(0));
        assert_eq!(out.path.len(), 2);
        assert!(matches!(out.path[0], Access::Index(_)));
        assert_eq!(out.path[1], Access::Field(1));
    }

    #[test]
    fn substitutes_inside_expressions_and_stmts() {
        let mut map = HashMap::new();
        map.insert(VarId(5), Lvalue::var(VarId(1)));
        let t = ScalarType::Int(IntType::INT);
        let s = Stmt::new(StmtKind::Assign(
            Lvalue::var(VarId(5)),
            Expr::Binop(
                astree_ir::Binop::Add,
                t,
                Box::new(Expr::var(VarId(5))),
                Box::new(Expr::int(1)),
            ),
        ));
        let out = substitute_stmt(&s, &map);
        match &out.kind {
            StmtKind::Assign(lv, Expr::Binop(_, _, a, _)) => {
                assert_eq!(lv.base, VarId(1));
                assert!(matches!(&**a, Expr::Load(l, _) if l.base == VarId(1)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untouched_vars_pass_through() {
        let map = HashMap::new();
        let e = Expr::var(VarId(3));
        assert_eq!(substitute_expr(&e, &map), e);
    }
}
