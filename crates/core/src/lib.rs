//! The analyzer core (paper Sect. 3, 5 and 7): the iterator, the fixpoint
//! engine, parametrized packing for the relational domains, alarm reporting
//! and the end-user parametrization surface.
//!
//! The analysis proceeds exactly as the paper describes: abstract execution
//! by induction on the (structured) abstract syntax, driven by an iterator
//! that runs in *iteration mode* (computing loop invariants by widening with
//! thresholds, delayed widening and narrowing) and then in *checking mode*
//! (re-executing from the invariants and reporting one alarm per operator
//! application that may err). The memory domain is the reduced product of
//! the interval/clocked environment ([`astree_memory`]) with octagon packs,
//! ellipsoid filter pairs and boolean decision trees, discovered
//! syntactically before the analysis starts (Sect. 7.2).
//!
//! # Examples
//!
//! ```
//! use astree_core::AnalysisSession;
//! use astree_frontend::Frontend;
//!
//! let src = r#"
//!     volatile int in;
//!     int x;
//!     void main(void) {
//!         __astree_input_int(in, 0, 100);
//!         while (1) {
//!             x = in;
//!             if (x > 50) { x = 50; }
//!             __astree_wait();
//!         }
//!     }
//! "#;
//! let program = Frontend::new().compile_str(src).unwrap();
//! let result = AnalysisSession::builder(&program).build().run();
//! assert_eq!(result.alarms.len(), 0); // no possible run-time error
//! ```
//!
//! Telemetry, an incremental invariant cache and intra-analysis parallelism
//! are orthogonal builder options:
//!
//! ```no_run
//! # use astree_core::{cache::InvariantStore, AnalysisSession};
//! # use std::sync::Arc;
//! # let program = astree_frontend::Frontend::new()
//! #     .compile_str("int x; void main(void) { x = 1; }").unwrap();
//! let store = Arc::new(InvariantStore::open("/tmp/astree-cache").unwrap());
//! let result = AnalysisSession::builder(&program)
//!     .cache(Arc::clone(&store))
//!     .jobs(4)
//!     .build()
//!     .run();
//! ```

pub mod alarms;
pub mod analysis;
pub mod cache;
pub mod census;
pub mod config;
pub mod iterator;
pub mod packs;
pub(crate) mod parallel;
pub mod state;
pub mod substitute;

pub use alarms::{Alarm, AlarmKind};
pub use analysis::{
    AnalysisResult, AnalysisSession, AnalysisSessionBuilder, AnalysisStats, CacheReport,
};
pub use cache::{config_fingerprint, packs_fingerprint, InvariantStore, StoreKey};
pub use census::{under_constrained_vars, Census, CensusEntry};
pub use config::AnalysisConfig;
pub use packs::{DtreePack, EllipsePack, OctPack, Packs};
pub use state::AbsState;
