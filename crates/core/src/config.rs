//! The analysis parametrization surface (paper Sect. 3.2 and 7).
//!
//! End-users adapt the analyzer to a program of the family by choosing these
//! parameters; the packing parameters can also be produced automatically
//! (Sect. 7.2) or replayed from a previous run (Sect. 7.2.2).

use astree_domains::Thresholds;
use astree_ir::LoopId;
use std::collections::{HashMap, HashSet};

/// All analysis parameters, with the defaults used throughout the
/// experiments.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Widening thresholds (Sect. 7.1.2), default the geometric ramp
    /// `±α·λᵏ`.
    pub thresholds: Thresholds,
    /// Number of plain-union iterations before widening starts
    /// (delayed widening, Sect. 7.1.3).
    pub widening_delay: u32,
    /// Extra union iterations granted each time an unstable variable
    /// becomes stable (the fairness-capped part of Sect. 7.1.3).
    pub stabilization_grace: u32,
    /// Hard cap on widening iterations per loop.
    pub max_iterations: u32,
    /// Number of narrowing (decreasing) iterations after stabilization.
    pub narrowing_iterations: u32,
    /// Default semantic loop-unrolling factor (Sect. 7.1.1).
    pub loop_unroll: u32,
    /// Per-loop unrolling overrides.
    pub per_loop_unroll: HashMap<LoopId, u32>,
    /// Maximal number of clock ticks (the physical operating-time bound of
    /// Sect. 4; bounds the clocked domain's reductions).
    pub max_clock: i64,
    /// Relative perturbation applied to float bounds during loop iteration
    /// (floating iteration perturbation, Sect. 7.1.4).
    pub float_perturbation: f64,
    /// Arrays larger than this shrink to a single cell (Sect. 6.1.1).
    pub shrink_threshold: usize,
    /// Enables the octagon packs (Sect. 6.2.2).
    pub enable_octagons: bool,
    /// Enables the ellipsoid filter domain (Sect. 6.2.3).
    pub enable_ellipsoids: bool,
    /// Enables the boolean decision trees (Sect. 6.2.4).
    pub enable_dtrees: bool,
    /// Enables the clocked domain (Sect. 6.2.1).
    pub enable_clocked: bool,
    /// Enables expression linearization (Sect. 6.3).
    pub enable_linearization: bool,
    /// Functions analyzed with trace partitioning (Sect. 7.1.5); branches
    /// inside them are merged only at the return point.
    pub partitioned_functions: HashSet<String>,
    /// Cap on simultaneously live partitions per function.
    pub max_partitions: usize,
    /// Maximum variables per octagon pack (Sect. 7.2.1 keeps packs small).
    pub octagon_pack_cap: usize,
    /// Maximum boolean variables per decision-tree pack (Sect. 7.2.3: "three
    /// yields an efficient and precise analysis").
    pub dtree_pack_bool_cap: usize,
    /// When set, only the octagon packs with these indices (from a previous
    /// run's usefulness report) are used — the packing optimization of
    /// Sect. 7.2.2.
    pub octagon_pack_filter: Option<Vec<usize>>,
    /// User-supplied octagon packs by variable name, *added* to the
    /// syntactically discovered ones (the end-user parametrization of
    /// Sect. 3.2: "have the user supply for each program point groups of
    /// variables on which the relational analysis should be independently
    /// applied"). Unknown or non-scalar names are ignored.
    pub octagon_packs_extra: Vec<Vec<String>>,
    /// Worker threads for intra-analysis parallelism (Monniaux's
    /// partition-and-join scheme). `1` (the default) runs the purely
    /// sequential interpreter; `N > 1` slices independent top-level
    /// statement runs across `N` workers and merges the slice deltas in a
    /// fixed order, so alarms and invariants are identical for every value.
    pub jobs: usize,
    /// Fault injection for tests: the parallel worker running this slice
    /// index panics, exercising the panic-isolation fallback (the stage is
    /// replayed sequentially and the reason lands in the metrics output).
    #[doc(hidden)]
    pub debug_panic_slice: Option<usize>,
    /// Recurse one level into fat top-level `if` statements and submit their
    /// branch-block slices as independently stealable tasks (nested slicing).
    /// Off means top-level-only slicing, as in previous releases.
    pub nested_slicing: bool,
    /// A top-level statement is "fat" (worth nested slicing) when its
    /// measured cost from the previous iteration exceeds this fraction of
    /// the stage's total cost. Also the split threshold for cost-guided
    /// chunking.
    pub nested_cost_fraction: f64,
    /// Fault injection for tests: seeds an adversarial pseudo-random initial
    /// task placement in the worker pool so steals are forced; the result
    /// must stay bit-identical to the unseeded run.
    #[doc(hidden)]
    pub debug_force_steal: Option<u64>,
    /// Runs every slice of a sliced stage inline on the calling thread, in
    /// index order, instead of on the pool. Same plan, same chunks, same
    /// (bit-identical) result — but per-slice timings are uncontaminated by
    /// preemption, which the scaling benchmark needs for its critical-path
    /// estimate on CPU-starved hosts, and backtraces stay on one thread.
    #[doc(hidden)]
    pub debug_inline_slices: bool,
    /// Disables every pointer-equality shortcut in the persistent-map layer
    /// (root/interior merge shortcuts, identity-preserving no-op inserts,
    /// `diff2`/`all2` shared-subtree skips and the iterator's `ptr_eq` fast
    /// paths). The analysis recomputes everything the shortcuts would have
    /// skipped; alarms, census and invariants must stay bit-identical to the
    /// default run — CI diffs both modes. Purely a validation knob: it is
    /// excluded from the cache fingerprint.
    #[doc(hidden)]
    pub debug_no_ptr_shortcuts: bool,
    /// Disables the monomorphized small-pack octagon kernels (closure /
    /// `leq` / `join` / `widen` for 2–3-variable packs), forcing the generic
    /// half-matrix path everywhere. The specialized kernels are
    /// instantiations of the same inlined bodies — identical float-operation
    /// order — so alarms, census and invariants must stay bit-identical to
    /// the default run; CI diffs both modes. Purely a validation knob: it is
    /// excluded from the cache fingerprint.
    #[doc(hidden)]
    pub debug_generic_kernels: bool,
    /// Records the joined abstract state observed at *every* statement during
    /// the Check pass (not just loop heads) into
    /// [`AnalysisResult::stmt_invariants`]. Used by the differential
    /// soundness oracle to compare concrete interpreter states against the
    /// claimed invariants at each program point. Collection forces the Check
    /// pass to run sequentially (parallel slices would drop their captures)
    /// and bypasses verbatim cache replay (a replayed result carries no
    /// per-statement states); alarms and invariants are unaffected, so the
    /// flag is excluded from the cache fingerprint.
    pub collect_stmt_invariants: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            thresholds: Thresholds::geometric_default(),
            widening_delay: 2,
            stabilization_grace: 8,
            max_iterations: 200,
            narrowing_iterations: 2,
            loop_unroll: 1,
            per_loop_unroll: HashMap::new(),
            max_clock: 3_600_000, // 1 h of 1 ms cycles
            float_perturbation: 0.0,
            shrink_threshold: 256,
            enable_octagons: true,
            enable_ellipsoids: true,
            enable_dtrees: true,
            enable_clocked: true,
            enable_linearization: true,
            partitioned_functions: HashSet::new(),
            max_partitions: 16,
            octagon_pack_cap: 8,
            dtree_pack_bool_cap: 3,
            octagon_pack_filter: None,
            octagon_packs_extra: Vec::new(),
            jobs: 1,
            debug_panic_slice: None,
            nested_slicing: true,
            nested_cost_fraction: 0.25,
            debug_force_steal: None,
            debug_inline_slices: false,
            debug_no_ptr_shortcuts: false,
            debug_generic_kernels: false,
            collect_stmt_invariants: false,
        }
    }
}

impl AnalysisConfig {
    /// The configuration of the baseline analyzer the paper started from
    /// (\[5\]): intervals and the clocked domain only, no relational domains,
    /// no linearization, no unrolling.
    pub fn baseline() -> AnalysisConfig {
        AnalysisConfig {
            enable_octagons: false,
            enable_ellipsoids: false,
            enable_dtrees: false,
            enable_linearization: false,
            loop_unroll: 0,
            ..AnalysisConfig::default()
        }
    }

    /// The unrolling factor for a given loop.
    pub fn unroll_for(&self, id: LoopId) -> u32 {
        self.per_loop_unroll.get(&id).copied().unwrap_or(self.loop_unroll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let c = AnalysisConfig::default();
        assert!(c.enable_octagons && c.enable_ellipsoids && c.enable_dtrees);
        assert!(c.enable_clocked && c.enable_linearization);
        assert_eq!(c.dtree_pack_bool_cap, 3);
    }

    #[test]
    fn baseline_disables_refinements() {
        let c = AnalysisConfig::baseline();
        assert!(!c.enable_octagons && !c.enable_ellipsoids && !c.enable_dtrees);
        assert!(c.enable_clocked, "the baseline [5] already had the clocked domain");
    }

    #[test]
    fn per_loop_unroll_overrides() {
        let mut c = AnalysisConfig::default();
        c.loop_unroll = 1;
        c.per_loop_unroll.insert(LoopId(3), 4);
        assert_eq!(c.unroll_for(LoopId(3)), 4);
        assert_eq!(c.unroll_for(LoopId(0)), 1);
    }
}
