//! The incremental invariant cache (ROADMAP: "cache per-function invariants
//! keyed by a body hash").
//!
//! The paper's workflow is iterative: the analyzer is re-run many times over
//! the same codebase while tuning the parametrization (Sect. 7), so most runs
//! re-solve fixpoints that did not change. This module makes warm re-runs
//! nearly free with a content-addressed, disk-backed [`InvariantStore`]
//! consulted by the analysis session on two levels:
//!
//! - **Whole-program replay.** Entries are keyed by the *exact* program
//!   fingerprint ([`astree_ir::program_fingerprint`], which covers statement
//!   ids and source lines) so a matching entry's alarms, census, invariant
//!   and statistics can be replayed verbatim — the warm result is
//!   bit-identical to the cold one by construction, and no abstract
//!   interpretation runs at all.
//! - **Per-function seeds.** When the program changed, loop invariants of
//!   functions whose *stable closure* fingerprint
//!   ([`astree_ir::func_fingerprints`]) still matches are installed as
//!   candidate invariants. The iterator verifies each candidate with a single
//!   body pass and accepts it only if it is an inductive post-fixpoint of the
//!   current loop (`entry ⊔ F(candidate) ⊑ candidate`), which is sound
//!   regardless of where the candidate came from; otherwise it falls back to
//!   the normal widening/narrowing iteration.
//! - **Per-loop seeds.** When even the function changed, invariants of loops
//!   whose local fingerprint ([`astree_ir::loop_fingerprints`] — body
//!   statements plus callee closures) still matches are installed the same
//!   way, so an edited function never pays a fully cold overshoot for its
//!   unchanged loops (counted in `stats.loops_seeded`).
//! - **Portable seeds.** A second, member-independent file per configuration
//!   (`p-<config>.astc`) stores loop invariants keyed by the
//!   *channel-parametric* closure fingerprint
//!   ([`astree_ir::parametric_fingerprints`]) with every cell keyed by its
//!   canonical *name* ([`astree_ir::canon_ident`]) instead of its id. A
//!   4-channel family member's converged seeds then warm a 46-channel
//!   member's solves: the decoded [`StatePatch`] maps names back onto the
//!   target layout and is applied over the loop's entry state (counted in
//!   `stats.seed_hits`). Acceptance is the same post-fixpoint check.
//!
//! Both levels sit behind three guard fingerprints baked into the cache-file
//! identity: the cell-layout fingerprint (decoded states name cells by id),
//! the pack-structure fingerprint (octagon matrices and tree shapes are
//! indexed by pack), and the analysis-relevant configuration fingerprint
//! ([`config_fingerprint`] — see `DESIGN.md` for what is deliberately left
//! out). A mismatch on any of them simply selects a different (usually
//! empty) cache file, so stale data can never be decoded against the wrong
//! shapes.
//!
//! The on-disk format (`astree-cache/1`) is a line-oriented text format with
//! `f64` values stored as IEEE bit patterns, so every value round-trips
//! exactly. A corrupt or truncated file is detected during parsing and
//! treated as an empty cache (counted in [`CacheCounters::corrupt_files`]);
//! the analysis then falls back to a cold run and rewrites the file.

use crate::alarms::{Alarm, AlarmKind};
use crate::analysis::AnalysisStats;
use crate::census::Census;
use crate::config::AnalysisConfig;
use crate::packs::Packs;
use crate::state::{AbsState, DTree, PackEnv};
use astree_domains::{Clocked, DecisionTree, FloatItv, IntItv, Octagon};
use astree_ir::stmt::for_each_stmt;
use astree_ir::{canon_ident, expand_ident, Fnv, Function, Loc, LoopId, StmtId, StmtKind};
use astree_memory::{AbsEnv, CellId, CellLayout, CellVal};
use astree_obs::CacheCounters;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The format identifier on the first line of every cache file.
pub const CACHE_FORMAT: &str = "astree-cache/1";

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Fingerprint of the analysis-relevant slice of the configuration.
///
/// Everything that can change a fixpoint is included: thresholds, widening
/// schedule, unrolling, the physical clock bound, float perturbation, array
/// shrinking, the domain set, partitioning and packing parameters.
/// Deliberately excluded: `jobs`, `nested_slicing`, `nested_cost_fraction`
/// (parallel slicing — flat or nested, for every worker count — is
/// bit-identical to the sequential analysis, enforced by `tests/parallel`)
/// and the `debug_panic_slice` / `debug_force_steal` fault injections
/// (replayed stages and forced-steal placements are bit-identical too).
/// `debug_no_ptr_shortcuts` and `debug_generic_kernels` are likewise
/// excluded: both disable pure fast paths (pointer shortcuts, specialized
/// octagon kernels) whose results are bit-identical by contract.
pub fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let mut h = Fnv::new();
    h.str("astree-config");
    let ramp = config.thresholds.ramp();
    h.usize(ramp.len());
    for &v in ramp {
        h.f64(v);
    }
    h.u32(config.widening_delay);
    h.u32(config.stabilization_grace);
    h.u32(config.max_iterations);
    h.u32(config.narrowing_iterations);
    h.u32(config.loop_unroll);
    let mut unrolls: Vec<(u32, u32)> =
        config.per_loop_unroll.iter().map(|(id, f)| (id.0, *f)).collect();
    unrolls.sort_unstable();
    h.usize(unrolls.len());
    for (id, f) in unrolls {
        h.u32(id);
        h.u32(f);
    }
    h.i64(config.max_clock);
    h.f64(config.float_perturbation);
    h.usize(config.shrink_threshold);
    h.byte(config.enable_octagons as u8);
    h.byte(config.enable_ellipsoids as u8);
    h.byte(config.enable_dtrees as u8);
    h.byte(config.enable_clocked as u8);
    h.byte(config.enable_linearization as u8);
    let mut parts: Vec<&str> = config.partitioned_functions.iter().map(|s| s.as_str()).collect();
    parts.sort_unstable();
    h.usize(parts.len());
    for p in parts {
        h.str(p);
    }
    h.usize(config.max_partitions);
    h.usize(config.octagon_pack_cap);
    h.usize(config.dtree_pack_bool_cap);
    match &config.octagon_pack_filter {
        None => h.byte(0),
        Some(keep) => {
            h.byte(1);
            h.usize(keep.len());
            for &i in keep {
                h.usize(i);
            }
        }
    }
    h.usize(config.octagon_packs_extra.len());
    for pack in &config.octagon_packs_extra {
        h.usize(pack.len());
        for name in pack {
            h.str(name);
        }
    }
    h.finish()
}

/// Fingerprint of the discovered pack *structure*: the member cells of each
/// octagon and decision-tree pack and the `(a, b, x, y, tmp)` shape of each
/// filter, in pack-index order. Stored states index their relational
/// components by pack, so any structural drift must select a different cache
/// file. Statement ids (`start_stmt`/`commit_stmt`) are deliberately *not*
/// hashed: they are renumbered by unrelated edits but do not affect what a
/// stored filter bound means.
pub fn packs_fingerprint(packs: &Packs) -> u64 {
    let mut h = Fnv::new();
    h.str("astree-packs");
    h.usize(packs.octagons.len());
    for p in &packs.octagons {
        h.usize(p.cells.len());
        for c in &p.cells {
            h.u32(c.0);
        }
    }
    h.usize(packs.dtrees.len());
    for p in &packs.dtrees {
        h.usize(p.bools.len());
        for c in &p.bools {
            h.u32(c.0);
        }
        h.usize(p.nums.len());
        for c in &p.nums {
            h.u32(c.0);
        }
    }
    h.usize(packs.ellipses.len());
    for e in &packs.ellipses {
        h.f64(e.a);
        h.f64(e.b);
        h.u32(e.x.0);
        h.u32(e.y.0);
        h.u32(e.tmp.0);
    }
    h.finish()
}

/// The guard fingerprints naming one cache file: states can only be decoded
/// against the exact cell layout, pack structure and configuration they were
/// encoded under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// [`astree_ir::globals_fingerprint`] of the program's variable table
    /// (determines the cell layout).
    pub layout_fp: u64,
    /// [`packs_fingerprint`] of the discovered packs.
    pub packs_fp: u64,
    /// [`config_fingerprint`] of the analysis configuration.
    pub config_fp: u64,
}

impl StoreKey {
    /// The on-disk file name for this key (also its wire name for remote
    /// store sync).
    pub fn file_name(&self) -> String {
        format!("k-{:016x}-{:016x}-{:016x}.astc", self.layout_fp, self.packs_fp, self.config_fp)
    }
}

/// The on-disk name of the member-independent portable-seed file for one
/// analysis configuration.
pub fn portable_file_name(config_fp: u64) -> String {
    format!("p-{config_fp:016x}.astc")
}

/// `true` when `name` is a well-formed store file name (`k-<3 × hex64>.astc`
/// or `p-<hex64>.astc`). Remote imports validate names with this before
/// touching the filesystem, so a peer can never escape the store directory.
pub fn valid_store_file_name(name: &str) -> bool {
    let (body, groups) = if let Some(b) = name.strip_prefix("k-") {
        (b, 3)
    } else if let Some(b) = name.strip_prefix("p-") {
        (b, 1)
    } else {
        return false;
    };
    let Some(body) = body.strip_suffix(".astc") else {
        return false;
    };
    let parts: Vec<&str> = body.split('-').collect();
    parts.len() == groups
        && parts.iter().all(|g| {
            g.len() == 16 && g.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        })
}

/// The loop ids of a function body in pre-order. Seeds are stored under the
/// loop's *ordinal* in this sequence (loop ids are renumbered by unrelated
/// edits; the ordinal within an unchanged function is stable).
pub fn loops_in_preorder(func: &Function) -> Vec<LoopId> {
    let mut out = Vec::new();
    for_each_stmt(&func.body, &mut |s| {
        if let StmtKind::While(id, _, _) = &s.kind {
            out.push(*id);
        }
    });
    out
}

// ---------------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------------

/// Where a loop's candidate invariant came from. Statistics only — the
/// acceptance check is identical for every origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedOrigin {
    /// Same member, whole-function stable-closure fingerprint match.
    Func,
    /// Same member, per-loop fingerprint match after the function changed.
    Loop,
    /// Another family member, via the channel-parametric portable store.
    Portable,
}

/// A candidate loop invariant installed before iteration starts.
#[derive(Debug, Clone)]
pub enum Seed {
    /// A fully decoded same-member state, used as the candidate verbatim.
    Full(AbsState, SeedOrigin),
    /// A cross-member patch, applied over the loop's entry state.
    Portable(Arc<StatePatch>),
}

/// A name-resolved cross-member seed: the components of a donor member's
/// loop invariant that mapped onto the current member's layout and packs.
/// Applied as a patch over the loop's entry state, so unmapped cells (the
/// target's extra channels, unresolved names, temporaries) keep their entry
/// values; the post-fixpoint acceptance check decides whether the result is
/// usable.
#[derive(Debug)]
pub struct StatePatch {
    clock: IntItv,
    cells: Vec<(CellId, CellVal)>,
    octs: Vec<(usize, Octagon)>,
    dtrees: Vec<(usize, DTree)>,
    ells: Vec<(usize, f64, f64)>,
}

impl StatePatch {
    /// `base` with every mapped component replaced by the donor's value.
    pub fn apply(&self, base: &AbsState) -> AbsState {
        if base.is_bottom() {
            return base.clone();
        }
        let mut st = base.clone();
        let mut env = st.env.clone();
        for (c, v) in &self.cells {
            env = env.set(*c, *v);
        }
        if env.is_bottom() {
            return base.clone(); // a mapped donor value was unrepresentable
        }
        env.clock = self.clock;
        st.env = env;
        for (pi, o) in &self.octs {
            st.set_oct(*pi, o.clone());
        }
        for (pi, t) in &self.dtrees {
            st.set_dtree(*pi, t.clone());
        }
        for (pi, k, pending) in &self.ells {
            st.set_ell(*pi, *k);
            st.set_pending(*pi, *pending);
        }
        st
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// A replayable whole-program entry decoded from the store.
#[derive(Debug)]
pub struct FullHit {
    /// The stored alarms, verbatim.
    pub alarms: Vec<Alarm>,
    /// The stored main-loop census, verbatim.
    pub census: Option<Census>,
    /// The stored main-loop invariant.
    pub invariant: Option<AbsState>,
    /// The stored *cold-run* statistics (phase times included, so replayed
    /// results keep meaningful `time_iterate`/`time_check`).
    pub stats: AnalysisStats,
}

#[derive(Debug, Clone)]
struct RawEntry {
    alarms: Vec<Alarm>,
    census: Option<Census>,
    stats_line: String,
    useful: Vec<usize>,
    invariant: Option<Vec<String>>,
}

#[derive(Debug, Default, Clone)]
struct CacheFile {
    entries: HashMap<u64, RawEntry>,
    funcs: HashMap<u64, Vec<(u32, Vec<String>)>>,
    loops: HashMap<u64, Vec<String>>,
}

/// The member-independent portable-seed image: per parametric closure
/// fingerprint, the name-keyed loop states of one donor function.
#[derive(Debug, Default, Clone)]
struct PortableFile {
    funcs: HashMap<u64, Vec<(u32, Vec<String>)>>,
}

/// The disk-backed invariant store. Cheap to share (`Arc`) across batch
/// jobs: all file state sits behind one mutex, and cumulative I/O counters
/// are kept for reporting.
#[derive(Debug)]
pub struct InvariantStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
    files: Mutex<HashMap<String, CacheFile>>,
    portables: Mutex<HashMap<String, PortableFile>>,
    counters: Mutex<CacheCounters>,
}

impl InvariantStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<InvariantStore> {
        Self::open_inner(dir.into(), None)
    }

    /// Opens a store whose on-disk footprint is bounded: after every write,
    /// cache files are evicted oldest-mtime-first until the directory fits
    /// in `max_bytes` (the just-written file is never evicted). Evicted
    /// entries simply become cold misses on the next run.
    pub fn open_bounded(
        dir: impl Into<PathBuf>,
        max_bytes: u64,
    ) -> std::io::Result<InvariantStore> {
        Self::open_inner(dir.into(), Some(max_bytes))
    }

    fn open_inner(dir: PathBuf, max_bytes: Option<u64>) -> std::io::Result<InvariantStore> {
        std::fs::create_dir_all(&dir)?;
        Ok(InvariantStore {
            dir,
            max_bytes,
            files: Mutex::new(HashMap::new()),
            portables: Mutex::new(HashMap::new()),
            counters: Mutex::new(CacheCounters::default()),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Cumulative I/O and corruption counters since the store was opened.
    pub fn counters(&self) -> CacheCounters {
        *self.counters.lock().expect("store poisoned")
    }

    /// Folds one session's run-level counters (hits, misses, seed usage,
    /// replay/saved time) into the store totals, so a store shared across a
    /// batch fleet reports fleet-wide numbers. The I/O counters
    /// (`bytes_read`, `bytes_written`, `corrupt_files`) are tracked by the
    /// store itself and must be zero in `c` to avoid double counting.
    pub fn absorb_run(&self, c: &CacheCounters) {
        self.counters.lock().expect("store poisoned").add(c);
    }

    /// `true` when the cache file for `key` holds any per-function seeds
    /// (used to distinguish *invalidated* functions from a cold store).
    pub fn has_seeds(&self, key: &StoreKey) -> bool {
        let mut files = self.files.lock().expect("store poisoned");
        let file = self.load(&mut files, key);
        !file.funcs.is_empty()
    }

    /// Looks up a whole-program entry and decodes it for replay.
    pub fn lookup_full(
        &self,
        key: &StoreKey,
        program_fp: u64,
        layout: &CellLayout,
        packs: &Packs,
    ) -> Option<FullHit> {
        let mut files = self.files.lock().expect("store poisoned");
        let file = self.load(&mut files, key);
        let raw = file.entries.get(&program_fp)?.clone();
        drop(files);
        let stats = decode_stats(&raw.stats_line, &raw.useful)?;
        let invariant = match &raw.invariant {
            None => None,
            Some(lines) => {
                Some(decode_state(&mut lines.iter().map(String::as_str), layout, packs)?)
            }
        };
        Some(FullHit { alarms: raw.alarms, census: raw.census, invariant, stats })
    }

    /// Looks up the stored loop invariants of one function (by stable
    /// closure fingerprint) and decodes them as `(loop ordinal, state)`
    /// seed candidates.
    pub fn lookup_seeds(
        &self,
        key: &StoreKey,
        closure_fp: u64,
        layout: &CellLayout,
        packs: &Packs,
    ) -> Option<Vec<(u32, AbsState)>> {
        let mut files = self.files.lock().expect("store poisoned");
        let file = self.load(&mut files, key);
        let raw = file.funcs.get(&closure_fp)?.clone();
        drop(files);
        let mut out = Vec::with_capacity(raw.len());
        for (ordinal, lines) in &raw {
            let st = decode_state(&mut lines.iter().map(String::as_str), layout, packs)?;
            out.push((*ordinal, st));
        }
        Some(out)
    }

    /// Looks up the stored invariant of one loop by its local fingerprint —
    /// the fallback when the enclosing function's closure fingerprint missed
    /// but this loop (and its callees) did not change.
    pub fn lookup_loop_seed(
        &self,
        key: &StoreKey,
        loop_fp: u64,
        layout: &CellLayout,
        packs: &Packs,
    ) -> Option<AbsState> {
        let mut files = self.files.lock().expect("store poisoned");
        let file = self.load(&mut files, key);
        let raw = file.loops.get(&loop_fp)?.clone();
        drop(files);
        decode_state(&mut raw.iter().map(String::as_str), layout, packs)
    }

    /// Looks up the portable (cross-member) seeds of one function by its
    /// channel-parametric closure fingerprint, resolving stored canonical
    /// cell names against the *current* member's layout and packs with the
    /// target's channel `tag`. Returns `(loop ordinal, patch)` candidates;
    /// `None` when nothing usable mapped.
    pub fn lookup_portable_seeds(
        &self,
        config_fp: u64,
        parametric_fp: u64,
        tag: &str,
        layout: &CellLayout,
        packs: &Packs,
    ) -> Option<Vec<(u32, StatePatch)>> {
        let mut portables = self.portables.lock().expect("store poisoned");
        let file = self.load_portable(&mut portables, config_fp);
        let raw = file.funcs.get(&parametric_fp)?.clone();
        drop(portables);
        let mut out = Vec::with_capacity(raw.len());
        for (ordinal, lines) in &raw {
            if let Some(p) = decode_patch(&mut lines.iter().map(String::as_str), layout, packs, tag)
            {
                out.push((*ordinal, p));
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Records the outcome of a (cold or seeded) run: the whole-program
    /// entry for `program_fp`, the per-function seed sections and the
    /// per-loop seed sections, then persists the cache file.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &self,
        key: &StoreKey,
        program_fp: u64,
        alarms: &[Alarm],
        census: Option<Census>,
        invariant: Option<&AbsState>,
        stats: &AnalysisStats,
        seeds: &[(u64, Vec<(u32, AbsState)>)],
        loop_seeds: &[(u64, AbsState)],
    ) {
        let entry = RawEntry {
            alarms: alarms.to_vec(),
            census,
            stats_line: encode_stats(stats),
            useful: stats.useful_octagon_packs.clone(),
            invariant: invariant.map(|s| {
                let mut lines = Vec::new();
                encode_state(&mut lines, s);
                lines
            }),
        };
        let mut files = self.files.lock().expect("store poisoned");
        let file = self.load(&mut files, key);
        file.entries.insert(program_fp, entry);
        for (closure_fp, loops) in seeds {
            let mut enc: Vec<(u32, Vec<String>)> = Vec::with_capacity(loops.len());
            for (ordinal, st) in loops {
                let mut lines = Vec::new();
                encode_state(&mut lines, st);
                enc.push((*ordinal, lines));
            }
            enc.sort_by_key(|(o, _)| *o);
            file.funcs.insert(*closure_fp, enc);
        }
        for (loop_fp, st) in loop_seeds {
            let mut lines = Vec::new();
            encode_state(&mut lines, st);
            file.loops.insert(*loop_fp, lines);
        }
        let text = serialize_file(key, file);
        drop(files);
        self.write_file(&key.file_name(), &text);
    }

    /// Records the portable seed sections of a run: per donor root function,
    /// its parametric closure fingerprint, channel tag and converged loop
    /// states, encoded by canonical cell name so any family member sharing
    /// this configuration can decode them.
    pub fn update_portable(
        &self,
        config_fp: u64,
        layout: &CellLayout,
        packs: &Packs,
        seeds: &[(u64, String, Vec<(u32, AbsState)>)],
    ) {
        if seeds.is_empty() {
            return;
        }
        let mut portables = self.portables.lock().expect("store poisoned");
        let file = self.load_portable(&mut portables, config_fp);
        for (parametric_fp, tag, loops) in seeds {
            let mut enc: Vec<(u32, Vec<String>)> = Vec::with_capacity(loops.len());
            for (ordinal, st) in loops {
                let mut lines = Vec::new();
                encode_state_named(&mut lines, st, layout, packs, tag);
                enc.push((*ordinal, lines));
            }
            enc.sort_by_key(|(o, _)| *o);
            file.funcs.insert(*parametric_fp, enc);
        }
        let text = serialize_portable_file(config_fp, file);
        drop(portables);
        self.write_file(&portable_file_name(config_fp), &text);
    }

    /// Lists the store's cache files by name (sorted, valid names only) —
    /// the inventory a fleet store sync negotiates over.
    pub fn file_names(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| valid_store_file_name(n))
            .collect();
        names.sort();
        names
    }

    /// Reads one raw cache file for shipping over the fleet wire. `None`
    /// for invalid names or files that do not exist.
    pub fn export_file(&self, name: &str) -> Option<String> {
        if !valid_store_file_name(name) {
            return None;
        }
        std::fs::read_to_string(self.dir.join(name)).ok()
    }

    /// Merges one raw cache file received over the fleet wire into the
    /// store (entries, function seeds and loop seeds are unioned; incoming
    /// sections win on conflict). Returns `false` when the name or content
    /// is invalid, or when the merge changed nothing (content dedup).
    pub fn import_file(&self, name: &str, text: &str) -> bool {
        if !valid_store_file_name(name) {
            return false;
        }
        let mut groups = name[2..name.len() - 5].split('-');
        let mut fp = || u64::from_str_radix(groups.next().unwrap_or(""), 16).unwrap_or(0);
        if name.starts_with("k-") {
            let key = StoreKey { layout_fp: fp(), packs_fp: fp(), config_fp: fp() };
            let Some(incoming) = parse_file(&key, text) else {
                return false;
            };
            let mut files = self.files.lock().expect("store poisoned");
            let cur = self.load(&mut files, &key);
            let before = serialize_file(&key, cur);
            cur.entries.extend(incoming.entries);
            cur.funcs.extend(incoming.funcs);
            cur.loops.extend(incoming.loops);
            let after = serialize_file(&key, cur);
            drop(files);
            if after == before {
                return false;
            }
            self.write_file(name, &after);
            true
        } else {
            let config_fp = fp();
            let Some(incoming) = parse_portable_file(config_fp, text) else {
                return false;
            };
            let mut portables = self.portables.lock().expect("store poisoned");
            let cur = self.load_portable(&mut portables, config_fp);
            let before = serialize_portable_file(config_fp, cur);
            cur.funcs.extend(incoming.funcs);
            let after = serialize_portable_file(config_fp, cur);
            drop(portables);
            if after == before {
                return false;
            }
            self.write_file(name, &after);
            true
        }
    }

    /// Atomically writes one cache file, counts the bytes and enforces the
    /// store size bound (never evicting the file just written).
    fn write_file(&self, name: &str, text: &str) {
        let path = self.dir.join(name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let written = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
        if written.is_ok() {
            self.counters.lock().expect("store poisoned").bytes_written += text.len() as u64;
            self.enforce_bound(name);
        }
    }

    /// Oldest-mtime-first eviction until the directory fits `max_bytes`.
    fn enforce_bound(&self, keep: &str) {
        let Some(max) = self.max_bytes else {
            return;
        };
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut entries: Vec<(std::time::SystemTime, u64, String)> = Vec::new();
        for e in rd.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".astc") {
                continue;
            }
            let Ok(md) = e.metadata() else {
                continue;
            };
            let mtime = md.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            entries.push((mtime, md.len(), name));
        }
        let mut total: u64 = entries.iter().map(|(_, len, _)| *len).sum();
        entries.sort();
        for (_, len, name) in entries {
            if total <= max {
                break;
            }
            if name == keep {
                continue;
            }
            if std::fs::remove_file(self.dir.join(&name)).is_ok() {
                total -= len;
                self.counters.lock().expect("store poisoned").evictions += 1;
                // Drop any cached image so the eviction is visible in-process.
                self.files.lock().expect("store poisoned").remove(&name);
                self.portables.lock().expect("store poisoned").remove(&name);
            }
        }
    }

    /// Loads (once) and returns the in-memory image of the cache file for
    /// `key`. Unreadable or corrupt files yield an empty image and bump the
    /// corruption counter, so the caller sees a clean miss.
    fn load<'m>(
        &self,
        files: &'m mut HashMap<String, CacheFile>,
        key: &StoreKey,
    ) -> &'m mut CacheFile {
        let name = key.file_name();
        if !files.contains_key(&name) {
            let path = self.dir.join(&name);
            let file = match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let mut c = self.counters.lock().expect("store poisoned");
                    c.bytes_read += text.len() as u64;
                    match parse_file(key, &text) {
                        Some(f) => f,
                        None => {
                            c.corrupt_files += 1;
                            CacheFile::default()
                        }
                    }
                }
                Err(_) => CacheFile::default(),
            };
            files.insert(name.clone(), file);
        }
        files.get_mut(&name).expect("just inserted")
    }

    /// [`InvariantStore::load`], for the portable-seed file of `config_fp`.
    fn load_portable<'m>(
        &self,
        portables: &'m mut HashMap<String, PortableFile>,
        config_fp: u64,
    ) -> &'m mut PortableFile {
        let name = portable_file_name(config_fp);
        if !portables.contains_key(&name) {
            let path = self.dir.join(&name);
            let file = match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let mut c = self.counters.lock().expect("store poisoned");
                    c.bytes_read += text.len() as u64;
                    match parse_portable_file(config_fp, &text) {
                        Some(f) => f,
                        None => {
                            c.corrupt_files += 1;
                            PortableFile::default()
                        }
                    }
                }
                Err(_) => PortableFile::default(),
            };
            portables.insert(name.clone(), file);
        }
        portables.get_mut(&name).expect("just inserted")
    }
}

// ---------------------------------------------------------------------------
// Text codec
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\_"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    if s == "\\e" {
        return Some(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next()? {
                '\\' => out.push('\\'),
                '_' => out.push(' '),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Space-separated token reader with typed accessors; every accessor returns
/// `None` on malformed input so decoding bails out cleanly.
struct Toks<'a, I: Iterator<Item = &'a str>> {
    it: I,
}

impl<'a, I: Iterator<Item = &'a str>> Toks<'a, I> {
    fn tok(&mut self) -> Option<&'a str> {
        self.it.next()
    }

    fn u32(&mut self) -> Option<u32> {
        self.tok()?.parse().ok()
    }

    fn u64(&mut self) -> Option<u64> {
        self.tok()?.parse().ok()
    }

    fn usize(&mut self) -> Option<usize> {
        self.tok()?.parse().ok()
    }

    fn i64(&mut self) -> Option<i64> {
        self.tok()?.parse().ok()
    }

    /// An `f64` stored as a 16-digit hex bit pattern (exact round-trip).
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(u64::from_str_radix(self.tok()?, 16).ok()?))
    }

    fn hex64(&mut self) -> Option<u64> {
        u64::from_str_radix(self.tok()?, 16).ok()
    }

    fn bool(&mut self) -> Option<bool> {
        match self.tok()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }
}

fn toks(line: &str) -> Toks<'_, std::str::SplitAsciiWhitespace<'_>> {
    Toks { it: line.split_ascii_whitespace() }
}

fn kind_code(k: AlarmKind) -> u8 {
    match k {
        AlarmKind::DivByZero => 0,
        AlarmKind::IntOverflow => 1,
        AlarmKind::FloatOverflow => 2,
        AlarmKind::InvalidFloatOp => 3,
        AlarmKind::ShiftRange => 4,
        AlarmKind::OutOfBounds => 5,
        AlarmKind::InvalidCast => 6,
    }
}

fn kind_from_code(c: u8) -> Option<AlarmKind> {
    Some(match c {
        0 => AlarmKind::DivByZero,
        1 => AlarmKind::IntOverflow,
        2 => AlarmKind::FloatOverflow,
        3 => AlarmKind::InvalidFloatOp,
        4 => AlarmKind::ShiftRange,
        5 => AlarmKind::OutOfBounds,
        6 => AlarmKind::InvalidCast,
        _ => return None,
    })
}

fn encode_stats(s: &AnalysisStats) -> String {
    format!(
        "stats {} {} {} {} {} {} {} {} {} {} {} {}",
        s.time_iterate.as_nanos(),
        s.time_check.as_nanos(),
        s.cells,
        s.octagon_packs,
        s.dtree_packs,
        s.ellipse_packs,
        s.loop_iterations,
        s.stmts_interpreted,
        s.peak_partitions,
        s.invariant_cells,
        s.parallel_stages,
        s.parallel_slices,
    )
}

fn decode_stats(line: &str, useful: &[usize]) -> Option<AnalysisStats> {
    let mut t = toks(line);
    if t.tok()? != "stats" {
        return None;
    }
    Some(AnalysisStats {
        time_iterate: Duration::from_nanos(t.u64()?),
        time_check: Duration::from_nanos(t.u64()?),
        time_replay: Duration::ZERO,
        cells: t.usize()?,
        octagon_packs: t.usize()?,
        useful_octagon_packs: useful.to_vec(),
        dtree_packs: t.usize()?,
        ellipse_packs: t.usize()?,
        loop_iterations: t.u64()?,
        stmts_interpreted: t.u64()?,
        peak_partitions: t.usize()?,
        invariant_cells: t.usize()?,
        parallel_stages: t.u64()?,
        parallel_slices: t.u64()?,
        loops_solved: 0,
        loops_replayed: 0,
        loops_seeded: 0,
        seed_hits: 0,
        loops_rechecked: 0,
    })
}

fn encode_cell_val(out: &mut String, v: &CellVal) {
    match v {
        CellVal::Int(c) => {
            let _ = write!(
                out,
                " i {} {} {} {} {} {}",
                c.val.lo, c.val.hi, c.minus.lo, c.minus.hi, c.plus.lo, c.plus.hi
            );
        }
        CellVal::Float(f) => {
            let _ = write!(out, " f {:016x} {:016x}", f.lo.to_bits(), f.hi.to_bits());
        }
    }
}

fn decode_cell_val<'a, I: Iterator<Item = &'a str>>(t: &mut Toks<'a, I>) -> Option<CellVal> {
    match t.tok()? {
        "i" => Some(CellVal::Int(Clocked {
            val: IntItv { lo: t.i64()?, hi: t.i64()? },
            minus: IntItv { lo: t.i64()?, hi: t.i64()? },
            plus: IntItv { lo: t.i64()?, hi: t.i64()? },
        })),
        "f" => Some(CellVal::Float(FloatItv { lo: t.f64()?, hi: t.f64()? })),
        _ => None,
    }
}

fn encode_dtree(out: &mut String, t: &DTree) {
    match t {
        DecisionTree::Leaf(env) => {
            let _ = write!(out, " L {} {}", env.unreachable as u8, env.cells.len());
            for (c, v) in &env.cells {
                let _ = write!(out, " {}", c.0);
                encode_cell_val(out, v);
            }
        }
        DecisionTree::Node { var, f, t } => {
            let _ = write!(out, " N {}", var.0);
            encode_dtree(out, f);
            encode_dtree(out, t);
        }
    }
}

fn decode_dtree<'a, I: Iterator<Item = &'a str>>(t: &mut Toks<'a, I>) -> Option<DTree> {
    match t.tok()? {
        "L" => {
            let unreachable = t.bool()?;
            let n = t.usize()?;
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                let c = CellId(t.u32()?);
                cells.push((c, decode_cell_val(t)?));
            }
            Some(DecisionTree::Leaf(PackEnv { cells, unreachable }))
        }
        "N" => {
            let var = CellId(t.u32()?);
            let f = decode_dtree(t)?;
            let tt = decode_dtree(t)?;
            // Reconstruct the node verbatim (`DecisionTree::node` would merge
            // equal children and alter the stored physical shape).
            Some(DecisionTree::Node { var, f: Box::new(f), t: Box::new(tt) })
        }
        _ => None,
    }
}

/// Serializes one abstract state as a sequence of lines.
fn encode_state(out: &mut Vec<String>, st: &AbsState) {
    if st.is_bottom() {
        out.push("S 1".to_string());
        return;
    }
    out.push("S 0".to_string());
    out.push(format!("k {} {}", st.env.clock.lo, st.env.clock.hi));
    let mut cells: Vec<(CellId, CellVal)> = st.env.iter().map(|(c, v)| (*c, *v)).collect();
    cells.sort_by_key(|(c, _)| *c);
    out.push(format!("e {}", cells.len()));
    for (c, v) in &cells {
        let mut line = format!("c {}", c.0);
        encode_cell_val(&mut line, v);
        out.push(line);
    }
    let octs: Vec<(usize, &Octagon)> = st.octs_iter().collect();
    out.push(format!("o {}", octs.len()));
    for (pi, o) in octs {
        let (n, m, closed) = o.to_raw();
        let mut line = format!("x {} {} {}", pi, n, closed as u8);
        // Run-length encode the matrix: widened octagons are mostly +inf.
        let mut i = 0;
        while i < m.len() {
            let bits = m[i].to_bits();
            let mut j = i + 1;
            while j < m.len() && m[j].to_bits() == bits {
                j += 1;
            }
            let _ = write!(line, " {}:{:016x}", j - i, bits);
            i = j;
        }
        out.push(line);
    }
    let dtrees: Vec<(usize, &DTree)> = st.dtrees_iter().collect();
    out.push(format!("d {}", dtrees.len()));
    for (pi, tree) in dtrees {
        let mut line = format!("t {pi}");
        encode_dtree(&mut line, tree);
        out.push(line);
    }
    let ells: Vec<(usize, f64)> = st.ellipses_iter().collect();
    out.push(format!("l {}", ells.len()));
    for (pi, k) in ells {
        out.push(format!("p {} {:016x} {:016x}", pi, k.to_bits(), st.pending(pi).to_bits()));
    }
}

/// Decodes one abstract state from a line iterator. Returns `None` on any
/// malformation or shape mismatch against the current layout/packs.
fn decode_state<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    layout: &CellLayout,
    packs: &Packs,
) -> Option<AbsState> {
    let mut t = toks(lines.next()?);
    if t.tok()? != "S" {
        return None;
    }
    if t.bool()? {
        return Some(AbsState::initial(layout, packs).bottom_like());
    }
    let mut t = toks(lines.next()?);
    if t.tok()? != "k" {
        return None;
    }
    let clock = IntItv { lo: t.i64()?, hi: t.i64()? };
    let mut t = toks(lines.next()?);
    if t.tok()? != "e" {
        return None;
    }
    let ncells = t.usize()?;
    let mut env = AbsEnv::initial(layout);
    for _ in 0..ncells {
        let mut t = toks(lines.next()?);
        if t.tok()? != "c" {
            return None;
        }
        let c = CellId(t.u32()?);
        let v = decode_cell_val(&mut t)?;
        env = env.set(c, v);
    }
    if env.is_bottom() {
        return None; // a stored non-bottom state cannot hold bottom cells
    }
    env.clock = clock;
    let mut st = AbsState::initial(layout, packs);
    st.env = env;
    let mut t = toks(lines.next()?);
    if t.tok()? != "o" {
        return None;
    }
    let nocts = t.usize()?;
    if nocts != packs.octagons.len() {
        return None;
    }
    for _ in 0..nocts {
        let mut t = toks(lines.next()?);
        if t.tok()? != "x" {
            return None;
        }
        let pi = t.usize()?;
        let n = t.usize()?;
        let closed = t.bool()?;
        let mut m = Vec::with_capacity(4 * n * n);
        while m.len() < 4 * n * n {
            let run = t.tok()?;
            let (count, bits) = run.split_once(':')?;
            let count: usize = count.parse().ok()?;
            let bits = u64::from_str_radix(bits, 16).ok()?;
            for _ in 0..count {
                m.push(f64::from_bits(bits));
            }
        }
        if pi >= packs.octagons.len() || n != packs.octagons[pi].cells.len() {
            return None;
        }
        st.set_oct(pi, Octagon::from_raw(n, m, closed)?);
    }
    let mut t = toks(lines.next()?);
    if t.tok()? != "d" {
        return None;
    }
    let ndts = t.usize()?;
    if ndts != packs.dtrees.len() {
        return None;
    }
    for _ in 0..ndts {
        let mut t = toks(lines.next()?);
        if t.tok()? != "t" {
            return None;
        }
        let pi = t.usize()?;
        if pi >= packs.dtrees.len() {
            return None;
        }
        st.set_dtree(pi, decode_dtree(&mut t)?);
    }
    let mut t = toks(lines.next()?);
    if t.tok()? != "l" {
        return None;
    }
    let nells = t.usize()?;
    if nells != packs.ellipses.len() {
        return None;
    }
    for _ in 0..nells {
        let mut t = toks(lines.next()?);
        if t.tok()? != "p" {
            return None;
        }
        let pi = t.usize()?;
        if pi >= packs.ellipses.len() {
            return None;
        }
        let k = t.f64()?;
        let pending = t.f64()?;
        st.set_ell(pi, k);
        st.set_pending(pi, pending);
    }
    Some(st)
}

// ---------------------------------------------------------------------------
// Portable (name-keyed) codec
// ---------------------------------------------------------------------------

/// Serializes one abstract state with every cell keyed by its canonical
/// channel-parametric *name* ([`canon_ident`] with the donor's `tag`) rather
/// than its [`CellId`], so the lines can be decoded against a different
/// family member's layout. Temporaries (`__tmp*`) are omitted: their
/// numbering is member-specific, and the acceptance pass recomputes their
/// values anyway. Relational components carry their pack member names so the
/// decoder can re-match packs structurally.
fn encode_state_named(
    out: &mut Vec<String>,
    st: &AbsState,
    layout: &CellLayout,
    packs: &Packs,
    tag: &str,
) {
    if st.is_bottom() {
        out.push("S 1".to_string());
        return;
    }
    let names: HashMap<CellId, String> =
        layout.iter().map(|(id, info)| (id, canon_ident(&info.name, tag))).collect();
    out.push("S 0".to_string());
    out.push(format!("k {} {}", st.env.clock.lo, st.env.clock.hi));
    let mut cells: Vec<(&String, CellVal)> = st
        .env
        .iter()
        .filter_map(|(c, v)| {
            let name = names.get(c)?;
            if name.starts_with("__tmp") {
                None
            } else {
                Some((name, *v))
            }
        })
        .collect();
    cells.sort_by(|a, b| a.0.cmp(b.0));
    out.push(format!("e {}", cells.len()));
    for (name, v) in &cells {
        let mut line = format!("c {}", esc(name));
        encode_cell_val(&mut line, v);
        out.push(line);
    }
    let octs: Vec<(usize, &Octagon)> = st.octs_iter().collect();
    out.push(format!("o {}", octs.len()));
    for (pi, o) in octs {
        let (n, m, closed) = o.to_raw();
        let mut line = format!("x {n}");
        for c in &packs.octagons[pi].cells {
            let _ = write!(line, " {}", esc(&names[c]));
        }
        let _ = write!(line, " {}", closed as u8);
        let mut i = 0;
        while i < m.len() {
            let bits = m[i].to_bits();
            let mut j = i + 1;
            while j < m.len() && m[j].to_bits() == bits {
                j += 1;
            }
            let _ = write!(line, " {}:{:016x}", j - i, bits);
            i = j;
        }
        out.push(line);
    }
    let dtrees: Vec<(usize, &DTree)> = st.dtrees_iter().collect();
    out.push(format!("d {}", dtrees.len()));
    for (pi, tree) in dtrees {
        let pack = &packs.dtrees[pi];
        let mut line = format!("t {}", pack.bools.len());
        for c in &pack.bools {
            let _ = write!(line, " {}", esc(&names[c]));
        }
        let _ = write!(line, " {}", pack.nums.len());
        for c in &pack.nums {
            let _ = write!(line, " {}", esc(&names[c]));
        }
        encode_dtree_named(&mut line, tree, &names);
        out.push(line);
    }
    let ells: Vec<(usize, f64)> = st.ellipses_iter().collect();
    out.push(format!("l {}", ells.len()));
    for (pi, k) in ells {
        let e = &packs.ellipses[pi];
        out.push(format!(
            "p {:016x} {:016x} {} {} {} {:016x} {:016x}",
            e.a.to_bits(),
            e.b.to_bits(),
            esc(&names[&e.x]),
            esc(&names[&e.y]),
            esc(&names[&e.tmp]),
            k.to_bits(),
            st.pending(pi).to_bits(),
        ));
    }
}

fn encode_dtree_named(out: &mut String, t: &DTree, names: &HashMap<CellId, String>) {
    match t {
        DecisionTree::Leaf(env) => {
            let _ = write!(out, " L {} {}", env.unreachable as u8, env.cells.len());
            for (c, v) in &env.cells {
                let _ = write!(out, " {}", esc(&names[c]));
                encode_cell_val(out, v);
            }
        }
        DecisionTree::Node { var, f, t } => {
            let _ = write!(out, " N {}", esc(&names[var]));
            encode_dtree_named(out, f, names);
            encode_dtree_named(out, t, names);
        }
    }
}

fn decode_dtree_named<'a, I: Iterator<Item = &'a str>>(
    t: &mut Toks<'a, I>,
    resolve: &impl Fn(&str) -> Option<CellId>,
) -> Option<DTree> {
    match t.tok()? {
        "L" => {
            let unreachable = t.bool()?;
            let n = t.usize()?;
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                let c = resolve(t.tok()?)?;
                cells.push((c, decode_cell_val(t)?));
            }
            Some(DecisionTree::Leaf(PackEnv { cells, unreachable }))
        }
        "N" => {
            let var = resolve(t.tok()?)?;
            let f = decode_dtree_named(t, resolve)?;
            let tt = decode_dtree_named(t, resolve)?;
            Some(DecisionTree::Node { var, f: Box::new(f), t: Box::new(tt) })
        }
        _ => None,
    }
}

/// Decodes one name-keyed state into a [`StatePatch`] against the current
/// member's layout and packs, expanding each stored canonical name with the
/// target's channel `tag`. Unresolvable cells and unmatched packs are
/// silently dropped (the patch is applied over the entry state, so dropped
/// components simply keep their entry values); only a structurally broken
/// record yields `None`.
fn decode_patch<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    layout: &CellLayout,
    packs: &Packs,
    tag: &str,
) -> Option<StatePatch> {
    let ids: HashMap<String, CellId> =
        layout.iter().map(|(id, info)| (info.name.clone(), id)).collect();
    let resolve =
        |stored: &str| -> Option<CellId> { ids.get(&expand_ident(&unesc(stored)?, tag)).copied() };
    let mut t = toks(lines.next()?);
    if t.tok()? != "S" {
        return None;
    }
    if t.bool()? {
        return None; // a bottom donor state is useless as a seed
    }
    let mut t = toks(lines.next()?);
    if t.tok()? != "k" {
        return None;
    }
    let clock = IntItv { lo: t.i64()?, hi: t.i64()? };
    let mut t = toks(lines.next()?);
    if t.tok()? != "e" {
        return None;
    }
    let ncells = t.usize()?;
    let mut cells = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        let mut t = toks(lines.next()?);
        if t.tok()? != "c" {
            return None;
        }
        let name = t.tok()?;
        let v = decode_cell_val(&mut t)?;
        if let Some(c) = resolve(name) {
            cells.push((c, v));
        }
    }
    let oct_index: HashMap<&[CellId], usize> =
        packs.octagons.iter().enumerate().map(|(i, p)| (p.cells.as_slice(), i)).collect();
    let mut t = toks(lines.next()?);
    if t.tok()? != "o" {
        return None;
    }
    let nocts = t.usize()?;
    let mut octs = Vec::new();
    for _ in 0..nocts {
        let line = lines.next()?;
        let mut t = toks(line);
        if t.tok()? != "x" {
            return None;
        }
        let n = t.usize()?;
        let mut members = Some(Vec::with_capacity(n));
        for _ in 0..n {
            let name = t.tok()?;
            members = match (members, resolve(name)) {
                (Some(mut m), Some(c)) => {
                    m.push(c);
                    Some(m)
                }
                _ => None,
            };
        }
        let closed = t.bool()?;
        let mut m = Vec::with_capacity(4 * n * n);
        while m.len() < 4 * n * n {
            let run = t.tok()?;
            let (count, bits) = run.split_once(':')?;
            let count: usize = count.parse().ok()?;
            let bits = u64::from_str_radix(bits, 16).ok()?;
            for _ in 0..count {
                m.push(f64::from_bits(bits));
            }
        }
        if let Some(pi) = members.and_then(|mm| oct_index.get(mm.as_slice()).copied()) {
            if let Some(o) = Octagon::from_raw(n, m, closed) {
                octs.push((pi, o));
            }
        }
    }
    let dtree_index: HashMap<(&[CellId], &[CellId]), usize> = packs
        .dtrees
        .iter()
        .enumerate()
        .map(|(i, p)| ((p.bools.as_slice(), p.nums.as_slice()), i))
        .collect();
    let mut t = toks(lines.next()?);
    if t.tok()? != "d" {
        return None;
    }
    let ndts = t.usize()?;
    let mut dtrees = Vec::new();
    for _ in 0..ndts {
        let line = lines.next()?;
        let mut t = toks(line);
        if t.tok()? != "t" {
            return None;
        }
        let read_group = |t: &mut Toks<'a, _>| -> Option<Option<Vec<CellId>>> {
            let n = t.usize()?;
            let mut group = Some(Vec::with_capacity(n));
            for _ in 0..n {
                let name = t.tok()?;
                group = match (group, resolve(name)) {
                    (Some(mut g), Some(c)) => {
                        g.push(c);
                        Some(g)
                    }
                    _ => None,
                };
            }
            Some(group)
        };
        let bools = read_group(&mut t)?;
        let nums = read_group(&mut t)?;
        let tree = decode_dtree_named(&mut t, &resolve);
        if let (Some(bools), Some(nums), Some(tree)) = (bools, nums, tree) {
            if let Some(&pi) = dtree_index.get(&(bools.as_slice(), nums.as_slice())) {
                dtrees.push((pi, tree));
            }
        }
    }
    let mut t = toks(lines.next()?);
    if t.tok()? != "l" {
        return None;
    }
    let nells = t.usize()?;
    let mut ells = Vec::new();
    for _ in 0..nells {
        let line = lines.next()?;
        let mut t = toks(line);
        if t.tok()? != "p" {
            return None;
        }
        let a = t.f64()?;
        let b = t.f64()?;
        let x = resolve(t.tok()?);
        let y = resolve(t.tok()?);
        let tmp = resolve(t.tok()?);
        let k = t.f64()?;
        let pending = t.f64()?;
        if let (Some(x), Some(y), Some(tmp)) = (x, y, tmp) {
            if let Some(pi) = packs.ellipses.iter().position(|e| {
                e.a.to_bits() == a.to_bits()
                    && e.b.to_bits() == b.to_bits()
                    && e.x == x
                    && e.y == y
                    && e.tmp == tmp
            }) {
                ells.push((pi, k, pending));
            }
        }
    }
    Some(StatePatch { clock, cells, octs, dtrees, ells })
}

fn serialize_portable_file(config_fp: u64, file: &PortableFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CACHE_FORMAT}");
    let _ = writeln!(out, "pkey {config_fp:016x}");
    let mut funcs: Vec<(&u64, &Vec<(u32, Vec<String>)>)> = file.funcs.iter().collect();
    funcs.sort_by_key(|(fp, _)| **fp);
    for (fp, loops) in funcs {
        let _ = writeln!(out, "pfunc {:016x} {}", fp, loops.len());
        for (ordinal, lines) in loops {
            let _ = writeln!(out, "seed {ordinal}");
            for l in lines {
                let _ = writeln!(out, "{l}");
            }
        }
    }
    out.push_str("end\n");
    out
}

fn parse_portable_file(config_fp: u64, text: &str) -> Option<PortableFile> {
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    if *lines.get(i)? != CACHE_FORMAT {
        return None;
    }
    i += 1;
    let mut t = toks(lines.get(i)?);
    if t.tok()? != "pkey" || t.hex64()? != config_fp {
        return None;
    }
    i += 1;
    let mut file = PortableFile::default();
    loop {
        let line = *lines.get(i)?;
        if line == "end" {
            return Some(file);
        }
        let mut t = toks(line);
        if t.tok()? != "pfunc" {
            return None;
        }
        let fp = t.hex64()?;
        let n = t.usize()?;
        i += 1;
        let mut loops = Vec::with_capacity(n);
        for _ in 0..n {
            let mut t = toks(lines.get(i)?);
            if t.tok()? != "seed" {
                return None;
            }
            let ordinal = t.u32()?;
            i += 1;
            loops.push((ordinal, take_state_lines(&lines, &mut i)?));
        }
        file.funcs.insert(fp, loops);
    }
}

fn serialize_file(key: &StoreKey, file: &CacheFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CACHE_FORMAT}");
    let _ =
        writeln!(out, "key {:016x} {:016x} {:016x}", key.layout_fp, key.packs_fp, key.config_fp);
    let mut entries: Vec<(&u64, &RawEntry)> = file.entries.iter().collect();
    entries.sort_by_key(|(fp, _)| **fp);
    for (fp, e) in entries {
        let _ = writeln!(out, "entry {fp:016x}");
        let _ = writeln!(out, "alarms {}", e.alarms.len());
        for a in &e.alarms {
            let _ = writeln!(
                out,
                "a {} {} {} {}",
                a.stmt.0,
                a.loc.line,
                kind_code(a.kind),
                esc(&a.context)
            );
        }
        match &e.census {
            None => {
                let _ = writeln!(out, "census 0");
            }
            Some(c) => {
                let _ = writeln!(
                    out,
                    "census 1 {} {} {} {} {} {} {}",
                    c.boolean_intervals,
                    c.intervals,
                    c.clock_assertions,
                    c.octagon_additive,
                    c.octagon_subtractive,
                    c.decision_trees,
                    c.ellipsoids,
                );
            }
        }
        let _ = writeln!(out, "{}", e.stats_line);
        let _ = write!(out, "useful {}", e.useful.len());
        for u in &e.useful {
            let _ = write!(out, " {u}");
        }
        out.push('\n');
        match &e.invariant {
            None => {
                let _ = writeln!(out, "inv 0");
            }
            Some(lines) => {
                let _ = writeln!(out, "inv 1");
                for l in lines {
                    let _ = writeln!(out, "{l}");
                }
            }
        }
    }
    let mut funcs: Vec<(&u64, &Vec<(u32, Vec<String>)>)> = file.funcs.iter().collect();
    funcs.sort_by_key(|(fp, _)| **fp);
    for (fp, loops) in funcs {
        let _ = writeln!(out, "func {:016x} {}", fp, loops.len());
        for (ordinal, lines) in loops {
            let _ = writeln!(out, "seed {ordinal}");
            for l in lines {
                let _ = writeln!(out, "{l}");
            }
        }
    }
    let mut loops: Vec<(&u64, &Vec<String>)> = file.loops.iter().collect();
    loops.sort_by_key(|(fp, _)| **fp);
    for (fp, lines) in loops {
        let _ = writeln!(out, "loop {fp:016x}");
        for l in lines {
            let _ = writeln!(out, "{l}");
        }
    }
    out.push_str("end\n");
    out
}

/// Collects the line span of one encoded state starting at `lines[*i]`.
fn take_state_lines(lines: &[&str], i: &mut usize) -> Option<Vec<String>> {
    let head = *lines.get(*i)?;
    let mut t = toks(head);
    if t.tok()? != "S" {
        return None;
    }
    let bottom = t.bool()?;
    let mut out = vec![head.to_string()];
    *i += 1;
    if bottom {
        return Some(out);
    }
    // k, e <n> + n cells, o <n> + n lines, d <n> + n lines, l <n> + n lines
    let k = *lines.get(*i)?;
    if !k.starts_with("k ") {
        return None;
    }
    out.push(k.to_string());
    *i += 1;
    for section in ["e", "o", "d", "l"] {
        let head = *lines.get(*i)?;
        let mut t = toks(head);
        if t.tok()? != section {
            return None;
        }
        let n = t.usize()?;
        out.push(head.to_string());
        *i += 1;
        for _ in 0..n {
            out.push((*lines.get(*i)?).to_string());
            *i += 1;
        }
    }
    Some(out)
}

fn parse_file(key: &StoreKey, text: &str) -> Option<CacheFile> {
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    if *lines.get(i)? != CACHE_FORMAT {
        return None;
    }
    i += 1;
    let mut t = toks(lines.get(i)?);
    if t.tok()? != "key"
        || t.hex64()? != key.layout_fp
        || t.hex64()? != key.packs_fp
        || t.hex64()? != key.config_fp
    {
        return None;
    }
    i += 1;
    let mut file = CacheFile::default();
    loop {
        let line = *lines.get(i)?;
        if line == "end" {
            return Some(file);
        }
        let mut t = toks(line);
        match t.tok()? {
            "entry" => {
                let fp = t.hex64()?;
                i += 1;
                let mut t = toks(lines.get(i)?);
                if t.tok()? != "alarms" {
                    return None;
                }
                let n = t.usize()?;
                i += 1;
                let mut alarms = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut t = toks(lines.get(i)?);
                    if t.tok()? != "a" {
                        return None;
                    }
                    let stmt = StmtId(t.u32()?);
                    let line = t.u32()?;
                    let kind = kind_from_code(t.u32()?.try_into().ok()?)?;
                    let context = unesc(t.tok()?)?;
                    alarms.push(Alarm { stmt, loc: Loc { line }, kind, context });
                    i += 1;
                }
                let mut t = toks(lines.get(i)?);
                if t.tok()? != "census" {
                    return None;
                }
                let census = if t.bool()? {
                    Some(Census {
                        boolean_intervals: t.usize()?,
                        intervals: t.usize()?,
                        clock_assertions: t.usize()?,
                        octagon_additive: t.usize()?,
                        octagon_subtractive: t.usize()?,
                        decision_trees: t.usize()?,
                        ellipsoids: t.usize()?,
                    })
                } else {
                    None
                };
                i += 1;
                let stats_line = (*lines.get(i)?).to_string();
                decode_stats(&stats_line, &[])?; // validate eagerly
                i += 1;
                let mut t = toks(lines.get(i)?);
                if t.tok()? != "useful" {
                    return None;
                }
                let n = t.usize()?;
                let mut useful = Vec::with_capacity(n);
                for _ in 0..n {
                    useful.push(t.usize()?);
                }
                i += 1;
                let mut t = toks(lines.get(i)?);
                if t.tok()? != "inv" {
                    return None;
                }
                let has_inv = t.bool()?;
                i += 1;
                let invariant =
                    if has_inv { Some(take_state_lines(&lines, &mut i)?) } else { None };
                file.entries.insert(fp, RawEntry { alarms, census, stats_line, useful, invariant });
            }
            "func" => {
                let fp = t.hex64()?;
                let n = t.usize()?;
                i += 1;
                let mut loops = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut t = toks(lines.get(i)?);
                    if t.tok()? != "seed" {
                        return None;
                    }
                    let ordinal = t.u32()?;
                    i += 1;
                    loops.push((ordinal, take_state_lines(&lines, &mut i)?));
                }
                file.funcs.insert(fp, loops);
            }
            "loop" => {
                let fp = t.hex64()?;
                i += 1;
                file.loops.insert(fp, take_state_lines(&lines, &mut i)?);
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astree_frontend::Frontend;
    use astree_memory::LayoutConfig;

    fn temp_store(tag: &str) -> InvariantStore {
        let dir =
            std::env::temp_dir().join(format!("astree-cache-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        InvariantStore::open(dir).expect("store opens")
    }

    fn sample() -> (astree_ir::Program, AnalysisConfig) {
        let src = r#"
            volatile int in; int x; int b;
            void main(void) {
                __astree_input_int(in, 0, 100);
                while (1) {
                    x = in;
                    b = x > 50;
                    if (b) { x = 50; }
                    __astree_wait();
                }
            }
        "#;
        (Frontend::new().compile_str(src).expect("compiles"), AnalysisConfig::default())
    }

    #[test]
    fn config_fingerprint_tracks_analysis_relevant_fields() {
        let base = AnalysisConfig::default();
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&AnalysisConfig::default()), "deterministic");

        let mut jobs = AnalysisConfig::default();
        jobs.jobs = 8;
        assert_eq!(fp, config_fingerprint(&jobs), "jobs is excluded (results identical)");

        let mut no_shortcuts = AnalysisConfig::default();
        no_shortcuts.debug_no_ptr_shortcuts = true;
        assert_eq!(
            fp,
            config_fingerprint(&no_shortcuts),
            "debug_no_ptr_shortcuts is excluded (results identical)"
        );

        let mut generic = AnalysisConfig::default();
        generic.debug_generic_kernels = true;
        assert_eq!(
            fp,
            config_fingerprint(&generic),
            "debug_generic_kernels is excluded (results identical)"
        );

        let mut widen = AnalysisConfig::default();
        widen.widening_delay += 1;
        assert_ne!(fp, config_fingerprint(&widen));

        let mut thr = AnalysisConfig::default();
        thr.thresholds = astree_domains::Thresholds::geometric(10.0, 3.0, 5);
        assert_ne!(fp, config_fingerprint(&thr));

        let mut cap = AnalysisConfig::default();
        cap.octagon_pack_cap = 4;
        assert_ne!(fp, config_fingerprint(&cap));
    }

    #[test]
    fn state_roundtrips_exactly_through_the_codec() {
        let (program, config) = sample();
        let layout = CellLayout::new(&program, &LayoutConfig::default());
        let packs = Packs::discover(&program, &layout, &config);
        let session = crate::analysis::AnalysisSession::builder(&program).config(config).build();
        let result = session.run();
        let inv = result.main_invariant.expect("has a main invariant");

        let mut lines = Vec::new();
        encode_state(&mut lines, &inv);
        let decoded =
            decode_state(&mut lines.iter().map(String::as_str), &layout, &packs).expect("decodes");
        assert_eq!(format!("{inv}"), format!("{decoded}"), "state round-trips verbatim");
        assert_eq!(
            Census::of_state(&inv, &layout, &packs),
            Census::of_state(&decoded, &layout, &packs),
        );
    }

    #[test]
    fn bottom_states_roundtrip() {
        let (program, config) = sample();
        let layout = CellLayout::new(&program, &LayoutConfig::default());
        let packs = Packs::discover(&program, &layout, &config);
        let bot = AbsState::initial(&layout, &packs).bottom_like();
        let mut lines = Vec::new();
        encode_state(&mut lines, &bot);
        assert_eq!(lines, vec!["S 1".to_string()]);
        let decoded =
            decode_state(&mut lines.iter().map(String::as_str), &layout, &packs).expect("decodes");
        assert!(decoded.is_bottom());
    }

    #[test]
    fn corrupt_files_fall_back_to_a_clean_miss() {
        let store = temp_store("corrupt");
        let key = StoreKey { layout_fp: 1, packs_fp: 2, config_fp: 3 };
        std::fs::write(store.dir().join(key.file_name()), "astree-cache/1\ngarbage\n")
            .expect("writes");
        let (program, config) = sample();
        let layout = CellLayout::new(&program, &LayoutConfig::default());
        let packs = Packs::discover(&program, &layout, &config);
        assert!(store.lookup_full(&key, 42, &layout, &packs).is_none());
        assert_eq!(store.counters().corrupt_files, 1);
        assert!(store.counters().bytes_read > 0);
    }

    #[test]
    fn truncated_files_fall_back_to_a_clean_miss() {
        let store = temp_store("truncated");
        let (program, config) = sample();
        let layout = CellLayout::new(&program, &LayoutConfig::default());
        let packs = Packs::discover(&program, &layout, &config);
        let key = StoreKey { layout_fp: 7, packs_fp: 8, config_fp: 9 };
        let result = crate::analysis::AnalysisSession::builder(&program)
            .config(AnalysisConfig::default())
            .build()
            .run();
        store.update(
            &key,
            99,
            &result.alarms,
            result.main_census,
            result.main_invariant.as_ref(),
            &result.stats,
            &[],
            &[],
        );
        let path = store.dir().join(key.file_name());
        let full = std::fs::read_to_string(&path).expect("reads");
        std::fs::write(&path, &full[..full.len() / 2]).expect("writes");
        // A fresh store re-reads from disk (the writing store has it cached).
        let fresh = InvariantStore::open(store.dir()).expect("opens");
        assert!(fresh.lookup_full(&key, 99, &layout, &packs).is_none());
        assert_eq!(fresh.counters().corrupt_files, 1);
    }

    #[test]
    fn loops_are_ordered_preorder_within_a_function() {
        let src = r#"
            int i; int j;
            void main(void) {
                for (i = 0; i < 3; i++) {
                    for (j = 0; j < 3; j++) { }
                }
                for (i = 0; i < 2; i++) { }
            }
        "#;
        let program = Frontend::new().compile_str(src).expect("compiles");
        let func = program.func(program.entry);
        let loops = loops_in_preorder(func);
        assert_eq!(loops.len(), 3);
        // Structural pre-order: first top-level loop, its nested loop, then
        // the second top-level loop — regardless of how ids were numbered.
        let mut top = Vec::new();
        for s in &func.body {
            if let astree_ir::StmtKind::While(id, _, body) = &s.kind {
                top.push((*id, body));
            }
        }
        assert_eq!(top.len(), 2);
        let mut nested = None;
        astree_ir::stmt::for_each_stmt(top[0].1, &mut |s| {
            if let astree_ir::StmtKind::While(id, _, _) = &s.kind {
                nested.get_or_insert(*id);
            }
        });
        assert_eq!(loops, vec![top[0].0, nested.expect("nested loop"), top[1].0]);
    }
}
