//! Footprints and stage plans for the intra-analysis parallel executor
//! (Monniaux, *The parallel implementation of the Astrée static analyzer*):
//! the top-level dispatch of the synchronous loop is partitioned into
//! independent slices, each analyzed from the shared pre-state, and the
//! slice deltas are merged in a **fixed order** so the result is
//! bit-identical to the sequential analysis for every worker count.
//!
//! This module computes, per top-level statement, a conservative *footprint*
//! — which cells the statement may read from the pre-state, which it may or
//! must write, which relational packs it consults or replaces — and groups
//! consecutive statements into parallel stages via [`astree_sched`]. A pair
//! of statements may share a stage only when running them from the same
//! pre-state and overlaying their effects in statement order is
//! observationally identical to running them in sequence.

use crate::packs::Packs;
use crate::substitute::substitute_block;
use astree_ir::{
    Access, Block, CallArg, Expr, Lvalue, Program, Stmt, StmtId, StmtKind, Type, VarId,
};
use astree_memory::{CellId, CellLayout};
use astree_sched::Stage;
use std::collections::{BTreeSet, HashMap};

/// Call depth beyond which the walker gives up and declares the statement a
/// barrier (runs alone, in order — always sound).
const WALK_DEPTH_CAP: u32 = 16;

/// One relational pack, across the three pack kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum PackKey {
    /// Octagon pack index.
    Oct(usize),
    /// Decision-tree pack index.
    Dtree(usize),
    /// Ellipsoid pack index (covers both the bound `k` and the pending `δ`).
    Ell(usize),
}

/// The conservative memory footprint of one statement.
#[derive(Debug, Default, Clone)]
pub(crate) struct Footprint {
    /// Cells whose *pre-state* value may influence the statement's effect
    /// (reads, weak writes, branch-join mixes).
    pub pre_reads: BTreeSet<CellId>,
    /// Cells the statement may write.
    pub writes: BTreeSet<CellId>,
    /// Cells the statement strongly writes on every path. The overlay copies
    /// these unconditionally: a slice may rewrite a cell to a value equal to
    /// its pre value, and that write must still shadow an earlier slice's,
    /// exactly as the later statement wins sequentially.
    pub must_writes: BTreeSet<CellId>,
    /// Packs whose post value (or whose influence on env/alarms) may depend
    /// on the pack's pre value.
    pub packs_dep: BTreeSet<PackKey>,
    /// Packs the statement may write.
    pub packs_write: BTreeSet<PackKey>,
    /// The statement must run alone in program order (clock tick, top-level
    /// return, call-depth overflow).
    pub barrier: bool,
}

impl Footprint {
    /// `true` when `later` (a statement after `self` in program order) must
    /// observe `self`'s effects, i.e. the pair cannot share a stage.
    ///
    /// Anti-dependences need no edge: every slice runs from the shared
    /// pre-state, and the ordered overlay lets the later statement's writes
    /// win, as in the sequential run. A write/write pair is likewise ordered
    /// by the overlay; it only conflicts when the later write is weak or
    /// conditional — and then the written cell is also in `later.pre_reads`.
    pub fn conflicts_with_later(&self, later: &Footprint) -> bool {
        self.barrier
            || later.barrier
            || !self.writes.is_disjoint(&later.pre_reads)
            || !self.packs_write.is_disjoint(&later.packs_dep)
    }
}

/// The union of a slice's (contiguous chunk of statements) write effects,
/// consumed by [`crate::state::AbsState::overlay_from`].
#[derive(Debug, Default, Clone)]
pub(crate) struct SliceEffects {
    /// Cells strongly written on every path of some statement in the slice.
    pub must_writes: BTreeSet<CellId>,
    /// Packs the slice may write (copied wholesale during the overlay; the
    /// planner guarantees no earlier slice's pack write is observed).
    pub packs_write: BTreeSet<PackKey>,
}

/// Unions the footprints of a slice's statements.
pub(crate) fn slice_effects(fps: &[Footprint]) -> SliceEffects {
    let mut out = SliceEffects::default();
    for fp in fps {
        out.must_writes.extend(fp.must_writes.iter().copied());
        out.packs_write.extend(fp.packs_write.iter().copied());
    }
    out
}

/// The cached execution plan of one block: per-statement footprints and the
/// contiguous stages they group into.
#[derive(Debug)]
pub(crate) struct BlockPlan {
    /// Stages in program order.
    pub stages: Vec<Stage>,
    /// One footprint per statement of the block.
    pub footprints: Vec<Footprint>,
    /// `true` when at least one stage can run sliced.
    pub parallel: bool,
}

/// Computes the plan for a block (pure function of the syntax and packs, so
/// identical across runs and worker counts).
pub(crate) fn plan_block(
    program: &Program,
    layout: &CellLayout,
    packs: &Packs,
    block: &Block,
) -> BlockPlan {
    let footprints: Vec<Footprint> =
        block.iter().map(|s| stmt_footprint(program, layout, packs, s)).collect();
    let stages = astree_sched::plan_stages(
        block.len(),
        |i| footprints[i].barrier,
        |i, j| footprints[i].conflicts_with_later(&footprints[j]),
    );
    let parallel = stages.iter().any(|st| st.parallel);
    BlockPlan { stages, footprints, parallel }
}

/// All cells a loop may read or write (guard, body, callees — with by-ref
/// substitution, exactly like the interpreter's abstract inlining), the
/// scope of the localized loop-done reduction. `None` when the walk hits
/// the call-depth cap or a clock tick (whose effect is global): the caller
/// must fall back to the full-state reduction.
pub(crate) fn loop_touched_cells(
    program: &Program,
    layout: &CellLayout,
    cond: &Expr,
    body: &Block,
) -> Option<BTreeSet<CellId>> {
    let mut out = BTreeSet::new();
    touch_expr(program, layout, cond, &mut out);
    if touch_block(program, layout, body, 0, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn touch_lvalue(program: &Program, layout: &CellLayout, lv: &Lvalue, out: &mut BTreeSet<CellId>) {
    if lv.path.is_empty() && matches!(program.var(lv.base).ty, Type::Scalar(_)) {
        out.insert(layout.scalar_cell(lv.base));
    } else {
        out.extend(layout.cells_of_var(lv.base));
    }
    for a in &lv.path {
        if let Access::Index(e) = a {
            touch_expr(program, layout, e, out);
        }
    }
}

fn touch_expr(program: &Program, layout: &CellLayout, e: &Expr, out: &mut BTreeSet<CellId>) {
    let mut lvs: Vec<Lvalue> = Vec::new();
    e.for_each_lvalue(&mut |lv| lvs.push(lv.clone()));
    for lv in lvs {
        touch_lvalue(program, layout, &lv, out);
    }
}

fn touch_block(
    program: &Program,
    layout: &CellLayout,
    block: &Block,
    depth: u32,
    out: &mut BTreeSet<CellId>,
) -> bool {
    for s in block {
        match &s.kind {
            StmtKind::Assign(lv, e) => {
                touch_lvalue(program, layout, lv, out);
                touch_expr(program, layout, e, out);
            }
            StmtKind::If(c, a, b) => {
                touch_expr(program, layout, c, out);
                if !touch_block(program, layout, a, depth, out)
                    || !touch_block(program, layout, b, depth, out)
                {
                    return false;
                }
            }
            StmtKind::While(_, c, body) => {
                touch_expr(program, layout, c, out);
                if !touch_block(program, layout, body, depth, out) {
                    return false;
                }
            }
            StmtKind::Call(ret, callee, args) => {
                if depth >= WALK_DEPTH_CAP {
                    return false;
                }
                if let Some(lv) = ret {
                    touch_lvalue(program, layout, lv, out);
                }
                let f = program.func(*callee);
                let mut ref_map: HashMap<VarId, Lvalue> = HashMap::new();
                for (param, arg) in f.params.iter().zip(args) {
                    match arg {
                        CallArg::Value(e) => {
                            out.insert(layout.scalar_cell(param.var));
                            touch_expr(program, layout, e, out);
                        }
                        CallArg::Ref(lv) => {
                            touch_lvalue(program, layout, lv, out);
                            ref_map.insert(param.var, lv.clone());
                        }
                    }
                }
                let body = if ref_map.is_empty() {
                    f.body.clone()
                } else {
                    substitute_block(&f.body, &ref_map)
                };
                if !touch_block(program, layout, &body, depth + 1, out) {
                    return false;
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    touch_expr(program, layout, e, out);
                }
            }
            StmtKind::Wait => return false,
            StmtKind::Assume(c) => touch_expr(program, layout, c, out),
            StmtKind::ReadVolatile(v) => {
                out.insert(layout.scalar_cell(*v));
            }
        }
    }
    true
}

/// The footprint of a single statement.
pub(crate) fn stmt_footprint(
    program: &Program,
    layout: &CellLayout,
    packs: &Packs,
    s: &Stmt,
) -> Footprint {
    let mut w = Walker {
        program,
        layout,
        packs,
        fp: Footprint::default(),
        written: BTreeSet::new(),
        oct_rewritten: HashMap::new(),
    };
    let mut frame = Frame { depth: 0, ret_target: None, may_returned: false };
    w.walk_stmt(s, &mut frame);
    w.finalize()
}

/// Per-call-frame walking context, mirroring the iterator's abstract
/// inlining.
struct Frame {
    depth: u32,
    ret_target: Option<Lvalue>,
    /// `true` once a `return` may have been taken in this frame: later
    /// writes are no longer on every path (the function-exit join mixes
    /// them with the state at the return point).
    may_returned: bool,
}

struct Walker<'a> {
    program: &'a Program,
    layout: &'a CellLayout,
    packs: &'a Packs,
    fp: Footprint,
    /// Cells strongly written on every path so far.
    written: BTreeSet<CellId>,
    /// Per octagon pack: members whose row has been rewritten from inputs
    /// that do not depend on the pack's pre value, on every path so far.
    /// When *all* members of a written pack end up rewritten, the pack's
    /// post value is independent of its pre value (row operations forget the
    /// full row and column, and closure only propagates along finite edges —
    /// which, by the rules below, connect rewritten rows only).
    oct_rewritten: HashMap<usize, BTreeSet<CellId>>,
}

impl<'a> Walker<'a> {
    // ----- cell-level effects ----------------------------------------------

    fn read_cell(&mut self, c: CellId) {
        if !self.written.contains(&c) {
            self.fp.pre_reads.insert(c);
        }
    }

    fn write_cell(&mut self, c: CellId, must: bool) {
        self.fp.writes.insert(c);
        if must {
            self.written.insert(c);
        } else if !self.written.contains(&c) {
            // A weak or conditional update keeps (part of) the old value.
            self.fp.pre_reads.insert(c);
        }
    }

    /// The cells an l-value may denote, with `true` when it is certainly one
    /// strongly-updatable scalar cell. A static superset of the run-time
    /// `Evaluator::resolve`.
    fn lvalue_cells(&self, lv: &Lvalue) -> (Vec<CellId>, bool) {
        if lv.path.is_empty() && matches!(self.program.var(lv.base).ty, Type::Scalar(_)) {
            (vec![self.layout.scalar_cell(lv.base)], true)
        } else {
            (self.layout.cells_of_var(lv.base), false)
        }
    }

    fn read_lvalue(&mut self, lv: &Lvalue) {
        let (cells, _) = self.lvalue_cells(lv);
        for c in cells {
            self.read_cell(c);
        }
    }

    fn read_expr(&mut self, e: &Expr) {
        let mut lvs: Vec<Lvalue> = Vec::new();
        e.for_each_lvalue(&mut |lv| lvs.push(lv.clone()));
        for lv in lvs {
            self.read_lvalue(&lv);
        }
    }

    /// Index sub-expressions of a *written* l-value are read.
    fn read_lvalue_path(&mut self, lv: &Lvalue) {
        for a in &lv.path {
            if let Access::Index(e) = a {
                self.read_expr(e);
            }
        }
    }

    /// May-cells of an expression (for the octagon freshness rule).
    fn expr_cells(&self, e: &Expr) -> BTreeSet<CellId> {
        let mut out = BTreeSet::new();
        e.for_each_lvalue(&mut |lv| {
            let (cells, _) = self.lvalue_cells(lv);
            out.extend(cells);
        });
        out
    }

    // ----- pack-level effects ----------------------------------------------

    fn pack_dep_write(&mut self, key: PackKey) {
        self.fp.packs_dep.insert(key);
        self.fp.packs_write.insert(key);
    }

    /// Consulting a pack reads only rows this slice itself wrote when every
    /// member has been strongly rewritten since slice entry (the same
    /// freshness rule [`Walker::finalize`] applies to writes): such a consult
    /// tightens the pack but adds no pre-state dependency.
    fn pack_consult(&mut self, key: PackKey) {
        let fresh = match key {
            PackKey::Oct(pi) => {
                let members = &self.packs.octagons[pi].cells;
                self.oct_rewritten.get(&pi).is_some_and(|rw| members.iter().all(|c| rw.contains(c)))
            }
            _ => false,
        };
        if fresh {
            self.fp.packs_write.insert(key);
        } else {
            self.pack_dep_write(key);
        }
        for m in self.pack_members(key) {
            self.read_cell(m);
            self.write_cell(m, false);
        }
    }

    fn pack_members(&self, key: PackKey) -> Vec<CellId> {
        match key {
            PackKey::Oct(pi) => self.packs.octagons[pi].cells.clone(),
            PackKey::Dtree(pi) => {
                let p = &self.packs.dtrees[pi];
                p.bools.iter().chain(&p.nums).copied().collect()
            }
            PackKey::Ell(pi) => {
                let p = &self.packs.ellipses[pi];
                vec![p.x, p.y]
            }
        }
    }

    /// Packs containing any of `cells`, across all three kinds.
    fn packs_of(&self, cells: &BTreeSet<CellId>) -> BTreeSet<PackKey> {
        let mut out = BTreeSet::new();
        for c in cells {
            if let Some(pids) = self.packs.oct_index.get(c) {
                out.extend(pids.iter().map(|&pi| PackKey::Oct(pi)));
            }
            if let Some(pids) = self.packs.dtree_index.get(c) {
                out.extend(pids.iter().map(|&pi| PackKey::Dtree(pi)));
            }
            if let Some(pids) = self.packs.ellipse_index.get(c) {
                out.extend(pids.iter().map(|&pi| PackKey::Ell(pi)));
            }
        }
        out
    }

    /// The footprint of `state_guard` on a condition: the condition's cells
    /// are read and refined, every pack containing one of them is consulted
    /// and tightened, and the localized reduction may refine every member
    /// cell of those packs.
    fn guard_effect(&mut self, cond: &Expr) {
        let cells = self.expr_cells(cond);
        let mut index_reads: Vec<Lvalue> = Vec::new();
        cond.for_each_lvalue(&mut |lv| index_reads.push(lv.clone()));
        for lv in index_reads {
            self.read_lvalue_path(&lv);
        }
        for &c in &cells {
            self.read_cell(c);
            self.write_cell(c, false);
        }
        for key in self.packs_of(&cells) {
            self.pack_consult(key);
        }
    }

    /// The localized loop-done reduction (`reduce_local` over the loop's
    /// touched cells): only the packs containing one of `cells` are
    /// consulted and tightened, and only their member cells may be refined.
    fn local_reduce_effect(&mut self, cells: &BTreeSet<CellId>) {
        for key in self.packs_of(cells) {
            self.pack_consult(key);
        }
    }

    /// The global loop-head reduction (`reduce_counting`): every pack is
    /// consulted and tightened, and every member cell may be refined.
    fn global_reduce_effect(&mut self) {
        let keys: Vec<PackKey> = (0..self.packs.octagons.len())
            .map(PackKey::Oct)
            .chain((0..self.packs.dtrees.len()).map(PackKey::Dtree))
            .chain((0..self.packs.ellipses.len()).map(PackKey::Ell))
            .collect();
        for key in keys {
            self.pack_dep_write(key);
            for m in self.pack_members(key) {
                self.read_cell(m);
                self.write_cell(m, false);
            }
        }
    }

    // ----- statements ------------------------------------------------------

    fn walk_block(&mut self, block: &Block, frame: &mut Frame) {
        for s in block {
            if self.fp.barrier {
                // Barrier statements run alone; the rest of the footprint is
                // never consulted.
                return;
            }
            self.walk_stmt(s, frame);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, frame: &mut Frame) {
        match &s.kind {
            StmtKind::Assign(lv, e) => self.assign_effect(lv, e, s.id, frame),
            StmtKind::If(c, a, b) => {
                self.guard_effect(c);
                let w0 = self.written.clone();
                let r0 = self.oct_rewritten.clone();
                let ret0 = frame.may_returned;
                let writes_before = self.fp.writes.clone();

                self.walk_stmt_list(a, frame);
                let wa = std::mem::replace(&mut self.written, w0.clone());
                let ra = std::mem::replace(&mut self.oct_rewritten, r0);
                let reta = std::mem::replace(&mut frame.may_returned, ret0);

                self.walk_stmt_list(b, frame);
                let retb = frame.may_returned;

                // Only effects common to both branches are "must".
                self.written = wa.intersection(&self.written).copied().collect();
                let rb = std::mem::take(&mut self.oct_rewritten);
                for (pi, sa) in ra {
                    if let Some(sb) = rb.get(&pi) {
                        self.oct_rewritten.insert(pi, sa.intersection(sb).copied().collect());
                    }
                }
                frame.may_returned = ret0 || reta || retb;

                // The branch join mixes a branch-written cell with the other
                // branch's value; unless both branches wrote it, that other
                // value is the pre value.
                let mixed: Vec<CellId> =
                    self.fp.writes.difference(&writes_before).copied().collect();
                for c in mixed {
                    if !self.written.contains(&c) {
                        self.fp.pre_reads.insert(c);
                    }
                }
            }
            StmtKind::While(_, c, body) => {
                self.guard_effect(c);
                let w0 = self.written.clone();
                let r0 = self.oct_rewritten.clone();
                let writes_before = self.fp.writes.clone();
                self.walk_stmt_list(body, frame);
                // Zero or more iterations: nothing inside is a must-write,
                // and every cell written inside mixes with the entry value.
                self.written = w0;
                self.oct_rewritten = r0;
                let mixed: Vec<CellId> =
                    self.fp.writes.difference(&writes_before).copied().collect();
                for c in mixed {
                    self.fp.pre_reads.insert(c);
                }
                // Solving the loop reduces the state at its head — the full
                // state for depth-0 loops, only the packs overlapping the
                // loop's own cells for loops inside callees (the localized
                // loop-done reduction). Mirrors `Iter::reduce_loop_done`.
                if frame.depth == 0 {
                    self.global_reduce_effect();
                } else {
                    match loop_touched_cells(self.program, self.layout, c, body) {
                        Some(cells) => self.local_reduce_effect(&cells),
                        None => self.global_reduce_effect(),
                    }
                }
            }
            StmtKind::Call(ret, callee, args) => {
                if frame.depth >= WALK_DEPTH_CAP {
                    self.fp.barrier = true;
                    return;
                }
                let f = self.program.func(*callee);
                let mut ref_map: HashMap<VarId, Lvalue> = HashMap::new();
                for (param, arg) in f.params.iter().zip(args) {
                    match arg {
                        CallArg::Value(e) => {
                            let target = Lvalue::var(param.var);
                            self.assign_effect(&target, e, s.id, frame);
                        }
                        CallArg::Ref(lv) => {
                            self.read_lvalue_path(lv);
                            ref_map.insert(param.var, lv.clone());
                        }
                    }
                }
                let body = if ref_map.is_empty() {
                    f.body.clone()
                } else {
                    substitute_block(&f.body, &ref_map)
                };
                let mut inner =
                    Frame { depth: frame.depth + 1, ret_target: ret.clone(), may_returned: false };
                self.walk_stmt_list(&body, &mut inner);
            }
            StmtKind::Return(e) => {
                if frame.depth == 0 {
                    // A top-level return ends the entry analysis; simplest to
                    // run it (and anything after) in order.
                    self.fp.barrier = true;
                    return;
                }
                if let Some(e) = e {
                    self.read_expr(e);
                    if let Some(t) = frame.ret_target.clone() {
                        // The value lands in the caller's target on this path
                        // only: a weak assignment.
                        self.weak_write_lvalue(&t);
                    }
                }
                frame.may_returned = true;
            }
            StmtKind::Wait => {
                // The clock tick is a global effect on every clocked value.
                self.fp.barrier = true;
            }
            StmtKind::Assume(c) => self.guard_effect(c),
            StmtKind::ReadVolatile(v) => {
                let c = self.layout.scalar_cell(*v);
                let must = !frame.may_returned;
                self.write_cell(c, must);
                // The interpreter forgets the cell's relations, then re-seeds
                // the octagon rows with the fresh input range (which does not
                // depend on any pre value).
                if let Some(pids) = self.packs.oct_index.get(&c).cloned() {
                    for pi in pids {
                        self.fp.packs_write.insert(PackKey::Oct(pi));
                        let rewritten = self.oct_rewritten.entry(pi).or_default();
                        if must {
                            rewritten.insert(c);
                        } else {
                            rewritten.remove(&c);
                            self.fp.packs_dep.insert(PackKey::Oct(pi));
                        }
                    }
                }
                let mut other: BTreeSet<PackKey> = BTreeSet::new();
                if let Some(pids) = self.packs.dtree_index.get(&c) {
                    other.extend(pids.iter().map(|&pi| PackKey::Dtree(pi)));
                }
                if let Some(pids) = self.packs.ellipse_index.get(&c) {
                    other.extend(pids.iter().map(|&pi| PackKey::Ell(pi)));
                }
                for key in other {
                    self.pack_dep_write(key);
                }
            }
        }
    }

    /// Walks a statement list that is *not* a new block boundary for the
    /// planner (branch/loop/callee bodies share the enclosing footprint).
    fn walk_stmt_list(&mut self, block: &Block, frame: &mut Frame) {
        self.walk_block(block, frame);
    }

    fn assign_effect(&mut self, lv: &Lvalue, e: &Expr, id: StmtId, frame: &Frame) {
        self.read_expr(e);
        self.read_lvalue_path(lv);

        // Ellipsoid pending computation at the filter group's first stmt:
        // reads the pack's bound, X, Y and the input term.
        if let Some(&pi) = self.packs.ellipse_starts.get(&id) {
            let (x, y, t) = {
                let p = &self.packs.ellipses[pi];
                (p.x, p.y, p.t.clone())
            };
            self.read_cell(x);
            self.read_cell(y);
            if let Some(t) = &t {
                self.read_expr(t);
            }
            self.pack_dep_write(PackKey::Ell(pi));
        }

        let (cells, strong) = self.lvalue_cells(lv);
        if strong {
            let c = cells[0];
            let e_cells = self.expr_cells(e);
            // Octagon row rewrite. The new row is independent of the pack's
            // pre value iff every pack member feeding it (the affine source,
            // or the target itself for `x := x + k`) was itself rewritten in
            // this walk; otherwise closure can propagate pre rows into it.
            if let Some(pids) = self.packs.oct_index.get(&c).cloned() {
                for pi in pids {
                    self.fp.packs_write.insert(PackKey::Oct(pi));
                    let members = &self.packs.octagons[pi].cells;
                    let fresh = !frame.may_returned
                        && e_cells.iter().all(|ec| {
                            !members.contains(ec) || {
                                self.oct_rewritten.get(&pi).is_some_and(|rw| rw.contains(ec))
                            }
                        });
                    let rewritten = self.oct_rewritten.entry(pi).or_default();
                    if fresh {
                        rewritten.insert(c);
                    } else {
                        rewritten.remove(&c);
                        self.fp.packs_dep.insert(PackKey::Oct(pi));
                    }
                }
            }
            // Decision trees map over the pre tree and consult the member
            // cells' environment values.
            if let Some(pids) = self.packs.dtree_index.get(&c).cloned() {
                for pi in pids {
                    self.pack_dep_write(PackKey::Dtree(pi));
                    for m in self.pack_members(PackKey::Dtree(pi)) {
                        self.read_cell(m);
                    }
                }
            }
            // A strong overwrite of a filter's X or Y clears its bound but
            // keeps the pending δ: still pre-dependent.
            if let Some(pids) = self.packs.ellipse_index.get(&c).cloned() {
                for pi in pids {
                    self.pack_dep_write(PackKey::Ell(pi));
                }
            }
            // Ellipsoid commit: reads the pending δ, writes the bound and
            // tightens X/Y in the environment.
            if let Some(&pi) = self.packs.ellipse_commits.get(&id) {
                let (x, y) = {
                    let p = &self.packs.ellipses[pi];
                    (p.x, p.y)
                };
                self.pack_dep_write(PackKey::Ell(pi));
                self.write_cell(x, false);
                self.write_cell(y, false);
            }
            self.write_cell(c, !frame.may_returned);
        } else {
            for c in cells {
                self.write_cell(c, false);
                self.weak_forget_packs(c);
            }
        }
    }

    /// A weak assignment through an l-value (used for `return` values).
    fn weak_write_lvalue(&mut self, lv: &Lvalue) {
        self.read_lvalue_path(lv);
        let (cells, _) = self.lvalue_cells(lv);
        for c in cells {
            self.write_cell(c, false);
            self.weak_forget_packs(c);
        }
    }

    /// Pack effects of a weak update of `c` (the interpreter's
    /// `forget_cell`, or a join-mixed strong assignment).
    fn weak_forget_packs(&mut self, c: CellId) {
        if let Some(pids) = self.packs.oct_index.get(&c).cloned() {
            for pi in pids {
                self.pack_dep_write(PackKey::Oct(pi));
                self.oct_rewritten.entry(pi).or_default().remove(&c);
            }
        }
        if let Some(pids) = self.packs.dtree_index.get(&c).cloned() {
            for pi in pids {
                self.pack_dep_write(PackKey::Dtree(pi));
            }
        }
        if let Some(pids) = self.packs.ellipse_index.get(&c).cloned() {
            for pi in pids {
                self.pack_dep_write(PackKey::Ell(pi));
            }
        }
    }

    fn finalize(mut self) -> Footprint {
        // A written octagon pack whose members were not all freshly
        // rewritten still carries rows derived from its pre value.
        let oct_writes: Vec<usize> = self
            .fp
            .packs_write
            .iter()
            .filter_map(|k| match k {
                PackKey::Oct(pi) => Some(*pi),
                _ => None,
            })
            .collect();
        for pi in oct_writes {
            let members = &self.packs.octagons[pi].cells;
            let fresh = self
                .oct_rewritten
                .get(&pi)
                .is_some_and(|rw| members.iter().all(|c| rw.contains(c)));
            if !fresh {
                self.fp.packs_dep.insert(PackKey::Oct(pi));
            }
        }
        let mut fp = self.fp;
        fp.must_writes = self.written;
        fp
    }
}

/// Compile-time Send/Sync audit: the worker threads share these across the
/// scoped spawn, and every slice state must be movable back to the merger.
#[allow(dead_code)]
fn _assert_thread_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<crate::state::AbsState>();
    assert_send_sync::<crate::packs::Packs>();
    assert_send_sync::<crate::alarms::AlarmSink>();
    assert_send_sync::<astree_memory::AbsEnv>();
    assert_send_sync::<astree_memory::CellLayout>();
    assert_send_sync::<astree_ir::Program>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use astree_frontend::Frontend;
    use astree_memory::LayoutConfig;

    fn setup(src: &str) -> (Program, CellLayout, Packs) {
        let p = Frontend::new().compile_str(src).expect("compiles");
        let l = CellLayout::new(&p, &LayoutConfig::default());
        let packs = Packs::discover(&p, &l, &AnalysisConfig::default());
        (p, l, packs)
    }

    fn entry_plan(p: &Program, l: &CellLayout, packs: &Packs) -> BlockPlan {
        let body = &p.func(p.entry).body;
        plan_block(p, l, packs, body)
    }

    #[test]
    fn independent_assignments_share_a_stage() {
        let (p, l, packs) = setup(
            "int a; int b; int c; int d;
             void main(void) { a = b + 1; c = d + 2; }",
        );
        let plan = entry_plan(&p, &l, &packs);
        assert!(plan.parallel, "{:?}", plan.stages);
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(plan.stages[0].len, 2);
    }

    #[test]
    fn flow_dependence_serializes() {
        let (p, l, packs) = setup(
            "int a; int b; int c;
             void main(void) { a = b + 1; c = a + 2; }",
        );
        let plan = entry_plan(&p, &l, &packs);
        // c = a + 2 reads a, written by the first statement.
        assert!(!plan.stages.iter().any(|s| s.parallel), "{:?}", plan.stages);
    }

    #[test]
    fn anti_dependence_does_not_serialize() {
        // `a * b` is non-linear, so no octagon pack ties the variables.
        let (p, l, packs) = setup(
            "int a; int b; int c;
             void main(void) { c = a * b; a = 7; }",
        );
        let plan = entry_plan(&p, &l, &packs);
        // a = 7 writes a cell the earlier statement only reads: the overlay
        // ordering already makes the later write win.
        assert!(plan.stages.iter().any(|s| s.parallel), "{:?}", plan.stages);
    }

    #[test]
    fn wait_is_a_barrier() {
        let (p, l, packs) = setup(
            "int a; int b;
             void main(void) { a = 1; __astree_wait(); b = 2; }",
        );
        let plan = entry_plan(&p, &l, &packs);
        assert_eq!(plan.stages.len(), 3, "{:?}", plan.stages);
        assert!(plan.footprints[1].barrier);
    }

    #[test]
    fn weak_write_reads_the_old_value() {
        let (p, l, packs) = setup(
            "int t[4]; int i; int a;
             void main(void) { a = 3; t[i] = a; }",
        );
        let fp = &entry_plan(&p, &l, &packs).footprints[1];
        // The weak array write may keep old elements.
        assert!(fp.writes.iter().any(|c| fp.pre_reads.contains(c)));
        assert!(fp.must_writes.is_empty());
    }

    #[test]
    fn branches_make_writes_conditional() {
        let (p, l, packs) = setup(
            "int a; int b;
             void main(void) { if (b) { a = 1; } else { b = 2; } }",
        );
        let fp = &entry_plan(&p, &l, &packs).footprints[0];
        // Neither a nor b is written on both paths.
        assert!(fp.must_writes.is_empty(), "{:?}", fp.must_writes);
        assert!(!fp.writes.is_empty());
        // Both mix with the incoming value at the join.
        for c in &fp.writes {
            assert!(fp.pre_reads.contains(c));
        }
    }

    #[test]
    fn calls_are_walked_through() {
        let (p, l, packs) = setup(
            "int a; int b; int c;
             int f(int x) { return x + 1; }
             void main(void) { a = f(b); c = a; }",
        );
        let plan = entry_plan(&p, &l, &packs);
        let fp = &plan.footprints[0];
        assert!(!fp.writes.is_empty());
        // c = a depends on the call's return write.
        assert!(!plan.stages.iter().any(|s| s.parallel), "{:?}", plan.stages);
    }

    #[test]
    fn shared_octagon_pack_serializes_partial_rewrites() {
        // x and y share a pack; each statement rewrites only one member, so
        // the second statement's pack value would keep the first's pre rows.
        let (p, l, packs) = setup(
            "int x; int y; int k;
             void main(void) { x = y + 1; y = k; }",
        );
        assert!(!packs.octagons.is_empty());
        let plan = entry_plan(&p, &l, &packs);
        assert!(!plan.stages.iter().any(|s| s.parallel), "{:?}", plan.stages);
    }
}
