//! Alarm collection and reporting (paper Sect. 5.3: "when in checking mode,
//! the iterator issues a warning for each operator application that may give
//! an error on the concrete level").

use astree_domains::ErrFlags;
use astree_ir::{Loc, StmtId};
use std::collections::BTreeSet;
use std::fmt;

/// The class of a potential run-time error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlarmKind {
    /// Division or remainder by zero.
    DivByZero,
    /// Integer arithmetic overflow (wrap-around would occur).
    IntOverflow,
    /// Float overflow to ±∞.
    FloatOverflow,
    /// Invalid float operation producing NaN.
    InvalidFloatOp,
    /// Shift amount out of range.
    ShiftRange,
    /// Out-of-bounds array access.
    OutOfBounds,
    /// Invalid (out-of-range) conversion.
    InvalidCast,
}

impl AlarmKind {
    /// Expands an error-flag set into alarm kinds.
    pub fn from_flags(flags: ErrFlags) -> Vec<AlarmKind> {
        let mut out = Vec::new();
        let table = [
            (ErrFlags::DIV_BY_ZERO, AlarmKind::DivByZero),
            (ErrFlags::INT_OVERFLOW, AlarmKind::IntOverflow),
            (ErrFlags::FLOAT_OVERFLOW, AlarmKind::FloatOverflow),
            (ErrFlags::NAN, AlarmKind::InvalidFloatOp),
            (ErrFlags::SHIFT_RANGE, AlarmKind::ShiftRange),
            (ErrFlags::OUT_OF_BOUNDS, AlarmKind::OutOfBounds),
            (ErrFlags::INVALID_CAST, AlarmKind::InvalidCast),
        ];
        for (f, k) in table {
            if flags.contains(f) {
                out.push(k);
            }
        }
        out
    }

    /// Stable snake-case name, used in the metrics schema.
    pub fn slug(self) -> &'static str {
        match self {
            AlarmKind::DivByZero => "div_by_zero",
            AlarmKind::IntOverflow => "int_overflow",
            AlarmKind::FloatOverflow => "float_overflow",
            AlarmKind::InvalidFloatOp => "invalid_float_op",
            AlarmKind::ShiftRange => "shift_range",
            AlarmKind::OutOfBounds => "out_of_bounds",
            AlarmKind::InvalidCast => "invalid_cast",
        }
    }

    /// The base domain whose check fails when this alarm survives (the
    /// provenance attribution used in the metrics schema): integer checks
    /// are decided by the interval/clocked product, float checks by the
    /// float intervals, bounds checks by the memory model, and conversions
    /// by the float→int cast logic.
    pub fn domain(self) -> &'static str {
        match self {
            AlarmKind::DivByZero | AlarmKind::IntOverflow | AlarmKind::ShiftRange => "int_interval",
            AlarmKind::FloatOverflow | AlarmKind::InvalidFloatOp => "float_interval",
            AlarmKind::OutOfBounds => "memory",
            AlarmKind::InvalidCast => "cast",
        }
    }
}

impl fmt::Display for AlarmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlarmKind::DivByZero => "division by zero",
            AlarmKind::IntOverflow => "integer overflow",
            AlarmKind::FloatOverflow => "float overflow",
            AlarmKind::InvalidFloatOp => "invalid float operation",
            AlarmKind::ShiftRange => "shift out of range",
            AlarmKind::OutOfBounds => "out-of-bounds array access",
            AlarmKind::InvalidCast => "invalid conversion",
        };
        f.write_str(s)
    }
}

/// One reported alarm: a program point and an error class it may exhibit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Alarm {
    /// The statement where the operator application occurs.
    pub stmt: StmtId,
    /// Source location.
    pub loc: Loc,
    /// The error class.
    pub kind: AlarmKind,
    /// Short description of the statement context.
    pub context: String,
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: possible {} in `{}`", self.loc.line, self.kind, self.context)
    }
}

/// Deduplicating alarm sink: one alarm per (statement, kind) pair, mirroring
/// the paper's per-operation warning count.
#[derive(Debug, Default)]
pub struct AlarmSink {
    seen: BTreeSet<(StmtId, AlarmKind)>,
    alarms: Vec<Alarm>,
}

impl AlarmSink {
    /// Creates an empty sink.
    pub fn new() -> AlarmSink {
        AlarmSink::default()
    }

    /// Records the alarms implied by `flags` at a statement. Returns the
    /// kinds that were *new* for this statement (so callers can emit one
    /// provenance event per first report, matching the deduplication).
    pub fn report(
        &mut self,
        stmt: StmtId,
        loc: Loc,
        flags: ErrFlags,
        context: &str,
    ) -> Vec<AlarmKind> {
        let mut fresh = Vec::new();
        for kind in AlarmKind::from_flags(flags) {
            if self.seen.insert((stmt, kind)) {
                self.alarms.push(Alarm { stmt, loc, kind, context: context.to_string() });
                fresh.push(kind);
            }
        }
        fresh
    }

    /// Merges another sink into this one, preserving the per
    /// (statement, kind) deduplication: an alarm already reported here wins
    /// over the same alarm from `other` (so merging slice sinks in slice
    /// order keeps the sequential first-reporter).
    pub fn absorb(&mut self, other: AlarmSink) {
        for alarm in other.alarms {
            if self.seen.insert((alarm.stmt, alarm.kind)) {
                self.alarms.push(alarm);
            }
        }
    }

    /// All alarms, sorted by program point.
    pub fn into_sorted(mut self) -> Vec<Alarm> {
        self.alarms.sort();
        self.alarms
    }

    /// Number of distinct alarms so far.
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// `true` when no alarm was reported.
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_expand_to_kinds() {
        let ks = AlarmKind::from_flags(ErrFlags::DIV_BY_ZERO | ErrFlags::OUT_OF_BOUNDS);
        assert_eq!(ks, vec![AlarmKind::DivByZero, AlarmKind::OutOfBounds]);
        assert!(AlarmKind::from_flags(ErrFlags::NONE).is_empty());
    }

    #[test]
    fn sink_deduplicates_per_stmt_and_kind() {
        let mut sink = AlarmSink::new();
        sink.report(StmtId(1), Loc::line(10), ErrFlags::DIV_BY_ZERO, "x / y");
        sink.report(StmtId(1), Loc::line(10), ErrFlags::DIV_BY_ZERO, "x / y");
        sink.report(StmtId(1), Loc::line(10), ErrFlags::INT_OVERFLOW, "x / y");
        sink.report(StmtId(2), Loc::line(11), ErrFlags::DIV_BY_ZERO, "a / b");
        assert_eq!(sink.len(), 3);
        let alarms = sink.into_sorted();
        assert_eq!(alarms[0].stmt, StmtId(1));
        assert_eq!(alarms[2].stmt, StmtId(2));
    }

    #[test]
    fn absorb_merges_and_deduplicates() {
        let mut a = AlarmSink::new();
        a.report(StmtId(1), Loc::line(10), ErrFlags::DIV_BY_ZERO, "x / y");
        let mut b = AlarmSink::new();
        b.report(StmtId(1), Loc::line(10), ErrFlags::DIV_BY_ZERO, "x / y");
        b.report(StmtId(2), Loc::line(11), ErrFlags::INT_OVERFLOW, "a + b");
        a.absorb(b);
        assert_eq!(a.len(), 2);
        let alarms = a.into_sorted();
        assert_eq!(alarms[0].stmt, StmtId(1));
        assert_eq!(alarms[1].stmt, StmtId(2));
    }

    #[test]
    fn display_is_informative() {
        let a = Alarm {
            stmt: StmtId(1),
            loc: Loc::line(12),
            kind: AlarmKind::DivByZero,
            context: "y = 1 / x".into(),
        };
        let s = a.to_string();
        assert!(s.contains("line 12") && s.contains("division by zero") && s.contains("1 / x"));
    }
}
