//! Invariant census: classifying the assertions of a loop invariant
//! (paper Sect. 9.4.1 dumps the main loop invariant and counts 6,900 boolean
//! interval assertions, 9,600 interval assertions, 25,400 clock assertions,
//! 19,100 additive and 19,200 subtractive octagonal assertions, 100 decision
//! trees and 1,900 ellipsoidal assertions).

use crate::packs::Packs;
use crate::state::AbsState;
use astree_domains::IntItv;
use astree_ir::{IntType, ScalarType};
use astree_memory::{CellLayout, CellVal};
use std::fmt;

/// Counts of assertion kinds in one invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Census {
    /// Boolean cells constrained to a sub-range of {0, 1}.
    pub boolean_intervals: usize,
    /// Non-boolean cells with at least one finite bound.
    pub intervals: usize,
    /// Clocked assertions: finite bounds on `x − clock` or `x + clock`.
    pub clock_assertions: usize,
    /// Octagonal `x + y ≤ c` (and `−x − y ≤ c`) constraints.
    pub octagon_additive: usize,
    /// Octagonal `x − y ≤ c` constraints.
    pub octagon_subtractive: usize,
    /// Decision trees holding more than one context.
    pub decision_trees: usize,
    /// Finite ellipsoidal constraints.
    pub ellipsoids: usize,
}

/// One labelled census row (for reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusEntry {
    /// Assertion-kind label.
    pub kind: &'static str,
    /// Count.
    pub count: usize,
}

impl Census {
    /// Classifies the assertions of an abstract state.
    pub fn of_state(state: &AbsState, layout: &CellLayout, packs: &Packs) -> Census {
        let mut c = Census::default();
        if state.is_bottom() {
            return c;
        }
        for (id, val) in state.env.iter() {
            let info = layout.info(*id);
            match val {
                CellVal::Int(ck) => {
                    let is_bool = matches!(info.ty, ScalarType::Int(it) if it == IntType::BOOL);
                    if is_bool {
                        if !ck.val.is_bottom() && ck.val.leq(IntItv::new(0, 1)) {
                            c.boolean_intervals += 1;
                        }
                    } else if has_finite_bound_int(ck.val) {
                        c.intervals += 1;
                    }
                    if has_finite_bound_int(ck.minus) || has_finite_bound_int(ck.plus) {
                        c.clock_assertions += 1;
                    }
                }
                CellVal::Float(f) => {
                    if !f.is_bottom() && (f.lo.is_finite() || f.hi.is_finite()) {
                        c.intervals += 1;
                    }
                }
            }
        }
        for pi in 0..packs.octagons.len() {
            let n = packs.octagons[pi].cells.len();
            let mut o = state.oct(pi).clone();
            o.close();
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    if o.diff_bound(i, j).is_finite() {
                        c.octagon_subtractive += 1;
                    }
                    if i < j && o.sum_bound(i, j).is_finite() {
                        c.octagon_additive += 1;
                    }
                }
            }
        }
        for (_, t) in state.dtrees_iter() {
            if t.num_leaves() > 1 {
                c.decision_trees += 1;
            }
        }
        for (_, k) in state.ellipses_iter() {
            if k.is_finite() {
                c.ellipsoids += 1;
            }
        }
        c
    }

    /// Rows for tabular reports, in the paper's order.
    pub fn entries(&self) -> Vec<CensusEntry> {
        vec![
            CensusEntry { kind: "boolean interval assertions", count: self.boolean_intervals },
            CensusEntry { kind: "interval assertions", count: self.intervals },
            CensusEntry { kind: "clock assertions", count: self.clock_assertions },
            CensusEntry { kind: "additive octagonal assertions", count: self.octagon_additive },
            CensusEntry {
                kind: "subtractive octagonal assertions",
                count: self.octagon_subtractive,
            },
            CensusEntry { kind: "decision trees", count: self.decision_trees },
            CensusEntry { kind: "ellipsoidal assertions", count: self.ellipsoids },
        ]
    }

    /// Total number of assertions.
    pub fn total(&self) -> usize {
        self.entries().iter().map(|e| e.count).sum()
    }
}

fn has_finite_bound_int(i: IntItv) -> bool {
    !i.is_bottom() && (i.lo != i64::MIN || i.hi != i64::MAX)
}

/// The variables an invariant knows too little about (paper Sect. 3.3:
/// "integer or floating point variables that may contain large values or
/// boolean variables that may take any value") — the seed set for
/// *abstract slices*.
pub fn under_constrained_vars(
    state: &AbsState,
    layout: &CellLayout,
    large: f64,
) -> std::collections::HashSet<astree_ir::VarId> {
    let mut out = std::collections::HashSet::new();
    if state.is_bottom() {
        return out;
    }
    for (id, val) in state.env.iter() {
        let info = layout.info(*id);
        let weak = match val {
            CellVal::Int(c) => {
                let is_bool = matches!(info.ty, ScalarType::Int(it) if it == IntType::BOOL);
                if is_bool {
                    // A boolean that may take any value.
                    c.val.contains(0) && c.val.contains(1)
                } else {
                    c.val.is_bottom()
                        || c.val.lo == i64::MIN
                        || c.val.hi == i64::MAX
                        || (c.val.hi - c.val.lo) as f64 > large
                }
            }
            CellVal::Float(f) => {
                f.is_bottom() || !f.lo.is_finite() || !f.hi.is_finite() || (f.hi - f.lo) > large
            }
        };
        if weak {
            out.insert(info.var);
        }
    }
    out
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in self.entries() {
            writeln!(f, "{:>8}  {}", e.count, e.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use astree_frontend::Frontend;
    use astree_memory::LayoutConfig;

    #[test]
    fn census_counts_initial_state() {
        let p = Frontend::new()
            .compile_str("_Bool b; int x; double f; void main(void) { b = 1; x = 2; f = 3.0; }")
            .unwrap();
        let layout = CellLayout::new(&p, &LayoutConfig::default());
        let packs = Packs::discover(&p, &layout, &AnalysisConfig::default());
        let s = AbsState::initial(&layout, &packs);
        let c = Census::of_state(&s, &layout, &packs);
        // All cells start as singletons: 1 boolean + the rest interval.
        assert_eq!(c.boolean_intervals, 1);
        assert!(c.intervals >= 2);
        assert!(c.total() >= 3);
        // The zeroed cells have clock-relative bounds too.
        assert!(c.clock_assertions >= 1);
    }

    #[test]
    fn bottom_state_has_empty_census() {
        let p = Frontend::new().compile_str("int x; void main(void) { x = 1; }").unwrap();
        let layout = CellLayout::new(&p, &LayoutConfig::default());
        let packs = Packs::discover(&p, &layout, &AnalysisConfig::default());
        let s = AbsState::initial(&layout, &packs).bottom_like();
        assert_eq!(Census::of_state(&s, &layout, &packs).total(), 0);
    }

    #[test]
    fn under_constrained_detection() {
        let p = Frontend::new()
            .compile_str(
                "volatile int wide; volatile int narrow; _Bool b; int x;
                 void main(void) {
                     __astree_input_int(narrow, 0, 5);
                     x = narrow;
                     b = (_Bool)(wide > 0);
                     x = x + (b ? 1 : 0);
                 }",
            )
            .unwrap();
        let layout = CellLayout::new(&p, &LayoutConfig::default());
        let packs = Packs::discover(&p, &layout, &AnalysisConfig::default());
        let mut s = AbsState::initial(&layout, &packs);
        // narrow: tight; wide: full int range; b: {0,1}.
        let narrow = p.var_by_name("narrow").unwrap();
        let wide = p.var_by_name("wide").unwrap();
        let b = p.var_by_name("b").unwrap();
        use astree_domains::{Clocked, IntItv};
        s.env = s
            .env
            .set(
                layout.scalar_cell(narrow),
                CellVal::Int(Clocked::of_val(IntItv::new(0, 5), IntItv::singleton(0))),
            )
            .set(
                layout.scalar_cell(wide),
                CellVal::Int(Clocked::of_val(IntItv::of_type(IntType::INT), IntItv::singleton(0))),
            )
            .set(
                layout.scalar_cell(b),
                CellVal::Int(Clocked::of_val(IntItv::new(0, 1), IntItv::singleton(0))),
            );
        let weak = under_constrained_vars(&s, &layout, 1e6);
        assert!(weak.contains(&wide), "{weak:?}");
        assert!(weak.contains(&b), "booleans that may take any value are weak");
        assert!(!weak.contains(&narrow), "{weak:?}");
    }

    #[test]
    fn entries_are_labelled() {
        let c = Census { ellipsoids: 2, ..Census::default() };
        let rows = c.entries();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[6].count, 2);
        assert!(c.to_string().contains("ellipsoidal"));
    }
}
